#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace dcv::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetAndReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.Set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10.0, 20.0, 30.0});
  // Exactly on a bound lands in that bound's bucket (inclusive).
  h.Observe(10.0);
  h.Observe(10.5);  // > 10 -> second bucket.
  h.Observe(20.0);
  h.Observe(30.0);
  h.Observe(30.0001);  // Above the last bound -> overflow bucket.
  h.Observe(-5.0);     // Below everything -> first bucket.
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 finite buckets + overflow.
  EXPECT_EQ(s.counts[0], 2);       // -5, 10.
  EXPECT_EQ(s.counts[1], 2);       // 10.5, 20.
  EXPECT_EQ(s.counts[2], 1);       // 30.
  EXPECT_EQ(s.counts[3], 1);       // 30.0001.
  EXPECT_EQ(s.count, 6);
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0001);
}

TEST(HistogramTest, SumMinMaxMean) {
  Histogram h({100.0});
  h.Observe(10.0);
  h.Observe(30.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  h.Reset();
  s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, ExponentialBounds) {
  std::vector<double> b = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(HistogramQuantileTest, EmptySnapshotReturnsZero) {
  Histogram h({10.0, 20.0});
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 0.0);
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesBetweenMinAndMax) {
  // All observations land in one finite bucket: the interpolation range is
  // clamped to [min, max], not the bucket's nominal [0, 100] span.
  Histogram h({100.0});
  h.Observe(40.0);
  h.Observe(60.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_GE(s.Quantile(0.5), 40.0);
  EXPECT_LE(s.Quantile(0.5), 60.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 60.0);
  // Out-of-range p is clamped, not UB.
  EXPECT_DOUBLE_EQ(s.Quantile(1.5), s.Quantile(1.0));
  EXPECT_GE(s.Quantile(-0.5), 40.0);
}

TEST(HistogramQuantileTest, OverflowBucketClosesAtObservedMax) {
  Histogram h({10.0});
  h.Observe(5.0);
  h.Observe(1000.0);  // Overflow bucket.
  h.Observe(2000.0);  // Overflow bucket.
  HistogramSnapshot s = h.Snapshot();
  // High quantiles interpolate inside [bounds.back(), max], never past the
  // largest real observation.
  EXPECT_LE(s.Quantile(0.99), 2000.0);
  EXPECT_GE(s.Quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 2000.0);
}

TEST(HistogramQuantileTest, MedianLandsInTheRightBucket) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) {
    h.Observe(5.0);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(25.0);
  }
  HistogramSnapshot s = h.Snapshot();
  // p25 is inside the first bucket, p75 inside the third.
  EXPECT_LE(s.Quantile(0.25), 10.0);
  double p75 = s.Quantile(0.75);
  EXPECT_GE(p75, 20.0);
  EXPECT_LE(p75, 30.0);
}

TEST(HistogramSnapshotTest, MergeFromAddsBucketsAndWidensMinMax) {
  Histogram a({10.0, 20.0});
  Histogram b({10.0, 20.0});
  a.Observe(5.0);
  a.Observe(15.0);
  b.Observe(15.0);
  b.Observe(25.0);
  HistogramSnapshot sa = a.Snapshot();
  ASSERT_TRUE(sa.MergeFrom(b.Snapshot()));
  EXPECT_EQ(sa.count, 4);
  EXPECT_DOUBLE_EQ(sa.sum, 60.0);
  EXPECT_DOUBLE_EQ(sa.min, 5.0);
  EXPECT_DOUBLE_EQ(sa.max, 25.0);
  ASSERT_EQ(sa.counts.size(), 3u);
  EXPECT_EQ(sa.counts[0], 1);
  EXPECT_EQ(sa.counts[1], 2);
  EXPECT_EQ(sa.counts[2], 1);
}

TEST(HistogramSnapshotTest, MergeFromMismatchedBoundsFoldsTotalsOnly) {
  Histogram a({10.0});
  Histogram b({10.0, 20.0});
  a.Observe(1.0);
  b.Observe(1.0);
  HistogramSnapshot sa = a.Snapshot();
  // Shapes disagree: the merge reports it, folds the totals (so counts
  // never lie), and leaves the per-bucket array alone.
  EXPECT_FALSE(sa.MergeFrom(b.Snapshot()));
  EXPECT_EQ(sa.count, 2);
  ASSERT_EQ(sa.counts.size(), 2u);
  EXPECT_EQ(sa.counts[0], 1);
}

TEST(MetricsSnapshotTest, MergeFromSumsCountersAndNamespacesGauges) {
  MetricsRegistry coord;
  MetricsRegistry worker;
  coord.counter("runtime/site/updates")->Increment(10);
  coord.gauge("queue_depth")->Set(1.0);
  worker.counter("runtime/site/updates")->Increment(32);
  worker.counter("runtime/socket/frames_tx")->Increment(7);
  worker.gauge("queue_depth")->Set(2.0);
  worker.histogram("lag", {1.0, 2.0})->Observe(1.5);

  MetricsSnapshot merged = coord.Snapshot();
  merged.MergeFrom(worker.Snapshot(), "worker1");
  EXPECT_EQ(merged.counters["runtime/site/updates"], 42);
  EXPECT_EQ(merged.counters["runtime/socket/frames_tx"], 7);
  // The coordinator's own gauge is untouched; the worker's is namespaced.
  EXPECT_DOUBLE_EQ(merged.gauges["queue_depth"], 1.0);
  EXPECT_DOUBLE_EQ(merged.gauges["worker1/queue_depth"], 2.0);
  EXPECT_EQ(merged.histograms["lag"].count, 1);
}

TEST(MetricsSnapshotTest, MergeFromMergesHistogramsBucketWise) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("lag", {1.0, 2.0})->Observe(0.5);
  b.histogram("lag", {1.0, 2.0})->Observe(1.5);
  b.histogram("lag", {1.0, 2.0})->Observe(9.0);
  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  const HistogramSnapshot& lag = merged.histograms["lag"];
  EXPECT_EQ(lag.count, 3);
  ASSERT_EQ(lag.counts.size(), 3u);
  EXPECT_EQ(lag.counts[0], 1);
  EXPECT_EQ(lag.counts[1], 1);
  EXPECT_EQ(lag.counts[2], 1);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(reg.counter("x")->value(), 3);
  EXPECT_NE(reg.counter("y"), a);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.counter("m"), nullptr);
  EXPECT_EQ(reg.gauge("m"), nullptr);
  EXPECT_EQ(reg.histogram("m"), nullptr);
  ASSERT_NE(reg.histogram("h"), nullptr);
  EXPECT_EQ(reg.counter("h"), nullptr);
}

TEST(RegistryTest, SnapshotAndReset) {
  MetricsRegistry reg;
  reg.counter("c")->Increment(7);
  reg.gauge("g")->Set(1.25);
  reg.histogram("h", {10.0})->Observe(3.0);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.counters.at("c"), 7);
  EXPECT_DOUBLE_EQ(s.gauges.at("g"), 1.25);
  EXPECT_EQ(s.histograms.at("h").count, 1);
  reg.Reset();
  s = reg.Snapshot();
  EXPECT_EQ(s.counters.at("c"), 0);
  EXPECT_DOUBLE_EQ(s.gauges.at("g"), 0.0);
  EXPECT_EQ(s.histograms.at("h").count, 0);
}

TEST(RegistryTest, DiffSinceSubtractsCountersAndHistograms) {
  MetricsRegistry reg;
  reg.counter("c")->Increment(5);
  reg.histogram("h", {10.0})->Observe(2.0);
  MetricsSnapshot base = reg.Snapshot();
  reg.counter("c")->Increment(3);
  reg.gauge("g")->Set(9.0);
  reg.histogram("h")->Observe(4.0);
  MetricsSnapshot diff = reg.Snapshot().DiffSince(base);
  EXPECT_EQ(diff.counters.at("c"), 3);
  EXPECT_DOUBLE_EQ(diff.gauges.at("g"), 9.0);  // Gauges keep current value.
  EXPECT_EQ(diff.histograms.at("h").count, 1);
  EXPECT_DOUBLE_EQ(diff.histograms.at("h").sum, 4.0);
}

TEST(RegistryTest, ConcurrencySmoke) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.counter("shared");
      Histogram* h = reg.histogram("lat", {1.0, 10.0, 100.0});
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 128));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.counters.at("shared"), kThreads * kIters);
  EXPECT_EQ(s.histograms.at("lat").count, kThreads * kIters);
  int64_t bucket_total = 0;
  for (int64_t n : s.histograms.at("lat").counts) {
    bucket_total += n;
  }
  EXPECT_EQ(bucket_total, kThreads * kIters);
}

TEST(ScopedTimerTest, NullHistogramIsInert) {
  ScopedTimer t(nullptr);
  EXPECT_EQ(t.ElapsedUs(), 0);
}

TEST(ScopedTimerTest, RecordsOneObservation) {
  Histogram h({1e9});
  {
    ScopedTimer t(&h);
    EXPECT_GE(t.ElapsedUs(), 0);
  }
  EXPECT_EQ(h.Snapshot().count, 1);
}

TEST(SnapshotJsonTest, DeterministicSortedExport) {
  MetricsRegistry reg;
  reg.counter("b")->Increment(2);
  reg.counter("a")->Increment(1);
  reg.gauge("g")->Set(0.5);
  std::string json = reg.Snapshot().ToJson();
  // Map-keyed snapshot => keys in sorted order, independent of creation.
  EXPECT_NE(json.find("\"counters\":{\"a\":1,\"b\":2}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"g\":0.5"), std::string::npos) << json;
}

TEST(JsonWriterTest, EscapingAndDoubles) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonDouble(3.0), "3");
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  // Non-finite values are not valid JSON; exported as 0.
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonWriterTest, CommaPlacementAndRaw) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(int64_t{1});
  w.Key("b").BeginArray().Value(int64_t{2}).Value(true).EndArray();
  w.Key("c").Raw("{\"pre\":0}");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2,true],\"c\":{\"pre\":0}}");
}

}  // namespace
}  // namespace dcv::obs
