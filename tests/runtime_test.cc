#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "runtime/site_actor.h"
#include "runtime/transport.h"
#include "trace/trace.h"

namespace dcv {
namespace {

// --- Transport ------------------------------------------------------------

TEST(ThreadTransportTest, ValidatesShape) {
  EXPECT_FALSE(ThreadTransport::Create(0, 1).ok());
  EXPECT_FALSE(ThreadTransport::Create(4, 0).ok());
  EXPECT_FALSE(ThreadTransport::Create(4, 5).ok());
  EXPECT_TRUE(ThreadTransport::Create(4, 4).ok());
  // Shard count must fit [1, num_sites].
  EXPECT_FALSE(ThreadTransport::Create(4, 2, 0, 0, 0).ok());
  EXPECT_FALSE(ThreadTransport::Create(4, 2, 0, 0, 5).ok());
  EXPECT_TRUE(ThreadTransport::Create(4, 2, 0, 0, 4).ok());
}

TEST(ThreadTransportTest, ShardsRouteCoordinatorTrafficBySender) {
  // 5 sites over 2 shards: shard 0 owns {0, 1, 2}, shard 1 owns {3, 4}.
  auto transport = ThreadTransport::Create(5, 2, 0, 0, 2);
  ASSERT_TRUE(transport.ok());
  Transport& t = **transport;
  EXPECT_EQ(t.num_shards(), 2);
  EXPECT_EQ(t.ShardOf(0), 0);
  EXPECT_EQ(t.ShardOf(2), 0);
  EXPECT_EQ(t.ShardOf(3), 1);
  EXPECT_EQ(t.ShardOf(4), 1);
  // The shard inbox is sized for the most-loaded shard (3 sites here).
  EXPECT_EQ((*transport)->coordinator_capacity(), 2u * 3u + 16u);

  ActorMessage msg;
  msg.kind = ActorMsgKind::kEpochReport;
  ASSERT_TRUE(t.Send(Envelope{4, kCoordinatorId, msg}));
  ASSERT_TRUE(t.Send(Envelope{0, kCoordinatorId, msg}));

  Envelope e;
  // Site 4's report lands in shard 1's inbox, site 0's in shard 0's.
  ASSERT_TRUE(t.TryRecvShard(1, &e));
  EXPECT_EQ(e.from, 4);
  EXPECT_FALSE(t.TryRecvShard(1, &e));
  ASSERT_TRUE(t.TryRecvShard(0, &e));
  EXPECT_EQ(e.from, 0);
}

TEST(ThreadTransportTest, SendToShardAndBatchDrain) {
  auto transport = ThreadTransport::Create(6, 2, 0, 0, 3);
  ASSERT_TRUE(transport.ok());
  Transport& t = **transport;

  // Root command straight into shard 2's inbox, interleaved with site
  // traffic; RecvShardAll drains the whole backlog in arrival order.
  ActorMessage report;
  report.kind = ActorMsgKind::kEpochReport;
  ASSERT_TRUE(t.Send(Envelope{4, kCoordinatorId, report}));
  ActorMessage cmd;
  cmd.kind = ActorMsgKind::kPollRequest;
  ASSERT_TRUE(t.SendToShard(2, Envelope{kCoordinatorId, kCoordinatorId, cmd}));
  ASSERT_TRUE(t.Send(Envelope{5, kCoordinatorId, report}));

  std::vector<Envelope> batch;
  EXPECT_EQ(t.RecvShardAll(2, &batch), 3u);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].from, 4);
  EXPECT_EQ(batch[1].from, kCoordinatorId);
  EXPECT_EQ(batch[1].msg.kind, ActorMsgKind::kPollRequest);
  EXPECT_EQ(batch[2].from, 5);

  // Out-of-range shard ids are rejected, not misrouted.
  EXPECT_FALSE(t.SendToShard(3, Envelope{kCoordinatorId, kCoordinatorId, cmd}));
  EXPECT_FALSE(t.SendToShard(-1, Envelope{kCoordinatorId, kCoordinatorId,
                                          cmd}));

  t.Shutdown();
  batch.clear();
  EXPECT_EQ(t.RecvShardAll(2, &batch), 0u);
}

TEST(ThreadTransportTest, SingleShardIsTheFlatCoordinatorInbox) {
  // RecvCoordinator is shard 0's inbox: the flat coordinator and every
  // pre-sharding caller keep working unchanged.
  auto transport = ThreadTransport::Create(3, 1);
  ASSERT_TRUE(transport.ok());
  Transport& t = **transport;
  EXPECT_EQ(t.num_shards(), 1);
  ActorMessage msg;
  msg.kind = ActorMsgKind::kAlarm;
  ASSERT_TRUE(t.Send(Envelope{2, kCoordinatorId, msg}));
  Envelope e;
  ASSERT_TRUE(t.TryRecvCoordinator(&e));
  EXPECT_EQ(e.from, 2);
}

TEST(ThreadTransportTest, RoutesBySiteAndMultiplexesWorkers) {
  auto transport = ThreadTransport::Create(5, 2);
  ASSERT_TRUE(transport.ok());
  Transport& t = **transport;
  EXPECT_EQ(t.WorkerOf(0), 0);
  EXPECT_EQ(t.WorkerOf(1), 1);
  EXPECT_EQ(t.WorkerOf(4), 0);

  ActorMessage msg;
  msg.kind = ActorMsgKind::kPollRequest;
  msg.epoch = 7;
  ASSERT_TRUE(t.Send(Envelope{kCoordinatorId, 4, msg}));
  msg.kind = ActorMsgKind::kEpochReport;
  ASSERT_TRUE(t.Send(Envelope{3, kCoordinatorId, msg}));

  Envelope e;
  // Site 4 lives in worker 0's inbox; worker 1's is empty.
  ASSERT_TRUE(t.TryRecvWorker(0, &e));
  EXPECT_EQ(e.to, 4);
  EXPECT_EQ(e.msg.kind, ActorMsgKind::kPollRequest);
  EXPECT_EQ(e.msg.epoch, 7);
  EXPECT_FALSE(t.TryRecvWorker(1, &e));
  ASSERT_TRUE(t.TryRecvCoordinator(&e));
  EXPECT_EQ(e.from, 3);

  t.Shutdown();
  EXPECT_FALSE(t.RecvCoordinator(&e));
  EXPECT_FALSE(t.RecvWorker(0, &e));
  EXPECT_FALSE(t.Send(Envelope{kCoordinatorId, 0, msg}));
}

TEST(ThreadTransportTest, WorkerCapacityRoundsUpForUnevenShapes) {
  // 5 sites over 2 workers: worker 0 owns 3 sites, so the per-worker inbox
  // must be sized for ceil(5/2) = 3 sites (4 * 3 + 8), not floor = 2. With
  // floor sizing a full epoch barrier could overfill worker 0's inbox.
  auto uneven = ThreadTransport::Create(5, 2);
  ASSERT_TRUE(uneven.ok());
  EXPECT_EQ((*uneven)->worker_capacity(), 4u * 3u + 8u);

  auto even = ThreadTransport::Create(6, 2);
  ASSERT_TRUE(even.ok());
  EXPECT_EQ((*even)->worker_capacity(), 4u * 3u + 8u);

  auto single = ThreadTransport::Create(7, 1);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*single)->worker_capacity(), 4u * 7u + 8u);
}

TEST(ThreadTransportTest, UnevenShapeSurvivesBurstWithoutBlocking) {
  // The invariant behind the capacity formula: the coordinator can push a
  // whole epoch's worth of traffic (kEpochStart + a threshold update per
  // site) at the most-loaded worker without anyone draining.
  auto transport = ThreadTransport::Create(5, 2);
  ASSERT_TRUE(transport.ok());
  Transport& t = **transport;
  ActorMessage msg;
  msg.kind = ActorMsgKind::kEpochStart;
  for (int round = 0; round < 4; ++round) {
    for (int site : {0, 2, 4}) {  // Worker 0's sites.
      ASSERT_TRUE(t.Send(Envelope{kCoordinatorId, site, msg}));
    }
  }
  Envelope e;
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(t.TryRecvWorker(0, &e));
  }
  EXPECT_FALSE(t.TryRecvWorker(0, &e));
}

// --- Virtual-time runtime on a hand-checked trace --------------------------

// Two sites, thresholds {10, 10}, weights {1, 1}, global threshold 25.
//   epoch 0: {5, 5}    quiet
//   epoch 1: {12, 5}   alarm site 0, poll, sum 17 -> no violation
//   epoch 2: {12, 14}  both alarm, poll, sum 26 -> violation
//   epoch 3: {9, 9}    quiet again
Trace HandTrace() {
  Trace t(2);
  EXPECT_TRUE(t.AppendEpoch({5, 5}).ok());
  EXPECT_TRUE(t.AppendEpoch({12, 5}).ok());
  EXPECT_TRUE(t.AppendEpoch({12, 14}).ok());
  EXPECT_TRUE(t.AppendEpoch({9, 9}).ok());
  return t;
}

RuntimeOptions HandOptions() {
  RuntimeOptions options;
  options.protocol = RuntimeProtocol::kLocalThreshold;
  options.global_threshold = 25;
  options.thresholds = {10, 10};
  options.domain_max = {40, 40};
  return options;
}

TEST(RuntimeVirtualTest, DetectsHandCheckedViolations) {
  Trace eval = HandTrace();
  auto result = RunMonitorRuntime(Trace(2), eval, HandOptions());
  ASSERT_TRUE(result.ok()) << result.status().message();

  EXPECT_EQ(result->mode, "virtual");
  EXPECT_EQ(result->epochs, 4);
  ASSERT_EQ(result->detections.size(), 4u);
  EXPECT_EQ(result->detections[0], (EpochDetection{0, 0, false, false}));
  EXPECT_EQ(result->detections[1], (EpochDetection{1, 1, true, false}));
  EXPECT_EQ(result->detections[2], (EpochDetection{2, 2, true, true}));
  EXPECT_EQ(result->detections[3], (EpochDetection{3, 0, false, false}));

  EXPECT_EQ(result->total_alarms, 3);
  EXPECT_EQ(result->alarm_epochs, 2);
  EXPECT_EQ(result->polled_epochs, 2);
  EXPECT_EQ(result->true_violations, 1);
  EXPECT_EQ(result->detected_violations, 1);
  EXPECT_EQ(result->missed_violations, 0);
  EXPECT_EQ(result->false_alarm_epochs, 1);

  // Wire accounting: 3 alarms + 2 polls * (2 requests + 2 responses).
  EXPECT_EQ(result->messages.of(MessageType::kAlarm), 3);
  EXPECT_EQ(result->messages.of(MessageType::kPollRequest), 4);
  EXPECT_EQ(result->messages.of(MessageType::kPollResponse), 4);
  EXPECT_EQ(result->messages.total(), 11);

  // Every site consumed one update per epoch.
  EXPECT_EQ(result->total_updates, 8);
}

TEST(RuntimeVirtualTest, PollingProtocolPollsOnSchedule) {
  Trace eval = HandTrace();
  RuntimeOptions options;
  options.protocol = RuntimeProtocol::kPolling;
  options.global_threshold = 25;
  options.poll_period = 2;
  auto result = RunMonitorRuntime(Trace(2), eval, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result->detections.size(), 4u);
  // Polls at epochs 0 and 2; the epoch-2 poll sees the violation.
  EXPECT_EQ(result->detections[0], (EpochDetection{0, 0, true, false}));
  EXPECT_EQ(result->detections[1], (EpochDetection{1, 0, false, false}));
  EXPECT_EQ(result->detections[2], (EpochDetection{2, 0, true, true}));
  EXPECT_EQ(result->detections[3], (EpochDetection{3, 0, false, false}));
  EXPECT_EQ(result->messages.total(), 2 * 4);
}

TEST(RuntimeVirtualTest, WorkerMultiplexingDoesNotChangeResults) {
  Trace eval = HandTrace();
  RuntimeOptions options = HandOptions();
  auto per_site = RunMonitorRuntime(Trace(2), eval, options);
  ASSERT_TRUE(per_site.ok());
  options.num_workers = 1;  // Both sites share one thread.
  auto packed = RunMonitorRuntime(Trace(2), eval, options);
  ASSERT_TRUE(packed.ok());
  ASSERT_EQ(per_site->detections.size(), packed->detections.size());
  for (size_t t = 0; t < per_site->detections.size(); ++t) {
    EXPECT_EQ(per_site->detections[t], packed->detections[t]);
  }
  EXPECT_EQ(per_site->messages.total(), packed->messages.total());
}

// --- Free-running mode ------------------------------------------------------

TEST(RuntimeFreeTest, ProcessesFullWorkloadAcrossThreads) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.global_threshold = 1;  // Any alarm-triggered poll flags.
  options.seed = 11;
  options.synthetic_max = 1000;
  options.thresholds = std::vector<int64_t>(8, 900);  // Rare local alarms.
  options.domain_max = std::vector<int64_t>(8, 1000);
  auto result = RunSyntheticRuntime(8, 500, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->mode, "free-running");
  EXPECT_EQ(result->total_updates, 8 * 500);
  ASSERT_EQ(result->site_updates.size(), 8u);
  for (int64_t u : result->site_updates) {
    EXPECT_EQ(u, 500);
  }
  EXPECT_GT(result->updates_per_second, 0.0);
  // ~10% of updates breach a 900 threshold on U[0,1000]: alarms must flow.
  EXPECT_GT(result->total_alarms, 0);
  EXPECT_GT(result->polled_epochs, 0);
  EXPECT_EQ(result->violations_flagged, result->polled_epochs);
  EXPECT_EQ(result->messages.of(MessageType::kAlarm), result->total_alarms);
}

TEST(RuntimeFreeTest, FewerWorkersThanSites) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.num_workers = 2;
  options.seed = 3;
  auto result = RunSyntheticRuntime(6, 200, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->total_updates, 6 * 200);
}

TEST(RuntimeFreeTest, UnevenSitesPerWorkerDrainsFully) {
  // 5 sites % 2 workers != 0: the heavier worker owns three sites and its
  // inbox still absorbs every control message (ceil-based capacity).
  RuntimeOptions options;
  options.virtual_time = false;
  options.num_workers = 2;
  options.seed = 9;
  options.thresholds = std::vector<int64_t>(5, 800);
  options.domain_max = std::vector<int64_t>(5, 1000);
  options.synthetic_max = 1000;
  options.global_threshold = 1;
  auto result = RunSyntheticRuntime(5, 400, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->total_updates, 5 * 400);
  EXPECT_GT(result->total_alarms, 0);
}

// --- Seed determinism -------------------------------------------------------

TEST(SeedDeterminismTest, SameSeedSameStreamsRegardlessOfThreads) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.capture_updates = true;
  options.seed = 1234;
  auto a = RunSyntheticRuntime(4, 300, options);
  ASSERT_TRUE(a.ok());
  options.num_workers = 1;  // Different thread schedule, same streams.
  auto b = RunSyntheticRuntime(4, 300, options);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->captured_updates.size(), 4u);
  ASSERT_EQ(b->captured_updates.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a->captured_updates[static_cast<size_t>(i)],
              b->captured_updates[static_cast<size_t>(i)])
        << "site " << i;
  }
}

TEST(SeedDeterminismTest, DifferentSeedsDiverge) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.capture_updates = true;
  options.seed = 1;
  auto a = RunSyntheticRuntime(2, 100, options);
  ASSERT_TRUE(a.ok());
  options.seed = 2;
  auto b = RunSyntheticRuntime(2, 100, options);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->captured_updates[0], b->captured_updates[0]);
}

TEST(SeedDeterminismTest, SiteStreamsAreUnrelated) {
  // Adjacent sites under the same seed must not share a stream.
  Rng r0 = MakeSiteRng(42, 0);
  Rng r1 = MakeSiteRng(42, 1);
  std::vector<int64_t> s0, s1;
  for (int i = 0; i < 50; ++i) {
    s0.push_back(r0.UniformInt(0, 1000000));
    s1.push_back(r1.UniformInt(0, 1000000));
  }
  EXPECT_NE(s0, s1);
}

// --- Trace-driven free-running ---------------------------------------------

TEST(RuntimeFreeTest, TraceWorkloadDrains) {
  Trace eval = HandTrace();
  RuntimeOptions options = HandOptions();
  options.virtual_time = false;
  auto result = RunMonitorRuntime(Trace(2), eval, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->total_updates, 8);
  // Three local threshold breaches exist in the trace; the reliable
  // perfect-network channel delivers each alarm.
  EXPECT_EQ(result->total_alarms, 3);
  EXPECT_GE(result->polled_epochs, 1);
}

}  // namespace
}  // namespace dcv
