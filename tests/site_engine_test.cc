#include "runtime/site_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/conformance.h"
#include "runtime/runtime.h"
#include "threshold/fptas.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

// The multiplexed SoA engine's contract: driving a worker's sites from one
// flat loop (batched sends, coalesced drains) is OBSERVATIONALLY IDENTICAL
// to one SiteActor per site — same per-epoch detections, same per-type
// message counts, same wire-level reliability stats — and both match the
// lockstep simulator. These tests run every scenario through all three and
// diff the two runtime engines against each other on top of the lockstep
// diff RunConformance already performs.

struct Workload {
  Trace training{0};
  Trace eval{0};
};

Workload MakeWorkload(uint64_t seed, int num_sites = 4,
                      int64_t train_epochs = 500, int64_t eval_epochs = 500) {
  SyntheticTraceOptions options;
  options.num_sites = num_sites;
  options.num_epochs = train_epochs + eval_epochs;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.0;
  options.param2 = 0.8;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, train_epochs);
  w.eval = *trace->Slice(train_epochs, train_epochs + eval_epochs);
  return w;
}

int64_t PickThreshold(const Workload& w, double overflow_fraction) {
  auto t = ThresholdForOverflowFraction(w.eval, {}, overflow_fraction);
  EXPECT_TRUE(t.ok());
  return *t;
}

/// Runs the spec once per engine and asserts (a) each engine is
/// bit-identical to the lockstep reference and (b) the two engines'
/// runtime reports agree with each other on detections, per-type message
/// counts, and channel reliability stats.
void ExpectEnginesAgree(const Workload& w, ConformanceSpec spec) {
  spec.engine = SiteEngineKind::kMultiplexed;
  auto multiplexed = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(multiplexed.ok()) << multiplexed.status().message();
  EXPECT_TRUE(multiplexed->identical)
      << "multiplexed: " << multiplexed->mismatch;

  spec.engine = SiteEngineKind::kActorPerSite;
  auto actor = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(actor.ok()) << actor.status().message();
  EXPECT_TRUE(actor->identical) << "actor: " << actor->mismatch;

  // Direct engine-vs-engine diff (both matching lockstep implies this, but
  // a direct diff localizes a failure to the engines instead of the ref).
  ASSERT_EQ(multiplexed->runtime.detections.size(),
            actor->runtime.detections.size());
  for (size_t t = 0; t < actor->runtime.detections.size(); ++t) {
    EXPECT_TRUE(multiplexed->runtime.detections[t] ==
                actor->runtime.detections[t])
        << "detections diverge at epoch " << t;
  }
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    EXPECT_EQ(multiplexed->runtime.messages.of(type),
              actor->runtime.messages.of(type))
        << "message count diverges for " << MessageTypeName(type);
  }
  EXPECT_EQ(multiplexed->runtime.reliability.ToJson(),
            actor->runtime.reliability.ToJson());
  EXPECT_EQ(multiplexed->runtime.total_updates, actor->runtime.total_updates);
}

TEST(SiteEngineConformanceTest, EnginesAgreeAcrossShardCounts) {
  Workload w = MakeWorkload(211, /*num_sites=*/6);
  FptasSolver solver(0.05);
  for (int shards : {1, 2, 4}) {
    ConformanceSpec spec;
    spec.protocol = RuntimeProtocol::kLocalThreshold;
    spec.solver = &solver;
    spec.global_threshold = PickThreshold(w, 0.02);
    spec.num_workers = 2;
    spec.num_shards = shards;
    ExpectEnginesAgree(w, spec);
  }
}

TEST(SiteEngineConformanceTest, EnginesAgreeUnderChannelFaults) {
  // Loss, duplication, delay, and ack retries: the channel RNG draws must
  // land identically whichever engine produced the reports, because the
  // root replays them in ascending site order regardless of transport
  // batching.
  Workload w = MakeWorkload(223, /*num_sites=*/5);
  FptasSolver solver(0.1);
  for (int shards : {1, 2}) {
    ConformanceSpec spec;
    spec.protocol = RuntimeProtocol::kLocalThreshold;
    spec.solver = &solver;
    spec.global_threshold = PickThreshold(w, 0.02);
    spec.num_workers = 2;
    spec.num_shards = shards;
    spec.faults.loss = 0.1;
    spec.faults.duplicate = 0.05;
    spec.faults.delay = 0.1;
    spec.faults.max_delay_epochs = 2;
    spec.faults.retry.enable_acks = true;
    spec.faults.retry.max_attempts = 3;
    spec.faults.seed = 0xbeefULL;
    ExpectEnginesAgree(w, spec);
  }
}

TEST(SiteEngineConformanceTest, EnginesAgreePollingProtocol) {
  Workload w = MakeWorkload(227);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kPolling;
  spec.poll_period = 3;
  spec.global_threshold = PickThreshold(w, 0.05);
  spec.num_workers = 2;
  ExpectEnginesAgree(w, spec);
}

TEST(SiteEngineConformanceTest, EnginesAgreeOverSocketTransport) {
  // The coalesced kEnvelopeBatch wire path: a worker process's engine
  // drains and sends through real loopback TCP frames and must still be
  // indistinguishable from the actor baseline and the lockstep reference.
  Workload w = MakeWorkload(229, /*num_sites=*/4, /*train_epochs=*/300,
                            /*eval_epochs=*/300);
  FptasSolver solver(0.05);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 2;
  spec.num_shards = 2;
  spec.transport = TransportKind::kSocket;
  ExpectEnginesAgree(w, spec);
}

TEST(SiteEngineConformanceTest, EnginesAgreeOverSocketUnderLoss) {
  Workload w = MakeWorkload(233, /*num_sites=*/5, /*train_epochs=*/300,
                            /*eval_epochs=*/300);
  FptasSolver solver(0.1);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 3;
  spec.transport = TransportKind::kSocket;
  spec.faults.loss = 0.1;
  spec.faults.retry.enable_acks = true;
  spec.faults.retry.max_attempts = 3;
  spec.faults.seed = 0xabcULL;
  ExpectEnginesAgree(w, spec);
}

// Free-running mode claims no bit-identity, but both engines must drain
// the identical workload: every site processes every update exactly once.
TEST(SiteEngineFreeTest, BothEnginesDrainFullWorkload) {
  for (SiteEngineKind engine :
       {SiteEngineKind::kMultiplexed, SiteEngineKind::kActorPerSite}) {
    RuntimeOptions options;
    options.virtual_time = false;
    options.engine = engine;
    options.num_workers = 2;
    options.seed = 9;
    options.synthetic_max = 1000;
    options.global_threshold = 6 * 1000;
    options.thresholds.assign(6, 900);  // Alarm-heavy.
    options.domain_max.assign(6, 1000);
    auto result = RunSyntheticRuntime(6, 400, options);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->total_updates, 6 * 400);
    ASSERT_EQ(result->site_updates.size(), 6u);
    for (int64_t u : result->site_updates) {
      EXPECT_EQ(u, 400);
    }
    EXPECT_GT(result->total_alarms, 0);
  }
}

// Identical synthetic value streams regardless of engine: per-site RNG
// streams are keyed by (seed, site), never by slot or processing order.
TEST(SiteEngineFreeTest, CapturedUpdateStreamsMatchActorBaseline) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.num_workers = 2;
  options.seed = 77;
  options.synthetic_max = 5000;
  options.global_threshold = 5 * 5000;
  options.thresholds.assign(5, 4500);
  options.domain_max.assign(5, 5000);
  options.capture_updates = true;

  options.engine = SiteEngineKind::kMultiplexed;
  auto multiplexed = RunSyntheticRuntime(5, 64, options);
  ASSERT_TRUE(multiplexed.ok()) << multiplexed.status().message();

  options.engine = SiteEngineKind::kActorPerSite;
  auto actor = RunSyntheticRuntime(5, 64, options);
  ASSERT_TRUE(actor.ok()) << actor.status().message();

  ASSERT_EQ(multiplexed->captured_updates.size(),
            actor->captured_updates.size());
  for (size_t s = 0; s < actor->captured_updates.size(); ++s) {
    EXPECT_EQ(multiplexed->captured_updates[s], actor->captured_updates[s])
        << "value stream diverges for site " << s;
  }
}

// The shutdown-ordering stress (satellite of the million-site PR): a
// free-running run at 10^5 sites multiplexed over a handful of workers and
// a sharded coordinator tree must terminate — kShutdown fan-out lands in
// bounded inboxes while engines are still producing, so any blocking send
// in the wrong place deadlocks here — and account for every update.
TEST(SiteEngineScaleTest, HundredThousandSitesShutdownCleanly) {
  constexpr int kSites = 100'000;
  constexpr int64_t kUpdates = 20;
  RuntimeOptions options;
  options.virtual_time = false;
  options.num_workers = 4;
  options.num_shards = 2;
  options.seed = 5;
  options.synthetic_max = 1000;
  options.global_threshold = static_cast<int64_t>(kSites) * 1000;
  options.thresholds.assign(kSites, 900);  // ~10% breach: alarm pressure.
  options.domain_max.assign(kSites, 1000);
  auto result = RunSyntheticRuntime(kSites, kUpdates, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->total_updates, static_cast<int64_t>(kSites) * kUpdates);
  ASSERT_EQ(result->site_updates.size(), static_cast<size_t>(kSites));
  for (int64_t u : result->site_updates) {
    ASSERT_EQ(u, kUpdates);
  }
}

// The actor engine's implicit thread-per-site default at 100k sites would
// ask the OS for 100k threads and abort inside the std::thread
// constructor; it must be refused with a clear error before any spawn.
TEST(SiteEngineScaleTest, ActorThreadPerSiteAtScaleIsRejectedCleanly) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.engine = SiteEngineKind::kActorPerSite;
  options.num_workers = 0;  // Resolves to one thread per site.
  auto result = RunSyntheticRuntime(100'000, 1, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("worker threads"),
            std::string::npos)
      << result.status().message();
}

// Engine plumbing unit checks: dense slot mapping and threshold routing.
TEST(SiteEngineTest, SlotMappingAndThresholdRouting) {
  SiteEngine::Config cfg;
  cfg.worker = 1;
  cfg.num_workers = 3;
  cfg.num_sites = 8;  // Worker 1 owns sites 1, 4, 7 -> slots 0, 1, 2.
  cfg.thresholds = {100, 200, 300};
  cfg.synthetic_updates = 1;
  SiteEngine engine(std::move(cfg));
  EXPECT_EQ(engine.num_slots(), 3);
  EXPECT_EQ(engine.SiteOf(0), 1);
  EXPECT_EQ(engine.SiteOf(1), 4);
  EXPECT_EQ(engine.SiteOf(2), 7);
  EXPECT_TRUE(engine.ApplyThresholdUpdate(4, 250));
  EXPECT_FALSE(engine.ApplyThresholdUpdate(3, 250));  // Owned by worker 0.
  EXPECT_FALSE(engine.ApplyThresholdUpdate(-1, 250));
  EXPECT_FALSE(engine.ApplyThresholdUpdate(8, 250));  // Out of fabric.
}

}  // namespace
}  // namespace dcv
