// Focused tests for LocalThresholdScheme options added on top of the basic
// behavior covered in sim_schemes_test.cc: histogram flavor, rebuild
// window, and change-detection plumbing.

#include "sim/local_scheme.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

struct Workload {
  Trace training{0};
  Trace eval{0};
  int64_t threshold = 0;
};

Workload MakeWorkload(uint64_t seed) {
  SyntheticTraceOptions options;
  options.num_sites = 4;
  options.num_epochs = 1600;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.5;
  options.param2 = 0.7;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, 800);
  w.eval = *trace->Slice(800, 1600);
  auto threshold = ThresholdForOverflowFraction(w.eval, {}, 0.02);
  EXPECT_TRUE(threshold.ok());
  w.threshold = *threshold;
  return w;
}

TEST(LocalSchemeOptionsTest, EquiWidthHistogramsAlsoCover) {
  Workload w = MakeWorkload(11);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.histogram_kind = LocalThresholdScheme::HistogramKind::kEquiWidth;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = w.threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->missed_violations, 0);
  int64_t sum = 0;
  for (int64_t t : scheme.thresholds()) {
    sum += t;
  }
  EXPECT_LE(sum, w.threshold);
}

TEST(LocalSchemeOptionsTest, SchemeNameIncludesSolver) {
  FptasSolver fptas(0.05);
  EqualValueSolver ev;
  LocalThresholdScheme::Options a;
  a.solver = &fptas;
  LocalThresholdScheme::Options b;
  b.solver = &ev;
  EXPECT_EQ(LocalThresholdScheme(a).name(), "local-threshold/fptas");
  EXPECT_EQ(LocalThresholdScheme(b).name(), "local-threshold/equal-value");
}

TEST(LocalSchemeOptionsTest, BucketCountOneStillWorks) {
  // A single-bucket histogram is maximally coarse but must not break
  // covering.
  Workload w = MakeWorkload(12);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.histogram_buckets = 1;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = w.threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->missed_violations, 0);
}

TEST(LocalSchemeOptionsTest, ChangeDetectionRebuildUsesRollingHistory) {
  // Stationary training then a step change: with a small detector window
  // but a long rebuild window, the scheme must recompute and the new
  // thresholds must reflect the post-change scale (sum near the budget,
  // not collapsed onto a biased micro-window).
  Trace training(2);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        training.AppendEpoch({rng.UniformInt(80, 120), rng.UniformInt(80, 120)})
            .ok());
  }
  Trace eval(2);
  for (int i = 0; i < 1500; ++i) {
    // Both sites shift up 3x.
    ASSERT_TRUE(
        eval.AppendEpoch({rng.UniformInt(240, 360), rng.UniformInt(240, 360)})
            .ok());
  }
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.change_detection = true;
  options.change_options.window_size = 100;
  options.change_options.alpha = 1e-4;
  options.change_options.cooldown = 200;
  options.rebuild_window = 600;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = 800;  // Generous post-change.
  auto result = RunSimulation(&scheme, sim, training, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(scheme.num_recomputes(), 1);
  // After recomputation the thresholds should admit typical post-change
  // values (~300 per site).
  EXPECT_GE(scheme.thresholds()[0], 300);
  EXPECT_GE(scheme.thresholds()[1], 300);
  EXPECT_EQ(result->missed_violations, 0);
}

TEST(LocalSchemeOptionsTest, ThresholdUpdateMessagesChargedOnRecompute) {
  Trace training(2);
  Rng rng(10);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(
        training.AppendEpoch({rng.UniformInt(10, 20), rng.UniformInt(10, 20)})
            .ok());
  }
  Trace eval(2);
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(
        eval.AppendEpoch({rng.UniformInt(200, 300), rng.UniformInt(200, 300)})
            .ok());
  }
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.change_detection = true;
  options.change_options.window_size = 100;
  options.change_options.cooldown = 100;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = 10000;
  auto result = RunSimulation(&scheme, sim, training, eval);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(scheme.num_recomputes(), 1);
  EXPECT_EQ(result->messages.of(MessageType::kThresholdUpdate),
            scheme.num_recomputes() * 2);
  EXPECT_EQ(result->messages.of(MessageType::kFilterReport),
            scheme.num_recomputes());
}

TEST(LocalSchemeOptionsTest, PiggybackValuesCertifiesShallowCrossings) {
  // One site slightly exceeds its threshold while everything else is far
  // below: with piggybacked values the coordinator can certify safety
  // without polling.
  Workload w = MakeWorkload(14);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options plain;
  plain.solver = &solver;
  // Reserve 10% headroom below T and let alarms carry values: crossings
  // whose certified bound stays inside the headroom are absorbed silently.
  LocalThresholdScheme::Options piggyback = plain;
  piggyback.piggyback_values = true;
  piggyback.budget_discount = 0.9;

  SimOptions sim;
  sim.global_threshold = w.threshold;
  LocalThresholdScheme plain_scheme(plain);
  LocalThresholdScheme pb_scheme(piggyback);
  auto a = RunSimulation(&plain_scheme, sim, w.training, w.eval);
  auto b = RunSimulation(&pb_scheme, sim, w.training, w.eval);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both guarantee detection.
  EXPECT_EQ(a->missed_violations, 0);
  EXPECT_EQ(b->missed_violations, 0);
  EXPECT_EQ(b->detected_violations, b->true_violations);
  // The discounted thresholds alarm more often but poll less.
  EXPECT_LT(b->polled_epochs, a->polled_epochs);
}

TEST(LocalSchemeOptionsTest, TrackingModeNeverMissesViolations) {
  Workload w = MakeWorkload(16);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.global_check = LocalThresholdScheme::GlobalCheck::kTrack;
  options.tracking_precision = 0.02;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = w.threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->true_violations, 0);
  // The certified bound can only over-report, never miss.
  EXPECT_EQ(result->missed_violations, 0);
  // Tracking never issues full polls.
  EXPECT_EQ(result->messages.of(MessageType::kPollRequest), 0);
  EXPECT_EQ(result->polled_epochs, 0);
}

TEST(LocalSchemeOptionsTest, TrackingIsCheaperOnSmoothAlarmEpisodes) {
  // A site sits persistently above its threshold with slowly-drifting
  // values: polling pays 2n per epoch; tracking pays only on filter
  // breaches.
  Trace training(3);
  Rng rng(17);
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(training
                    .AppendEpoch({rng.UniformInt(90, 110),
                                  rng.UniformInt(90, 110),
                                  rng.UniformInt(90, 110)})
                    .ok());
  }
  Trace eval(3);
  for (int i = 0; i < 800; ++i) {
    // Site 0 runs hot but stable; the global sum stays below T.
    ASSERT_TRUE(eval.AppendEpoch(
                        {400 + rng.UniformInt(0, 3), rng.UniformInt(90, 110),
                         rng.UniformInt(90, 110)})
                    .ok());
  }
  SimOptions sim;
  sim.global_threshold = 1000;

  FptasSolver solver(0.05);
  LocalThresholdScheme::Options poll_options;
  poll_options.solver = &solver;
  // Keep the declared domains close to the training range so the hot site
  // actually sits above its threshold (otherwise slack redistribution
  // raises the thresholds past it and neither scheme sends anything).
  poll_options.domain_headroom = 1.5;
  LocalThresholdScheme poll_scheme(poll_options);
  auto poll_result = RunSimulation(&poll_scheme, sim, training, eval);
  ASSERT_TRUE(poll_result.ok());

  LocalThresholdScheme::Options track_options = poll_options;
  track_options.global_check = LocalThresholdScheme::GlobalCheck::kTrack;
  track_options.tracking_precision = 0.05;
  LocalThresholdScheme track_scheme(track_options);
  auto track_result = RunSimulation(&track_scheme, sim, training, eval);
  ASSERT_TRUE(track_result.ok());

  EXPECT_EQ(poll_result->missed_violations, 0);
  EXPECT_EQ(track_result->missed_violations, 0);
  // The hot site alarms every epoch under polling.
  EXPECT_GT(poll_result->polled_epochs, 700);
  EXPECT_LT(track_result->messages.total(),
            poll_result->messages.total() / 5);
}

TEST(LocalSchemeOptionsTest, TrackingValidation) {
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.tracking_precision = 0.0;
  LocalThresholdScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(LocalSchemeOptionsTest, WeightedConstraintCoversEndToEnd) {
  // Global constraint 3*X0 + X1 + 2*X2 + X3 <= T: thresholds must respect
  // the weights and detection must stay complete.
  Workload w = MakeWorkload(15);
  std::vector<int64_t> weights{3, 1, 2, 1};
  auto threshold = ThresholdForOverflowFraction(w.eval, weights, 0.02);
  ASSERT_TRUE(threshold.ok());
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = *threshold;
  sim.weights = weights;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->true_violations, 0);
  EXPECT_EQ(result->missed_violations, 0);
  int64_t weighted_sum = 0;
  for (size_t i = 0; i < scheme.thresholds().size(); ++i) {
    weighted_sum += weights[i] * scheme.thresholds()[i];
  }
  EXPECT_LE(weighted_sum, *threshold);
}

TEST(LocalSchemeOptionsTest, BudgetDiscountValidation) {
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.budget_discount = 0.0;
  LocalThresholdScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(LocalSchemeOptionsTest, PiggybackPollsExactlyWhenBoundInconclusive) {
  // Deterministic micro-scenario: thresholds land at (2.5 -> redistributed)
  // known values; verify the certify-vs-poll decision epoch by epoch.
  Trace training(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(training.AppendEpoch({10, 10}).ok());
  }
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.piggyback_values = true;
  LocalThresholdScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 2;
  ctx.weights = {1, 1};
  ctx.global_threshold = 30;
  ctx.training = &training;
  MessageCounter counter;
  ctx.counter = &counter;
  ASSERT_TRUE(scheme.Initialize(ctx).ok());
  int64_t t0 = scheme.thresholds()[0];
  int64_t t1 = scheme.thresholds()[1];
  ASSERT_LE(t0 + t1, 30);

  // Shallow crossing: site 0 at t0 + 1 while site 1 is low. The bound is
  // (t0 + 1) + t1 <= 31; whether it polls depends on the slack, so pick a
  // crossing that keeps the bound within T.
  int64_t spare = 30 - (t0 + t1);
  if (spare >= 1) {
    auto r = scheme.OnEpoch({t0 + 1, 0});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->num_alarms, 1);
    EXPECT_FALSE(r->polled);  // Certified without polling.
  }
  // Deep crossing: bound exceeds T, must poll.
  auto r2 = scheme.OnEpoch({t0 + spare + 1, 0});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->polled);
  EXPECT_FALSE(r2->violation_reported);  // Actual sum is below T.
  // Actual violation: must poll and report.
  auto r3 = scheme.OnEpoch({31, 5});
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->polled);
  EXPECT_TRUE(r3->violation_reported);
}

TEST(LocalSchemeOptionsTest, NoChangeDetectionMeansNoRecomputes) {
  Workload w = MakeWorkload(13);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  options.change_detection = false;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = w.threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(scheme.num_recomputes(), 0);
  EXPECT_EQ(result->messages.of(MessageType::kThresholdUpdate), 0);
}

}  // namespace
}  // namespace dcv
