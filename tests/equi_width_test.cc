#include "histogram/equi_width.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "histogram/empirical_cdf.h"

namespace dcv {
namespace {

TEST(EquiWidthTest, CreateValidation) {
  EXPECT_FALSE(EquiWidthHistogram::Create(10, 0).ok());
  EXPECT_FALSE(EquiWidthHistogram::Create(-1, 4).ok());
  EXPECT_TRUE(EquiWidthHistogram::Create(10, 4).ok());
}

TEST(EquiWidthTest, ClampsBucketCountToDomain) {
  auto h = EquiWidthHistogram::Create(3, 100);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 4);  // Domain {0,1,2,3} has 4 values.
}

TEST(EquiWidthTest, SingleBucketInterpolates) {
  auto h = EquiWidthHistogram::Create(9, 1);
  ASSERT_TRUE(h.ok());
  for (int i = 0; i < 10; ++i) {
    h->Add(i);
  }
  EXPECT_DOUBLE_EQ(h->total_weight(), 10.0);
  // Uniform-within-bucket: F(4) = 10 * 5/10 = 5.
  EXPECT_DOUBLE_EQ(h->CumulativeAt(4), 5.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(9), 10.0);
}

TEST(EquiWidthTest, ExactWhenBucketsEqualDomain) {
  auto h = EquiWidthHistogram::Create(4, 5);
  ASSERT_TRUE(h.ok());
  std::vector<int64_t> data{0, 1, 1, 3, 4, 4, 4};
  for (int64_t v : data) {
    h->Add(v);
  }
  EmpiricalCdf exact(data, 4);
  for (int64_t v = 0; v <= 4; ++v) {
    EXPECT_DOUBLE_EQ(h->CumulativeAt(v), exact.CumulativeAt(v)) << "v=" << v;
  }
}

TEST(EquiWidthTest, CdfIsMonotone) {
  auto h = EquiWidthHistogram::Create(1000, 16);
  ASSERT_TRUE(h.ok());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    h->Add(rng.UniformInt(0, 1000));
  }
  double prev = -1;
  for (int64_t v = 0; v <= 1000; v += 7) {
    double c = h->CumulativeAt(v);
    EXPECT_GE(c, prev - 1e-9);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h->CumulativeAt(1000), 2000.0);
}

TEST(EquiWidthTest, ApproximatesEmpiricalCdf) {
  auto h = EquiWidthHistogram::Create(999, 50);
  ASSERT_TRUE(h.ok());
  Rng rng(4);
  std::vector<int64_t> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(rng.UniformInt(0, 999));
  }
  for (int64_t v : data) {
    h->Add(v);
  }
  EmpiricalCdf exact(data, 999);
  for (int64_t v = 0; v <= 999; v += 37) {
    // Uniform data: interpolation error bounded by one bucket's mass.
    EXPECT_NEAR(h->CumulativeAt(v), exact.CumulativeAt(v), 5000.0 / 50.0);
  }
}

TEST(EquiWidthTest, WeightedAdds) {
  auto h = EquiWidthHistogram::Create(9, 10);
  ASSERT_TRUE(h.ok());
  h->AddWeighted(3, 2.5);
  h->AddWeighted(7, 0.5);
  EXPECT_DOUBLE_EQ(h->total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(3), 2.5);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(6), 2.5);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(7), 3.0);
}

TEST(EquiWidthTest, AddClampsOutOfDomainValues) {
  auto h = EquiWidthHistogram::Create(9, 10);
  ASSERT_TRUE(h.ok());
  h->Add(-5);
  h->Add(100);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(0), 1.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(9), 2.0);
}

TEST(EquiWidthTest, MergeCompatibleHistograms) {
  auto a = EquiWidthHistogram::Create(9, 5);
  auto b = EquiWidthHistogram::Create(9, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  a->Add(1);
  b->Add(8);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_DOUBLE_EQ(a->total_weight(), 2.0);
  EXPECT_DOUBLE_EQ(a->CumulativeAt(9), 2.0);
}

TEST(EquiWidthTest, MergeRejectsShapeMismatch) {
  auto a = EquiWidthHistogram::Create(9, 5);
  auto b = EquiWidthHistogram::Create(9, 4);
  auto c = EquiWidthHistogram::Create(19, 5);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(a->Merge(*b).ok());
  EXPECT_FALSE(a->Merge(*c).ok());
}

TEST(EquiWidthTest, InverseLookupViaBaseClass) {
  auto h = EquiWidthHistogram::Create(99, 10);
  ASSERT_TRUE(h.ok());
  for (int i = 0; i < 100; ++i) {
    h->Add(i);
  }
  int64_t v = h->MinValueWithCumAtLeast(50.0);
  EXPECT_GE(h->CumulativeAt(v), 50.0);
  EXPECT_LT(h->CumulativeAt(v - 1), 50.0);
}

}  // namespace
}  // namespace dcv
