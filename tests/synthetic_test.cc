#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include "trace/stats.h"

namespace dcv {
namespace {

TEST(SyntheticTest, DimensionsAndDeterminism) {
  SyntheticTraceOptions options;
  options.num_sites = 3;
  options.num_epochs = 100;
  options.seed = 5;
  auto a = GenerateSyntheticTrace(options);
  auto b = GenerateSyntheticTrace(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_sites(), 3);
  EXPECT_EQ(a->num_epochs(), 100);
  for (int64_t t = 0; t < 100; t += 11) {
    EXPECT_EQ(a->epoch(t), b->epoch(t));
  }
}

TEST(SyntheticTest, Validation) {
  SyntheticTraceOptions options;
  options.num_sites = 0;
  EXPECT_FALSE(GenerateSyntheticTrace(options).ok());
  options = SyntheticTraceOptions{};
  options.domain_max = 0;
  EXPECT_FALSE(GenerateSyntheticTrace(options).ok());
  options = SyntheticTraceOptions{};
  options.correlation = 1.0;
  EXPECT_FALSE(GenerateSyntheticTrace(options).ok());
}

TEST(SyntheticTest, UniformMarginalSpansDomain) {
  SyntheticTraceOptions options;
  options.marginal = Marginal::kUniform;
  options.domain_max = 100;
  options.num_sites = 1;
  options.num_epochs = 5000;
  options.seed = 6;
  auto t = GenerateSyntheticTrace(options);
  ASSERT_TRUE(t.ok());
  SiteStats s = ComputeSiteStats(*t, 0);
  EXPECT_NEAR(s.mean, 50.0, 3.0);
  EXPECT_LE(s.max, 100);
  EXPECT_GE(s.min, 0);
}

TEST(SyntheticTest, ZipfIsSkewed) {
  SyntheticTraceOptions options;
  options.marginal = Marginal::kZipf;
  options.domain_max = 1000;
  options.param1 = 1.2;
  options.num_sites = 1;
  options.num_epochs = 5000;
  options.seed = 7;
  auto t = GenerateSyntheticTrace(options);
  ASSERT_TRUE(t.ok());
  SiteStats s = ComputeSiteStats(*t, 0);
  // Zipf mass concentrates at small ranks.
  EXPECT_LT(s.p50, 10.0);
  EXPECT_GT(s.max, 100);
}

TEST(SyntheticTest, LogNormalHeavyTail) {
  SyntheticTraceOptions options;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 5.0;
  options.param2 = 1.5;
  options.domain_max = 10'000'000;
  options.num_sites = 1;
  options.num_epochs = 8000;
  options.seed = 8;
  auto t = GenerateSyntheticTrace(options);
  ASSERT_TRUE(t.ok());
  SiteStats s = ComputeSiteStats(*t, 0);
  EXPECT_GT(s.p99 / std::max(1.0, s.p50), 10.0);
}

TEST(SyntheticTest, HeterogeneousScalesDiffer) {
  SyntheticTraceOptions options;
  options.marginal = Marginal::kUniform;
  options.domain_max = 10000;
  options.num_sites = 8;
  options.num_epochs = 2000;
  options.heterogeneous = true;
  options.heterogeneity_sigma = 1.2;
  options.seed = 9;
  auto t = GenerateSyntheticTrace(options);
  ASSERT_TRUE(t.ok());
  double min_mean = 1e300;
  double max_mean = 0;
  for (int i = 0; i < 8; ++i) {
    double mean = ComputeSiteStats(*t, i).mean;
    min_mean = std::min(min_mean, mean);
    max_mean = std::max(max_mean, mean);
  }
  EXPECT_GT(max_mean / min_mean, 2.0);
}

TEST(SyntheticTest, CorrelatedEpochsShareDraws) {
  SyntheticTraceOptions options;
  options.marginal = Marginal::kUniform;
  options.domain_max = 1'000'000;
  options.num_sites = 4;
  options.num_epochs = 2000;
  options.correlation = 0.9;
  options.seed = 10;
  auto t = GenerateSyntheticTrace(options);
  ASSERT_TRUE(t.ok());
  // With 90% shared epochs, most epochs have all sites equal.
  int64_t equal_epochs = 0;
  for (int64_t e = 0; e < t->num_epochs(); ++e) {
    const auto& row = t->epoch(e);
    bool all_equal = true;
    for (int i = 1; i < 4; ++i) {
      all_equal = all_equal && row[static_cast<size_t>(i)] == row[0];
    }
    equal_epochs += all_equal ? 1 : 0;
  }
  EXPECT_GT(equal_epochs, 1600);
  EXPECT_LT(equal_epochs, 2000);
}

}  // namespace
}  // namespace dcv
