// Cross-process telemetry merge: a 2-worker socket run's coordinator must
// produce the same metrics document a single-process thread-transport run
// does — counters summed across worker registries, histogram totals
// preserved — with only the runtime/socket/* namespace (which has no
// in-process analogue) allowed to differ. Virtual-time mode makes the
// underlying work bit-identical across transports, so any counter drift is
// a merge bug, not nondeterminism. The chaos variant severs one worker's
// TCP link mid-run: reconnect replay must not double-count anything.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "runtime/chaos.h"
#include "runtime/runtime.h"
#include "runtime/site_worker.h"

namespace dcv {
namespace {

constexpr int kSites = 4;
constexpr int kWorkers = 2;
constexpr int64_t kUpdates = 600;  // Virtual epochs; keep the barrier cheap.
constexpr int64_t kSyntheticMax = 1'000'000;
constexpr uint64_t kSeed = 42;

RuntimeOptions BaseOptions() {
  RuntimeOptions options;
  options.virtual_time = true;
  options.num_workers = kWorkers;
  options.seed = kSeed;
  options.synthetic_max = kSyntheticMax;
  options.global_threshold = static_cast<int64_t>(kSites) * kSyntheticMax;
  // ~2% local breach rate: enough alarms and poll rounds for the counters
  // to be nontrivial.
  options.thresholds.assign(kSites, kSyntheticMax - kSyntheticMax / 50);
  options.domain_max.assign(kSites, kSyntheticMax);
  return options;
}

obs::MetricsSnapshot RunThreadTransport() {
  RuntimeOptions options = BaseOptions();
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  auto result = RunSyntheticRuntime(kSites, kUpdates, options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.ok() ? result->metrics : obs::MetricsSnapshot{};
}

obs::MetricsSnapshot RunSocketTransport(ChaosKind chaos) {
  RuntimeOptions options = BaseOptions();
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  options.transport = TransportKind::kSocket;
  options.listen_port = 0;
  options.chaos.kind = chaos;
  options.chaos.seed = 13;
  std::vector<std::thread> workers;
  options.on_listening = [&workers, chaos](int port) {
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([w, port, chaos] {
        // Each worker process-equivalent gets its own registry + recorder:
        // what the kTelemetry pushes serialize and the coordinator merges.
        obs::MetricsRegistry reg;
        obs::TraceRecorder rec(/*capacity=*/1 << 14);
        SiteWorkerOptions wo;
        wo.port = port;
        wo.worker = w;
        wo.num_workers = kWorkers;
        wo.num_sites = kSites;
        wo.synthetic_updates = kUpdates;
        wo.seed = kSeed;
        wo.synthetic_max = kSyntheticMax;
        wo.metrics = &reg;
        wo.recorder = &rec;
        wo.socket.allow_reconnect = chaos == ChaosKind::kKillWorker;
        auto report = RunSiteWorker(nullptr, wo);
        EXPECT_TRUE(report.ok()) << report.status().message();
      });
    }
  };
  auto result = RunSyntheticRuntime(kSites, kUpdates, options);
  for (std::thread& t : workers) {
    t.join();
  }
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.ok() ? result->metrics : obs::MetricsSnapshot{};
}

bool IsSocketCounter(const std::string& name) {
  return name.rfind("runtime/socket/", 0) == 0;
}

void ExpectMergedMatchesThread(const obs::MetricsSnapshot& thread_doc,
                               const obs::MetricsSnapshot& merged) {
  // Every thread-run counter must appear in the merged document with the
  // same sum: site-side counters arrive via worker telemetry, coordinator
  // counters from its own registry.
  for (const auto& [name, value] : thread_doc.counters) {
    auto it = merged.counters.find(name);
    ASSERT_NE(it, merged.counters.end()) << "merged doc missing " << name;
    EXPECT_EQ(it->second, value) << name;
  }
  // And the merge invents nothing beyond the wire-only namespace.
  for (const auto& [name, value] : merged.counters) {
    if (IsSocketCounter(name)) {
      continue;
    }
    EXPECT_EQ(thread_doc.counters.count(name), 1u)
        << "unexpected merged counter " << name << "=" << value;
  }
  // Histogram totals are transport-invariant in virtual mode (one epoch_us
  // sample per epoch, one poll_round_us per round); the latency values
  // inside the buckets of course differ.
  for (const auto& [name, h] : thread_doc.histograms) {
    auto it = merged.histograms.find(name);
    ASSERT_NE(it, merged.histograms.end()) << "merged doc missing " << name;
    EXPECT_EQ(it->second.count, h.count) << name;
  }
}

TEST(TelemetryMergeTest, SocketMergeEqualsThreadRegistry) {
  obs::MetricsSnapshot thread_doc = RunThreadTransport();
  ASSERT_FALSE(thread_doc.empty());
  obs::MetricsSnapshot merged = RunSocketTransport(ChaosKind::kNone);
  ASSERT_FALSE(merged.empty());
  ExpectMergedMatchesThread(thread_doc, merged);
  // The wire namespace exists and actually counted traffic.
  auto frames = merged.counters.find("runtime/socket/frames_tx");
  ASSERT_NE(frames, merged.counters.end());
  EXPECT_GT(frames->second, 0);
}

TEST(TelemetryMergeTest, MergeSurvivesWorkerLinkChaos) {
  obs::MetricsSnapshot thread_doc = RunThreadTransport();
  ASSERT_FALSE(thread_doc.empty());
  obs::MetricsSnapshot merged = RunSocketTransport(ChaosKind::kKillWorker);
  ASSERT_FALSE(merged.empty());
  // The severed link reconnects and replays; cumulative latest-wins
  // telemetry keeps every non-wire counter exactly equal regardless.
  ExpectMergedMatchesThread(thread_doc, merged);
  auto reconnects = merged.counters.find("runtime/socket/reconnects");
  ASSERT_NE(reconnects, merged.counters.end());
  EXPECT_GT(reconnects->second, 0);
}

}  // namespace
}  // namespace dcv
