#include "histogram/empirical_cdf.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

TEST(EmpiricalCdfTest, BasicCounts) {
  EmpiricalCdf cdf({1, 3, 3, 7}, /*domain_max=*/10);
  EXPECT_EQ(cdf.domain_max(), 10);
  EXPECT_DOUBLE_EQ(cdf.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(1), 1.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(3), 3.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(6), 3.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(7), 4.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(10), 4.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(-5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(99), 4.0);
}

TEST(EmpiricalCdfTest, ClampsToDomain) {
  EmpiricalCdf cdf({-2, 100}, /*domain_max=*/10);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(0), 1.0);   // -2 clamped to 0.
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(9), 1.0);
  EXPECT_DOUBLE_EQ(cdf.CumulativeAt(10), 2.0);  // 100 clamped to 10.
}

TEST(EmpiricalCdfTest, ProbabilityAtMost) {
  EmpiricalCdf cdf({0, 1, 2, 3}, 3);
  EXPECT_DOUBLE_EQ(cdf.ProbabilityAtMost(1), 0.5);
  EXPECT_DOUBLE_EQ(cdf.ProbabilityAtMost(3), 1.0);
}

TEST(EmpiricalCdfTest, MinValueWithCumAtLeastMatchesDefinition) {
  EmpiricalCdf cdf({2, 2, 5, 9}, 9);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(0.5), 2);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(1.0), 2);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(2.0), 2);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(2.1), 5);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(3.0), 5);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(4.0), 9);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(4.5), 10);  // Unreachable -> M+1.
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(0.0), 0);
}

TEST(EmpiricalCdfTest, MonotoneCdfProperty) {
  Rng rng(5);
  std::vector<int64_t> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(rng.UniformInt(0, 200));
  }
  EmpiricalCdf cdf(data, 200);
  double prev = -1.0;
  for (int64_t v = 0; v <= 200; ++v) {
    double c = cdf.CumulativeAt(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(prev, 500.0);
}

TEST(EmpiricalCdfTest, InverseConsistentWithForward) {
  Rng rng(6);
  std::vector<int64_t> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(rng.UniformInt(0, 50));
  }
  EmpiricalCdf cdf(data, 50);
  for (double target = 0.5; target < 300; target += 7.3) {
    int64_t v = cdf.MinValueWithCumAtLeast(target);
    ASSERT_LE(v, 50);
    EXPECT_GE(cdf.CumulativeAt(v), target);
    if (v > 0) {
      EXPECT_LT(cdf.CumulativeAt(v - 1), target);
    }
  }
}

TEST(EmpiricalCdfTest, EmptyModel) {
  EmpiricalCdf cdf({}, 10);
  EXPECT_DOUBLE_EQ(cdf.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.ProbabilityAtMost(5), 0.0);
  EXPECT_EQ(cdf.MinValueWithCumAtLeast(1.0), 11);
}

}  // namespace
}  // namespace dcv
