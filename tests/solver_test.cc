#include "threshold/solver.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "histogram/empirical_cdf.h"
#include "threshold/cdf_view.h"

namespace dcv {
namespace {

TEST(CdfViewTest, UnmirroredMatchesModel) {
  EmpiricalCdf model({1, 3, 3, 7}, 10);
  CdfView view(&model, /*mirrored=*/false);
  EXPECT_EQ(view.domain_max(), 10);
  EXPECT_DOUBLE_EQ(view.total(), 4.0);
  for (int64_t t = -1; t <= 11; ++t) {
    EXPECT_DOUBLE_EQ(view.Cum(t), model.CumulativeAt(t));
  }
}

TEST(CdfViewTest, MirroredCountsUpperTail) {
  // Y = 10 - X. G(t) = #{X >= 10 - t}.
  EmpiricalCdf model({1, 3, 3, 7}, 10);
  CdfView view(&model, /*mirrored=*/true);
  EXPECT_DOUBLE_EQ(view.Cum(0), 0.0);   // X >= 10: none.
  EXPECT_DOUBLE_EQ(view.Cum(3), 1.0);   // X >= 7: {7}.
  EXPECT_DOUBLE_EQ(view.Cum(7), 3.0);   // X >= 3: {3,3,7}.
  EXPECT_DOUBLE_EQ(view.Cum(9), 4.0);   // X >= 1: all.
  EXPECT_DOUBLE_EQ(view.Cum(10), 4.0);
  EXPECT_DOUBLE_EQ(view.Cum(-1), 0.0);
}

TEST(CdfViewTest, MirroredCumIsMonotone) {
  EmpiricalCdf model({0, 2, 2, 5, 9, 9, 9, 10}, 10);
  CdfView view(&model, true);
  double prev = -1;
  for (int64_t t = 0; t <= 10; ++t) {
    double c = view.Cum(t);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(CdfViewTest, MirroredInverseConsistent) {
  EmpiricalCdf model({0, 2, 2, 5, 9, 9, 9, 10}, 10);
  CdfView view(&model, true);
  for (double target = 0.5; target <= 8.0; target += 0.7) {
    int64_t t = view.MinValueWithCumAtLeast(target);
    ASSERT_LE(t, 10);
    EXPECT_GE(view.Cum(t), target);
    if (t > 0) {
      EXPECT_LT(view.Cum(t - 1), target);
    }
  }
  EXPECT_EQ(view.MinValueWithCumAtLeast(9.0), 11);  // More than total.
}

class SolverTypesTest : public testing::Test {
 protected:
  SolverTypesTest() : model_({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 9) {}

  ThresholdProblem MakeProblem(int64_t budget) {
    ThresholdProblem p;
    p.budget = budget;
    p.vars.push_back(ProblemVar{0, 1, CdfView(&model_, false)});
    p.vars.push_back(ProblemVar{1, 2, CdfView(&model_, false)});
    return p;
  }

  EmpiricalCdf model_;
};

TEST_F(SolverTypesTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(ValidateProblem(MakeProblem(10)).ok());
}

TEST_F(SolverTypesTest, ValidateRejectsNegativeBudget) {
  EXPECT_FALSE(ValidateProblem(MakeProblem(-1)).ok());
}

TEST_F(SolverTypesTest, ValidateRejectsNonPositiveWeight) {
  ThresholdProblem p = MakeProblem(10);
  p.vars[0].weight = 0;
  EXPECT_FALSE(ValidateProblem(p).ok());
}

TEST_F(SolverTypesTest, ValidateRejectsEmptyModel) {
  EmpiricalCdf empty({}, 9);
  ThresholdProblem p = MakeProblem(10);
  p.vars[0] = ProblemVar{0, 1, CdfView(&empty, false)};
  EXPECT_EQ(ValidateProblem(p).code(), StatusCode::kFailedPrecondition);
}

TEST_F(SolverTypesTest, LogProbabilitySumsPerVarLogs) {
  ThresholdProblem p = MakeProblem(10);
  // P(X <= 4) = 0.5 each.
  double lp = LogProbability(p, {4, 4});
  EXPECT_NEAR(lp, 2 * std::log(0.5), 1e-12);
  EXPECT_EQ(LogProbability(p, {-1, 4}), kNegInf);
}

TEST_F(SolverTypesTest, SatisfiesBudgetChecksWeightsAndDomain) {
  ThresholdProblem p = MakeProblem(10);
  EXPECT_TRUE(SatisfiesBudget(p, {2, 4}));    // 2 + 8 = 10 <= 10.
  EXPECT_FALSE(SatisfiesBudget(p, {3, 4}));   // 11 > 10.
  EXPECT_FALSE(SatisfiesBudget(p, {-1, 0}));  // Below domain.
  EXPECT_FALSE(SatisfiesBudget(p, {10, 0}));  // Above domain max 9.
  EXPECT_FALSE(SatisfiesBudget(p, {2}));      // Wrong arity.
}

TEST_F(SolverTypesTest, DegenerateFallbackRespectsBudget) {
  ThresholdProblem p = MakeProblem(7);
  ThresholdSolution s = DegenerateFallback(p);
  EXPECT_TRUE(s.degenerate);
  EXPECT_TRUE(SatisfiesBudget(p, s.thresholds));
  EXPECT_EQ(s.thresholds[0], 3);  // 7 / (2*1).
  EXPECT_EQ(s.thresholds[1], 1);  // 7 / (2*2).
}

TEST(DegenerateFallbackTest, EmptyProblem) {
  ThresholdProblem p;
  ThresholdSolution s = DegenerateFallback(p);
  EXPECT_TRUE(s.thresholds.empty());
}

class RedistributeSlackTest : public SolverTypesTest {};

TEST_F(RedistributeSlackTest, SpendsLeftoverBudget) {
  ThresholdProblem p = MakeProblem(30);  // Weights 1 and 2, domains 9.
  std::vector<int64_t> thresholds{2, 3};  // Uses 2 + 6 = 8; slack 22.
  RedistributeSlack(p, &thresholds);
  // Var 0 absorbs 7 (to its domain max 9), var 1 absorbs the rest.
  EXPECT_EQ(thresholds[0], 9);
  EXPECT_EQ(thresholds[1], 9);
  EXPECT_TRUE(SatisfiesBudget(p, thresholds));
}

TEST_F(RedistributeSlackTest, StopsAtBudget) {
  ThresholdProblem p = MakeProblem(10);
  std::vector<int64_t> thresholds{0, 0};
  RedistributeSlack(p, &thresholds);
  EXPECT_TRUE(SatisfiesBudget(p, thresholds));
  // All budget spent except any un-splittable remainder.
  int64_t used = thresholds[0] + 2 * thresholds[1];
  EXPECT_GE(used, 9);  // Weight-2 var may leave one unit unusable.
}

TEST_F(RedistributeSlackTest, NoSlackIsNoOp) {
  ThresholdProblem p = MakeProblem(8);
  std::vector<int64_t> thresholds{2, 3};  // Exactly 8.
  std::vector<int64_t> before = thresholds;
  RedistributeSlack(p, &thresholds);
  EXPECT_EQ(thresholds, before);
}

TEST_F(RedistributeSlackTest, NeverDecreasesObjective) {
  ThresholdProblem p = MakeProblem(15);
  std::vector<int64_t> thresholds{1, 2};
  double before = LogProbability(p, thresholds);
  RedistributeSlack(p, &thresholds);
  EXPECT_GE(LogProbability(p, thresholds), before);
}

}  // namespace
}  // namespace dcv
