#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dcv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUint64StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(0.5);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(3.0, 2.0), 3.0);
  }
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(23);
  const int n = 50000;
  std::vector<int> counts(11, 0);
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Zipf(10, 1.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
    counts[static_cast<size_t>(v)]++;
  }
  // Rank 1 should be roughly twice as frequent as rank 2 under s=1.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.3);
  EXPECT_GT(counts[10], 0);
}

TEST(RngTest, ZipfExponentZeroIsUniform) {
  Rng rng(29);
  const int n = 50000;
  std::vector<int> counts(6, 0);
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(rng.Zipf(5, 0.0))]++;
  }
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR(counts[static_cast<size_t>(k)] / static_cast<double>(n), 0.2,
                0.02);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(37);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace dcv
