#include "constraints/canonical.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

LinearAtom MakeAtom(std::vector<std::pair<int, int64_t>> terms, CmpOp op,
                    int64_t threshold, int64_t offset = 0) {
  LinearAtom atom;
  for (auto [var, coef] : terms) {
    atom.expr.AddTerm(var, coef);
  }
  atom.expr.AddConstant(offset);
  atom.op = op;
  atom.threshold = threshold;
  return atom;
}

TEST(CanonicalTest, PositiveLeAtomIsUnchanged) {
  auto ineq = Canonicalize(MakeAtom({{0, 2}, {1, 3}}, CmpOp::kLe, 10),
                           {100, 100});
  ASSERT_TRUE(ineq.ok());
  ASSERT_EQ(ineq->terms.size(), 2u);
  EXPECT_EQ(ineq->terms[0].coef, 2);
  EXPECT_FALSE(ineq->terms[0].mirrored);
  EXPECT_EQ(ineq->bound, 10);
}

TEST(CanonicalTest, OffsetFoldsIntoBound) {
  auto ineq =
      Canonicalize(MakeAtom({{0, 1}}, CmpOp::kLe, 10, /*offset=*/3), {100});
  ASSERT_TRUE(ineq.ok());
  EXPECT_EQ(ineq->bound, 7);
}

TEST(CanonicalTest, GeAtomMirrorsAllTerms) {
  // x0 + x1 >= 5 over M = 10 each: (10-x0) + (10-x1) <= 15.
  auto ineq = Canonicalize(MakeAtom({{0, 1}, {1, 1}}, CmpOp::kGe, 5),
                           {10, 10});
  ASSERT_TRUE(ineq.ok());
  ASSERT_EQ(ineq->terms.size(), 2u);
  EXPECT_TRUE(ineq->terms[0].mirrored);
  EXPECT_TRUE(ineq->terms[1].mirrored);
  EXPECT_EQ(ineq->bound, 15);
}

TEST(CanonicalTest, MixedSignsMirrorOnlyNegatives) {
  // 2*x0 - 3*x1 <= 4 over M = (10, 20): 2*x0 + 3*(20 - x1) <= 64.
  auto ineq = Canonicalize(MakeAtom({{0, 2}, {1, -3}}, CmpOp::kLe, 4),
                           {10, 20});
  ASSERT_TRUE(ineq.ok());
  ASSERT_EQ(ineq->terms.size(), 2u);
  EXPECT_FALSE(ineq->terms[0].mirrored);
  EXPECT_EQ(ineq->terms[0].coef, 2);
  EXPECT_TRUE(ineq->terms[1].mirrored);
  EXPECT_EQ(ineq->terms[1].coef, 3);
  EXPECT_EQ(ineq->bound, 64);
}

TEST(CanonicalTest, TrivialChecks) {
  auto true_ineq = Canonicalize(MakeAtom({}, CmpOp::kLe, 5), {});
  ASSERT_TRUE(true_ineq.ok());
  EXPECT_TRUE(true_ineq->IsTriviallyTrue());
  EXPECT_FALSE(true_ineq->IsTriviallyFalse());

  auto false_ineq = Canonicalize(MakeAtom({}, CmpOp::kLe, -5), {});
  ASSERT_TRUE(false_ineq.ok());
  EXPECT_TRUE(false_ineq->IsTriviallyFalse());

  // x0 <= -1 has bound < 0: unsatisfiable for non-negative x0.
  auto neg = Canonicalize(MakeAtom({{0, 1}}, CmpOp::kLe, -1), {10});
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(neg->IsTriviallyFalse());
}

TEST(CanonicalTest, MissingDomainIsError) {
  EXPECT_FALSE(Canonicalize(MakeAtom({{3, 1}}, CmpOp::kLe, 5), {10}).ok());
}

TEST(CanonicalTest, EvaluateMatchesOriginalAtomEverywhere) {
  Rng rng(44);
  const std::vector<int64_t> domain_max{8, 12, 6};
  for (int trial = 0; trial < 200; ++trial) {
    LinearAtom atom = MakeAtom({{0, rng.UniformInt(-4, 4)},
                                {1, rng.UniformInt(-4, 4)},
                                {2, rng.UniformInt(-4, 4)}},
                               rng.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kGe,
                               rng.UniformInt(-30, 60),
                               rng.UniformInt(-5, 5));
    auto ineq = Canonicalize(atom, domain_max);
    ASSERT_TRUE(ineq.ok());
    for (int probe = 0; probe < 50; ++probe) {
      std::vector<int64_t> v{rng.UniformInt(0, 8), rng.UniformInt(0, 12),
                             rng.UniformInt(0, 6)};
      ASSERT_EQ(atom.Evaluate(v), ineq->Evaluate(v, domain_max))
          << atom.ToString() << " vs " << ineq->ToString();
    }
  }
}

TEST(CanonicalTest, ToStringShowsMirrors) {
  auto ineq =
      Canonicalize(MakeAtom({{0, -2}}, CmpOp::kLe, 0), {5});
  ASSERT_TRUE(ineq.ok());
  EXPECT_EQ(ineq->ToString(), "2*(M - x0) <= 10");
}

}  // namespace
}  // namespace dcv
