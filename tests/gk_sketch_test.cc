#include "histogram/gk_sketch.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

// Rank of value v within sorted data (count of elements <= v).
int64_t RankOf(const std::vector<int64_t>& sorted, int64_t v) {
  return std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
}

TEST(GkSketchTest, EmptySketchFails) {
  GkSketch sketch(0.05);
  EXPECT_FALSE(sketch.Quantile(0.5).ok());
  EXPECT_FALSE(sketch.ToEquiDepthHistogram(10, 100).ok());
}

TEST(GkSketchTest, SingleElement) {
  GkSketch sketch(0.1);
  sketch.Insert(7);
  EXPECT_EQ(*sketch.Quantile(0.0), 7);
  EXPECT_EQ(*sketch.Quantile(0.5), 7);
  EXPECT_EQ(*sketch.Quantile(1.0), 7);
}

TEST(GkSketchTest, AllDuplicates) {
  // A constant stream has exactly one answer for every phi; compression
  // must not manufacture any other value or lose the count.
  GkSketch sketch(0.05);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    sketch.Insert(42);
  }
  EXPECT_EQ(sketch.count(), n);
  for (double phi : {0.0, 0.001, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(*sketch.Quantile(phi), 42) << "phi=" << phi;
  }
}

TEST(GkSketchTest, TwoElements) {
  GkSketch sketch(0.1);
  sketch.Insert(10);
  sketch.Insert(20);
  // phi=0 targets rank 1 (the minimum); phi=1 targets rank 2 (the maximum).
  EXPECT_EQ(*sketch.Quantile(0.0), 10);
  EXPECT_EQ(*sketch.Quantile(1.0), 20);
}

TEST(GkSketchTest, OutOfRangePhiIsClamped) {
  GkSketch sketch(0.05);
  for (int i = 1; i <= 100; ++i) {
    sketch.Insert(i);
  }
  EXPECT_EQ(*sketch.Quantile(-0.5), *sketch.Quantile(0.0));
  EXPECT_EQ(*sketch.Quantile(1.5), *sketch.Quantile(1.0));
  EXPECT_EQ(*sketch.Quantile(1.5), 100);
}

TEST(GkSketchTest, ExactOnSmallStreams) {
  GkSketch sketch(0.01);
  for (int i = 1; i <= 20; ++i) {
    sketch.Insert(i);
  }
  // With eps*n well below 1, queries must be exact.
  EXPECT_EQ(*sketch.Quantile(0.5), 10);
  EXPECT_EQ(*sketch.Quantile(1.0), 20);
}

class GkSketchEpsSweep : public testing::TestWithParam<double> {};

TEST_P(GkSketchEpsSweep, RankErrorWithinGuarantee) {
  const double eps = GetParam();
  GkSketch sketch(eps);
  Rng rng(77);
  std::vector<int64_t> data;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int64_t v = static_cast<int64_t>(rng.LogNormal(6.0, 1.2));
    data.push_back(v);
    sketch.Insert(v);
  }
  std::sort(data.begin(), data.end());
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    int64_t q = *sketch.Quantile(phi);
    int64_t rank = RankOf(data, q);
    double target = phi * n;
    EXPECT_NEAR(static_cast<double>(rank), target, 2.0 * eps * n + 1.0)
        << "phi=" << phi << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsValues, GkSketchEpsSweep,
                         testing::Values(0.1, 0.05, 0.02, 0.01));

TEST(GkSketchTest, SpaceIsSublinear) {
  GkSketch sketch(0.05);
  Rng rng(78);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sketch.Insert(rng.UniformInt(0, 1'000'000));
  }
  EXPECT_EQ(sketch.count(), n);
  // O((1/eps) log(eps n)) tuples; generous constant.
  EXPECT_LT(sketch.num_tuples(), 4000u);
}

TEST(GkSketchTest, SortedAndReverseSortedStreams) {
  for (bool reverse : {false, true}) {
    GkSketch sketch(0.05);
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
      sketch.Insert(reverse ? n - i : i);
    }
    int64_t median = *sketch.Quantile(0.5);
    EXPECT_NEAR(static_cast<double>(median), n / 2.0, 2 * 0.05 * n + 1);
  }
}

TEST(GkSketchTest, ToEquiDepthHistogramPreservesMassAndQuantiles) {
  GkSketch sketch(0.01);
  Rng rng(79);
  std::vector<int64_t> data;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.UniformInt(0, 10000);
    data.push_back(v);
    sketch.Insert(v);
  }
  auto hist = sketch.ToEquiDepthHistogram(50, 10000);
  ASSERT_TRUE(hist.ok());
  EXPECT_NEAR(hist->total_weight(), static_cast<double>(n), 1e-6);
  std::sort(data.begin(), data.end());
  // Histogram CDF should be close to the true empirical CDF.
  for (int64_t v = 500; v <= 9500; v += 500) {
    double true_rank = static_cast<double>(RankOf(data, v));
    EXPECT_NEAR(hist->CumulativeAt(v), true_rank, 0.05 * n)
        << "v=" << v;
  }
}

TEST(GkSketchTest, HistogramBoundaryClamping) {
  GkSketch sketch(0.05);
  for (int i = 0; i < 100; ++i) {
    sketch.Insert(1'000'000);  // All above the declared domain.
  }
  auto hist = sketch.ToEquiDepthHistogram(10, 1000);
  ASSERT_TRUE(hist.ok());
  EXPECT_DOUBLE_EQ(hist->CumulativeAt(1000), 100.0);
}

TEST(GkSketchTest, ExtremeQuantilesReturnMinAndMax) {
  GkSketch sketch(0.05);
  Rng rng(80);
  int64_t true_min = std::numeric_limits<int64_t>::max();
  int64_t true_max = std::numeric_limits<int64_t>::min();
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(100, 100000);
    true_min = std::min(true_min, v);
    true_max = std::max(true_max, v);
    sketch.Insert(v);
  }
  // phi=0 must return a value near the minimum (within eps*n ranks), and
  // phi=1 exactly the maximum (GK always keeps the max tuple).
  int64_t q0 = *sketch.Quantile(0.0);
  EXPECT_GE(q0, true_min);
  EXPECT_LE(q0, *sketch.Quantile(0.1));
  EXPECT_EQ(*sketch.Quantile(1.0), true_max);
}

TEST(GkSketchTest, ApproxRankWithinGuarantee) {
  const double eps = 0.02;
  GkSketch sketch(eps);
  Rng rng(81);
  std::vector<int64_t> data;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int64_t v = static_cast<int64_t>(rng.LogNormal(7.0, 1.0));
    data.push_back(v);
    sketch.Insert(v);
  }
  std::sort(data.begin(), data.end());
  for (double frac : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    int64_t v = data[static_cast<size_t>(frac * (n - 1))];
    int64_t approx = sketch.ApproxRank(v);
    int64_t exact = RankOf(data, v);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                2 * eps * n + 1)
        << "value " << v;
  }
}

TEST(GkSketchTest, ApproxRankIsMonotone) {
  GkSketch sketch(0.05);
  Rng rng(82);
  for (int i = 0; i < 3000; ++i) {
    sketch.Insert(rng.UniformInt(0, 10000));
  }
  int64_t prev = -1;
  for (int64_t v = 0; v <= 10000; v += 97) {
    int64_t r = sketch.ApproxRank(v);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_EQ(sketch.ApproxRank(-1), 0);
}

TEST(GkSketchTest, RejectsBadArguments) {
  GkSketch sketch(0.05);
  sketch.Insert(1);
  EXPECT_FALSE(sketch.ToEquiDepthHistogram(0, 100).ok());
}

}  // namespace
}  // namespace dcv
