#include "io/codec.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "io/format.h"

namespace dcv::io {
namespace {

constexpr RowCodec kAllCodecs[] = {RowCodec::kFlat, RowCodec::kDelta,
                                   RowCodec::kZoh};

/// Encodes `columns` with every codec and asserts bit-exact recovery.
void ExpectRoundTrip(const std::vector<std::vector<int64_t>>& columns,
                     int64_t rows) {
  for (RowCodec codec : kAllCodecs) {
    std::string encoded;
    EncodeColumns(codec, columns, rows, &encoded);
    std::vector<std::vector<int64_t>> decoded;
    Status status = DecodeColumns(
        codec, reinterpret_cast<const uint8_t*>(encoded.data()),
        encoded.size(), static_cast<int64_t>(columns.size()), rows, &decoded);
    ASSERT_TRUE(status.ok()) << RowCodecName(codec) << ": " << status;
    EXPECT_EQ(decoded, columns) << RowCodecName(codec);
  }
}

TEST(ZigZagTest, RoundTripsExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1234567},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes map to small codes (what makes delta varints short).
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(VarintTest, RoundTrips) {
  Rng rng(99);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t v = rng.NextUint64() >> rng.NextUint64(64);
    std::string buf;
    AppendVarint64(v, &buf);
    uint64_t back = 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    const uint8_t* next = DecodeVarint64(p, p + buf.size(), &back);
    ASSERT_EQ(next, p + buf.size());
    EXPECT_EQ(back, v);
  }
}

TEST(VarintTest, RejectsTruncation) {
  std::string buf;
  AppendVarint64(std::numeric_limits<uint64_t>::max(), &buf);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    uint64_t v = 0;
    EXPECT_EQ(DecodeVarint64(p, p + cut, &v), nullptr) << cut;
  }
}

TEST(VarintTest, RejectsOverlongEncoding) {
  // Eleven continuation bytes claim more than 64 bits.
  const uint8_t overlong[11] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                                0xff, 0xff, 0xff, 0xff, 0x01};
  uint64_t v = 0;
  EXPECT_EQ(DecodeVarint64(overlong, overlong + sizeof(overlong), &v),
            nullptr);
}

TEST(CodecTest, ConstantColumns) {
  ExpectRoundTrip({{7, 7, 7, 7, 7}, {0, 0, 0, 0, 0}}, 5);
}

TEST(CodecTest, SingleRow) { ExpectRoundTrip({{42}, {-17}}, 1); }

TEST(CodecTest, StepColumns) {
  std::vector<int64_t> step;
  for (int i = 0; i < 200; ++i) {
    step.push_back(i < 100 ? 10 : 5000);
  }
  ExpectRoundTrip({step}, 200);
}

TEST(CodecTest, Ar1Columns) {
  Rng rng(7);
  std::vector<std::vector<int64_t>> columns(3);
  for (auto& col : columns) {
    int64_t v = 100000;
    for (int i = 0; i < 500; ++i) {
      v += rng.UniformInt(-50, 50);
      col.push_back(v);
    }
  }
  ExpectRoundTrip(columns, 500);
}

TEST(CodecTest, RandomFullRangeColumns) {
  // Uniform random over the full int64 range: the worst case for delta
  // (wrapping differences) and zoh (no runs). Many trials, fresh values.
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rows = rng.UniformInt(1, 64);
    std::vector<std::vector<int64_t>> columns(
        static_cast<size_t>(rng.UniformInt(1, 4)));
    for (auto& col : columns) {
      for (int64_t r = 0; r < rows; ++r) {
        col.push_back(static_cast<int64_t>(rng.NextUint64()));
      }
    }
    ExpectRoundTrip(columns, rows);
  }
}

TEST(CodecTest, Int64ExtremeSwings) {
  // INT64_MIN <-> INT64_MAX deltas exercise the wrapping arithmetic; a
  // naive signed subtraction here is UB.
  const int64_t lo = std::numeric_limits<int64_t>::min();
  const int64_t hi = std::numeric_limits<int64_t>::max();
  ExpectRoundTrip({{lo, hi, lo, hi, 0, lo, hi}}, 7);
}

TEST(CodecTest, DecodeRejectsTruncatedPayload) {
  std::vector<std::vector<int64_t>> columns = {{1, 2, 3}, {4, 5, 6}};
  for (RowCodec codec : kAllCodecs) {
    std::string encoded;
    EncodeColumns(codec, columns, 3, &encoded);
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      std::vector<std::vector<int64_t>> decoded;
      EXPECT_FALSE(DecodeColumns(
                       codec, reinterpret_cast<const uint8_t*>(encoded.data()),
                       cut, 2, 3, &decoded)
                       .ok())
          << RowCodecName(codec) << " cut at " << cut;
    }
  }
}

TEST(CodecTest, DecodeRejectsTrailingBytes) {
  for (RowCodec codec : kAllCodecs) {
    std::string encoded;
    EncodeColumns(codec, {{1, 2, 3}}, 3, &encoded);
    encoded.push_back('\0');
    std::vector<std::vector<int64_t>> decoded;
    Status status = DecodeColumns(
        codec, reinterpret_cast<const uint8_t*>(encoded.data()),
        encoded.size(), 1, 3, &decoded);
    ASSERT_FALSE(status.ok()) << RowCodecName(codec);
    EXPECT_NE(status.message().find("trailing"), std::string::npos);
  }
}

TEST(CodecTest, ZohRejectsZeroRun) {
  // (run 0, value 5): a run that never advances would loop forever if
  // accepted.
  std::string encoded;
  AppendVarint64(0, &encoded);
  AppendVarint64(ZigZagEncode(5), &encoded);
  std::vector<std::vector<int64_t>> decoded;
  Status status = DecodeColumns(
      RowCodec::kZoh, reinterpret_cast<const uint8_t*>(encoded.data()),
      encoded.size(), 1, 3, &decoded);
  EXPECT_FALSE(status.ok());
}

TEST(CodecTest, ZohRejectsOvershootingRun) {
  // A run of 10 in a 3-row block.
  std::string encoded;
  AppendVarint64(10, &encoded);
  AppendVarint64(ZigZagEncode(5), &encoded);
  std::vector<std::vector<int64_t>> decoded;
  Status status = DecodeColumns(
      RowCodec::kZoh, reinterpret_cast<const uint8_t*>(encoded.data()),
      encoded.size(), 1, 3, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("overshoot"), std::string::npos);
}

}  // namespace
}  // namespace dcv::io
