#include "trace/stats.h"

#include <gtest/gtest.h>

namespace dcv {
namespace {

Trace MakeTrace(std::vector<std::vector<int64_t>> rows) {
  Trace t(static_cast<int>(rows[0].size()));
  for (auto& r : rows) {
    EXPECT_TRUE(t.AppendEpoch(std::move(r)).ok());
  }
  return t;
}

TEST(SiteStatsTest, BasicMoments) {
  Trace t = MakeTrace({{2}, {4}, {4}, {4}, {5}, {5}, {7}, {9}});
  SiteStats s = ComputeSiteStats(t, 0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 9);
  EXPECT_NEAR(s.p50, 4.5, 1e-9);
}

TEST(SiteStatsTest, EmptyTrace) {
  Trace t(1);
  SiteStats s = ComputeSiteStats(t, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0);
}

TEST(EpochSumsTest, WeightedAndUnweighted) {
  Trace t = MakeTrace({{1, 2}, {3, 4}});
  EXPECT_EQ(EpochSums(t, {}), (std::vector<int64_t>{3, 7}));
  EXPECT_EQ(EpochSums(t, {10, 1}), (std::vector<int64_t>{12, 34}));
}

TEST(OverflowFractionTest, CountsStrictExceedances) {
  Trace t = MakeTrace({{1}, {2}, {3}, {4}});
  EXPECT_DOUBLE_EQ(OverflowFraction(t, {}, 2), 0.5);   // 3 and 4 exceed.
  EXPECT_DOUBLE_EQ(OverflowFraction(t, {}, 4), 0.0);
  EXPECT_DOUBLE_EQ(OverflowFraction(t, {}, 0), 1.0);
}

TEST(ThresholdForOverflowFractionTest, AchievesRequestedFraction) {
  std::vector<std::vector<int64_t>> rows;
  for (int i = 1; i <= 100; ++i) {
    rows.push_back({i});
  }
  Trace t = MakeTrace(std::move(rows));
  for (double frac : {0.0, 0.01, 0.05, 0.10, 0.25, 0.5}) {
    auto threshold = ThresholdForOverflowFraction(t, {}, frac);
    ASSERT_TRUE(threshold.ok());
    double achieved = OverflowFraction(t, {}, *threshold);
    EXPECT_LE(achieved, frac + 1e-12) << "frac=" << frac;
    // And the threshold is tight: one step lower overflows too much.
    if (*threshold > 0) {
      EXPECT_GT(OverflowFraction(t, {}, *threshold - 1), frac - 0.011);
    }
  }
}

TEST(ThresholdForOverflowFractionTest, EdgeCases) {
  Trace empty(1);
  EXPECT_FALSE(ThresholdForOverflowFraction(empty, {}, 0.1).ok());
  Trace t = MakeTrace({{5}});
  EXPECT_FALSE(ThresholdForOverflowFraction(t, {}, -0.1).ok());
  EXPECT_FALSE(ThresholdForOverflowFraction(t, {}, 1.5).ok());
  auto all = ThresholdForOverflowFraction(t, {}, 1.0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 0);
  auto none = ThresholdForOverflowFraction(t, {}, 0.0);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 5);
}

TEST(ThresholdForOverflowFractionTest, RespectsWeights) {
  Trace t = MakeTrace({{1, 1}, {2, 2}, {3, 3}});
  auto threshold = ThresholdForOverflowFraction(t, {10, 1}, 0.0);
  ASSERT_TRUE(threshold.ok());
  EXPECT_EQ(*threshold, 33);
}

}  // namespace
}  // namespace dcv
