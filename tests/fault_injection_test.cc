#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "constraints/parser.h"
#include "sim/adaptive_filter_scheme.h"
#include "sim/boolean_scheme.h"
#include "sim/geometric_scheme.h"
#include "sim/local_scheme.h"
#include "sim/multilevel_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

// End-to-end fault-injection coverage: every scheme runs over the channel,
// the zero-fault spec reproduces the perfect-network protocol bit for bit,
// and faulty runs are deterministic in (spec, seed).

struct Workload {
  Trace training{0};
  Trace eval{0};
};

Workload MakeWorkload(uint64_t seed, int num_sites = 4,
                      int64_t train_epochs = 800, int64_t eval_epochs = 800) {
  SyntheticTraceOptions options;
  options.num_sites = num_sites;
  options.num_epochs = train_epochs + eval_epochs;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.0;
  options.param2 = 0.8;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, train_epochs);
  w.eval = *trace->Slice(train_epochs, train_epochs + eval_epochs);
  return w;
}

int64_t PickThreshold(const Workload& w, double overflow_fraction) {
  auto t = ThresholdForOverflowFraction(w.eval, {}, overflow_fraction);
  EXPECT_TRUE(t.ok());
  return *t;
}

void ExpectSameResult(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    EXPECT_EQ(a.messages.of(type), b.messages.of(type))
        << label << ": " << MessageTypeName(type);
  }
  EXPECT_EQ(a.total_alarms, b.total_alarms) << label;
  EXPECT_EQ(a.alarm_epochs, b.alarm_epochs) << label;
  EXPECT_EQ(a.polled_epochs, b.polled_epochs) << label;
  EXPECT_EQ(a.true_violations, b.true_violations) << label;
  EXPECT_EQ(a.detected_violations, b.detected_violations) << label;
  EXPECT_EQ(a.missed_violations, b.missed_violations) << label;
  EXPECT_EQ(a.false_alarm_epochs, b.false_alarm_epochs) << label;
  EXPECT_EQ(a.reliability.transmissions, b.reliability.transmissions) << label;
  EXPECT_EQ(a.reliability.retransmissions, b.reliability.retransmissions)
      << label;
  EXPECT_EQ(a.reliability.dropped, b.reliability.dropped) << label;
  EXPECT_EQ(a.reliability.timed_out_polls, b.reliability.timed_out_polls)
      << label;
  EXPECT_EQ(a.reliability.degraded_decisions, b.reliability.degraded_decisions)
      << label;
}

// The zero-fault FaultSpec must leave every scheme's message counts and
// detections exactly as the pre-channel protocol produced them, regardless
// of seed or degrade mode — no randomness may be consumed on the perfect
// path, and no kAck may appear while acks are off.
TEST(FaultInjectionTest, ZeroFaultSpecIsBitIdenticalForEveryScheme) {
  Workload w = MakeWorkload(7);
  const int64_t threshold = PickThreshold(w, 0.02);
  FptasSolver solver(0.05);

  auto parsed = ParseConstraint("a + b + c + d <= " +
                                std::to_string(threshold));
  ASSERT_TRUE(parsed.ok());

  struct Case {
    std::string label;
    std::function<std::unique_ptr<DetectionScheme>()> make;
  };
  std::vector<Case> cases;
  cases.push_back({"local", [&] {
                     LocalThresholdScheme::Options o;
                     o.solver = &solver;
                     return std::make_unique<LocalThresholdScheme>(o);
                   }});
  cases.push_back({"local-tracking", [&] {
                     LocalThresholdScheme::Options o;
                     o.solver = &solver;
                     o.global_check =
                         LocalThresholdScheme::GlobalCheck::kTrack;
                     return std::make_unique<LocalThresholdScheme>(o);
                   }});
  cases.push_back({"local-change-detection", [&] {
                     LocalThresholdScheme::Options o;
                     o.solver = &solver;
                     o.change_detection = true;
                     return std::make_unique<LocalThresholdScheme>(o);
                   }});
  cases.push_back(
      {"geometric", [&] { return std::make_unique<GeometricScheme>(); }});
  cases.push_back(
      {"polling", [&] { return std::make_unique<PollingScheme>(10); }});
  cases.push_back({"adaptive-filters", [&] {
                     AdaptiveFilterScheme::Options o;
                     o.realloc_period = 60;
                     return std::make_unique<AdaptiveFilterScheme>(o);
                   }});
  cases.push_back({"multi-level", [&] {
                     MultiLevelScheme::Options o;
                     o.solver = &solver;
                     return std::make_unique<MultiLevelScheme>(o);
                   }});
  cases.push_back({"boolean-local", [&] {
                     BooleanLocalScheme::Options o;
                     o.solver = &solver;
                     return std::make_unique<BooleanLocalScheme>(
                         parsed->expr, o);
                   }});

  for (const Case& c : cases) {
    SimOptions base;
    base.global_threshold = threshold;
    auto baseline_scheme = c.make();
    auto baseline = RunSimulation(baseline_scheme.get(), base, w.training,
                                  w.eval);
    ASSERT_TRUE(baseline.ok()) << c.label;

    // Same run with an explicit (still zero-fault) spec that differs in
    // every knob randomness could leak through.
    SimOptions with_spec = base;
    with_spec.faults.seed = 0xabcdef;
    with_spec.faults.degrade = DegradeMode::kAssumeBreach;
    with_spec.faults.max_delay_epochs = 7;
    auto scheme = c.make();
    auto result = RunSimulation(scheme.get(), with_spec, w.training, w.eval);
    ASSERT_TRUE(result.ok()) << c.label;

    ExpectSameResult(*baseline, *result, c.label);
    EXPECT_EQ(result->messages.of(MessageType::kAck), 0) << c.label;
    EXPECT_EQ(result->reliability.retransmissions, 0) << c.label;
    EXPECT_EQ(result->reliability.dropped, 0) << c.label;
  }
}

TEST(FaultInjectionTest, SameSpecAndSeedGiveIdenticalResults) {
  Workload w = MakeWorkload(11);
  const int64_t threshold = PickThreshold(w, 0.02);
  FptasSolver solver(0.05);

  SimOptions sim;
  sim.global_threshold = threshold;
  sim.faults.loss = 0.1;
  sim.faults.duplicate = 0.05;
  sim.faults.delay = 0.05;
  sim.faults.retry.enable_acks = true;
  sim.faults.retry.max_attempts = 5;
  sim.faults.seed = 1234;

  auto run = [&] {
    LocalThresholdScheme::Options o;
    o.solver = &solver;
    LocalThresholdScheme scheme(o);
    return RunSimulation(&scheme, sim, w.training, w.eval);
  };
  auto r1 = run();
  auto r2 = run();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Faults actually fired...
  EXPECT_GT(r1->reliability.dropped, 0);
  EXPECT_GT(r1->reliability.retransmissions, 0);
  // ...yet the two runs are indistinguishable, retransmissions included.
  ExpectSameResult(*r1, *r2, "local-under-faults");

  // A different seed draws a different fault pattern.
  sim.faults.seed = 4321;
  auto r3 = run();
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(r1->reliability.dropped, r3->reliability.dropped);
}

// ISSUE acceptance: under 10% loss with retries enabled, the paper's scheme
// still detects within 5% of its fault-free detections.
TEST(FaultInjectionTest, LocalSchemeKeepsDetectionUnderTenPercentLoss) {
  Workload w = MakeWorkload(3);
  const int64_t threshold = PickThreshold(w, 0.02);
  FptasSolver solver(0.05);

  auto run = [&](const FaultSpec& spec) {
    LocalThresholdScheme::Options o;
    o.solver = &solver;
    LocalThresholdScheme scheme(o);
    SimOptions sim;
    sim.global_threshold = threshold;
    sim.faults = spec;
    return RunSimulation(&scheme, sim, w.training, w.eval);
  };

  auto clean = run(FaultSpec{});
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->true_violations, 0);
  ASSERT_EQ(clean->detected_violations, clean->true_violations);

  FaultSpec lossy;
  lossy.loss = 0.1;
  lossy.retry.enable_acks = true;
  lossy.retry.max_attempts = 6;
  lossy.degrade = DegradeMode::kAssumeBreach;
  auto faulty = run(lossy);
  ASSERT_TRUE(faulty.ok());
  EXPECT_GT(faulty->reliability.retransmissions, 0);
  EXPECT_GE(static_cast<double>(faulty->detected_violations),
            0.95 * static_cast<double>(clean->detected_violations));
}

TEST(FaultInjectionTest, CrashedSiteDegradesPollsAndResyncsOnRecovery) {
  Workload w = MakeWorkload(5);
  const int64_t threshold = PickThreshold(w, 0.05);

  FaultSpec spec;
  spec.crashes = {CrashWindow{0, 100, 300}};

  {
    PollingScheme scheme(1);
    SimOptions sim;
    sim.global_threshold = threshold;
    sim.faults = spec;
    auto result = RunSimulation(&scheme, sim, w.training, w.eval);
    ASSERT_TRUE(result.ok());
    // 200 epochs of polls could not reach site 0 and were resolved by
    // degradation.
    EXPECT_GE(result->reliability.timed_out_polls, 200);
    EXPECT_GE(result->reliability.degraded_decisions, 200);
    EXPECT_GT(result->reliability.blackholed, 0);
  }
  {
    GeometricScheme scheme;
    SimOptions sim;
    sim.global_threshold = threshold;
    sim.faults = spec;
    auto result = RunSimulation(&scheme, sim, w.training, w.eval);
    ASSERT_TRUE(result.ok());
    // The site recovered at epoch 300 and was re-synced.
    EXPECT_GE(result->reliability.resyncs, 1);
  }
}

TEST(FaultInjectionTest, AcksStayOffByDefault) {
  Workload w = MakeWorkload(9);
  const int64_t threshold = PickThreshold(w, 0.02);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options o;
  o.solver = &solver;
  LocalThresholdScheme scheme(o);
  SimOptions sim;
  sim.global_threshold = threshold;
  sim.faults.loss = 0.05;  // Faults on, but no retry machinery requested.
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->messages.of(MessageType::kAck), 0);
  EXPECT_EQ(result->reliability.retransmissions, 0);
  EXPECT_GT(result->reliability.dropped, 0);
}

}  // namespace
}  // namespace dcv
