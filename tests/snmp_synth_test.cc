#include "trace/snmp_synth.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "histogram/change_detector.h"
#include "trace/stats.h"

namespace dcv {
namespace {

SnmpTraceOptions SmallOptions() {
  SnmpTraceOptions options;
  options.num_sites = 5;
  options.num_weeks = 2;
  options.weekdays_per_week = 5;
  options.epochs_per_day = 48;  // Smaller for test speed.
  options.seed = 7;
  return options;
}

TEST(SnmpSynthTest, DimensionsMatchOptions) {
  SnmpTraceOptions options = SmallOptions();
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_sites(), 5);
  EXPECT_EQ(trace->num_epochs(),
            static_cast<int64_t>(options.num_weeks) * EpochsPerWeek(options));
  EXPECT_EQ(EpochsPerWeek(options), 5 * 48);
}

TEST(SnmpSynthTest, DefaultWeekMatchesPaperObservationCount) {
  SnmpTraceOptions options;
  EXPECT_EQ(EpochsPerWeek(options), 1435);  // §6.4: 1435 obs per week.
}

TEST(SnmpSynthTest, DeterministicInSeed) {
  auto a = GenerateSnmpTrace(SmallOptions());
  auto b = GenerateSnmpTrace(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t t = 0; t < a->num_epochs(); t += 17) {
    EXPECT_EQ(a->epoch(t), b->epoch(t));
  }
  SnmpTraceOptions other = SmallOptions();
  other.seed = 8;
  auto c = GenerateSnmpTrace(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->epoch(0), c->epoch(0));
}

TEST(SnmpSynthTest, ValuesWithinDomain) {
  SnmpTraceOptions options = SmallOptions();
  options.domain_max = 500000;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  EXPECT_LE(trace->GlobalMaxValue(), 500000);
}

TEST(SnmpSynthTest, SitesAreHeterogeneous) {
  SnmpTraceOptions options = SmallOptions();
  options.num_sites = 10;
  options.site_scale_sigma = 1.0;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  double min_mean = 1e300;
  double max_mean = 0;
  for (int i = 0; i < 10; ++i) {
    double mean = ComputeSiteStats(*trace, i).mean;
    min_mean = std::min(min_mean, mean);
    max_mean = std::max(max_mean, mean);
  }
  // Lognormal(sigma=1) spread across 10 sites: expect a wide ratio.
  EXPECT_GT(max_mean / min_mean, 3.0);
}

TEST(SnmpSynthTest, DiurnalPatternPresent) {
  SnmpTraceOptions options = SmallOptions();
  options.num_weeks = 1;
  options.epochs_per_day = 288;
  options.burst_sigma = 0.2;
  options.phase_jitter_hours = 0.0;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  // Compare average traffic at 3am vs 3pm epochs across days and sites.
  double night = 0;
  double day = 0;
  int night_count = 0;
  int day_count = 0;
  for (int64_t e = 0; e < trace->num_epochs(); ++e) {
    int64_t epoch_of_day = e % 288;
    double hour = static_cast<double>(epoch_of_day) * 24.0 / 288.0;
    for (int i = 0; i < trace->num_sites(); ++i) {
      if (hour >= 2 && hour < 4) {
        night += static_cast<double>(trace->at(e, i));
        ++night_count;
      } else if (hour >= 14 && hour < 16) {
        day += static_cast<double>(trace->at(e, i));
        ++day_count;
      }
    }
  }
  ASSERT_GT(night_count, 0);
  ASSERT_GT(day_count, 0);
  EXPECT_GT(day / day_count, 2.0 * night / night_count);
}

TEST(SnmpSynthTest, WeekOverWeekStability) {
  // KS distance between week-0 and week-1 marginals should be small
  // (the paper found weekly histograms good predictors, §6.4).
  SnmpTraceOptions options = SmallOptions();
  options.num_weeks = 2;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  int64_t week = EpochsPerWeek(options);
  auto w0 = trace->Slice(0, week);
  auto w1 = trace->Slice(week, 2 * week);
  ASSERT_TRUE(w0.ok());
  ASSERT_TRUE(w1.ok());
  for (int i = 0; i < trace->num_sites(); ++i) {
    auto d = KsStatistic(w0->SiteSeries(i), w1->SiteSeries(i));
    ASSERT_TRUE(d.ok());
    // Autocorrelation and session blocks shrink the effective sample size,
    // so allow more week-to-week KS noise than an i.i.d. bound would.
    EXPECT_LT(*d, 0.25) << "site " << i;
  }
}

TEST(SnmpSynthTest, ShiftChangesDistributionOfSomeSites) {
  SnmpTraceOptions options = SmallOptions();
  options.num_weeks = 2;
  options.shift_week = 1;
  options.shift_factor = 3.0;
  options.shift_site_fraction = 0.5;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  int64_t week = EpochsPerWeek(options);
  auto w0 = trace->Slice(0, week);
  auto w1 = trace->Slice(week, 2 * week);
  ASSERT_TRUE(w0.ok());
  ASSERT_TRUE(w1.ok());
  int shifted_sites = 0;
  for (int i = 0; i < trace->num_sites(); ++i) {
    auto d = KsStatistic(w0->SiteSeries(i), w1->SiteSeries(i));
    ASSERT_TRUE(d.ok());
    if (*d > 0.3) {
      ++shifted_sites;
    }
  }
  EXPECT_GE(shifted_sites, 1);
  EXPECT_LT(shifted_sites, trace->num_sites());
}

TEST(SnmpSynthTest, OptionValidation) {
  SnmpTraceOptions bad = SmallOptions();
  bad.num_sites = 0;
  EXPECT_FALSE(GenerateSnmpTrace(bad).ok());
  bad = SmallOptions();
  bad.correlation = 1.5;
  EXPECT_FALSE(GenerateSnmpTrace(bad).ok());
  bad = SmallOptions();
  bad.domain_max = 0;
  EXPECT_FALSE(GenerateSnmpTrace(bad).ok());
}

TEST(SnmpSynthTest, BurstAutocorrelationIsPresent) {
  SnmpTraceOptions options = SmallOptions();
  options.num_weeks = 4;
  options.burst_autocorr = 0.8;
  options.bimodal_fraction = 0.0;
  SnmpTraceOptions iid = options;
  iid.burst_autocorr = 0.0;
  auto corr_trace = GenerateSnmpTrace(options);
  auto iid_trace = GenerateSnmpTrace(iid);
  ASSERT_TRUE(corr_trace.ok());
  ASSERT_TRUE(iid_trace.ok());
  // Lag-1 autocorrelation of log-values, averaged over sites.
  auto lag1 = [](const Trace& t) {
    double acc = 0;
    for (int i = 0; i < t.num_sites(); ++i) {
      std::vector<int64_t> s = t.SiteSeries(i);
      std::vector<double> logs;
      for (int64_t v : s) {
        logs.push_back(std::log(static_cast<double>(std::max<int64_t>(v, 1))));
      }
      double mean = Mean(logs);
      double num = 0;
      double den = 0;
      for (size_t k = 0; k < logs.size(); ++k) {
        den += (logs[k] - mean) * (logs[k] - mean);
        if (k > 0) {
          num += (logs[k] - mean) * (logs[k - 1] - mean);
        }
      }
      acc += num / den;
    }
    return acc / t.num_sites();
  };
  // Both have diurnal structure (which itself induces correlation), but
  // the AR component must add clearly on top.
  EXPECT_GT(lag1(*corr_trace), lag1(*iid_trace) + 0.15);
}

TEST(SnmpSynthTest, BimodalSitesHaveCdfPlateau) {
  SnmpTraceOptions options = SmallOptions();
  options.num_sites = 1;
  options.num_weeks = 8;
  options.bimodal_fraction = 1.0;  // Force the site to be bimodal.
  options.session_factor_median = 30.0;
  options.burst_sigma = 0.3;
  options.diurnal_depth = 0.3;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  SiteStats s = ComputeSiteStats(*trace, 0);
  // Idle mode dominates the median; sessions push p99 far above it — the
  // plateau that defeats tail-equalizing heuristics.
  EXPECT_GT(s.p99 / std::max(1.0, s.p50), 8.0);
}

TEST(SnmpSynthTest, RejectsBadAutocorrAndShapeSpread) {
  SnmpTraceOptions bad = SmallOptions();
  bad.burst_autocorr = 1.0;
  EXPECT_FALSE(GenerateSnmpTrace(bad).ok());
  bad = SmallOptions();
  bad.burst_autocorr = -0.1;
  EXPECT_FALSE(GenerateSnmpTrace(bad).ok());
  bad = SmallOptions();
  bad.shape_spread = 1.0;
  EXPECT_FALSE(GenerateSnmpTrace(bad).ok());
}

TEST(SnmpSynthTest, CorrelationRaisesJointTailWithoutChangingMarginals) {
  SnmpTraceOptions indep = SmallOptions();
  indep.num_weeks = 4;
  indep.correlation = 0.0;
  SnmpTraceOptions corr = indep;
  corr.correlation = 0.8;
  auto a = GenerateSnmpTrace(indep);
  auto b = GenerateSnmpTrace(corr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Correlated bursts make the *sum* heavier-tailed: compare the ratio of
  // the 99.5th percentile to the median of epoch sums.
  auto tail_ratio = [](const Trace& t) {
    std::vector<int64_t> sums = EpochSums(t, {});
    std::vector<double> d(sums.begin(), sums.end());
    return Quantile(d, 0.995) / std::max(1.0, Quantile(d, 0.5));
  };
  EXPECT_GT(tail_ratio(*b), tail_ratio(*a));
}

}  // namespace
}  // namespace dcv
