#include "sim/boolean_scheme.h"

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

struct Workload {
  Trace training{0};
  Trace eval{0};
};

Workload MakeWorkload(uint64_t seed, int sites = 3) {
  SyntheticTraceOptions options;
  options.num_sites = sites;
  options.num_epochs = 2000;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.0;
  options.param2 = 0.6;
  options.domain_max = 100000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, 1000);
  w.eval = *trace->Slice(1000, 2000);
  return w;
}

SimOptions BooleanSim(const BoolExpr& expr) {
  SimOptions sim;
  sim.is_violation = [expr](const std::vector<int64_t>& values) {
    return !expr.Evaluate(values);
  };
  return sim;
}

TEST(BooleanSchemeTest, RequiresSolverAndTraining) {
  auto parsed = ParseConstraint("a <= 5");
  ASSERT_TRUE(parsed.ok());
  BooleanLocalScheme::Options options;
  BooleanLocalScheme scheme(parsed->expr, options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(BooleanSchemeTest, RejectsConstraintWithTooManyVariables) {
  Workload w = MakeWorkload(21, 2);
  auto parsed = ParseConstraint("a + b + c <= 100");
  ASSERT_TRUE(parsed.ok());
  FptasSolver solver(0.05);
  BooleanLocalScheme::Options options;
  options.solver = &solver;
  BooleanLocalScheme scheme(parsed->expr, options);
  auto result =
      RunSimulation(&scheme, BooleanSim(parsed->expr), w.training, w.eval);
  EXPECT_FALSE(result.ok());
}

TEST(BooleanSchemeTest, SumConstraintNeverMisses) {
  Workload w = MakeWorkload(22);
  // Pick a threshold near the upper range of eval sums.
  int64_t t = 0;
  for (int64_t e = 0; e < w.eval.num_epochs(); ++e) {
    t = std::max(t, w.eval.WeightedSum(e, {}));
  }
  t = (t * 4) / 5;
  auto parsed = ParseConstraintWithVars(
      "site0 + site1 + site2 <= " + std::to_string(t), w.eval.site_names());
  ASSERT_TRUE(parsed.ok());
  FptasSolver solver(0.05);
  BooleanLocalScheme::Options options;
  options.solver = &solver;
  BooleanLocalScheme scheme(*parsed, options);
  auto result = RunSimulation(&scheme, BooleanSim(*parsed), w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->true_violations, 0);
  EXPECT_EQ(result->missed_violations, 0);
}

TEST(BooleanSchemeTest, MinMaxBandConstraintNeverMisses) {
  // Sensor-style band constraint: the minimum must stay above a floor and
  // the maximum below a ceiling — exercises mirrored (lower-bound) local
  // constraints end to end.
  Workload w = MakeWorkload(23);
  auto parsed = ParseConstraintWithVars(
      "MIN{site0, site1, site2} >= 2 && MAX{site0, site1, site2} <= 5000",
      w.eval.site_names());
  ASSERT_TRUE(parsed.ok());
  FptasSolver solver(0.05);
  BooleanLocalScheme::Options options;
  options.solver = &solver;
  BooleanLocalScheme scheme(*parsed, options);
  auto result = RunSimulation(&scheme, BooleanSim(*parsed), w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->missed_violations, 0);
  // The bounds should be two-sided.
  bool has_lower = false;
  for (const SiteBounds& b : scheme.bounds()) {
    has_lower = has_lower || b.lo > 0;
  }
  EXPECT_TRUE(has_lower);
}

TEST(BooleanSchemeTest, DisjunctiveConstraintNeverMisses) {
  Workload w = MakeWorkload(24);
  auto parsed = ParseConstraintWithVars(
      "site0 + site1 <= 800 || site2 <= 300", w.eval.site_names());
  ASSERT_TRUE(parsed.ok());
  FptasSolver solver(0.05);
  BooleanLocalScheme::Options options;
  options.solver = &solver;
  BooleanLocalScheme scheme(*parsed, options);
  auto result = RunSimulation(&scheme, BooleanSim(*parsed), w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->missed_violations, 0);
}

TEST(BooleanSchemeTest, SilentWhenConstraintIsLoose) {
  Workload w = MakeWorkload(25);
  auto parsed = ParseConstraintWithVars(
      "site0 + site1 + site2 <= 99999999", w.eval.site_names());
  ASSERT_TRUE(parsed.ok());
  FptasSolver solver(0.05);
  BooleanLocalScheme::Options options;
  options.solver = &solver;
  BooleanLocalScheme scheme(*parsed, options);
  auto result = RunSimulation(&scheme, BooleanSim(*parsed), w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->true_violations, 0);
  EXPECT_EQ(result->messages.total(), 0);
}

}  // namespace
}  // namespace dcv
