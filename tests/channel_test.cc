#include "sim/channel.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcv {
namespace {

Channel MakeChannel(FaultSpec spec, int num_sites, MessageCounter* counter) {
  Channel ch(std::move(spec));
  EXPECT_TRUE(ch.Init(num_sites, counter).ok());
  return ch;
}

TEST(FaultSpecTest, DefaultIsPerfect) {
  FaultSpec spec;
  EXPECT_FALSE(spec.any_faults());
  EXPECT_TRUE(spec.Validate(3).ok());
  Channel ch(spec);
  MessageCounter counter;
  ASSERT_TRUE(ch.Init(3, &counter).ok());
  EXPECT_TRUE(ch.perfect());
}

TEST(FaultSpecTest, ValidateRejectsBadProbabilities) {
  FaultSpec spec;
  spec.loss = 1.5;
  EXPECT_FALSE(spec.Validate(1).ok());
  spec = FaultSpec{};
  spec.duplicate = -0.1;
  EXPECT_FALSE(spec.Validate(1).ok());
  spec = FaultSpec{};
  spec.delay = 2.0;
  EXPECT_FALSE(spec.Validate(1).ok());
  spec = FaultSpec{};
  spec.per_site_loss = {0.5, 1.5};
  EXPECT_FALSE(spec.Validate(2).ok());
}

TEST(FaultSpecTest, ValidateRejectsBadStructure) {
  FaultSpec spec;
  spec.max_delay_epochs = 0;
  EXPECT_FALSE(spec.Validate(1).ok());
  spec = FaultSpec{};
  spec.per_site_loss = {0.1};  // Two sites need two entries.
  EXPECT_FALSE(spec.Validate(2).ok());
  spec = FaultSpec{};
  spec.crashes = {CrashWindow{5, 0, 10}};  // Site out of range.
  EXPECT_FALSE(spec.Validate(2).ok());
  spec = FaultSpec{};
  spec.crashes = {CrashWindow{0, 10, 10}};  // Empty window.
  EXPECT_FALSE(spec.Validate(2).ok());
  spec = FaultSpec{};
  spec.partitions = {EpochWindow{7, 3}};
  EXPECT_FALSE(spec.Validate(2).ok());
  spec = FaultSpec{};
  spec.retry.max_attempts = 0;
  EXPECT_FALSE(spec.Validate(2).ok());
  spec = FaultSpec{};
  spec.retry.backoff_base_ticks = -1;
  EXPECT_FALSE(spec.Validate(2).ok());
}

TEST(ChannelTest, PerfectChannelChargesExactly) {
  MessageCounter counter;
  Channel ch = MakeChannel(FaultSpec{}, 3, &counter);
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/true),
            SendStatus::kDelivered);
  EXPECT_EQ(counter.of(MessageType::kAlarm), 1);
  EXPECT_EQ(counter.of(MessageType::kAck), 0);  // Acks are off by default.

  PollOutcome poll = ch.PollSites({1, 2, 3}, {1, 1, 1}, {});
  EXPECT_EQ(counter.of(MessageType::kPollRequest), 3);
  EXPECT_EQ(counter.of(MessageType::kPollResponse), 3);
  EXPECT_EQ(poll.weighted_sum, 6);
  EXPECT_EQ(poll.responses, 3);
  EXPECT_EQ(poll.timeouts, 0);
  EXPECT_FALSE(poll.degraded);
  EXPECT_EQ(ch.stats().transmissions, 7);
  EXPECT_EQ(ch.stats().delivered, 7);
  EXPECT_EQ(ch.stats().dropped, 0);
}

TEST(ChannelTest, TotalLossDropsUnreliableSends) {
  FaultSpec spec;
  spec.loss = 1.0;
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 1, &counter);
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/false),
            SendStatus::kLost);
  EXPECT_EQ(counter.of(MessageType::kAlarm), 1);  // The wire copy is charged.
  EXPECT_EQ(ch.stats().dropped, 1);
  EXPECT_EQ(ch.stats().delivered, 0);
}

TEST(ChannelTest, ReliableSendExhaustsRetriesUnderTotalLoss) {
  FaultSpec spec;
  spec.loss = 1.0;
  spec.retry.enable_acks = true;
  spec.retry.max_attempts = 4;
  spec.retry.backoff_base_ticks = 1;
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 1, &counter);
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/true),
            SendStatus::kLost);
  EXPECT_EQ(counter.of(MessageType::kAlarm), 4);  // All four attempts.
  EXPECT_EQ(counter.of(MessageType::kAck), 0);    // Nothing ever arrived.
  EXPECT_EQ(ch.stats().retransmissions, 3);
  EXPECT_EQ(ch.stats().backoff_ticks, 1 + 2 + 4);  // Exponential backoff.
  EXPECT_EQ(ch.stats().give_ups, 1);
}

TEST(ChannelTest, ReliableSendAcksOnCleanLink) {
  FaultSpec spec;
  spec.duplicate = 0.0;
  spec.retry.enable_acks = true;
  // Make the channel non-perfect without any real loss so the ack path runs.
  spec.crashes = {CrashWindow{0, 100, 101}};
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 1, &counter);
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/true),
            SendStatus::kDelivered);
  EXPECT_EQ(counter.of(MessageType::kAlarm), 1);
  EXPECT_EQ(counter.of(MessageType::kAck), 1);
  EXPECT_EQ(ch.stats().acks, 1);
  EXPECT_EQ(ch.stats().retransmissions, 0);
}

TEST(ChannelTest, DuplicateChargesAnExtraCopy) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 1, &counter);
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/false),
            SendStatus::kDelivered);
  EXPECT_EQ(counter.of(MessageType::kAlarm), 2);
  EXPECT_EQ(ch.stats().duplicates, 1);
  EXPECT_EQ(ch.stats().delivered, 1);  // Receivers deduplicate.
}

TEST(ChannelTest, DelayedMessageArrivesNextEpochWithPayload) {
  FaultSpec spec;
  spec.delay = 1.0;
  spec.max_delay_epochs = 1;
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 2, &counter);
  EXPECT_EQ(ch.SendFromSite(1, MessageType::kAlarm, /*reliable=*/false, 42),
            SendStatus::kDelayed);
  EXPECT_TRUE(ch.TakeArrivals(MessageType::kAlarm).empty());

  ch.BeginEpoch(1);
  std::vector<Channel::Arrival> arrivals =
      ch.TakeArrivals(MessageType::kAlarm);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].site, 1);
  EXPECT_EQ(arrivals[0].payload, 42);
  EXPECT_EQ(arrivals[0].sent_epoch, 0);
  EXPECT_EQ(ch.stats().late_deliveries, 1);
  EXPECT_EQ(ch.stats().delivery_delay_epochs, 1);
  // A second take finds nothing: arrivals are consumed.
  EXPECT_TRUE(ch.TakeArrivals(MessageType::kAlarm).empty());
}

TEST(ChannelTest, CrashWindowSuppressesAndRecovers) {
  FaultSpec spec;
  spec.crashes = {CrashWindow{0, 0, 2}};
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 2, &counter);
  EXPECT_FALSE(ch.SiteUp(0));
  EXPECT_TRUE(ch.SiteUp(1));

  // The crashed site cannot send; nothing reaches the wire.
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/true),
            SendStatus::kSenderDown);
  EXPECT_EQ(counter.of(MessageType::kAlarm), 0);
  EXPECT_EQ(ch.stats().crashed_sends, 1);

  // Messages to it are transmitted but black-holed.
  EXPECT_EQ(ch.SendToSite(0, MessageType::kThresholdUpdate,
                          /*reliable=*/false),
            SendStatus::kLost);
  EXPECT_EQ(counter.of(MessageType::kThresholdUpdate), 1);
  EXPECT_EQ(ch.stats().blackholed, 1);

  ch.BeginEpoch(1);
  EXPECT_FALSE(ch.SiteUp(0));
  EXPECT_TRUE(ch.newly_recovered().empty());

  ch.BeginEpoch(2);
  EXPECT_TRUE(ch.SiteUp(0));
  ASSERT_EQ(ch.newly_recovered().size(), 1u);
  EXPECT_EQ(ch.newly_recovered()[0], 0);
}

TEST(ChannelTest, PartitionBlackholesCoordinatorTraffic) {
  FaultSpec spec;
  spec.partitions = {EpochWindow{0, 1}};
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 1, &counter);
  EXPECT_TRUE(ch.Partitioned());
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/false),
            SendStatus::kLost);
  EXPECT_EQ(ch.stats().blackholed, 1);
  ch.BeginEpoch(1);
  EXPECT_FALSE(ch.Partitioned());
  EXPECT_EQ(ch.SendFromSite(0, MessageType::kAlarm, /*reliable=*/false),
            SendStatus::kDelivered);
}

TEST(ChannelTest, PollDegradesToLastKnownValue) {
  FaultSpec spec;
  spec.crashes = {CrashWindow{1, 0, 10}};
  spec.degrade = DegradeMode::kLastKnown;
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 2, &counter);
  ch.RecordLastKnown(1, 77);
  PollOutcome poll = ch.PollSites({5, 9}, {1, 1}, {100, 100});
  EXPECT_EQ(poll.values[0], 5);    // Responded with the truth.
  EXPECT_EQ(poll.values[1], 77);   // Crashed: last-known substitute.
  EXPECT_EQ(poll.weighted_sum, 82);
  EXPECT_EQ(poll.timeouts, 1);
  EXPECT_TRUE(poll.degraded);
  EXPECT_EQ(ch.stats().timed_out_polls, 1);
  EXPECT_EQ(ch.stats().degraded_decisions, 1);
}

TEST(ChannelTest, PollDegradesToPessimisticValue) {
  FaultSpec spec;
  spec.crashes = {CrashWindow{1, 0, 10}};
  spec.degrade = DegradeMode::kAssumeBreach;
  MessageCounter counter;
  Channel ch = MakeChannel(spec, 2, &counter);
  ch.RecordLastKnown(1, 77);  // Ignored under assume-breach.
  PollOutcome poll = ch.PollSites({5, 9}, {1, 1}, {100, 100});
  EXPECT_EQ(poll.values[1], 100);
  EXPECT_EQ(poll.weighted_sum, 105);

  // Without a pessimistic vector or history, the fallback is zero.
  Channel bare(spec);
  MessageCounter counter2;
  ASSERT_TRUE(bare.Init(2, &counter2).ok());
  PollOutcome poll2 = bare.PollSites({5, 9}, {1, 1}, {});
  EXPECT_EQ(poll2.values[1], 0);
}

TEST(ChannelTest, IdenticalSpecAndSeedGiveIdenticalRuns) {
  FaultSpec spec;
  spec.loss = 0.3;
  spec.duplicate = 0.1;
  spec.delay = 0.2;
  spec.max_delay_epochs = 2;
  spec.retry.enable_acks = true;
  spec.retry.max_attempts = 3;
  spec.seed = 99;

  auto drive = [&](MessageCounter* counter, ChannelStats* stats) {
    Channel ch(spec);
    ASSERT_TRUE(ch.Init(4, counter).ok());
    for (int64_t t = 0; t < 50; ++t) {
      ch.BeginEpoch(t);
      ch.TakeArrivals(MessageType::kAlarm);
      for (int i = 0; i < 4; ++i) {
        ch.SendFromSite(i, MessageType::kAlarm, /*reliable=*/true, t + i);
      }
      ch.PollSites({t, t + 1, t + 2, t + 3}, {1, 2, 3, 4}, {9, 9, 9, 9});
      ch.SendToSite(0, MessageType::kThresholdUpdate, /*reliable=*/true);
    }
    *stats = ch.stats();
  };

  MessageCounter c1, c2;
  ChannelStats s1, s2;
  drive(&c1, &s1);
  drive(&c2, &s2);
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    EXPECT_EQ(c1.of(type), c2.of(type)) << MessageTypeName(type);
  }
  EXPECT_EQ(s1.transmissions, s2.transmissions);
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.duplicates, s2.duplicates);
  EXPECT_EQ(s1.delayed, s2.delayed);
  EXPECT_EQ(s1.retransmissions, s2.retransmissions);
  EXPECT_EQ(s1.acks, s2.acks);
  EXPECT_EQ(s1.timed_out_polls, s2.timed_out_polls);

  // A different seed gives a different fault pattern (overwhelmingly).
  spec.seed = 100;
  MessageCounter c3;
  ChannelStats s3;
  drive(&c3, &s3);
  EXPECT_NE(s1.dropped, s3.dropped);
}

TEST(ChannelStatsTest, DifferenceIsFieldWise) {
  ChannelStats a;
  a.transmissions = 10;
  a.retransmissions = 4;
  a.resyncs = 2;
  ChannelStats b;
  b.transmissions = 3;
  b.retransmissions = 1;
  ChannelStats d = a - b;
  EXPECT_EQ(d.transmissions, 7);
  EXPECT_EQ(d.retransmissions, 3);
  EXPECT_EQ(d.resyncs, 2);
}

TEST(ChannelStatsTest, ToStringListsNonZeroFields) {
  ChannelStats s;
  EXPECT_EQ(s.ToString(), "none");
  s.transmissions = 5;
  s.give_ups = 1;
  std::string str = s.ToString();
  EXPECT_NE(str.find("transmissions=5"), std::string::npos);
  EXPECT_NE(str.find("give_ups=1"), std::string::npos);
  EXPECT_EQ(str.find("acks"), std::string::npos);
}

}  // namespace
}  // namespace dcv
