#include "histogram/sliding_histogram.h"

#include <algorithm>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

TEST(SlidingHistogramTest, CreateValidation) {
  EXPECT_FALSE(SlidingWindowHistogram::Create(1, 0.1).ok());
  EXPECT_FALSE(SlidingWindowHistogram::Create(100, 0.0).ok());
  EXPECT_FALSE(SlidingWindowHistogram::Create(100, 1.0).ok());
  EXPECT_TRUE(SlidingWindowHistogram::Create(100, 0.1).ok());
}

TEST(SlidingHistogramTest, EmptyWindowFails) {
  auto h = SlidingWindowHistogram::Create(100, 0.1);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(h->Quantile(0.5).ok());
  EXPECT_FALSE(h->ToEquiDepthHistogram(10, 100).ok());
}

TEST(SlidingHistogramTest, SmallStreamIsNearExact) {
  auto h = SlidingWindowHistogram::Create(1000, 0.05);
  ASSERT_TRUE(h.ok());
  for (int i = 1; i <= 100; ++i) {
    h->Insert(i);
  }
  EXPECT_EQ(h->covered(), 100);
  int64_t median = *h->Quantile(0.5);
  EXPECT_NEAR(static_cast<double>(median), 50.0, 10.0);
}

TEST(SlidingHistogramTest, OldValuesExpire) {
  // Window of 500: fill with large values, then with small ones; after >
  // one window of small values the quantiles must reflect only them.
  auto h = SlidingWindowHistogram::Create(500, 0.05);
  ASSERT_TRUE(h.ok());
  for (int i = 0; i < 600; ++i) {
    h->Insert(1'000'000);
  }
  for (int i = 0; i < 700; ++i) {
    h->Insert(10);
  }
  EXPECT_EQ(*h->Quantile(0.5), 10);
  EXPECT_EQ(*h->Quantile(0.99), 10);
  // Coverage stays near the window size, not the stream length.
  EXPECT_LE(h->covered(), 510);
}

class SlidingHistogramEpsSweep : public testing::TestWithParam<double> {};

TEST_P(SlidingHistogramEpsSweep, WindowRankErrorWithinBound) {
  const double eps = GetParam();
  const int64_t window = 2000;
  auto h = SlidingWindowHistogram::Create(window, eps);
  ASSERT_TRUE(h.ok());
  Rng rng(313);
  std::deque<int64_t> exact;
  for (int64_t t = 0; t < 20000; ++t) {
    int64_t v = static_cast<int64_t>(rng.LogNormal(6.0, 1.0));
    h->Insert(v);
    exact.push_back(v);
    if (static_cast<int64_t>(exact.size()) > window) {
      exact.pop_front();
    }
    if (t > window && t % 1777 == 0) {
      std::vector<int64_t> sorted(exact.begin(), exact.end());
      std::sort(sorted.begin(), sorted.end());
      for (double phi : {0.1, 0.5, 0.9, 0.99}) {
        int64_t q = *h->Quantile(phi);
        int64_t rank =
            std::upper_bound(sorted.begin(), sorted.end(), q) - sorted.begin();
        double target = phi * static_cast<double>(sorted.size());
        // Window boundary slop: one block plus sketch error.
        EXPECT_NEAR(static_cast<double>(rank), target,
                    2.0 * eps * window + 2.0)
            << "phi=" << phi << " eps=" << eps << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EpsValues, SlidingHistogramEpsSweep,
                         testing::Values(0.1, 0.05, 0.02));

TEST(SlidingHistogramTest, SpaceIsSublinearInWindow) {
  const int64_t window = 100000;
  auto h = SlidingWindowHistogram::Create(window, 0.05);
  ASSERT_TRUE(h.ok());
  Rng rng(314);
  for (int64_t t = 0; t < 2 * window; ++t) {
    h->Insert(rng.UniformInt(0, 1'000'000));
  }
  EXPECT_LT(h->num_tuples(), static_cast<size_t>(window) / 4);
}

TEST(SlidingHistogramTest, HistogramTracksWindowDistributionShift) {
  auto h = SlidingWindowHistogram::Create(1000, 0.05);
  ASSERT_TRUE(h.ok());
  Rng rng(315);
  for (int i = 0; i < 1500; ++i) {
    h->Insert(rng.UniformInt(0, 100));
  }
  for (int i = 0; i < 1500; ++i) {
    h->Insert(rng.UniformInt(900, 1000));
  }
  auto hist = h->ToEquiDepthHistogram(20, 1000);
  ASSERT_TRUE(hist.ok());
  // Essentially all window mass is now in [900, 1000].
  double frac_low = hist->CumulativeAt(500) / hist->total_weight();
  EXPECT_LT(frac_low, 0.1);
}

}  // namespace
}  // namespace dcv
