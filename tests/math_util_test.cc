#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dcv {
namespace {

TEST(SafeLogTest, PositiveAndZero) {
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
  EXPECT_DOUBLE_EQ(SafeLog(std::exp(1.0)), 1.0);
  EXPECT_EQ(SafeLog(0.0), kNegInf);
  EXPECT_EQ(SafeLog(-3.0), kNegInf);
}

TEST(SafeExpTest, InverseOfSafeLog) {
  EXPECT_DOUBLE_EQ(SafeExp(SafeLog(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(SafeExp(kNegInf), 0.0);
}

TEST(ClampTest, AllRegions) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-1, 0, 10), 0);
  EXPECT_EQ(Clamp(11, 0, 10), 10);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(ApproxEqualTest, RelativeTolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(ApproxEqual(1.0, 1.1));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-12));
}

TEST(KahanSumTest, CompensatesSmallTerms) {
  std::vector<double> values(1000000, 1e-6);
  values.push_back(1e6);
  double sum = KahanSum(values);
  EXPECT_NEAR(sum, 1e6 + 1.0, 1e-6);
}

TEST(CeilDivTest, PositiveAndNegative) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(-7, 2), -3);
}

TEST(MeanStdDevTest, KnownValues) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.625), 25.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, UnsortedInput) {
  std::vector<double> v{40, 0, 30, 10, 20};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 20.0);
}

}  // namespace
}  // namespace dcv
