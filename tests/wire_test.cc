#include "runtime/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dcv {
namespace {

Envelope MakeEnvelope(int32_t from, int32_t to, ActorMsgKind kind,
                      int64_t epoch, int64_t value, bool flag) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.msg.kind = kind;
  e.msg.epoch = epoch;
  e.msg.value = value;
  e.msg.flag = flag;
  return e;
}

void ExpectEnvelopeEq(const Envelope& want, const Envelope& got) {
  EXPECT_EQ(want.from, got.from);
  EXPECT_EQ(want.to, got.to);
  EXPECT_EQ(want.msg.kind, got.msg.kind);
  EXPECT_EQ(want.msg.epoch, got.msg.epoch);
  EXPECT_EQ(want.msg.value, got.msg.value);
  EXPECT_EQ(want.msg.flag, got.msg.flag);
}

TEST(WireTest, EnvelopeRoundTripAllKinds) {
  for (uint8_t k = 0;
       k <= static_cast<uint8_t>(ActorMsgKind::kThresholdUpdate); ++k) {
    Envelope e = MakeEnvelope(
        /*from=*/kCoordinatorId, /*to=*/7, static_cast<ActorMsgKind>(k),
        /*epoch=*/-1, /*value=*/INT64_MIN, /*flag=*/k % 2 == 0);
    std::string buf;
    AppendEnvelopeFrame(e, &buf);
    auto frame = DecodeFramePayload(
        reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    ASSERT_EQ(frame->type, FrameType::kEnvelope);
    ExpectEnvelopeEq(e, frame->envelope);
  }
}

TEST(WireTest, HelloRoundTrip) {
  HelloFrame h;
  h.worker = 3;
  h.num_workers = 4;
  h.num_sites = 17;
  std::string buf;
  AppendHelloFrame(h, &buf);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kHello);
  EXPECT_EQ(frame->hello.worker, 3);
  EXPECT_EQ(frame->hello.num_workers, 4);
  EXPECT_EQ(frame->hello.num_sites, 17);
}

TEST(WireTest, HelloAckRoundTrip) {
  HelloAckFrame a;
  a.ok = 1;
  a.virtual_time = 0;
  a.num_sites = 9;
  a.num_workers = 2;
  std::string buf;
  AppendHelloAckFrame(a, &buf);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kHelloAck);
  EXPECT_EQ(frame->hello_ack.ok, 1);
  EXPECT_EQ(frame->hello_ack.virtual_time, 0);
  EXPECT_EQ(frame->hello_ack.num_sites, 9);
  EXPECT_EQ(frame->hello_ack.num_workers, 2);
}

TEST(WireTest, RejectsVersionMismatch) {
  std::string buf;
  AppendHelloFrame(HelloFrame{}, &buf);
  buf[4] = static_cast<char>(kWireVersion + 1);  // Version byte.
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("wire version"), std::string::npos);
}

TEST(WireTest, RejectsBadMagicAndBadKind) {
  std::string hello;
  AppendHelloFrame(HelloFrame{}, &hello);
  hello[6] = 'X';  // First magic byte.
  EXPECT_FALSE(DecodeFramePayload(
                   reinterpret_cast<const uint8_t*>(hello.data()) + 4,
                   hello.size() - 4)
                   .ok());

  std::string env;
  AppendEnvelopeFrame(Envelope{}, &env);
  env[14] = 50;  // ActorMsgKind byte, way out of enum range.
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(env.data()) + 4, env.size() - 4);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("message kind"), std::string::npos);
}

TEST(WireTest, RejectsShortAndOverlongBodies) {
  std::string buf;
  AppendEnvelopeFrame(Envelope{}, &buf);
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(buf.data()) + 4;
  // Every truncation of the payload fails rather than decoding garbage.
  for (size_t len = 0; len < buf.size() - 4; ++len) {
    EXPECT_FALSE(DecodeFramePayload(payload, len).ok()) << "len=" << len;
  }
  // Trailing bytes are corruption too (fixed layouts are exact).
  std::string padded = buf + std::string(1, '\0');
  EXPECT_FALSE(DecodeFramePayload(
                   reinterpret_cast<const uint8_t*>(padded.data()) + 4,
                   padded.size() - 4)
                   .ok());
}

TEST(WireTest, ReaderReassemblesByteAtATime) {
  std::vector<Envelope> sent;
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    Envelope e = MakeEnvelope(i, kCoordinatorId, ActorMsgKind::kAlarm,
                              1000 + i, -i * 7, i % 3 == 0);
    sent.push_back(e);
    AppendEnvelopeFrame(e, &stream);
  }
  FrameReader reader;
  std::vector<Envelope> got;
  for (char byte : stream) {
    reader.Append(reinterpret_cast<const uint8_t*>(&byte), 1);
    for (;;) {
      WireFrame frame;
      auto r = reader.Next(&frame);
      ASSERT_TRUE(r.ok()) << r.status().message();
      if (!*r) {
        break;
      }
      got.push_back(frame.envelope);
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectEnvelopeEq(sent[i], got[i]);
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, ReaderHandlesRandomChunkingAndMixedTypes) {
  // Fuzz-ish: a long stream of mixed frames fed in random-size chunks must
  // come out intact regardless of where the chunk boundaries fall.
  Rng rng(1234);
  std::string stream;
  int envelopes = 0;
  for (int i = 0; i < 200; ++i) {
    switch (rng.UniformInt(0, 2)) {
      case 0: {
        AppendEnvelopeFrame(
            MakeEnvelope(rng.UniformInt(0, 100), kCoordinatorId,
                         ActorMsgKind::kPollResponse,
                         rng.UniformInt(0, 1 << 20),
                         rng.UniformInt(0, 1 << 30), false),
            &stream);
        ++envelopes;
        break;
      }
      case 1:
        AppendHelloFrame(HelloFrame{}, &stream);
        break;
      default:
        AppendHelloAckFrame(HelloAckFrame{}, &stream);
        break;
    }
  }
  FrameReader reader;
  int got_envelopes = 0;
  int got_total = 0;
  size_t off = 0;
  while (off < stream.size()) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 37));
    n = std::min(n, stream.size() - off);
    reader.Append(reinterpret_cast<const uint8_t*>(stream.data()) + off, n);
    off += n;
    for (;;) {
      WireFrame frame;
      auto r = reader.Next(&frame);
      ASSERT_TRUE(r.ok()) << r.status().message();
      if (!*r) {
        break;
      }
      ++got_total;
      if (frame.type == FrameType::kEnvelope) {
        ++got_envelopes;
      }
    }
  }
  EXPECT_EQ(got_total, 200);
  EXPECT_EQ(got_envelopes, envelopes);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, ReaderRejectsOversizedLength) {
  // A corrupt length prefix must fail fast, not trigger a giant buffer.
  uint8_t prefix[4] = {0xff, 0xff, 0xff, 0x7f};
  FrameReader reader;
  reader.Append(prefix, sizeof(prefix));
  WireFrame frame;
  auto r = reader.Next(&frame);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("oversized"), std::string::npos);
}

TEST(WireTest, ReaderTakeBufferedReturnsUnconsumedTail) {
  // The handshake reader may pull data frames in with the hello-ack; the
  // tail must transfer losslessly to the steady-state reader.
  std::string stream;
  AppendHelloAckFrame(HelloAckFrame{}, &stream);
  Envelope e = MakeEnvelope(kCoordinatorId, 2, ActorMsgKind::kThresholdUpdate,
                            -1, 424242, false);
  AppendEnvelopeFrame(e, &stream);

  FrameReader handshake;
  handshake.Append(reinterpret_cast<const uint8_t*>(stream.data()),
                   stream.size());
  WireFrame frame;
  auto r = handshake.Next(&frame);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  ASSERT_EQ(frame.type, FrameType::kHelloAck);

  std::string rest = handshake.TakeBuffered();
  EXPECT_EQ(handshake.buffered(), 0u);
  FrameReader steady;
  steady.Append(reinterpret_cast<const uint8_t*>(rest.data()), rest.size());
  r = steady.Next(&frame);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  ASSERT_EQ(frame.type, FrameType::kEnvelope);
  ExpectEnvelopeEq(e, frame.envelope);
}

TEST(WireTest, EnvelopeSequenceNumberRoundTrips) {
  Envelope e = MakeEnvelope(3, kCoordinatorId, ActorMsgKind::kAlarm, 12, 99,
                            true);
  std::string buf;
  AppendEnvelopeFrame(e, &buf, /*seq=*/0xdeadbeefcafe1234ULL);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ExpectEnvelopeEq(e, frame->envelope);
  EXPECT_EQ(frame->seq, 0xdeadbeefcafe1234ULL);
}

TEST(WireTest, HelloCarriesGenerationAndHighWater) {
  HelloFrame h;
  h.worker = 1;
  h.num_workers = 2;
  h.num_sites = 8;
  h.generation = 5;
  h.last_seq_received = 777;
  std::string buf;
  AppendHelloFrame(h, &buf);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->hello.generation, 5u);
  EXPECT_EQ(frame->hello.last_seq_received, 777u);

  HelloAckFrame a;
  a.ok = 1;
  a.generation = 5;
  a.last_seq_received = 123456789;
  std::string ack;
  AppendHelloAckFrame(a, &ack);
  frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(ack.data()) + 4, ack.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->hello_ack.generation, 5u);
  EXPECT_EQ(frame->hello_ack.last_seq_received, 123456789u);
}

TEST(WireTest, LayoutFrameRoundTripAndAck) {
  LayoutFrame l;
  l.version = 7;
  l.num_sites = 10;
  l.num_shards = 3;
  l.starts = {0, 4, 7, 10};
  std::string buf;
  AppendLayoutFrame(l, &buf);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kLayoutUpdate);
  EXPECT_EQ(frame->layout.version, 7u);
  EXPECT_EQ(frame->layout.num_sites, 10);
  EXPECT_EQ(frame->layout.num_shards, 3);
  EXPECT_EQ(frame->layout.starts, (std::vector<int32_t>{0, 4, 7, 10}));

  LayoutAckFrame a;
  a.version = 7;
  std::string ack;
  AppendLayoutAckFrame(a, &ack);
  frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(ack.data()) + 4, ack.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kLayoutAck);
  EXPECT_EQ(frame->layout_ack.version, 7u);
}

TEST(WireTest, LayoutFrameRejectsMalformedBoundaries) {
  // Non-ascending boundaries must fail decoding: a malicious or corrupt
  // layout would otherwise install broken routing on the worker.
  LayoutFrame l;
  l.version = 1;
  l.num_sites = 10;
  l.num_shards = 2;
  l.starts = {0, 7, 5};  // Descending tail.
  std::string buf;
  AppendLayoutFrame(l, &buf);
  EXPECT_FALSE(DecodeFramePayload(
                   reinterpret_cast<const uint8_t*>(buf.data()) + 4,
                   buf.size() - 4)
                   .ok());
}

TEST(WireTest, FinishDistinguishesCleanEofFromTruncation) {
  std::string stream;
  AppendEnvelopeFrame(Envelope{}, &stream);

  // Clean EOF: every appended byte was consumed as a whole frame.
  FrameReader clean;
  clean.Append(reinterpret_cast<const uint8_t*>(stream.data()), stream.size());
  WireFrame frame;
  auto r = clean.Next(&frame);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  EXPECT_TRUE(clean.Finish().ok());

  // EOF mid-frame at every split point: a distinct truncated-frame error,
  // not a silent partial read.
  for (size_t cut = 1; cut < stream.size(); ++cut) {
    FrameReader torn;
    torn.Append(reinterpret_cast<const uint8_t*>(stream.data()), cut);
    r = torn.Next(&frame);
    ASSERT_TRUE(r.ok()) << "cut=" << cut;
    ASSERT_FALSE(*r);
    Status fin = torn.Finish();
    ASSERT_FALSE(fin.ok()) << "cut=" << cut;
    EXPECT_NE(fin.message().find("truncated"), std::string::npos);
  }
}

TEST(WireTest, SocketStatsToString) {
  SocketStats s;
  s.frames_sent = 5;
  s.disconnects = 1;
  std::string text = s.ToString();
  EXPECT_NE(text.find("frames_tx=5"), std::string::npos);
  EXPECT_NE(text.find("disconnects=1"), std::string::npos);
}

TEST(WireTest, HelloHandshakeTimestampsRoundTrip) {
  HelloFrame h;
  h.worker = 1;
  h.t1_us = 1'234'567'890'123;
  std::string buf;
  AppendHelloFrame(h, &buf);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->hello.t1_us, h.t1_us);

  HelloAckFrame a;
  a.ok = 1;
  a.t1_us = h.t1_us;        // Echo for the offset estimate.
  a.t2_us = h.t1_us + 150;  // Coordinator receive.
  a.t3_us = h.t1_us + 170;  // Coordinator send.
  buf.clear();
  AppendHelloAckFrame(a, &buf);
  frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->hello_ack.t1_us, a.t1_us);
  EXPECT_EQ(frame->hello_ack.t2_us, a.t2_us);
  EXPECT_EQ(frame->hello_ack.t3_us, a.t3_us);
}

TelemetryFrame MakeTelemetryFrame() {
  TelemetryFrame t;
  t.worker = 1;
  t.final_flush = 1;
  t.wall_time_us = 1'700'000'000'000'000;
  t.clock_offset_us = -250;
  t.metrics.counters["runtime/site/updates"] = 100000;
  t.metrics.counters["runtime/socket/frames_tx"] = 42;
  t.metrics.gauges["queue_depth"] = 3.5;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {3, 2, 1, 0};
  h.count = 6;
  h.sum = 9.5;
  h.min = 0.5;
  h.max = 3.0;
  t.metrics.histograms["lag"] = h;
  TelemetryTraceEvent ev;
  ev.kind = 1;
  ev.epoch = 77;
  ev.site = 3;
  ev.value = -9;
  ev.duration_us = 120;
  ev.ts_us = t.wall_time_us - 5;
  t.events.push_back(ev);
  return t;
}

TEST(WireTest, TelemetryRoundTrip) {
  TelemetryFrame t = MakeTelemetryFrame();
  std::string buf;
  ASSERT_TRUE(AppendTelemetryFrame(t, &buf).ok());
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kTelemetry);
  const TelemetryFrame& got = frame->telemetry;
  EXPECT_EQ(got.worker, 1);
  EXPECT_EQ(got.final_flush, 1);
  EXPECT_EQ(got.wall_time_us, t.wall_time_us);
  EXPECT_EQ(got.clock_offset_us, -250);
  EXPECT_EQ(got.metrics.counters.at("runtime/site/updates"), 100000);
  EXPECT_DOUBLE_EQ(got.metrics.gauges.at("queue_depth"), 3.5);
  const obs::HistogramSnapshot& lag = got.metrics.histograms.at("lag");
  ASSERT_EQ(lag.bounds.size(), 3u);
  ASSERT_EQ(lag.counts.size(), 4u);
  EXPECT_EQ(lag.count, 6);
  EXPECT_DOUBLE_EQ(lag.sum, 9.5);
  EXPECT_DOUBLE_EQ(lag.min, 0.5);
  EXPECT_DOUBLE_EQ(lag.max, 3.0);
  ASSERT_EQ(got.events.size(), 1u);
  EXPECT_EQ(got.events[0].epoch, 77);
  EXPECT_EQ(got.events[0].site, 3);
  EXPECT_EQ(got.events[0].value, -9);
  EXPECT_EQ(got.events[0].duration_us, 120);
  EXPECT_EQ(got.events[0].ts_us, t.wall_time_us - 5);
}

TEST(WireTest, ReaderAcceptsLargeTelemetryButNotLargeEnvelopes) {
  // Telemetry frames are the one type allowed past kMaxFramePayload: the
  // reader peeks the type byte before enforcing the size cap.
  TelemetryFrame t = MakeTelemetryFrame();
  for (int i = 0; i < 2000; ++i) {
    t.metrics.counters["c/" + std::to_string(i)] = i;
  }
  std::string buf;
  ASSERT_TRUE(AppendTelemetryFrame(t, &buf).ok());
  ASSERT_GT(buf.size(), kMaxFramePayload);

  FrameReader reader;
  reader.Append(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  WireFrame frame;
  auto r = reader.Next(&frame);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_TRUE(*r);
  EXPECT_EQ(frame.type, FrameType::kTelemetry);
  EXPECT_EQ(frame.telemetry.metrics.counters.size(),
            t.metrics.counters.size());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, TelemetryRejectsOversizedPayload) {
  // Past kMaxTelemetryPayload the append itself refuses — callers trim the
  // event batch rather than shipping unbounded frames.
  TelemetryFrame t;
  const std::string big(2048, 'x');
  for (int i = 0; i < 600; ++i) {
    t.metrics.counters[big + std::to_string(i)] = i;
  }
  std::string buf;
  Status st = AppendTelemetryFrame(t, &buf);
  ASSERT_FALSE(st.ok());
}

TEST(WireTest, TelemetryRejectsMalformedHistogramShape) {
  // counts must be exactly bounds.size() + 1; a mismatched snapshot is a
  // programming error upstream and must not serialize.
  TelemetryFrame t;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {1, 2};  // Missing the overflow bucket.
  h.count = 3;
  t.metrics.histograms["bad"] = h;
  std::string buf;
  EXPECT_FALSE(AppendTelemetryFrame(t, &buf).ok());
}

TEST(WireTest, TelemetryTruncationsNeverDecodeGarbage) {
  TelemetryFrame t = MakeTelemetryFrame();
  std::string buf;
  ASSERT_TRUE(AppendTelemetryFrame(t, &buf).ok());
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(buf.data()) + 4;
  for (size_t len = 0; len < buf.size() - 4; ++len) {
    EXPECT_FALSE(DecodeFramePayload(payload, len).ok()) << "len=" << len;
  }
}

// kEnvelopeBatch (wire v4): K routed envelopes under one length prefix and
// one sequence number — the coalesced per-epoch update frame the writer
// emits when its send queue bursts.

TEST(WireTest, EnvelopeBatchRoundTrip) {
  std::vector<Envelope> sent;
  for (int i = 0; i < 37; ++i) {
    sent.push_back(MakeEnvelope(i, kCoordinatorId, ActorMsgKind::kEpochReport,
                                2000 + i, i * 11 - 5, i % 2 == 0));
  }
  std::string buf;
  AppendEnvelopeBatchFrame(sent.data(), sent.size(), &buf, /*seq=*/99);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kEnvelopeBatch);
  EXPECT_EQ(frame->seq, 99u);
  ASSERT_EQ(frame->batch.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectEnvelopeEq(sent[i], frame->batch[i]);
  }
}

TEST(WireTest, EnvelopeBatchSingletonMatchesLooseEnvelope) {
  Envelope e = MakeEnvelope(4, kCoordinatorId, ActorMsgKind::kAlarm, 17, 23,
                            true);
  std::string buf;
  AppendEnvelopeBatchFrame(&e, 1, &buf, /*seq=*/7);
  auto frame = DecodeFramePayload(
      reinterpret_cast<const uint8_t*>(buf.data()) + 4, buf.size() - 4);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kEnvelopeBatch);
  ASSERT_EQ(frame->batch.size(), 1u);
  ExpectEnvelopeEq(e, frame->batch[0]);
}

TEST(WireTest, EnvelopeBatchMaxSizeRoundTripsThroughReader) {
  // The largest legal batch must survive the FrameReader's oversized-frame
  // peek (it is bigger than a loose envelope but under kMaxBatchPayload).
  std::vector<Envelope> sent;
  for (uint32_t i = 0; i < kMaxBatchEnvelopes; ++i) {
    sent.push_back(MakeEnvelope(static_cast<int32_t>(i), kCoordinatorId,
                                ActorMsgKind::kEpochReport, i, i * 3, false));
  }
  std::string stream;
  AppendEnvelopeBatchFrame(sent.data(), sent.size(), &stream, /*seq=*/1);
  FrameReader reader;
  reader.Append(reinterpret_cast<const uint8_t*>(stream.data()),
                stream.size());
  WireFrame frame;
  auto produced = reader.Next(&frame);
  ASSERT_TRUE(produced.ok()) << produced.status().message();
  ASSERT_TRUE(*produced);
  ASSERT_EQ(frame.type, FrameType::kEnvelopeBatch);
  ASSERT_EQ(frame.batch.size(), sent.size());
  ExpectEnvelopeEq(sent.back(), frame.batch.back());
  EXPECT_TRUE(reader.Finish().ok());
}

TEST(WireTest, EnvelopeBatchTruncationsNeverDecodeGarbage) {
  std::vector<Envelope> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(MakeEnvelope(i, kCoordinatorId, ActorMsgKind::kAlarm,
                                i, i, false));
  }
  std::string buf;
  AppendEnvelopeBatchFrame(sent.data(), sent.size(), &buf, /*seq=*/3);
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(buf.data()) + 4;
  for (size_t len = 0; len < buf.size() - 4; ++len) {
    EXPECT_FALSE(DecodeFramePayload(payload, len).ok()) << "len=" << len;
  }
  // Trailing bytes are corruption too.
  std::string padded = buf + std::string(1, '\0');
  EXPECT_FALSE(DecodeFramePayload(
                   reinterpret_cast<const uint8_t*>(padded.data()) + 4,
                   padded.size() - 4)
                   .ok());
}

TEST(WireTest, EnvelopeBatchRejectsLyingCount) {
  // A count field claiming more envelopes than the body carries must fail
  // loudly instead of reading past the payload.
  Envelope e = MakeEnvelope(1, kCoordinatorId, ActorMsgKind::kAlarm, 1, 1,
                            false);
  std::string buf;
  AppendEnvelopeBatchFrame(&e, 1, &buf, /*seq=*/5);
  // Count lives right after the 3-byte header (version, magic, type) in the
  // payload; bump it from 1 to 2.
  buf[4 + 3] = 2;
  EXPECT_FALSE(DecodeFramePayload(
                   reinterpret_cast<const uint8_t*>(buf.data()) + 4,
                   buf.size() - 4)
                   .ok());
}

}  // namespace
}  // namespace dcv
