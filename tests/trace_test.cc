#include "trace/trace.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dcv {
namespace {

TEST(TraceTest, EmptyTrace) {
  Trace t(3);
  EXPECT_EQ(t.num_sites(), 3);
  EXPECT_EQ(t.num_epochs(), 0);
  EXPECT_EQ(t.site_names()[0], "site0");
  EXPECT_EQ(t.GlobalMaxValue(), 0);
}

TEST(TraceTest, CustomNames) {
  Trace t({"router-a", "router-b"});
  EXPECT_EQ(t.num_sites(), 2);
  EXPECT_EQ(t.site_names()[1], "router-b");
}

TEST(TraceTest, AppendAndAccess) {
  Trace t(2);
  ASSERT_TRUE(t.AppendEpoch({1, 2}).ok());
  ASSERT_TRUE(t.AppendEpoch({3, 4}).ok());
  EXPECT_EQ(t.num_epochs(), 2);
  EXPECT_EQ(t.at(0, 0), 1);
  EXPECT_EQ(t.at(1, 1), 4);
  EXPECT_EQ(t.epoch(1), (std::vector<int64_t>{3, 4}));
}

TEST(TraceTest, AppendValidation) {
  Trace t(2);
  EXPECT_FALSE(t.AppendEpoch({1}).ok());
  EXPECT_FALSE(t.AppendEpoch({1, 2, 3}).ok());
  EXPECT_FALSE(t.AppendEpoch({1, -2}).ok());
}

TEST(TraceTest, SiteSeries) {
  Trace t(2);
  ASSERT_TRUE(t.AppendEpoch({1, 10}).ok());
  ASSERT_TRUE(t.AppendEpoch({2, 20}).ok());
  ASSERT_TRUE(t.AppendEpoch({3, 30}).ok());
  EXPECT_EQ(t.SiteSeries(0), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(t.SiteSeries(1), (std::vector<int64_t>{10, 20, 30}));
}

TEST(TraceTest, WeightedSum) {
  Trace t(3);
  ASSERT_TRUE(t.AppendEpoch({1, 2, 3}).ok());
  EXPECT_EQ(t.WeightedSum(0, {}), 6);
  EXPECT_EQ(t.WeightedSum(0, {2, 1, 1}), 7);
  EXPECT_EQ(t.WeightedSum(0, {0, 0, 10}), 30);
}

TEST(TraceTest, SliceBounds) {
  Trace t(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendEpoch({i}).ok());
  }
  auto s = t.Slice(2, 5);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_epochs(), 3);
  EXPECT_EQ(s->at(0, 0), 2);
  EXPECT_EQ(s->at(2, 0), 4);
  EXPECT_FALSE(t.Slice(-1, 5).ok());
  EXPECT_FALSE(t.Slice(5, 2).ok());
  EXPECT_FALSE(t.Slice(0, 11).ok());
  auto empty = t.Slice(3, 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_epochs(), 0);
}

TEST(TraceTest, MaxValues) {
  Trace t(2);
  ASSERT_TRUE(t.AppendEpoch({5, 100}).ok());
  ASSERT_TRUE(t.AppendEpoch({50, 1}).ok());
  EXPECT_EQ(t.MaxValue(0), 50);
  EXPECT_EQ(t.MaxValue(1), 100);
  EXPECT_EQ(t.GlobalMaxValue(), 100);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace t({"alpha", "beta"});
  ASSERT_TRUE(t.AppendEpoch({10, 20}).ok());
  ASSERT_TRUE(t.AppendEpoch({30, 40}).ok());
  std::string path = testing::TempDir() + "/dcv_trace_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  auto back = Trace::ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->site_names(), t.site_names());
  EXPECT_EQ(back->num_epochs(), 2);
  EXPECT_EQ(back->at(1, 1), 40);
  std::remove(path.c_str());
}

TEST(TraceTest, ReadCsvRejectsBadHeader) {
  std::string path = testing::TempDir() + "/dcv_trace_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("time,a\n0,1\n", f);
    fclose(f);
  }
  EXPECT_FALSE(Trace::ReadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcv
