#include "runtime/socket_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dcv {
namespace {

SocketTransport::Options FastOptions() {
  SocketTransport::Options options;
  options.accept_timeout_ms = 5000;
  options.connect_timeout_ms = 1000;
  options.connect_attempts = 3;
  options.connect_backoff_ms = 10;
  options.io_timeout_ms = 5000;
  return options;
}

Envelope ToSite(int site, ActorMsgKind kind, int64_t epoch, int64_t value) {
  Envelope e;
  e.from = kCoordinatorId;
  e.to = site;
  e.msg.kind = kind;
  e.msg.epoch = epoch;
  e.msg.value = value;
  return e;
}

Envelope ToCoordinator(int site, ActorMsgKind kind, int64_t epoch,
                       int64_t value) {
  Envelope e;
  e.from = site;
  e.to = kCoordinatorId;
  e.msg.kind = kind;
  e.msg.epoch = epoch;
  e.msg.value = value;
  return e;
}

/// Connects `num_workers` worker transports to `coordinator` on loopback
/// (each from its own thread, since AcceptWorkers blocks the caller).
std::vector<std::unique_ptr<SocketTransport>> ConnectWorkers(
    SocketTransport* coordinator, int num_sites, int num_workers) {
  std::vector<std::unique_ptr<SocketTransport>> workers(
      static_cast<size_t>(num_workers));
  std::vector<std::thread> threads;
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&workers, coordinator, num_sites, num_workers, w] {
      auto t = SocketTransport::Connect("127.0.0.1", coordinator->port(), w,
                                        num_sites, num_workers, FastOptions());
      if (t.ok()) {
        workers[static_cast<size_t>(w)] = std::move(*t);
      }
    });
  }
  EXPECT_TRUE(coordinator->AcceptWorkers().ok());
  for (std::thread& t : threads) {
    t.join();
  }
  return workers;
}

TEST(SocketTransportTest, RoutesEnvelopesBothWays) {
  auto listen = SocketTransport::Listen(/*num_sites=*/4, /*num_workers=*/2,
                                        /*port=*/0, FastOptions());
  ASSERT_TRUE(listen.ok()) << listen.status().message();
  auto coordinator = std::move(*listen);
  ASSERT_GT(coordinator->port(), 0);
  auto workers = ConnectWorkers(coordinator.get(), 4, 2);
  ASSERT_TRUE(workers[0] != nullptr && workers[1] != nullptr);

  // Coordinator -> sites: worker w owns sites {w, w+2}.
  for (int site = 0; site < 4; ++site) {
    ASSERT_TRUE(coordinator->Send(
        ToSite(site, ActorMsgKind::kThresholdUpdate, 0, 100 + site)));
  }
  for (int w = 0; w < 2; ++w) {
    std::set<int> seen;
    Envelope e;
    for (int k = 0; k < 2; ++k) {
      ASSERT_TRUE(workers[static_cast<size_t>(w)]->RecvWorker(w, &e));
      EXPECT_EQ(e.msg.kind, ActorMsgKind::kThresholdUpdate);
      EXPECT_EQ(e.msg.value, 100 + e.to);
      seen.insert(e.to);
    }
    EXPECT_EQ(seen, (std::set<int>{w, w + 2}));
  }

  // Sites -> coordinator.
  for (int w = 0; w < 2; ++w) {
    ASSERT_TRUE(workers[static_cast<size_t>(w)]->Send(
        ToCoordinator(w, ActorMsgKind::kAlarm, 5, 999)));
  }
  std::set<int> froms;
  Envelope e;
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(coordinator->RecvCoordinator(&e));
    EXPECT_EQ(e.msg.kind, ActorMsgKind::kAlarm);
    froms.insert(e.from);
  }
  EXPECT_EQ(froms, (std::set<int>{0, 1}));

  workers[0]->Shutdown();
  workers[1]->Shutdown();
  coordinator->Shutdown();
  SocketStats stats = coordinator->stats();
  EXPECT_EQ(stats.frames_sent, 4);
  EXPECT_EQ(stats.frames_received, 2);
  EXPECT_GT(stats.bytes_sent, 0);
  EXPECT_EQ(stats.decode_errors, 0);
  EXPECT_EQ(stats.disconnects, 0);
}

TEST(SocketTransportTest, PreservesPerSenderOrderUnderLoad) {
  // Many more frames than any queue capacity: exercises the writer's
  // batching and the bounded boxes without losing or reordering anything.
  auto listen = SocketTransport::Listen(/*num_sites=*/1, /*num_workers=*/1,
                                        /*port=*/0, FastOptions());
  ASSERT_TRUE(listen.ok());
  auto coordinator = std::move(*listen);
  auto workers = ConnectWorkers(coordinator.get(), 1, 1);
  ASSERT_TRUE(workers[0] != nullptr);

  constexpr int kFrames = 500;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(coordinator->Send(
          ToSite(0, ActorMsgKind::kPollRequest, i, 2 * i)));
    }
  });
  Envelope e;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(workers[0]->RecvWorker(0, &e));
    EXPECT_EQ(e.msg.epoch, i);
    EXPECT_EQ(e.msg.value, 2 * i);
  }
  producer.join();
  workers[0]->Shutdown();
  coordinator->Shutdown();
}

TEST(SocketTransportTest, ShutdownFlushesQueuedFrames) {
  // Frames queued before Shutdown must still reach the peer: the writers
  // drain their boxes before the sockets half-close (a graceful kShutdown
  // broadcast is never lost).
  auto listen = SocketTransport::Listen(/*num_sites=*/1, /*num_workers=*/1,
                                        /*port=*/0, FastOptions());
  ASSERT_TRUE(listen.ok());
  auto coordinator = std::move(*listen);
  auto workers = ConnectWorkers(coordinator.get(), 1, 1);
  ASSERT_TRUE(workers[0] != nullptr);

  ASSERT_TRUE(coordinator->Send(ToSite(0, ActorMsgKind::kShutdown, 9, 0)));
  coordinator->Shutdown();

  Envelope e;
  ASSERT_TRUE(workers[0]->RecvWorker(0, &e));
  EXPECT_EQ(e.msg.kind, ActorMsgKind::kShutdown);
  EXPECT_EQ(e.msg.epoch, 9);
  // After the flush the stream ends cleanly: drained inbox reports closed.
  EXPECT_FALSE(workers[0]->RecvWorker(0, &e));
  workers[0]->Shutdown();
  EXPECT_EQ(workers[0]->stats().disconnects, 0);
}

TEST(SocketTransportTest, SendAfterPeerShutdownReportsClosed) {
  auto listen = SocketTransport::Listen(/*num_sites=*/1, /*num_workers=*/1,
                                        /*port=*/0, FastOptions());
  ASSERT_TRUE(listen.ok());
  auto coordinator = std::move(*listen);
  auto workers = ConnectWorkers(coordinator.get(), 1, 1);
  ASSERT_TRUE(workers[0] != nullptr);

  coordinator->Shutdown();
  Envelope e;
  // The worker's inbox closes once the coordinator's stream ends.
  EXPECT_FALSE(workers[0]->RecvWorker(0, &e));
  workers[0]->Shutdown();
  EXPECT_FALSE(workers[0]->Send(ToCoordinator(0, ActorMsgKind::kAlarm, 0, 0)));
}

TEST(SocketTransportTest, ConnectRetriesAreBoundedAndCounted) {
  SocketTransport::Options options = FastOptions();
  options.connect_attempts = 2;
  // Nothing listens on this port of the test's own ephemeral coordinator
  // after it is closed; use a fresh unlikely port instead.
  auto worker = SocketTransport::Connect("127.0.0.1", 1, /*worker=*/0,
                                         /*num_sites=*/1, /*num_workers=*/1,
                                         options);
  ASSERT_FALSE(worker.ok());
  EXPECT_NE(worker.status().message().find("after 2 attempts"),
            std::string::npos)
      << worker.status().message();
}

TEST(SocketTransportTest, AcceptTimesOutWhenWorkersMissing) {
  SocketTransport::Options options = FastOptions();
  options.accept_timeout_ms = 50;
  auto listen = SocketTransport::Listen(/*num_sites=*/2, /*num_workers=*/2,
                                        /*port=*/0, options);
  ASSERT_TRUE(listen.ok());
  Status s = (*listen)->AcceptWorkers();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("timed out waiting for worker"),
            std::string::npos)
      << s.message();
  EXPECT_EQ((*listen)->stats().accept_timeouts, 1);
}

TEST(SocketTransportTest, RejectsShapeMismatchAndAdvertisesMode) {
  SocketTransport::Options options = FastOptions();
  options.virtual_time = false;
  auto listen = SocketTransport::Listen(/*num_sites=*/2, /*num_workers=*/1,
                                        /*port=*/0, options);
  ASSERT_TRUE(listen.ok());
  auto coordinator = std::move(*listen);

  // Wrong shape first: the coordinator rejects and AcceptWorkers fails.
  Result<std::unique_ptr<SocketTransport>> bad = InternalError("unset");
  std::thread t([&bad, &coordinator] {
    bad = SocketTransport::Connect("127.0.0.1", coordinator->port(),
                                   /*worker=*/0, /*num_sites=*/3,
                                   /*num_workers=*/1, FastOptions());
  });
  Status accept = coordinator->AcceptWorkers();
  t.join();
  EXPECT_FALSE(accept.ok());
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("rejected"), std::string::npos)
      << bad.status().message();

  // A matching worker on a fresh coordinator adopts its advertised mode.
  auto relisten = SocketTransport::Listen(2, 1, 0, options);
  ASSERT_TRUE(relisten.ok());
  auto workers = ConnectWorkers(relisten->get(), 2, 1);
  ASSERT_TRUE(workers[0] != nullptr);
  EXPECT_FALSE(workers[0]->virtual_time());
  workers[0]->Shutdown();
  (*relisten)->Shutdown();
}

TEST(SocketTransportTest, ConnectRetryExhaustionReturnsWithinDeadline) {
  // Regression: a worker dialing a dead port must burn through its bounded
  // retry budget and return a clean error well inside the configured
  // deadline — never hang in connect() or sleep forever in backoff.
  SocketTransport::Options options = FastOptions();
  options.connect_attempts = 3;
  options.connect_timeout_ms = 500;
  options.connect_backoff_ms = 10;
  const auto t0 = std::chrono::steady_clock::now();
  // Port 1 on loopback: nothing listens there, connect() is refused fast.
  auto worker = SocketTransport::Connect("127.0.0.1", 1, /*worker=*/0,
                                         /*num_sites=*/1, /*num_workers=*/1,
                                         options);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(worker.ok());
  EXPECT_NE(worker.status().message().find("after 3 attempts"),
            std::string::npos)
      << worker.status().message();
  // Worst case: 3 * connect_timeout + 10 + 20 ms of backoff = 1.53 s.
  // A generous 4 s bound still catches an unbounded hang.
  EXPECT_LT(elapsed, std::chrono::seconds(4));
}

TEST(SocketTransportTest, ReconnectsAndReplaysAfterSeveredLink) {
  // Kill the TCP link mid-run: with allow_reconnect on both sides the
  // worker redials, the resume handshake fences the old connection, and
  // both directions replay whatever the peer missed — nothing is lost and
  // nothing is delivered twice.
  SocketTransport::Options options = FastOptions();
  options.allow_reconnect = true;
  options.reconnect_window_ms = 5000;
  options.reconnect_grace_ms = 20;
  auto listen = SocketTransport::Listen(/*num_sites=*/1, /*num_workers=*/1,
                                        /*port=*/0, options);
  ASSERT_TRUE(listen.ok()) << listen.status().message();
  auto coordinator = std::move(*listen);

  std::unique_ptr<SocketTransport> worker;
  std::thread dial([&] {
    auto t = SocketTransport::Connect("127.0.0.1", coordinator->port(),
                                      /*worker=*/0, /*num_sites=*/1,
                                      /*num_workers=*/1, options);
    if (t.ok()) {
      worker = std::move(*t);
    }
  });
  ASSERT_TRUE(coordinator->AcceptWorkers().ok());
  dial.join();
  ASSERT_TRUE(worker != nullptr);

  // Sanity: one round trip on the healthy link.
  ASSERT_TRUE(
      coordinator->Send(ToSite(0, ActorMsgKind::kThresholdUpdate, 0, 50)));
  Envelope e;
  ASSERT_TRUE(worker->RecvWorker(0, &e));
  EXPECT_EQ(e.msg.value, 50);

  ASSERT_TRUE(coordinator->InjectPeerFailure(0).ok());

  // Both directions keep sending through the outage; the bounded send
  // queues absorb the burst and the resume replays the rest.
  constexpr int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(
        coordinator->Send(ToSite(0, ActorMsgKind::kPollRequest, i, 10 + i)));
    ASSERT_TRUE(
        worker->Send(ToCoordinator(0, ActorMsgKind::kAlarm, i, 20 + i)));
  }
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(worker->RecvWorker(0, &e)) << "frame " << i;
    EXPECT_EQ(e.msg.epoch, i);
    EXPECT_EQ(e.msg.value, 10 + i);
  }
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(coordinator->RecvCoordinator(&e)) << "frame " << i;
    EXPECT_EQ(e.msg.epoch, i);
    EXPECT_EQ(e.msg.value, 20 + i);
  }

  worker->Shutdown();
  coordinator->Shutdown();
  SocketStats cstats = coordinator->stats();
  EXPECT_GE(cstats.disconnects, 1);
  EXPECT_EQ(cstats.reconnects, 1);
  // The dedup layer keeps duplicates off the inboxes; the counter just
  // records how many the replay produced (bounded by the ring).
  EXPECT_LE(cstats.duplicate_frames,
            static_cast<int64_t>(options.replay_capacity));
  EXPECT_EQ(worker->stats().reconnects, 1);
}

TEST(SocketTransportTest, ValidatesArguments) {
  EXPECT_FALSE(SocketTransport::Listen(0, 1, 0, FastOptions()).ok());
  EXPECT_FALSE(SocketTransport::Listen(2, 3, 0, FastOptions()).ok());
  EXPECT_FALSE(SocketTransport::Listen(2, 1, 70000, FastOptions()).ok());
  EXPECT_FALSE(
      SocketTransport::Connect("not-an-ip", 80, 0, 1, 1, FastOptions()).ok());
  EXPECT_FALSE(
      SocketTransport::Connect("127.0.0.1", 80, 5, 4, 2, FastOptions()).ok());
}

}  // namespace
}  // namespace dcv
