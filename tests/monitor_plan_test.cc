#include "sim/monitor_plan.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dcv {
namespace {

MonitorPlan SamplePlan() {
  MonitorPlan plan;
  plan.constraint_text = "r1 + r2 <= 100";
  plan.global_threshold = 100;
  plan.solver_name = "fptas";
  plan.site_names = {"r1", "r2"};
  plan.bounds = {SiteBounds{0, 60}, SiteBounds{0, 40}};
  return plan;
}

TEST(MonitorPlanTest, ValidateAcceptsGoodPlan) {
  EXPECT_TRUE(SamplePlan().Validate().ok());
}

TEST(MonitorPlanTest, ValidateRejectsMisalignment) {
  MonitorPlan plan = SamplePlan();
  plan.bounds.pop_back();
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(MonitorPlanTest, ValidateRejectsBadNames) {
  MonitorPlan plan = SamplePlan();
  plan.site_names[0] = "has space";
  EXPECT_FALSE(plan.Validate().ok());
  plan = SamplePlan();
  plan.site_names[0] = "";
  EXPECT_FALSE(plan.Validate().ok());
  plan = SamplePlan();
  plan.site_names[1] = plan.site_names[0];
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(MonitorPlanTest, SerializeParseRoundTrip) {
  MonitorPlan plan = SamplePlan();
  auto back = MonitorPlan::Parse(plan.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->constraint_text, plan.constraint_text);
  EXPECT_EQ(back->global_threshold, plan.global_threshold);
  EXPECT_EQ(back->solver_name, plan.solver_name);
  EXPECT_EQ(back->site_names, plan.site_names);
  EXPECT_EQ(back->bounds, plan.bounds);
}

TEST(MonitorPlanTest, ParseToleratesCommentsAndBlankLines) {
  const std::string text =
      "# dcv-monitor-plan v1\n"
      "\n"
      "# produced by dcvtool on 2026-07-04\n"
      "threshold: 42\n"
      "site: a 0 10\n";
  auto plan = MonitorPlan::Parse(text);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->global_threshold, 42);
  ASSERT_EQ(plan->site_names.size(), 1u);
  EXPECT_TRUE(plan->SiteOk(0, 10));
  EXPECT_FALSE(plan->SiteOk(0, 11));
}

TEST(MonitorPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(MonitorPlan::Parse("").ok());
  EXPECT_FALSE(MonitorPlan::Parse("threshold: 5\n").ok());  // No header.
  EXPECT_FALSE(
      MonitorPlan::Parse("# dcv-monitor-plan v1\nwhat is this\n").ok());
  EXPECT_FALSE(
      MonitorPlan::Parse("# dcv-monitor-plan v1\nbogus: 1\n").ok());
  EXPECT_FALSE(
      MonitorPlan::Parse("# dcv-monitor-plan v1\nsite: a 1\n").ok());
  EXPECT_FALSE(
      MonitorPlan::Parse("# dcv-monitor-plan v1\nsite: a x y\n").ok());
}

TEST(MonitorPlanTest, ConstraintTextWithColonsSurvives) {
  MonitorPlan plan = SamplePlan();
  plan.constraint_text = "MIN{a, b} <= 5 && a <= 3";
  auto back = MonitorPlan::Parse(plan.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->constraint_text, plan.constraint_text);
}

TEST(MonitorPlanTest, FileRoundTrip) {
  MonitorPlan plan = SamplePlan();
  std::string path = testing::TempDir() + "/dcv_plan_test.txt";
  ASSERT_TRUE(plan.WriteToFile(path).ok());
  auto back = MonitorPlan::ReadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->bounds, plan.bounds);
  std::remove(path.c_str());
  EXPECT_FALSE(MonitorPlan::ReadFromFile(path).ok());
}

TEST(MonitorPlanTest, EmptyAlwaysAlarmIntervalRoundTrips) {
  MonitorPlan plan = SamplePlan();
  plan.bounds[0] = SiteBounds{5, 4};  // Empty interval: always alarm.
  auto back = MonitorPlan::Parse(plan.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->bounds[0].empty());
  EXPECT_FALSE(back->SiteOk(0, 4));
  EXPECT_FALSE(back->SiteOk(0, 5));
}

}  // namespace
}  // namespace dcv
