#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/adaptive_filter_scheme.h"
#include "sim/geometric_scheme.h"
#include "sim/local_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

// A small, reproducible workload: heterogeneous lognormal sites.
struct Workload {
  Trace training{0};
  Trace eval{0};
};

Workload MakeWorkload(uint64_t seed, int num_sites = 4,
                      int64_t train_epochs = 800, int64_t eval_epochs = 800) {
  SyntheticTraceOptions options;
  options.num_sites = num_sites;
  options.num_epochs = train_epochs + eval_epochs;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.0;
  options.param2 = 0.8;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, train_epochs);
  w.eval = *trace->Slice(train_epochs, train_epochs + eval_epochs);
  return w;
}

int64_t PickThreshold(const Workload& w, double overflow_fraction) {
  auto t = ThresholdForOverflowFraction(w.eval, {}, overflow_fraction);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(LocalSchemeTest, RequiresSolverAndTraining) {
  LocalThresholdScheme::Options options;
  LocalThresholdScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(LocalSchemeTest, InstalledThresholdsSatisfyCovering) {
  Workload w = MakeWorkload(1);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme scheme(options);
  int64_t threshold = PickThreshold(w, 0.02);
  SimOptions sim;
  sim.global_threshold = threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  // Covering: sum of thresholds within the budget.
  int64_t sum = 0;
  for (int64_t t : scheme.thresholds()) {
    sum += t;
  }
  EXPECT_LE(sum, threshold);
  // Covering implies zero missed violations.
  EXPECT_EQ(result->missed_violations, 0);
  EXPECT_EQ(result->detected_violations, result->true_violations);
}

TEST(LocalSchemeTest, SilentWhenFarFromThreshold) {
  Workload w = MakeWorkload(2);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  // Threshold far above anything observed: no alarms, no messages.
  sim.global_threshold = 100 * PickThreshold(w, 0.0);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->messages.total(), 0);
  EXPECT_EQ(result->true_violations, 0);
}

TEST(LocalSchemeTest, EveryAlarmEpochTriggersExactlyOnePollRound) {
  Workload w = MakeWorkload(3);
  EqualValueSolver solver;
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = PickThreshold(w, 0.05);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->polled_epochs, result->alarm_epochs);
  EXPECT_EQ(result->messages.of(MessageType::kPollRequest),
            result->polled_epochs * w.eval.num_sites());
  EXPECT_EQ(result->messages.of(MessageType::kPollResponse),
            result->polled_epochs * w.eval.num_sites());
  EXPECT_EQ(result->messages.of(MessageType::kAlarm), result->total_alarms);
}

TEST(GeometricSchemeTest, NeverMissesViolations) {
  Workload w = MakeWorkload(4);
  GeometricScheme scheme;
  SimOptions sim;
  sim.global_threshold = PickThreshold(w, 0.03);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->missed_violations, 0);
  EXPECT_GT(result->polled_epochs, 0);
  // Geometric pays an extra threshold-update round per violation epoch.
  EXPECT_EQ(result->messages.of(MessageType::kThresholdUpdate),
            result->polled_epochs * w.eval.num_sites());
}

TEST(GeometricSchemeTest, AdaptsThresholdsAfterViolation) {
  GeometricScheme scheme;
  SimContext ctx;
  ctx.num_sites = 2;
  ctx.weights = {1, 1};
  ctx.global_threshold = 10;
  MessageCounter counter;
  ctx.counter = &counter;
  ASSERT_TRUE(scheme.Initialize(ctx).ok());
  EXPECT_EQ(scheme.thresholds(), (std::vector<int64_t>{5, 5}));
  // Epoch with an alarm at site 0 (6 > 5): slack = 10 - 8 = 2, share 1.
  auto r = scheme.OnEpoch({6, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_alarms, 1);
  EXPECT_TRUE(r->polled);
  EXPECT_FALSE(r->violation_reported);
  EXPECT_EQ(scheme.thresholds(), (std::vector<int64_t>{7, 3}));
}

TEST(GeometricSchemeTest, KeepsPollingWhileInViolation) {
  GeometricScheme scheme;
  SimContext ctx;
  ctx.num_sites = 2;
  ctx.weights = {1, 1};
  ctx.global_threshold = 10;
  MessageCounter counter;
  ctx.counter = &counter;
  ASSERT_TRUE(scheme.Initialize(ctx).ok());
  auto r1 = scheme.OnEpoch({9, 9});  // Violation: sum 18 > 10.
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->violation_reported);
  // Values unchanged: the adapted thresholds must keep alarming.
  auto r2 = scheme.OnEpoch({9, 9});
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->num_alarms, 0);
  EXPECT_TRUE(r2->violation_reported);
}

TEST(PollingSchemeTest, PeriodOneDetectsEverythingAtFullCost) {
  Workload w = MakeWorkload(5);
  PollingScheme scheme(1);
  SimOptions sim;
  sim.global_threshold = PickThreshold(w, 0.05);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->missed_violations, 0);
  EXPECT_EQ(result->polled_epochs, w.eval.num_epochs());
  EXPECT_EQ(result->messages.total(),
            2 * w.eval.num_epochs() * w.eval.num_sites());
}

TEST(PollingSchemeTest, SparsePollingMissesViolations) {
  Workload w = MakeWorkload(6);
  PollingScheme scheme(50);
  SimOptions sim;
  sim.global_threshold = PickThreshold(w, 0.05);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->true_violations, 0);
  EXPECT_GT(result->missed_violations, 0);
  // But it is much cheaper than per-epoch polling.
  EXPECT_LT(result->messages.total(),
            2 * w.eval.num_epochs() * w.eval.num_sites() / 10);
}

TEST(PollingSchemeTest, RejectsBadPeriod) {
  PollingScheme scheme(0);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(AdaptiveFilterSchemeTest, NeverMissesViolations) {
  Workload w = MakeWorkload(7);
  AdaptiveFilterScheme scheme;
  SimOptions sim;
  sim.global_threshold = PickThreshold(w, 0.03);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->missed_violations, 0);
}

TEST(AdaptiveFilterSchemeTest, TracksContinuouslyEvenWhenSafe) {
  Workload w = MakeWorkload(8);
  AdaptiveFilterScheme::Options options;
  options.precision = 0.05;
  AdaptiveFilterScheme scheme(options);
  SimOptions sim;
  // Threshold at the max observed sum: never violated, but the tight
  // tracking filters keep generating traffic anyway — the overhead the
  // local-threshold approach avoids.
  sim.global_threshold = PickThreshold(w, 0.0);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->true_violations, 0);
  EXPECT_GT(result->messages.of(MessageType::kFilterReport), 0);
  EXPECT_GT(result->messages.total(), w.eval.num_epochs() / 4);
}

TEST(AdaptiveFilterSchemeTest, WidthReallocationPreservesDetection) {
  Workload w = MakeWorkload(9);
  AdaptiveFilterScheme::Options options;
  options.precision = 0.05;
  options.realloc_period = 50;
  AdaptiveFilterScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = PickThreshold(w, 0.03);
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->missed_violations, 0);
}

TEST(AdaptiveFilterSchemeTest, ReallocationReducesReportsOnSkewedVolatility) {
  // Site 0 is wildly volatile, the others nearly constant: shifting width
  // budget toward site 0 must reduce filter reports versus uniform widths.
  Trace training(4);
  Trace eval(4);
  Rng rng(44);
  for (int i = 0; i < 2000; ++i) {
    std::vector<int64_t> row{rng.UniformInt(0, 10000),
                             5000 + rng.UniformInt(0, 10),
                             5000 + rng.UniformInt(0, 10),
                             5000 + rng.UniformInt(0, 10)};
    if (i < 500) {
      ASSERT_TRUE(training.AppendEpoch(std::move(row)).ok());
    } else {
      ASSERT_TRUE(eval.AppendEpoch(std::move(row)).ok());
    }
  }
  SimOptions sim;
  sim.global_threshold = 40000;  // Never violated (max sum ~25030).

  AdaptiveFilterScheme::Options uniform;
  uniform.precision = 0.2;
  AdaptiveFilterScheme uniform_scheme(uniform);
  auto uniform_result = RunSimulation(&uniform_scheme, sim, training, eval);
  ASSERT_TRUE(uniform_result.ok());

  AdaptiveFilterScheme::Options adaptive = uniform;
  adaptive.realloc_period = 100;
  AdaptiveFilterScheme adaptive_scheme(adaptive);
  auto adaptive_result = RunSimulation(&adaptive_scheme, sim, training, eval);
  ASSERT_TRUE(adaptive_result.ok());

  EXPECT_EQ(uniform_result->missed_violations, 0);
  EXPECT_EQ(adaptive_result->missed_violations, 0);
  EXPECT_LT(adaptive_result->messages.of(MessageType::kFilterReport),
            uniform_result->messages.of(MessageType::kFilterReport));
}

TEST(AdaptiveFilterSchemeTest, RejectsBadMinShare) {
  AdaptiveFilterScheme::Options options;
  options.min_share = 1.5;
  AdaptiveFilterScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(AdaptiveFilterSchemeTest, RejectsBadPrecision) {
  AdaptiveFilterScheme::Options options;
  options.precision = 0.0;
  AdaptiveFilterScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());
}

TEST(MessageCounterTest, CountsAndResets) {
  MessageCounter c;
  c.Count(MessageType::kAlarm);
  c.Count(MessageType::kPollRequest, 5);
  EXPECT_EQ(c.of(MessageType::kAlarm), 1);
  EXPECT_EQ(c.of(MessageType::kPollRequest), 5);
  EXPECT_EQ(c.total(), 6);
  EXPECT_NE(c.ToString(), "none");
  c.Reset();
  EXPECT_EQ(c.total(), 0);
  EXPECT_EQ(c.ToString(), "none");
}

}  // namespace
}  // namespace dcv
