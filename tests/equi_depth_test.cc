#include "histogram/equi_depth.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "histogram/empirical_cdf.h"

namespace dcv {
namespace {

TEST(EquiDepthTest, BuildValidation) {
  EXPECT_FALSE(EquiDepthHistogram::Build({}, 10, 4).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build({1}, 10, 0).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build({1}, -1, 4).ok());
  EXPECT_TRUE(EquiDepthHistogram::Build({1, 2, 3}, 10, 2).ok());
}

TEST(EquiDepthTest, TotalWeightMatchesSampleSize) {
  auto h = EquiDepthHistogram::Build({5, 1, 9, 3, 7}, 10, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(10), 5.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(9), 5.0);
}

TEST(EquiDepthTest, ZeroBelowMinimumObservation) {
  auto h = EquiDepthHistogram::Build({10, 20, 30}, 100, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->CumulativeAt(9), 0.0);
  EXPECT_GT(h->CumulativeAt(10), 0.0);
}

TEST(EquiDepthTest, ExactAtBucketBoundaries) {
  // 12 observations, 4 buckets of 3: boundaries at sorted positions 3,6,9,12.
  std::vector<int64_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  auto h = EquiDepthHistogram::Build(data, 20, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 4);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(3), 3.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(6), 6.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(9), 9.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(12), 12.0);
}

TEST(EquiDepthTest, DuplicateHeavyDataCollapsesBuckets) {
  std::vector<int64_t> data(100, 5);
  data.push_back(9);
  auto h = EquiDepthHistogram::Build(data, 10, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->CumulativeAt(4), 0.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(5), 100.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(9), 101.0);
}

TEST(EquiDepthTest, CdfIsMonotone) {
  Rng rng(12);
  std::vector<int64_t> data;
  for (int i = 0; i < 3000; ++i) {
    data.push_back(static_cast<int64_t>(rng.LogNormal(5.0, 1.5)));
  }
  auto h = EquiDepthHistogram::Build(data, 1'000'000, 100);
  ASSERT_TRUE(h.ok());
  double prev = -1;
  for (int64_t v = 0; v <= 1'000'000; v += 9973) {
    double c = h->CumulativeAt(v);
    EXPECT_GE(c, prev - 1e-9);
    prev = c;
  }
}

TEST(EquiDepthTest, ApproximatesEmpiricalCdfOnSkewedData) {
  Rng rng(13);
  std::vector<int64_t> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(static_cast<int64_t>(rng.LogNormal(6.0, 1.0)));
  }
  auto h = EquiDepthHistogram::Build(data, 1'000'000, 100);
  ASSERT_TRUE(h.ok());
  EmpiricalCdf exact(data, 1'000'000);
  // Equi-depth with k buckets: error within a bucket is at most its depth.
  double max_err = 0;
  for (int64_t v = 0; v <= 100000; v += 503) {
    max_err = std::max(max_err,
                       std::abs(h->CumulativeAt(v) - exact.CumulativeAt(v)));
  }
  EXPECT_LE(max_err, 5000.0 / 100.0 + 1.0);
}

TEST(EquiDepthTest, FromBoundariesValidation) {
  EXPECT_FALSE(EquiDepthHistogram::FromBoundaries({}, {}, 10).ok());
  EXPECT_FALSE(EquiDepthHistogram::FromBoundaries({1, 2}, {1.0}, 10).ok());
  EXPECT_FALSE(EquiDepthHistogram::FromBoundaries({2, 1}, {1.0, 1.0}, 10).ok());
  EXPECT_FALSE(
      EquiDepthHistogram::FromBoundaries({1, 11}, {1.0, 1.0}, 10).ok());
  EXPECT_FALSE(
      EquiDepthHistogram::FromBoundaries({1, 2}, {1.0, -1.0}, 10).ok());
  EXPECT_TRUE(EquiDepthHistogram::FromBoundaries({1, 5}, {2.0, 3.0}, 10).ok());
}

TEST(EquiDepthTest, FromBoundariesCdf) {
  auto h = EquiDepthHistogram::FromBoundaries({4, 8}, {4.0, 4.0}, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->total_weight(), 8.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(4), 4.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(6), 6.0);  // Interpolated in (4, 8].
  EXPECT_DOUBLE_EQ(h->CumulativeAt(8), 8.0);
  EXPECT_DOUBLE_EQ(h->CumulativeAt(10), 8.0);
}

TEST(EquiDepthTest, InverseLookupConsistency) {
  Rng rng(14);
  std::vector<int64_t> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(rng.UniformInt(100, 900));
  }
  auto h = EquiDepthHistogram::Build(data, 1000, 25);
  ASSERT_TRUE(h.ok());
  for (double target = 1; target < 1000; target += 111) {
    int64_t v = h->MinValueWithCumAtLeast(target);
    ASSERT_LE(v, 1000);
    EXPECT_GE(h->CumulativeAt(v), target - 1e-9);
    if (v > 0) {
      EXPECT_LT(h->CumulativeAt(v - 1), target);
    }
  }
}

class EquiDepthBucketSweep : public testing::TestWithParam<int> {};

TEST_P(EquiDepthBucketSweep, MoreBucketsNeverHurtAccuracy) {
  const int buckets = GetParam();
  Rng rng(15);
  std::vector<int64_t> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(static_cast<int64_t>(rng.LogNormal(5.0, 1.0)));
  }
  auto h = EquiDepthHistogram::Build(data, 100000, buckets);
  ASSERT_TRUE(h.ok());
  EmpiricalCdf exact(data, 100000);
  double max_err = 0;
  for (int64_t v = 0; v <= 5000; v += 91) {
    max_err = std::max(max_err,
                       std::abs(h->CumulativeAt(v) - exact.CumulativeAt(v)));
  }
  // Interpolation error is bounded by one bucket's depth.
  EXPECT_LE(max_err, 2000.0 / buckets + 1.0) << "buckets=" << buckets;
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, EquiDepthBucketSweep,
                         testing::Values(10, 25, 50, 100, 200));

}  // namespace
}  // namespace dcv
