// End-to-end tests: parse a global constraint, normalize it, select local
// thresholds, and verify the full pipeline against a simulated deployment —
// the workflow a user of the library follows.

#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "constraints/normalize.h"
#include "constraints/parser.h"
#include "histogram/equi_depth.h"
#include "sim/local_scheme.h"
#include "sim/monitor_plan.h"
#include "sim/runner.h"
#include "threshold/boolean_solver.h"
#include "threshold/exact_dp.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

namespace dcv {
namespace {

TEST(IntegrationTest, ParseNormalizeSolveCoversSimulatedTraffic) {
  // Build per-site histograms from a synthetic SNMP training week, solve a
  // parsed boolean constraint, then replay the next week and check that
  // every global violation coincides with a local-bound violation.
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 3;
  trace_options.num_weeks = 2;
  trace_options.epochs_per_day = 60;
  trace_options.seed = 101;
  auto trace = GenerateSnmpTrace(trace_options);
  ASSERT_TRUE(trace.ok());
  int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace eval = *trace->Slice(week, 2 * week);

  // Global constraint: total traffic bounded AND no single-pair MAX too hot.
  auto sums = EpochSums(eval, {});
  std::vector<double> sums_d(sums.begin(), sums.end());
  int64_t total_cap = static_cast<int64_t>(Quantile(sums_d, 0.98));
  int64_t pair_cap = total_cap;  // Loose second conjunct.
  auto parsed = ParseConstraintWithVars(
      "site0 + site1 + site2 <= " + std::to_string(total_cap) +
          " && MAX{site0 + site1, site1 + site2} <= " +
          std::to_string(pair_cap),
      {"site0", "site1", "site2"});
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto cnf = ToCnf(*parsed);
  ASSERT_TRUE(cnf.ok());

  // Histograms as in the paper: 100-bucket equi-depth on training data.
  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  std::vector<const DistributionModel*> model_ptrs;
  for (int i = 0; i < 3; ++i) {
    auto h = EquiDepthHistogram::Build(training.SiteSeries(i),
                                       trace->GlobalMaxValue() * 2, 100);
    ASSERT_TRUE(h.ok());
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(*h)));
    model_ptrs.push_back(models.back().get());
  }

  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto solution = solver.Solve(*cnf, model_ptrs);
  ASSERT_TRUE(solution.ok()) << solution.status();

  // Covering property against the real evaluation traffic.
  int64_t violations = 0;
  int64_t alarms_at_violations = 0;
  for (int64_t t = 0; t < eval.num_epochs(); ++t) {
    const auto& v = eval.epoch(t);
    bool global_ok = parsed->Evaluate(v);
    bool any_local_violated = false;
    for (int i = 0; i < 3; ++i) {
      if (!solution->bounds[static_cast<size_t>(i)].Contains(
              v[static_cast<size_t>(i)])) {
        any_local_violated = true;
      }
    }
    if (!global_ok) {
      ++violations;
      if (any_local_violated) {
        ++alarms_at_violations;
      }
    }
  }
  EXPECT_GT(violations, 0);
  EXPECT_EQ(alarms_at_violations, violations)
      << "covering property violated on replay";
}

TEST(IntegrationTest, FptasBeatsEqualValueOnSkewedSites) {
  // The headline claim, end to end on a miniature version of the paper's
  // experiment: with heterogeneous sites, FPTAS thresholds produce fewer
  // messages than Equal-Value thresholds, with zero missed detections for
  // both.
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 10;
  trace_options.num_weeks = 2;
  trace_options.epochs_per_day = 100;
  trace_options.seed = 2024;
  auto trace = GenerateSnmpTrace(trace_options);
  ASSERT_TRUE(trace.ok());
  int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace eval = *trace->Slice(week, 2 * week);

  auto threshold = ThresholdForOverflowFraction(eval, {}, 0.01);
  ASSERT_TRUE(threshold.ok());
  SimOptions sim;
  sim.global_threshold = *threshold;

  FptasSolver fptas(0.05);
  EqualValueSolver equal_value;

  LocalThresholdScheme::Options fptas_options;
  fptas_options.solver = &fptas;
  LocalThresholdScheme fptas_scheme(fptas_options);
  LocalThresholdScheme::Options ev_options;
  ev_options.solver = &equal_value;
  LocalThresholdScheme ev_scheme(ev_options);

  auto fptas_result = RunSimulation(&fptas_scheme, sim, training, eval);
  auto ev_result = RunSimulation(&ev_scheme, sim, training, eval);
  ASSERT_TRUE(fptas_result.ok());
  ASSERT_TRUE(ev_result.ok());

  EXPECT_EQ(fptas_result->missed_violations, 0);
  EXPECT_EQ(ev_result->missed_violations, 0);
  EXPECT_LT(fptas_result->messages.total(), ev_result->messages.total());
}

TEST(IntegrationTest, ExactDpAgreesWithFptasOnTrainedHistograms) {
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 4;
  trace_options.num_weeks = 1;
  trace_options.epochs_per_day = 60;
  trace_options.seed = 55;
  trace_options.base_median = 50.0;  // Small values so exact DP is feasible.
  trace_options.site_scale_sigma = 0.8;
  auto trace = GenerateSnmpTrace(trace_options);
  ASSERT_TRUE(trace.ok());

  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  ThresholdProblem problem;
  for (int i = 0; i < 4; ++i) {
    auto h = EquiDepthHistogram::Build(trace->SiteSeries(i), 2000, 50);
    ASSERT_TRUE(h.ok());
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(*h)));
    problem.vars.push_back(
        ProblemVar{i, 1, CdfView(models.back().get(), false)});
  }
  auto sums = EpochSums(*trace, {});
  std::vector<double> sums_d(sums.begin(), sums.end());
  problem.budget = static_cast<int64_t>(Quantile(sums_d, 0.95));

  FptasSolver fptas(0.05);
  ExactDpSolver exact;
  auto a = fptas.Solve(problem);
  auto b = exact.Solve(problem);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_GT(b->log_probability, kNegInf);
  EXPECT_GE(a->log_probability,
            b->log_probability - std::log1p(0.05) - 1e-9);
  EXPECT_TRUE(SatisfiesBudget(problem, a->thresholds));
  EXPECT_TRUE(SatisfiesBudget(problem, b->thresholds));
}

TEST(IntegrationTest, MonitorPlanDeploymentRoundTrip) {
  // Full deployment flow: parse constraint -> solve bounds -> serialize a
  // MonitorPlan -> "ship" it (parse it back) -> replay live traffic using
  // only the plan's per-site checks, and verify covering end to end.
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 4;
  trace_options.num_weeks = 2;
  trace_options.epochs_per_day = 80;
  trace_options.seed = 909;
  auto trace = GenerateSnmpTrace(trace_options);
  ASSERT_TRUE(trace.ok());
  int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace live = *trace->Slice(week, 2 * week);

  auto total_cap = ThresholdForOverflowFraction(live, {}, 0.02);
  ASSERT_TRUE(total_cap.ok());
  std::string constraint_text =
      "site0 + site1 + site2 + site3 <= " + std::to_string(*total_cap);
  auto expr = ParseConstraintWithVars(constraint_text, live.site_names());
  ASSERT_TRUE(expr.ok());
  auto cnf = ToCnf(*expr);
  ASSERT_TRUE(cnf.ok());

  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  std::vector<const DistributionModel*> model_ptrs;
  for (int i = 0; i < 4; ++i) {
    auto h = EquiDepthHistogram::Build(training.SiteSeries(i),
                                       4 * training.MaxValue(i) + 1, 100);
    ASSERT_TRUE(h.ok());
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(*h)));
    model_ptrs.push_back(models.back().get());
  }
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto solution = solver.Solve(*cnf, model_ptrs);
  ASSERT_TRUE(solution.ok());

  MonitorPlan plan;
  plan.constraint_text = constraint_text;
  plan.global_threshold = *total_cap;
  plan.solver_name = "fptas";
  plan.site_names = live.site_names();
  plan.bounds = solution->bounds;
  ASSERT_TRUE(plan.Validate().ok());

  auto shipped = MonitorPlan::Parse(plan.Serialize());
  ASSERT_TRUE(shipped.ok());

  // Replay: every epoch where the global constraint is violated must have
  // at least one site failing its shipped local check.
  int64_t violations = 0;
  for (int64_t t = 0; t < live.num_epochs(); ++t) {
    const auto& v = live.epoch(t);
    bool global_ok = live.WeightedSum(t, {}) <= *total_cap;
    bool any_local_alarm = false;
    for (int i = 0; i < 4; ++i) {
      if (!shipped->SiteOk(i, v[static_cast<size_t>(i)])) {
        any_local_alarm = true;
      }
    }
    if (!global_ok) {
      ++violations;
      ASSERT_TRUE(any_local_alarm) << "epoch " << t;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(IntegrationTest, ChangeDetectionRecomputesThresholdsOnShift) {
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 4;
  trace_options.num_weeks = 3;
  trace_options.epochs_per_day = 100;
  trace_options.seed = 77;
  trace_options.shift_week = 1;  // Shift at the start of eval week 1.
  trace_options.shift_factor = 3.0;
  trace_options.shift_site_fraction = 0.5;
  auto trace = GenerateSnmpTrace(trace_options);
  ASSERT_TRUE(trace.ok());
  int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace eval = *trace->Slice(week, 3 * week);

  auto threshold = ThresholdForOverflowFraction(eval, {}, 0.02);
  ASSERT_TRUE(threshold.ok());

  FptasSolver fptas(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &fptas;
  options.change_detection = true;
  options.change_options.window_size = 200;
  options.change_options.alpha = 0.001;
  options.change_options.cooldown = 300;
  LocalThresholdScheme scheme(options);

  SimOptions sim;
  sim.global_threshold = *threshold;
  auto result = RunSimulation(&scheme, sim, training, eval);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(scheme.num_recomputes(), 1);
  EXPECT_EQ(result->missed_violations, 0);
}

}  // namespace
}  // namespace dcv
