// Conformance suite: every DistributionModel implementation must satisfy
// the same contract the threshold solvers rely on — monotone CDF, correct
// boundary behavior, and a consistent inverse. Run over all five model
// kinds with several data shapes.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "histogram/empirical_cdf.h"
#include "histogram/equi_depth.h"
#include "histogram/equi_width.h"
#include "histogram/gk_sketch.h"
#include "histogram/sliding_histogram.h"

namespace dcv {
namespace {

enum class ModelKind {
  kEmpirical,
  kEquiWidth,
  kEquiDepth,
  kGkSketch,
  kSlidingWindow,
};

enum class DataShape { kUniform, kLogNormal, kConstant, kBimodal };

std::string KindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kEmpirical:
      return "empirical";
    case ModelKind::kEquiWidth:
      return "equi_width";
    case ModelKind::kEquiDepth:
      return "equi_depth";
    case ModelKind::kGkSketch:
      return "gk";
    case ModelKind::kSlidingWindow:
      return "sliding";
  }
  return "?";
}

std::string ShapeName(DataShape shape) {
  switch (shape) {
    case DataShape::kUniform:
      return "uniform";
    case DataShape::kLogNormal:
      return "lognormal";
    case DataShape::kConstant:
      return "constant";
    case DataShape::kBimodal:
      return "bimodal";
  }
  return "?";
}

constexpr int64_t kDomainMax = 5000;

std::vector<int64_t> MakeData(DataShape shape, uint64_t seed, int n = 800) {
  Rng rng(seed);
  std::vector<int64_t> data;
  data.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (shape) {
      case DataShape::kUniform:
        data.push_back(rng.UniformInt(0, kDomainMax));
        break;
      case DataShape::kLogNormal:
        data.push_back(std::min<int64_t>(
            kDomainMax, static_cast<int64_t>(rng.LogNormal(5.0, 1.0))));
        break;
      case DataShape::kConstant:
        data.push_back(1234);
        break;
      case DataShape::kBimodal:
        data.push_back(rng.Bernoulli(0.8) ? rng.UniformInt(10, 50)
                                          : rng.UniformInt(4000, 4500));
        break;
    }
  }
  return data;
}

std::unique_ptr<DistributionModel> BuildModel(ModelKind kind,
                                              const std::vector<int64_t>& data) {
  switch (kind) {
    case ModelKind::kEmpirical:
      return std::make_unique<EmpiricalCdf>(data, kDomainMax);
    case ModelKind::kEquiWidth: {
      auto h = EquiWidthHistogram::Create(kDomainMax, 64);
      EXPECT_TRUE(h.ok());
      for (int64_t v : data) {
        h->Add(v);
      }
      return std::make_unique<EquiWidthHistogram>(std::move(*h));
    }
    case ModelKind::kEquiDepth: {
      auto h = EquiDepthHistogram::Build(data, kDomainMax, 64);
      EXPECT_TRUE(h.ok());
      return std::make_unique<EquiDepthHistogram>(std::move(*h));
    }
    case ModelKind::kGkSketch: {
      GkSketch sketch(0.01);
      for (int64_t v : data) {
        sketch.Insert(v);
      }
      auto h = sketch.ToEquiDepthHistogram(64, kDomainMax);
      EXPECT_TRUE(h.ok());
      return std::make_unique<EquiDepthHistogram>(std::move(*h));
    }
    case ModelKind::kSlidingWindow: {
      auto sw = SlidingWindowHistogram::Create(
          static_cast<int64_t>(2 * data.size()), 0.02);
      EXPECT_TRUE(sw.ok());
      for (int64_t v : data) {
        sw->Insert(v);
      }
      auto h = sw->ToEquiDepthHistogram(64, kDomainMax);
      EXPECT_TRUE(h.ok());
      return std::make_unique<EquiDepthHistogram>(std::move(*h));
    }
  }
  return nullptr;
}

class DistributionConformance
    : public testing::TestWithParam<std::tuple<ModelKind, DataShape>> {};

TEST_P(DistributionConformance, SatisfiesModelContract) {
  auto [kind, shape] = GetParam();
  std::vector<int64_t> data = MakeData(shape, 99);
  auto model = BuildModel(kind, data);
  ASSERT_NE(model, nullptr);

  // Boundary behavior.
  EXPECT_EQ(model->domain_max(), kDomainMax);
  EXPECT_DOUBLE_EQ(model->CumulativeAt(-1), 0.0);
  EXPECT_NEAR(model->CumulativeAt(kDomainMax), model->total_weight(), 1e-9);
  EXPECT_NEAR(model->total_weight(), static_cast<double>(data.size()),
              static_cast<double>(data.size()) * 0.01 + 1e-9);
  EXPECT_DOUBLE_EQ(model->CumulativeAt(kDomainMax + 100),
                   model->total_weight());

  // Monotone CDF, probabilities in [0, 1].
  double prev = -1e-9;
  for (int64_t v = 0; v <= kDomainMax; v += 37) {
    double c = model->CumulativeAt(v);
    ASSERT_GE(c, prev - 1e-9) << KindName(kind) << "/" << ShapeName(shape)
                              << " at v=" << v;
    ASSERT_GE(c, 0.0);
    ASSERT_LE(c, model->total_weight() + 1e-9);
    double p = model->ProbabilityAtMost(v);
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0 + 1e-12);
    prev = c;
  }

  // Inverse consistency: MinValueWithCumAtLeast is the true inverse.
  for (double frac : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    double target = frac * model->total_weight();
    int64_t v = model->MinValueWithCumAtLeast(target);
    ASSERT_LE(v, kDomainMax);
    ASSERT_GE(v, 0);
    EXPECT_GE(model->CumulativeAt(v), target - 1e-6);
    if (v > 0) {
      EXPECT_LT(model->CumulativeAt(v - 1), target + 1e-6);
    }
  }

  // Unreachable target reports M + 1.
  EXPECT_EQ(model->MinValueWithCumAtLeast(model->total_weight() * 2.0),
            kDomainMax + 1);
}

TEST_P(DistributionConformance, ApproximatesTrueQuantiles) {
  auto [kind, shape] = GetParam();
  std::vector<int64_t> data = MakeData(shape, 171);
  auto model = BuildModel(kind, data);
  ASSERT_NE(model, nullptr);
  EmpiricalCdf exact(data, kDomainMax);

  // Model-appropriate rank slack: equi-depth-style models err by a few
  // buckets' depth; equi-width's interpolation error is bounded by the
  // heaviest bucket's mass (which can be large for clustered data).
  double slack = static_cast<double>(data.size()) / 64.0 * 3.0 + 2.0;
  if (kind == ModelKind::kEquiWidth) {
    double max_bucket = 0.0;
    const int64_t width = (kDomainMax + 1 + 63) / 64;
    for (int64_t lo = 0; lo <= kDomainMax; lo += width) {
      max_bucket = std::max(max_bucket,
                            exact.CumulativeAt(lo + width - 1) -
                                exact.CumulativeAt(lo - 1));
    }
    slack = max_bucket + 2.0;
  }

  // Two-sided check (robust to point masses, where the rank *at* the
  // quantile value legitimately jumps): the returned value must not be so
  // small that its own rank is far below the target, nor so large that the
  // value just below it already reaches the target.
  for (double frac : {0.1, 0.5, 0.9}) {
    double target = frac * static_cast<double>(data.size());
    int64_t approx_v = model->MinValueWithCumAtLeast(target);
    EXPECT_GE(exact.CumulativeAt(approx_v), target - slack)
        << KindName(kind) << "/" << ShapeName(shape) << " frac=" << frac;
    if (approx_v > 0) {
      EXPECT_LT(exact.CumulativeAt(approx_v - 1), target + slack)
          << KindName(kind) << "/" << ShapeName(shape) << " frac=" << frac;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllShapes, DistributionConformance,
    testing::Combine(testing::Values(ModelKind::kEmpirical,
                                     ModelKind::kEquiWidth,
                                     ModelKind::kEquiDepth,
                                     ModelKind::kGkSketch,
                                     ModelKind::kSlidingWindow),
                     testing::Values(DataShape::kUniform,
                                     DataShape::kLogNormal,
                                     DataShape::kConstant,
                                     DataShape::kBimodal)),
    [](const testing::TestParamInfo<std::tuple<ModelKind, DataShape>>& info) {
      return KindName(std::get<0>(info.param)) + "_" +
             ShapeName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dcv
