#include "threshold/boolean_solver.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "constraints/parser.h"
#include "histogram/empirical_cdf.h"
#include "threshold/exact_dp.h"
#include "threshold/fptas.h"

namespace dcv {
namespace {

// Samples assignments inside the local-constraint box and asserts the
// original constraint holds on every one (the covering property).
void ExpectCovering(const BoolExpr& expr, const BooleanSolution& solution,
                    const std::vector<int64_t>& domain_max, uint64_t seed,
                    int trials = 1000) {
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<int64_t> v(domain_max.size());
    bool box_nonempty = true;
    for (size_t i = 0; i < v.size(); ++i) {
      const SiteBounds& b = solution.bounds[i];
      if (b.empty()) {
        box_nonempty = false;
        break;
      }
      v[i] = rng.UniformInt(b.lo, b.hi);
    }
    if (!box_nonempty) {
      return;  // Empty box: covering holds vacuously (always alarms).
    }
    ASSERT_TRUE(expr.Evaluate(v))
        << "covering violated at trial " << t;
  }
}

struct ModelSet {
  std::vector<std::unique_ptr<EmpiricalCdf>> owned;
  std::vector<const DistributionModel*> models;
};

ModelSet MakeUniformModels(int n, int64_t domain_max, int samples, uint64_t seed) {
  ModelSet s;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<int64_t> data;
    for (int k = 0; k < samples; ++k) {
      data.push_back(rng.UniformInt(0, domain_max));
    }
    s.owned.push_back(std::make_unique<EmpiricalCdf>(data, domain_max));
    s.models.push_back(s.owned.back().get());
  }
  return s;
}

CnfConstraint MustCnf(const std::string& text,
                      std::vector<std::string>* names = nullptr) {
  auto parsed = ParseConstraint(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto cnf = ToCnf(parsed->expr);
  EXPECT_TRUE(cnf.ok()) << cnf.status();
  if (names != nullptr) {
    *names = parsed->var_names;
  }
  return *cnf;
}

TEST(BooleanSolverTest, SingleAtomMatchesBaseSolver) {
  ModelSet s = MakeUniformModels(2, 20, 50, 1);
  CnfConstraint cnf = MustCnf("a + b <= 15");
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(cnf, s.models);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->bounds.size(), 2u);
  // Upper bounds installed, lower bounds untouched.
  EXPECT_EQ(sol->bounds[0].lo, 0);
  EXPECT_EQ(sol->bounds[1].lo, 0);
  EXPECT_LE(sol->bounds[0].hi + sol->bounds[1].hi, 15);
}

TEST(BooleanSolverTest, CoveringForSumConstraint) {
  ModelSet s = MakeUniformModels(3, 30, 80, 2);
  auto parsed = ParseConstraint("a + 2b + c <= 40");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf, s.models);
  ASSERT_TRUE(sol.ok());
  ExpectCovering(parsed->expr, *sol, {30, 30, 30}, 77);
}

TEST(BooleanSolverTest, DisjunctionPicksBestBranch) {
  // Site values concentrated low: the "a + b <= 30" branch is far more
  // probable than "a >= 25" (mass near 0), so it should be chosen.
  ModelSet s;
  Rng rng(3);
  for (int i = 0; i < 2; ++i) {
    std::vector<int64_t> data;
    for (int k = 0; k < 100; ++k) {
      data.push_back(rng.UniformInt(0, 10));
    }
    s.owned.push_back(std::make_unique<EmpiricalCdf>(data, 40));
    s.models.push_back(s.owned.back().get());
  }
  std::vector<std::string> names;
  CnfConstraint cnf = MustCnf("a >= 25 || a + b <= 30", &names);
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(cnf, s.models);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->chosen_disjunct.size(), 1u);
  // The sum branch has probability ~1; the >= branch near 0.
  EXPECT_GT(std::exp(sol->log_probability), 0.5);
}

TEST(BooleanSolverTest, CoveringForDisjunction) {
  ModelSet s = MakeUniformModels(2, 20, 60, 4);
  auto parsed = ParseConstraint("a + b <= 18 || a >= 15");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf, s.models);
  ASSERT_TRUE(sol.ok());
  ExpectCovering(parsed->expr, *sol, {20, 20}, 78);
}

TEST(BooleanSolverTest, ConjunctionIntersectsBounds) {
  ModelSet s = MakeUniformModels(2, 20, 60, 5);
  auto parsed = ParseConstraint("a + b <= 20 && a <= 8");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf, s.models);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->bounds[0].hi, 8);
  ExpectCovering(parsed->expr, *sol, {20, 20}, 79);
}

TEST(BooleanSolverTest, GeConstraintInstallsLowerBounds) {
  // Mass concentrated high; constraint a + b >= 10 (normal = high values).
  ModelSet s;
  Rng rng(6);
  for (int i = 0; i < 2; ++i) {
    std::vector<int64_t> data;
    for (int k = 0; k < 100; ++k) {
      data.push_back(rng.UniformInt(12, 20));
    }
    s.owned.push_back(std::make_unique<EmpiricalCdf>(data, 20));
    s.models.push_back(s.owned.back().get());
  }
  auto parsed = ParseConstraint("a + b >= 10");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf, s.models);
  ASSERT_TRUE(sol.ok());
  // Lower bounds must guarantee the sum: lo_a + lo_b >= 10.
  EXPECT_GE(sol->bounds[0].lo + sol->bounds[1].lo, 10);
  EXPECT_EQ(sol->bounds[0].hi, 20);
  ExpectCovering(parsed->expr, *sol, {20, 20}, 80);
  // The data sits at >= 12, so the probability should be substantial.
  EXPECT_GT(std::exp(sol->log_probability), 0.3);
}

TEST(BooleanSolverTest, PaperExampleEndToEnd) {
  ModelSet s = MakeUniformModels(3, 10, 200, 7);
  auto parsed = ParseConstraint(
      "((3x1 + x2 >= 1) || (MIN{x1, 2x3 - x2} <= 5)) && "
      "(x1 + MAX{3x2, x3} >= 4)");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf, s.models);
  ASSERT_TRUE(sol.ok());
  ExpectCovering(parsed->expr, *sol, {10, 10, 10}, 81);
}

TEST(BooleanSolverTest, TrivialClauseImposesNothing) {
  ModelSet s = MakeUniformModels(1, 10, 20, 8);
  CnfConstraint cnf = MustCnf("a <= 100");  // Always true over [0, 10].
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(cnf, s.models);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->bounds[0], (SiteBounds{0, 10}));
  EXPECT_EQ(sol->chosen_disjunct[0], -1);
  EXPECT_NEAR(sol->log_probability, 0.0, 1e-12);
}

TEST(BooleanSolverTest, UnsatisfiableClauseIsInfeasible) {
  ModelSet s = MakeUniformModels(1, 10, 20, 9);
  CnfConstraint cnf = MustCnf("a <= -5");
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  EXPECT_EQ(solver.Solve(cnf, s.models).status().code(),
            StatusCode::kInfeasible);
}

TEST(BooleanSolverTest, LiftingRecoversSlack) {
  ModelSet s = MakeUniformModels(2, 100, 60, 10);
  // Two clauses whose chosen atoms each constrain only one variable:
  // merging leaves slack the lift can reclaim up to the domain bounds.
  auto parsed = ParseConstraint("a <= 40 && b <= 70");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver::Options options;
  options.lift_rounds = 4;
  BooleanThresholdSolver solver(&base, options);
  auto sol = solver.Solve(*cnf, s.models);
  ASSERT_TRUE(sol.ok());
  // The atoms themselves are the binding constraints.
  EXPECT_EQ(sol->bounds[0].hi, 40);
  EXPECT_EQ(sol->bounds[1].hi, 70);
  ExpectCovering(parsed->expr, *sol, {100, 100}, 82);
}

TEST(BooleanSolverTest, LiftImprovesObjectiveNeverWorsens) {
  ModelSet s = MakeUniformModels(3, 50, 80, 11);
  auto parsed = ParseConstraint("a + b <= 60 && b + c <= 60");
  ASSERT_TRUE(parsed.ok());
  auto cnf = ToCnf(parsed->expr);
  ASSERT_TRUE(cnf.ok());
  FptasSolver base(0.05);
  BooleanThresholdSolver::Options no_lift;
  no_lift.lift_rounds = 0;
  BooleanThresholdSolver::Options with_lift;
  with_lift.lift_rounds = 4;
  BooleanThresholdSolver solver_a(&base, no_lift);
  BooleanThresholdSolver solver_b(&base, with_lift);
  auto a = solver_a.Solve(*cnf, s.models);
  auto b = solver_b.Solve(*cnf, s.models);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->log_probability, a->log_probability - 1e-12);
  ExpectCovering(parsed->expr, *b, {50, 50, 50}, 83);
}

TEST(BooleanSolverTest, RejectsMissingModels) {
  ModelSet s = MakeUniformModels(1, 10, 20, 12);
  CnfConstraint cnf = MustCnf("a + b <= 5");
  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  EXPECT_FALSE(solver.Solve(cnf, s.models).ok());
}

class ExhaustiveCovering : public testing::TestWithParam<int> {};

TEST_P(ExhaustiveCovering, EveryBoxPointSatisfiesConstraint) {
  // Small domains allow checking the covering property on EVERY point of
  // the solved box, not just samples — the strongest form of the paper's
  // §3.1 requirement.
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 3);
  const int n = 2;
  const int64_t m = 6;
  ModelSet s = MakeUniformModels(n, m, 40, rng.NextUint64());

  // Random small CNF with both comparison directions and mixed signs.
  std::vector<BoolExpr> clauses;
  const int num_clauses = static_cast<int>(rng.UniformInt(1, 3));
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<BoolExpr> atoms;
    const int num_atoms = static_cast<int>(rng.UniformInt(1, 2));
    for (int a = 0; a < num_atoms; ++a) {
      LinearExpr lin;
      lin.AddTerm(0, rng.UniformInt(1, 2) * (rng.Bernoulli(0.3) ? -1 : 1));
      if (rng.Bernoulli(0.8)) {
        lin.AddTerm(1, rng.UniformInt(1, 2) * (rng.Bernoulli(0.3) ? -1 : 1));
      }
      CmpOp op = rng.Bernoulli(0.7) ? CmpOp::kLe : CmpOp::kGe;
      int64_t threshold = op == CmpOp::kLe ? rng.UniformInt(2, 20)
                                           : rng.UniformInt(-8, 3);
      atoms.push_back(BoolExpr::Atom(AggExpr::Linear(lin), op, threshold));
    }
    clauses.push_back(atoms.size() == 1 ? atoms[0]
                                        : BoolExpr::Or(std::move(atoms)));
  }
  BoolExpr expr = clauses.size() == 1 ? clauses[0]
                                      : BoolExpr::And(std::move(clauses));
  auto cnf = ToCnf(expr);
  ASSERT_TRUE(cnf.ok());
  ExactDpSolver base;  // Exact per-atom solutions on these tiny domains.
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf, s.models);
  if (!sol.ok()) {
    EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
    return;
  }
  if (sol->bounds[0].empty() || sol->bounds[1].empty()) {
    return;  // Always-alarm box: vacuously covering.
  }
  for (int64_t a = sol->bounds[0].lo; a <= sol->bounds[0].hi; ++a) {
    for (int64_t b = sol->bounds[1].lo; b <= sol->bounds[1].hi; ++b) {
      ASSERT_TRUE(expr.Evaluate({a, b}))
          << "covering violated at (" << a << ", " << b << ") for "
          << expr.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveCovering, testing::Range(0, 40));

class RandomBooleanCovering : public testing::TestWithParam<int> {};

TEST_P(RandomBooleanCovering, CoveringHoldsOnRandomCnfs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 5);
  const int n = 3;
  const int64_t m = 12;
  ModelSet s = MakeUniformModels(n, m, 60, rng.NextUint64());

  // Random CNF over <=/>= linear atoms with positive/negative coefficients.
  std::vector<std::string> names{"x0", "x1", "x2"};
  CnfConstraint cnf;
  const int num_clauses = static_cast<int>(rng.UniformInt(1, 3));
  BoolExpr expr = BoolExpr::Atom(
      AggExpr::Linear(LinearExpr::FromConstant(0)), CmpOp::kLe, 0);
  std::vector<BoolExpr> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<BoolExpr> atoms;
    const int num_atoms = static_cast<int>(rng.UniformInt(1, 2));
    for (int a = 0; a < num_atoms; ++a) {
      LinearExpr lin;
      for (int v = 0; v < n; ++v) {
        if (rng.Bernoulli(0.7)) {
          lin.AddTerm(v, rng.UniformInt(1, 3) * (rng.Bernoulli(0.2) ? -1 : 1));
        }
      }
      if (lin.terms().empty()) {
        lin.AddTerm(0, 1);
      }
      CmpOp op = rng.Bernoulli(0.75) ? CmpOp::kLe : CmpOp::kGe;
      // Keep thresholds generous enough to be satisfiable.
      int64_t threshold = op == CmpOp::kLe ? rng.UniformInt(10, 60)
                                           : rng.UniformInt(0, 6);
      atoms.push_back(
          BoolExpr::Atom(AggExpr::Linear(lin), op, threshold));
    }
    clauses.push_back(atoms.size() == 1 ? atoms[0]
                                        : BoolExpr::Or(std::move(atoms)));
  }
  expr = clauses.size() == 1 ? clauses[0] : BoolExpr::And(std::move(clauses));
  auto cnf_result = ToCnf(expr);
  ASSERT_TRUE(cnf_result.ok());

  FptasSolver base(0.1);
  BooleanThresholdSolver solver(&base);
  auto sol = solver.Solve(*cnf_result, s.models);
  if (!sol.ok()) {
    // Randomly generated constraints may be unsatisfiable; that is the only
    // acceptable failure.
    EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
    return;
  }
  ExpectCovering(expr, *sol, std::vector<int64_t>(n, m),
                 static_cast<uint64_t>(GetParam()) + 999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBooleanCovering, testing::Range(0, 25));

}  // namespace
}  // namespace dcv
