#include "common/strings.h"

#include <gtest/gtest.h>

namespace dcv {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, KeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrJoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ","), "x,y,z");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StrJoinTest, EmptyAndSingle) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("histogram", "hist"));
  EXPECT_FALSE(StartsWith("hist", "histogram"));
  EXPECT_TRUE(EndsWith("threshold", "old"));
  EXPECT_FALSE(EndsWith("old", "threshold"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseInt64Test, ParsesValid) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-45"), -45);
  EXPECT_EQ(*ParseInt64("  7 "), 7);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsInvalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("--3").ok());
}

TEST(ParseInt64Test, RangeErrors) {
  EXPECT_EQ(ParseInt64("99999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseDoubleTest, ParsesValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 0 "), 0.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

}  // namespace
}  // namespace dcv
