#include "common/strings.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace dcv {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, KeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrJoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ","), "x,y,z");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StrJoinTest, EmptyAndSingle) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("histogram", "hist"));
  EXPECT_FALSE(StartsWith("hist", "histogram"));
  EXPECT_TRUE(EndsWith("threshold", "old"));
  EXPECT_FALSE(EndsWith("old", "threshold"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseInt64Test, ParsesValid) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-45"), -45);
  EXPECT_EQ(*ParseInt64("  7 "), 7);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsInvalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("--3").ok());
}

TEST(ParseInt64Test, RangeErrors) {
  EXPECT_EQ(ParseInt64("99999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseDoubleTest, ParsesValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 0 "), 0.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(ParseDoubleTest, RejectsOverflowOnly) {
  // ERANGE overflow is a real error...
  EXPECT_FALSE(ParseDouble("1e999").ok());
  EXPECT_FALSE(ParseDouble("-1e999").ok());
  // ...but ERANGE underflow to a representable denormal is not (glibc sets
  // errno even when the value is exact).
  auto denorm = ParseDouble("5e-324");
  ASSERT_TRUE(denorm.ok()) << denorm.status();
  EXPECT_EQ(*denorm, std::numeric_limits<double>::denorm_min());
}

TEST(ParseDoubleTest, AcceptsNonFiniteSpellings) {
  EXPECT_TRUE(std::isnan(*ParseDouble("nan")));
  EXPECT_TRUE(std::isnan(*ParseDouble("NaN")));
  EXPECT_EQ(*ParseDouble("inf"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(*ParseDouble("-inf"), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(*ParseDouble("Infinity"),
            std::numeric_limits<double>::infinity());
}

TEST(FormatDoubleTest, CanonicalNonFiniteSpellings) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatDoubleTest, RoundTripsBitExact) {
  const std::vector<double> goldens = {
      0.0,
      -0.0,
      1.0 / 3.0,
      0.1,
      2.2250738585072011e-308,  // Largest subnormal-adjacent trouble value.
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
  };
  for (double v : goldens) {
    auto back = ParseDouble(FormatDouble(v));
    ASSERT_TRUE(back.ok()) << FormatDouble(v) << ": " << back.status();
    uint64_t want_bits = 0;
    uint64_t got_bits = 0;
    std::memcpy(&want_bits, &v, sizeof(want_bits));
    std::memcpy(&got_bits, &*back, sizeof(got_bits));
    EXPECT_EQ(got_bits, want_bits) << FormatDouble(v);
  }
}

}  // namespace
}  // namespace dcv
