#include "runtime/conformance.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/plan.h"
#include "sim/local_scheme.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

// The tentpole guarantee: the threaded runtime in virtual-time mode is
// bit-identical to the lockstep simulator — same per-epoch alarms, polls,
// and violation verdicts, same per-type message counts, same wire-level
// reliability stats — because the coordinator replays the protocol through
// the fault-injecting Channel in the exact order the lockstep schemes use.

struct Workload {
  Trace training{0};
  Trace eval{0};
};

Workload MakeSyntheticWorkload(uint64_t seed, int num_sites = 4,
                               int64_t train_epochs = 600,
                               int64_t eval_epochs = 600) {
  SyntheticTraceOptions options;
  options.num_sites = num_sites;
  options.num_epochs = train_epochs + eval_epochs;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.0;
  options.param2 = 0.8;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, train_epochs);
  w.eval = *trace->Slice(train_epochs, train_epochs + eval_epochs);
  return w;
}

int64_t PickThreshold(const Workload& w, double overflow_fraction,
                      const std::vector<int64_t>& weights = {}) {
  auto t = ThresholdForOverflowFraction(w.eval, weights, overflow_fraction);
  EXPECT_TRUE(t.ok());
  return *t;
}

void ExpectConformant(const Workload& w, const ConformanceSpec& spec) {
  auto report = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->identical) << report->mismatch;
  // The run must be non-trivial: something happened worth comparing.
  EXPECT_GT(report->lockstep.messages.total(), 0);
  EXPECT_EQ(report->lockstep.epochs,
            static_cast<int64_t>(report->runtime.detections.size()));
  // Aggregate scoring agrees too (implied by per-epoch equality, but this
  // also exercises the runtime's own ground-truth accounting).
  EXPECT_EQ(report->lockstep.true_violations, report->runtime.true_violations);
  EXPECT_EQ(report->lockstep.detected_violations,
            report->runtime.detected_violations);
  EXPECT_EQ(report->lockstep.missed_violations,
            report->runtime.missed_violations);
  EXPECT_EQ(report->lockstep.false_alarm_epochs,
            report->runtime.false_alarm_epochs);
  EXPECT_EQ(report->lockstep.total_alarms, report->runtime.total_alarms);
  EXPECT_EQ(report->lockstep.polled_epochs, report->runtime.polled_epochs);
}

TEST(RuntimeConformanceTest, LocalFptasOnSnmpTrace) {
  SnmpTraceOptions options;
  options.num_sites = 5;
  options.num_weeks = 2;
  options.seed = 7;
  auto trace = GenerateSnmpTrace(options);
  ASSERT_TRUE(trace.ok());
  const int64_t week = EpochsPerWeek(options);
  Workload w;
  w.training = *trace->Slice(0, week);
  w.eval = *trace->Slice(week, 2 * week);

  FptasSolver solver(0.05);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.01);
  ExpectConformant(w, spec);
}

TEST(RuntimeConformanceTest, LocalEqualValueWithWeights) {
  Workload w = MakeSyntheticWorkload(21);
  EqualValueSolver solver;
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.weights = {3, 1, 2, 1};
  spec.global_threshold = PickThreshold(w, 0.02, spec.weights);
  spec.num_workers = 2;  // Multiplexed workers must not change anything.
  ExpectConformant(w, spec);
}

TEST(RuntimeConformanceTest, PollingBaseline) {
  Workload w = MakeSyntheticWorkload(33);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kPolling;
  spec.poll_period = 3;
  spec.global_threshold = PickThreshold(w, 0.05);
  ExpectConformant(w, spec);
}

TEST(RuntimeConformanceTest, LocalFptasUnderChannelFaults) {
  Workload w = MakeSyntheticWorkload(55, /*num_sites=*/5);
  FptasSolver solver(0.1);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.faults.loss = 0.1;
  spec.faults.duplicate = 0.05;
  spec.faults.delay = 0.1;
  spec.faults.max_delay_epochs = 2;
  spec.faults.retry.enable_acks = true;
  spec.faults.retry.max_attempts = 3;
  spec.faults.crashes = {{/*site=*/1, /*from=*/100, /*to=*/220},
                         {/*site=*/3, /*from=*/400, /*to=*/450}};
  spec.faults.partitions = {{/*from=*/300, /*to=*/320}};
  spec.faults.degrade = DegradeMode::kAssumeBreach;
  spec.faults.seed = 0xfeedULL;
  ExpectConformant(w, spec);
}

TEST(RuntimeConformanceTest, PollingUnderLoss) {
  Workload w = MakeSyntheticWorkload(77);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kPolling;
  spec.poll_period = 2;
  spec.global_threshold = PickThreshold(w, 0.05);
  spec.faults.loss = 0.15;
  spec.faults.retry.enable_acks = true;
  ExpectConformant(w, spec);
}

// The socket transport must be indistinguishable from the in-process
// transport: a third run over real loopback TCP (multi-process topology,
// in-process worker drivers) produces the same per-epoch detections and
// message counts as both the lockstep simulator and the thread runtime.
TEST(RuntimeConformanceTest, SocketTransportMatchesLockstep) {
  Workload w = MakeSyntheticWorkload(101);
  FptasSolver solver(0.05);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 2;
  spec.transport = TransportKind::kSocket;
  auto report = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->identical) << report->mismatch;
  ASSERT_TRUE(report->ran_socket);
  EXPECT_EQ(report->socket_runtime.messages.total(),
            report->lockstep.messages.total());
  EXPECT_EQ(report->socket_runtime.detected_violations,
            report->lockstep.detected_violations);
  // The TCP fabric itself must have been clean: no decode errors, no
  // unexpected disconnects, every frame accounted for.
  EXPECT_EQ(report->socket_runtime.socket.decode_errors, 0);
  EXPECT_EQ(report->socket_runtime.socket.disconnects, 0);
  EXPECT_GT(report->socket_runtime.socket.frames_sent, 0);
}

TEST(RuntimeConformanceTest, SocketTransportUnderChannelFaults) {
  // Channel faults are simulated above the transport, so they must replay
  // identically over TCP too — including ack retries and crash windows.
  Workload w = MakeSyntheticWorkload(113, /*num_sites=*/5,
                                     /*train_epochs=*/400,
                                     /*eval_epochs=*/400);
  FptasSolver solver(0.1);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 3;
  spec.transport = TransportKind::kSocket;
  spec.faults.loss = 0.1;
  spec.faults.retry.enable_acks = true;
  spec.faults.retry.max_attempts = 3;
  spec.faults.crashes = {{/*site=*/2, /*from=*/50, /*to=*/120}};
  spec.faults.seed = 0xabcdULL;
  ExpectConformant(w, spec);
}

TEST(RuntimeConformanceTest, SocketPollingBaseline) {
  Workload w = MakeSyntheticWorkload(131, /*num_sites=*/3,
                                     /*train_epochs=*/300,
                                     /*eval_epochs=*/300);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kPolling;
  spec.poll_period = 4;
  spec.global_threshold = PickThreshold(w, 0.05);
  spec.transport = TransportKind::kSocket;
  ExpectConformant(w, spec);
}

// Sharded coordinator tree (the two-level refactor): for every legal shard
// count, virtual-time runs must stay bit-identical to the lockstep
// simulator — the shards are channel-free relays, and the root issues every
// channel call in flat-coordinator order. These tests are the determinism
// proof for the topology, not just a smoke test.

TEST(ShardedConformanceTest, LocalFptasShards2And4) {
  Workload w = MakeSyntheticWorkload(21);
  FptasSolver solver(0.05);
  for (int shards : {2, 4}) {
    ConformanceSpec spec;
    spec.protocol = RuntimeProtocol::kLocalThreshold;
    spec.solver = &solver;
    spec.global_threshold = PickThreshold(w, 0.02);
    spec.num_shards = shards;
    ExpectConformant(w, spec);
  }
}

TEST(ShardedConformanceTest, PollingShards2) {
  Workload w = MakeSyntheticWorkload(33);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kPolling;
  spec.poll_period = 3;
  spec.global_threshold = PickThreshold(w, 0.05);
  spec.num_shards = 2;
  ExpectConformant(w, spec);
}

TEST(ShardedConformanceTest, LocalFptasUnderChannelFaultsShards2And4) {
  // The hard case: loss, duplication, delay, ack retries, crash windows,
  // and a coordinator partition, re-run at 2 and 4 shards. Identical
  // reliability stats prove the root (not the shards) owns every channel
  // RNG draw.
  Workload w = MakeSyntheticWorkload(55, /*num_sites=*/5);
  FptasSolver solver(0.1);
  for (int shards : {2, 4}) {
    ConformanceSpec spec;
    spec.protocol = RuntimeProtocol::kLocalThreshold;
    spec.solver = &solver;
    spec.global_threshold = PickThreshold(w, 0.02);
    spec.num_shards = shards;
    spec.faults.loss = 0.1;
    spec.faults.duplicate = 0.05;
    spec.faults.delay = 0.1;
    spec.faults.max_delay_epochs = 2;
    spec.faults.retry.enable_acks = true;
    spec.faults.retry.max_attempts = 3;
    spec.faults.crashes = {{/*site=*/1, /*from=*/100, /*to=*/220},
                           {/*site=*/3, /*from=*/400, /*to=*/450}};
    spec.faults.partitions = {{/*from=*/300, /*to=*/320}};
    spec.faults.degrade = DegradeMode::kAssumeBreach;
    spec.faults.seed = 0xfeedULL;
    ExpectConformant(w, spec);
  }
}

TEST(ShardedConformanceTest, UnevenPartitionSevenSitesThreeShards) {
  // Regression for the uneven split: 7 sites over 3 shards gives shard
  // sizes {3, 2, 2}; the contiguous layout must keep the global replay
  // order ascending across the size boundary.
  Workload w = MakeSyntheticWorkload(143, /*num_sites=*/7);
  FptasSolver solver(0.1);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_shards = 3;
  spec.num_workers = 2;  // Worker multiplexing is independent of sharding.
  spec.faults.loss = 0.05;
  spec.faults.retry.enable_acks = true;
  spec.faults.crashes = {{/*site=*/2, /*from=*/80, /*to=*/160},
                         {/*site=*/6, /*from=*/200, /*to=*/260}};
  ExpectConformant(w, spec);
}

TEST(ShardedConformanceTest, SocketTransportShards2) {
  // Sharding is coordinator-process-local: the wire format does not change,
  // so a sharded coordinator over real loopback TCP must still match the
  // lockstep simulator bit for bit.
  Workload w = MakeSyntheticWorkload(101);
  FptasSolver solver(0.05);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 2;
  spec.num_shards = 2;
  spec.transport = TransportKind::kSocket;
  auto report = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->identical) << report->mismatch;
  ASSERT_TRUE(report->ran_socket);
  EXPECT_EQ(report->socket_runtime.socket.decode_errors, 0);
  EXPECT_EQ(report->socket_runtime.socket.disconnects, 0);
}

TEST(ShardedConformanceTest, SocketTransportUnderFaultsShards3) {
  Workload w = MakeSyntheticWorkload(113, /*num_sites=*/5,
                                     /*train_epochs=*/400,
                                     /*eval_epochs=*/400);
  FptasSolver solver(0.1);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 3;
  spec.num_shards = 3;
  spec.transport = TransportKind::kSocket;
  spec.faults.loss = 0.1;
  spec.faults.retry.enable_acks = true;
  spec.faults.retry.max_attempts = 3;
  spec.faults.crashes = {{/*site=*/2, /*from=*/50, /*to=*/120}};
  spec.faults.seed = 0xabcdULL;
  ExpectConformant(w, spec);
}

// Free-running sharded mode has no determinism claim, but it must drain the
// whole workload and account for every update exactly once.
TEST(ShardedRuntimeFreeTest, DrainsFullWorkloadAcrossShardCounts) {
  for (int shards : {1, 2, 3}) {
    RuntimeOptions options;
    options.virtual_time = false;
    options.num_shards = shards;
    options.seed = 9;
    options.synthetic_max = 1000;
    options.global_threshold = 7 * 1000;
    options.thresholds.assign(7, 900);  // Alarm-heavy.
    options.domain_max.assign(7, 1000);
    auto result = RunSyntheticRuntime(7, 500, options);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->total_updates, 7 * 500);
    ASSERT_EQ(result->site_updates.size(), 7u);
    for (int64_t u : result->site_updates) {
      EXPECT_EQ(u, 500);
    }
    EXPECT_GT(result->total_alarms, 0);
    EXPECT_GT(result->polled_epochs, 0);
  }
}

// The runtime rejects shard counts outside [1, num_sites] up front.
TEST(ShardedRuntimeTest, RejectsBadShardCounts) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.num_shards = 0;
  EXPECT_FALSE(RunSyntheticRuntime(4, 10, options).ok());
  options.num_shards = 5;
  EXPECT_FALSE(RunSyntheticRuntime(4, 10, options).ok());
}

// Chaos conformance (the recovery proof): a shard coordinator killed at a
// seed-resolved epoch, a mid-run reshard, or a severed worker TCP link must
// leave the virtual-time detections bit-identical to the healthy lockstep
// simulator — recovery that changes results is not recovery.

TEST(ChaosConformanceTest, KillShardVirtualBitIdenticalAcrossSeeds) {
  Workload w = MakeSyntheticWorkload(21);
  FptasSolver solver(0.05);
  for (uint64_t chaos_seed : {3ULL, 11ULL, 29ULL}) {
    ConformanceSpec spec;
    spec.protocol = RuntimeProtocol::kLocalThreshold;
    spec.solver = &solver;
    spec.global_threshold = PickThreshold(w, 0.02);
    spec.num_shards = 2;
    spec.chaos.kind = ChaosKind::kKillShard;
    spec.chaos.seed = chaos_seed;
    spec.heartbeat_timeout_ms = 300;
    auto report = RunConformance(w.training, w.eval, spec);
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_TRUE(report->identical)
        << "chaos_seed=" << chaos_seed << ": " << report->mismatch;
    // The shard really died and the root really recovered it.
    EXPECT_EQ(report->runtime.shard_recoveries, 1) << "seed=" << chaos_seed;
    EXPECT_GT(report->runtime.recovery_ms, 0.0);
  }
}

TEST(ChaosConformanceTest, KillShardUnderChannelFaults) {
  // Recovery must also replay the fault-injecting channel identically:
  // the re-executed epoch leg goes through the same Channel calls in the
  // same order, so even RNG-driven loss patterns stay bit-identical.
  Workload w = MakeSyntheticWorkload(55, /*num_sites=*/5);
  FptasSolver solver(0.1);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_shards = 4;
  spec.faults.loss = 0.1;
  spec.faults.retry.enable_acks = true;
  spec.faults.retry.max_attempts = 3;
  spec.faults.crashes = {{/*site=*/1, /*from=*/100, /*to=*/220}};
  spec.faults.seed = 0xfeedULL;
  spec.chaos.kind = ChaosKind::kKillShard;
  spec.chaos.seed = 7;
  spec.heartbeat_timeout_ms = 300;
  auto report = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->identical) << report->mismatch;
  EXPECT_EQ(report->runtime.shard_recoveries, 1);
}

TEST(ChaosConformanceTest, KillShardSocketBitIdentical) {
  // The dead shard's sites live in remote worker processes: the root's
  // re-executed legs run over real TCP and must still match the lockstep
  // simulator bit for bit.
  Workload w = MakeSyntheticWorkload(101, /*num_sites=*/4,
                                     /*train_epochs=*/300,
                                     /*eval_epochs=*/300);
  FptasSolver solver(0.05);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 2;
  spec.num_shards = 2;
  spec.transport = TransportKind::kSocket;
  spec.chaos.kind = ChaosKind::kKillShard;
  spec.chaos.seed = 11;
  spec.heartbeat_timeout_ms = 300;
  auto report = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->identical) << report->mismatch;
  ASSERT_TRUE(report->ran_socket);
  EXPECT_EQ(report->runtime.shard_recoveries, 1);
  EXPECT_EQ(report->socket_runtime.shard_recoveries, 1);
  EXPECT_EQ(report->socket_runtime.socket.decode_errors, 0);
}

TEST(ChaosConformanceTest, ReshardMidRunBitIdentical) {
  // A new site->shard layout pushed at an epoch boundary mid-run: routing
  // changes, results must not.
  Workload w = MakeSyntheticWorkload(143, /*num_sites=*/7);
  FptasSolver solver(0.1);
  for (uint64_t chaos_seed : {5ULL, 17ULL}) {
    ConformanceSpec spec;
    spec.protocol = RuntimeProtocol::kLocalThreshold;
    spec.solver = &solver;
    spec.global_threshold = PickThreshold(w, 0.02);
    spec.num_shards = 3;
    spec.chaos.kind = ChaosKind::kReshard;
    spec.chaos.seed = chaos_seed;
    auto report = RunConformance(w.training, w.eval, spec);
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_TRUE(report->identical)
        << "chaos_seed=" << chaos_seed << ": " << report->mismatch;
    EXPECT_EQ(report->runtime.reshards, 1);
    EXPECT_EQ(report->runtime.shard_recoveries, 0);
  }
}

TEST(ChaosConformanceTest, KillWorkerSocketReconnectsAndMatches) {
  // A worker's TCP link severed mid-run: the worker redials, both sides
  // replay the missed suffix, the run completes with the correct final
  // detections and a bounded duplicate count.
  Workload w = MakeSyntheticWorkload(113, /*num_sites=*/4,
                                     /*train_epochs=*/300,
                                     /*eval_epochs=*/300);
  FptasSolver solver(0.05);
  ConformanceSpec spec;
  spec.protocol = RuntimeProtocol::kLocalThreshold;
  spec.solver = &solver;
  spec.global_threshold = PickThreshold(w, 0.02);
  spec.num_workers = 2;
  spec.num_shards = 2;
  spec.transport = TransportKind::kSocket;
  spec.chaos.kind = ChaosKind::kKillWorker;
  spec.chaos.seed = 13;
  auto report = RunConformance(w.training, w.eval, spec);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->identical) << report->mismatch;
  ASSERT_TRUE(report->ran_socket);
  const SocketStats& s = report->socket_runtime.socket;
  EXPECT_GE(s.disconnects, 1);
  EXPECT_EQ(s.reconnects, 1);
  // Replay may resend a handful of frames; dedup keeps them off the run.
  EXPECT_LE(s.duplicate_frames, 16);
  EXPECT_EQ(s.decode_errors, 0);
}

// Free-running mode claims no determinism, but chaos must not lose work:
// a killed shard's replacement drains the same inboxes, so every update is
// still consumed and every site still reports done exactly once.
TEST(ChaosRuntimeFreeTest, KillShardFreeRunningLosesNothing) {
  for (uint64_t chaos_seed : {3ULL, 9ULL}) {
    RuntimeOptions options;
    options.virtual_time = false;
    options.num_shards = 2;
    options.seed = 9;
    options.synthetic_max = 1000;
    options.global_threshold = 6 * 1000;
    options.thresholds.assign(6, 900);  // Alarm-heavy: real recovery load.
    options.domain_max.assign(6, 1000);
    options.chaos.kind = ChaosKind::kKillShard;
    options.chaos.seed = chaos_seed;
    options.heartbeat_timeout_ms = 200;
    auto result = RunSyntheticRuntime(6, 400, options);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->total_updates, 6 * 400) << "seed=" << chaos_seed;
    ASSERT_EQ(result->site_updates.size(), 6u);
    for (int64_t u : result->site_updates) {
      EXPECT_EQ(u, 400);
    }
    EXPECT_EQ(result->shard_recoveries, 1) << "seed=" << chaos_seed;
    EXPECT_GT(result->recovery_ms, 0.0);
  }
}

// Chaos needs a detectable configuration: kill-shard without a heartbeat
// window or with a flat coordinator is rejected up front.
TEST(ChaosRuntimeTest, RejectsUndetectableChaosConfigs) {
  RuntimeOptions options;
  options.virtual_time = false;
  options.chaos.kind = ChaosKind::kKillShard;
  options.num_shards = 1;  // No shard tree to kill a member of.
  options.heartbeat_timeout_ms = 200;
  EXPECT_FALSE(RunSyntheticRuntime(4, 10, options).ok());
  options.num_shards = 2;
  options.heartbeat_timeout_ms = 0;  // Root would never notice the death.
  EXPECT_FALSE(RunSyntheticRuntime(4, 10, options).ok());
}

// The runtime's deployment plan must provision the same thresholds the
// lockstep scheme computes for itself from the same training data.
TEST(RuntimeConformanceTest, BuildLocalPlanMatchesSchemeThresholds) {
  Workload w = MakeSyntheticWorkload(91);
  FptasSolver solver(0.05);
  std::vector<int64_t> weights(4, 1);
  const int64_t threshold = PickThreshold(w, 0.01);

  auto plan = BuildLocalPlan(w.training, weights, threshold, solver);
  ASSERT_TRUE(plan.ok()) << plan.status().message();

  LocalThresholdScheme::Options o;
  o.solver = &solver;
  LocalThresholdScheme scheme(o);
  SimOptions sim_options;
  sim_options.global_threshold = threshold;
  auto result = RunSimulation(&scheme, sim_options, w.training, w.eval);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(plan->thresholds, scheme.thresholds());
  ASSERT_EQ(plan->domain_max.size(), 4u);
  for (int64_t m : plan->domain_max) {
    EXPECT_GT(m, 0);
  }
}

}  // namespace
}  // namespace dcv
