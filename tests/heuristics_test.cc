#include "threshold/heuristics.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "histogram/empirical_cdf.h"
#include "threshold/fptas.h"

namespace dcv {
namespace {

TEST(EqualValueTest, SplitsBudgetEqually) {
  EmpiricalCdf model({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 9);
  ThresholdProblem p;
  p.budget = 12;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&model, false)});
  p.vars.push_back(ProblemVar{2, 1, CdfView(&model, false)});
  EqualValueSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds, (std::vector<int64_t>{4, 4, 4}));
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
}

TEST(EqualValueTest, AccountsForWeights) {
  EmpiricalCdf model({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 9);
  ThresholdProblem p;
  p.budget = 12;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  p.vars.push_back(ProblemVar{1, 3, CdfView(&model, false)});
  EqualValueSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds, (std::vector<int64_t>{6, 2}));
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
}

TEST(EqualValueTest, ClampsToDomain) {
  EmpiricalCdf model({0, 1}, 2);
  ThresholdProblem p;
  p.budget = 100;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  EqualValueSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds[0], 2);
}

TEST(EqualValueTest, IgnoresDistributionShape) {
  // One site near 0, one spread out: Equal-Value still splits evenly.
  EmpiricalCdf low({0, 0, 1}, 20);
  EmpiricalCdf wide({5, 10, 19}, 20);
  ThresholdProblem p;
  p.budget = 20;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&low, false)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&wide, false)});
  EqualValueSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds[0], sol->thresholds[1]);
}

TEST(EqualTailTest, EqualizesViolationProbability) {
  // Two sites with very different spreads: tails should end up (nearly)
  // equal rather than the thresholds.
  EmpiricalCdf low({0, 1, 1, 2, 2, 2, 3, 3, 4, 5}, 50);
  EmpiricalCdf wide({5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, 50);
  ThresholdProblem p;
  p.budget = 40;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&low, false)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&wide, false)});
  EqualTailSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
  double tail0 = 1.0 - p.vars[0].cdf.Prob(sol->thresholds[0]);
  double tail1 = 1.0 - p.vars[1].cdf.Prob(sol->thresholds[1]);
  EXPECT_NEAR(tail0, tail1, 0.15);
  // The wide site gets the larger threshold.
  EXPECT_GT(sol->thresholds[1], sol->thresholds[0]);
}

TEST(EqualTailTest, FullBudgetCoversEverything) {
  EmpiricalCdf model({1, 2, 3}, 10);
  ThresholdProblem p;
  p.budget = 100;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  EqualTailSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  // q = 1 is affordable: threshold at the max observation.
  EXPECT_GE(sol->thresholds[0], 3);
  EXPECT_NEAR(sol->log_probability, 0.0, 1e-9);
}

TEST(EqualTailTest, ZeroBudgetIsDegenerate) {
  EmpiricalCdf model({5, 6}, 10);
  ThresholdProblem p;
  p.budget = 0;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  EqualTailSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds[0], 0);
  EXPECT_TRUE(sol->degenerate);
}

TEST(HeuristicsOrderingTest, FptasDominatesBothHeuristicsInObjective) {
  // The FPTAS directly maximizes the objective both heuristics only
  // approximate, so (up to 1+eps) it must be at least as good.
  Rng rng(888);
  FptasSolver fptas(0.01);
  EqualValueSolver equal_value;
  EqualTailSolver equal_tail;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::unique_ptr<EmpiricalCdf>> models;
    ThresholdProblem p;
    const int n = static_cast<int>(rng.UniformInt(2, 5));
    p.budget = rng.UniformInt(5, 80);
    for (int i = 0; i < n; ++i) {
      std::vector<int64_t> data;
      const int64_t m = rng.UniformInt(5, 40);
      for (int k = 0; k < 20; ++k) {
        data.push_back(static_cast<int64_t>(
            std::min<double>(static_cast<double>(m),
                             rng.LogNormal(1.0 + i * 0.5, 0.7))));
      }
      models.push_back(std::make_unique<EmpiricalCdf>(data, m));
      p.vars.push_back(
          ProblemVar{i, 1, CdfView(models.back().get(), false)});
    }
    auto f = fptas.Solve(p);
    auto ev = equal_value.Solve(p);
    auto et = equal_tail.Solve(p);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(ev.ok());
    ASSERT_TRUE(et.ok());
    const double slack = std::log1p(0.01) + 1e-9;
    EXPECT_GE(f->log_probability, ev->log_probability - slack);
    EXPECT_GE(f->log_probability, et->log_probability - slack);
  }
}

}  // namespace
}  // namespace dcv
