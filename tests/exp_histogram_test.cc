#include "histogram/exp_histogram.h"

#include <deque>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

// Exact count of 1s in the window, for comparison.
class ExactWindowCounter {
 public:
  explicit ExactWindowCounter(int64_t window) : window_(window) {}

  void Add(int64_t timestamp, bool bit) {
    now_ = timestamp;
    if (bit) {
      ones_.push_back(timestamp);
    }
    while (!ones_.empty() && ones_.front() <= now_ - window_) {
      ones_.pop_front();
    }
  }

  int64_t Count() const { return static_cast<int64_t>(ones_.size()); }

 private:
  int64_t window_;
  int64_t now_ = 0;
  std::deque<int64_t> ones_;
};

TEST(ExpHistogramTest, EmptyEstimatesZero) {
  ExpHistogram h(100, 2);
  EXPECT_EQ(h.Estimate(), 0);
  EXPECT_EQ(h.LowerBound(), 0);
}

TEST(ExpHistogramTest, CountsExactlyWhenFewOnes) {
  ExpHistogram h(1000, 4);
  for (int t = 1; t <= 3; ++t) {
    h.Add(t, true);
  }
  // Three singleton buckets, no merging with k=4.
  EXPECT_EQ(h.UpperBound(), 3);
  EXPECT_GE(h.Estimate(), 2);
  EXPECT_LE(h.Estimate(), 3);
}

TEST(ExpHistogramTest, ExpiresOldBuckets) {
  ExpHistogram h(10, 2);
  h.Add(1, true);
  h.Add(2, true);
  EXPECT_GT(h.UpperBound(), 0);
  h.Add(20, false);  // Both 1s are now outside (10, 20].
  EXPECT_EQ(h.UpperBound(), 0);
  EXPECT_EQ(h.Estimate(), 0);
}

class ExpHistogramKSweep : public testing::TestWithParam<int> {};

TEST_P(ExpHistogramKSweep, RelativeErrorWithinBound) {
  const int k = GetParam();
  const int64_t window = 2000;
  ExpHistogram h(window, k);
  ExactWindowCounter exact(window);
  Rng rng(100 + k);
  for (int64_t t = 1; t <= 50000; ++t) {
    bool bit = rng.Bernoulli(0.3);
    h.Add(t, bit);
    exact.Add(t, bit);
    if (t % 997 == 0 && exact.Count() > 0) {
      double err = std::abs(static_cast<double>(h.Estimate()) -
                            static_cast<double>(exact.Count())) /
                   static_cast<double>(exact.Count());
      EXPECT_LE(err, 1.0 / k + 0.05) << "t=" << t << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, ExpHistogramKSweep,
                         testing::Values(2, 4, 8, 16));

TEST(ExpHistogramTest, BoundsBracketTruth) {
  const int64_t window = 500;
  ExpHistogram h(window, 3);
  ExactWindowCounter exact(window);
  Rng rng(55);
  for (int64_t t = 1; t <= 20000; ++t) {
    bool bit = rng.Bernoulli(0.5);
    h.Add(t, bit);
    exact.Add(t, bit);
    if (t % 503 == 0) {
      EXPECT_LE(exact.Count(), h.UpperBound());
      if (h.UpperBound() > 0) {
        EXPECT_GE(exact.Count(), h.LowerBound());
      }
    }
  }
}

TEST(ExpHistogramTest, BucketCountIsLogarithmic) {
  ExpHistogram h(100000, 2);
  for (int64_t t = 1; t <= 100000; ++t) {
    h.Add(t, true);
  }
  // (k+1) buckets per size class, ~log2(n/k) classes.
  EXPECT_LT(h.num_buckets(), 64u);
}

TEST(SlidingWindowSumTest, TracksConstantStream) {
  SlidingWindowSum sum(100, 8, 4);
  for (int64_t t = 1; t <= 1000; ++t) {
    sum.Add(t, 100);
  }
  // Window holds 100 values of 100 -> 10000.
  EXPECT_NEAR(static_cast<double>(sum.Estimate()), 10000.0, 2500.0);
}

TEST(SlidingWindowSumTest, ClampsToBitRange) {
  SlidingWindowSum sum(10, 4, 4);  // Values in [0, 15].
  sum.Add(1, 1000);
  EXPECT_LE(sum.Estimate(), 15);
}

TEST(SlidingWindowSumTest, ApproximatesExactWindowSum) {
  const int64_t window = 512;
  SlidingWindowSum sum(window, 10, 8);  // Values in [0, 1023].
  std::deque<int64_t> exact;
  int64_t exact_sum = 0;
  Rng rng(66);
  for (int64_t t = 1; t <= 20000; ++t) {
    int64_t v = rng.UniformInt(0, 1023);
    sum.Add(t, v);
    exact.push_back(v);
    exact_sum += v;
    if (static_cast<int64_t>(exact.size()) > window) {
      exact_sum -= exact.front();
      exact.pop_front();
    }
    if (t % 1009 == 0 && exact_sum > 0) {
      double err = std::abs(static_cast<double>(sum.Estimate()) -
                            static_cast<double>(exact_sum)) /
                   static_cast<double>(exact_sum);
      EXPECT_LE(err, 0.25) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace dcv
