#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "io/block_reader.h"
#include "io/block_writer.h"
#include "io/compress.h"
#include "io/format.h"

namespace dcv::io {
namespace {

/// Per-process temp path: ctest runs each discovered test in its own
/// process in parallel, so bare names would collide across tests.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/io_block_" + std::to_string(getpid()) + "_" +
         name;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError(path);
  }
  std::fseek(f, 0, SEEK_END);
  std::string out(static_cast<size_t>(std::ftell(f)), '\0');
  std::fseek(f, 0, SEEK_SET);
  const size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    return InternalError("short read");
  }
  return out;
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InternalError(path);
  }
  const size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (std::fclose(f) != 0 || put != bytes.size()) {
    return InternalError("short write");
  }
  return OkStatus();
}

/// Builds a deterministic multi-column workload.
std::vector<std::vector<int64_t>> MakeColumns(int64_t rows, int cols,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> columns(static_cast<size_t>(cols));
  for (auto& col : columns) {
    int64_t v = 1000;
    for (int64_t r = 0; r < rows; ++r) {
      v += rng.UniformInt(-9, 9);
      col.push_back(v);
    }
  }
  return columns;
}

/// Writes `columns` to `path` and returns the Finish status.
Status WriteFile(const std::string& path,
                 const std::vector<std::vector<int64_t>>& columns,
                 int64_t rows, const WriterOptions& options) {
  std::vector<std::string> names;
  for (size_t c = 0; c < columns.size(); ++c) {
    names.push_back("col" + std::to_string(c));
  }
  DCV_ASSIGN_OR_RETURN(auto writer, BlockWriter::Open(path, names, options));
  DCV_RETURN_IF_ERROR(writer->AppendColumns(columns, rows));
  return writer->Finish();
}

/// Scans the whole file and returns the reassembled columns.
Result<std::vector<std::vector<int64_t>>> ScanFile(const std::string& path) {
  DCV_ASSIGN_OR_RETURN(auto reader, BlockReader::Open(path));
  std::vector<std::vector<int64_t>> columns(reader->column_names().size());
  ColumnBlock block;
  for (;;) {
    DCV_ASSIGN_OR_RETURN(bool more, reader->Next(&block));
    if (!more) {
      return columns;
    }
    for (size_t c = 0; c < columns.size(); ++c) {
      columns[c].insert(columns[c].end(), block.columns[c].begin(),
                        block.columns[c].end());
    }
  }
}

TEST(BlockWriterTest, RoundTripsAsyncAndSync) {
  const auto columns = MakeColumns(1000, 3, 1);
  for (bool async : {true, false}) {
    for (RowCodec codec :
         {RowCodec::kFlat, RowCodec::kDelta, RowCodec::kZoh}) {
      const std::string path = TempPath("rt.dcvb");
      WriterOptions options;
      options.codec = codec;
      options.async = async;
      options.block_rows = 128;  // Forces multiple blocks + a partial tail.
      ASSERT_TRUE(WriteFile(path, columns, 1000, options).ok());
      auto back = ScanFile(path);
      ASSERT_TRUE(back.ok()) << back.status();
      EXPECT_EQ(*back, columns)
          << RowCodecName(codec) << " async=" << async;
      std::remove(path.c_str());
    }
  }
}

TEST(BlockWriterTest, RowAndColumnAppendsAgree) {
  const auto columns = MakeColumns(257, 2, 2);
  const std::string row_path = TempPath("rows.dcvb");
  const std::string col_path = TempPath("cols.dcvb");
  WriterOptions options;
  options.block_rows = 64;
  options.async = false;
  ASSERT_TRUE(WriteFile(col_path, columns, 257, options).ok());
  {
    auto writer = BlockWriter::Open(row_path, {"col0", "col1"}, options);
    ASSERT_TRUE(writer.ok());
    for (int64_t r = 0; r < 257; ++r) {
      ASSERT_TRUE((*writer)
                      ->AppendRow({columns[0][static_cast<size_t>(r)],
                                   columns[1][static_cast<size_t>(r)]})
                      .ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto row_bytes = ReadFileBytes(row_path);
  auto col_bytes = ReadFileBytes(col_path);
  ASSERT_TRUE(row_bytes.ok() && col_bytes.ok());
  EXPECT_EQ(*row_bytes, *col_bytes);  // Byte-identical files.
  std::remove(row_path.c_str());
  std::remove(col_path.c_str());
}

TEST(BlockWriterTest, ValidatesOptionsAndRows) {
  const std::string path = TempPath("opts.dcvb");
  EXPECT_FALSE(BlockWriter::Open(path, {}, {}).ok());  // No columns.
  WriterOptions bad_rows;
  bad_rows.block_rows = 0;
  EXPECT_FALSE(BlockWriter::Open(path, {"a"}, bad_rows).ok());
  auto writer = BlockWriter::Open(path, {"a", "b"}, {});
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE((*writer)->AppendRow({1}).ok());  // Width mismatch.
  ASSERT_TRUE((*writer)->Finish().ok());
  std::remove(path.c_str());
}

TEST(BlockWriterTest, EmptyFileRoundTrips) {
  const std::string path = TempPath("empty.dcvb");
  WriterOptions options;
  ASSERT_TRUE(WriteFile(path, {{}, {}}, 0, options).ok());
  auto reader = BlockReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ColumnBlock block;
  auto more = (*reader)->Next(&block);
  ASSERT_TRUE(more.ok()) << more.status();
  EXPECT_FALSE(*more);
  ASSERT_TRUE((*reader)->LoadIndex().ok());
  EXPECT_EQ((*reader)->total_rows(), 0);
  std::remove(path.c_str());
}

TEST(BlockReaderTest, IndexAndSeek) {
  const auto columns = MakeColumns(1000, 2, 3);
  const std::string path = TempPath("seek.dcvb");
  WriterOptions options;
  options.block_rows = 100;
  ASSERT_TRUE(WriteFile(path, columns, 1000, options).ok());
  auto reader = BlockReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->LoadIndex().ok());
  EXPECT_EQ((*reader)->total_rows(), 1000);
  EXPECT_EQ((*reader)->index().size(), 10u);
  // Seek into the middle and verify the stream resumes at block granularity.
  ASSERT_TRUE((*reader)->SeekToRow(437).ok());
  ColumnBlock block;
  auto more = (*reader)->Next(&block);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(block.first_row, 400);
  EXPECT_EQ(block.rows, 100);
  EXPECT_EQ(block.columns[0][37], columns[0][437]);
  // And the scan still finishes cleanly from there.
  int64_t rows = block.rows;
  for (;;) {
    auto next = (*reader)->Next(&block);
    ASSERT_TRUE(next.ok()) << next.status();
    if (!*next) break;
    rows += block.rows;
  }
  EXPECT_EQ(rows, 600);
  EXPECT_FALSE((*reader)->SeekToRow(1000).ok());
  EXPECT_FALSE((*reader)->SeekToRow(-1).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Corruption regression tests: every malformed input must fail with a
// clear Status (never a crash, hang, or silent partial read).

class CorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    const auto columns = MakeColumns(300, 2, 4);
    path_ = TempPath("corrupt.dcvb");
    WriterOptions options;
    options.block_rows = 100;
    options.async = false;
    ASSERT_TRUE(WriteFile(path_, columns, 300, options).ok());
    auto bytes = ReadFileBytes(path_);
    ASSERT_TRUE(bytes.ok());
    bytes_ = *bytes;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Full sequential scan; also exercises LoadIndex on a fresh reader.
  Status Scan(const std::string& bytes) {
    const std::string path = TempPath("corrupt_case.dcvb");
    Status write = WriteFileBytes(path, bytes);
    if (!write.ok()) {
      return write;
    }
    auto scanned = ScanFile(path);
    Status status = scanned.status();
    if (status.ok()) {
      auto reader = BlockReader::Open(path);
      if (reader.ok()) {
        status = (*reader)->LoadIndex();
      }
    }
    std::remove(path.c_str());
    return status;
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(CorruptionTest, EveryBitFlipIsDetected) {
  // Flip one bit in every byte of the file; CRCs, structural checks, and
  // the footer cross-checks must catch each one.
  for (size_t i = 0; i < bytes_.size(); ++i) {
    std::string corrupt = bytes_;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(Scan(corrupt).ok()) << "bit flip at byte " << i;
  }
}

TEST_F(CorruptionTest, EveryPrefixCutIsDetected) {
  // Cut the file after every prefix length (0 included): an interrupted
  // writer or download must read as truncated, not as a shorter trace.
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::string cut = bytes_.substr(0, len);
    EXPECT_FALSE(Scan(cut).ok()) << "prefix cut to " << len << " bytes";
  }
}

TEST_F(CorruptionTest, TruncationNamesTheProblem) {
  // Cut inside the data region: the scan ends with a "truncated" error,
  // and LoadIndex reports the missing end marker.
  std::string cut = bytes_.substr(0, bytes_.size() / 2);
  const std::string path = TempPath("cut.dcvb");
  ASSERT_TRUE(WriteFileBytes(path, cut).ok());
  auto scanned = ScanFile(path);
  ASSERT_FALSE(scanned.ok());
  EXPECT_NE(scanned.status().message().find("truncated"), std::string::npos)
      << scanned.status();
  auto reader = BlockReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Status index = (*reader)->LoadIndex();
  ASSERT_FALSE(index.ok());
  EXPECT_NE(index.message().find("end marker"), std::string::npos) << index;
  std::remove(path.c_str());
}

TEST_F(CorruptionTest, PayloadBitRotIsAcrcMismatch) {
  // The byte right after the first block's 16-byte header is payload; its
  // corruption must be reported as a CRC mismatch specifically.
  auto reader = BlockReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->LoadIndex().ok());
  const size_t payload_at =
      static_cast<size_t>((*reader)->index()[0].offset) + 16;
  std::string corrupt = bytes_;
  corrupt[payload_at] = static_cast<char>(corrupt[payload_at] ^ 0x40);
  Status status = Scan(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CRC mismatch"), std::string::npos)
      << status;
}

TEST_F(CorruptionTest, OverLengthBlockIsRejectedByName) {
  // Replace the first block's payload_len with a prefix past the format
  // cap: rejected before any allocation is sized from it.
  auto reader = BlockReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->LoadIndex().ok());
  const size_t block_at = static_cast<size_t>((*reader)->index()[0].offset);
  std::string corrupt = bytes_;
  std::string huge;
  AppendLe32(kMaxBlockPayload + 1, &huge);
  corrupt.replace(block_at, 4, huge);
  Status status = Scan(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("over-length"), std::string::npos)
      << status;
}

TEST_F(CorruptionTest, NotAFormatFileIsRejected) {
  EXPECT_FALSE(Scan("epoch,site0\n0,1\n").ok());
  EXPECT_FALSE(Scan("").ok());
  EXPECT_FALSE(Scan("DCV").ok());
}

// ---------------------------------------------------------------------
// LZ4 gating: both build flavors are covered — with LZ4 the compressed
// path must round-trip; without it, compressed files and compression
// requests must be rejected with kUnimplemented (not garbage data).

TEST(Lz4Test, CompressedRoundTripWhenAvailable) {
  if (!Lz4Available()) {
    GTEST_SKIP() << "built without LZ4";
  }
  const auto columns = MakeColumns(1000, 3, 5);
  const std::string path = TempPath("lz4.dcvb");
  WriterOptions options;
  options.compression = BlockCompression::kLz4;
  options.block_rows = 128;
  ASSERT_TRUE(WriteFile(path, columns, 1000, options).ok());
  auto back = ScanFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, columns);
  std::remove(path.c_str());
}

TEST(Lz4Test, UnavailableBuildRejectsCompression) {
  if (Lz4Available()) {
    GTEST_SKIP() << "built with LZ4";
  }
  WriterOptions options;
  options.compression = BlockCompression::kLz4;
  auto writer = BlockWriter::Open(TempPath("no_lz4.dcvb"), {"a"}, options);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kUnimplemented);

  // A hand-crafted header claiming LZ4 compression (valid CRC) must be
  // rejected at Open with kUnimplemented, not read as garbage.
  std::string header;
  AppendLe32(kFileMagic, &header);
  header.push_back(static_cast<char>(kFormatVersion));
  header.push_back(static_cast<char>(RowCodec::kFlat));
  header.push_back(static_cast<char>(BlockCompression::kLz4));
  header.push_back('\0');
  AppendLe32(1, &header);  // num_columns.
  std::string schema;
  AppendLe16(1, &schema);
  schema += "a";
  AppendLe32(static_cast<uint32_t>(schema.size()), &header);
  header += schema;
  AppendLe32(Crc32(header), &header);
  const std::string path = TempPath("lz4_claim.dcvb");
  ASSERT_TRUE(WriteFileBytes(path, header).ok());
  auto reader = BlockReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcv::io
