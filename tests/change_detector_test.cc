#include "histogram/change_detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

std::vector<int64_t> UniformSample(Rng& rng, int n, int64_t lo, int64_t hi) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(rng.UniformInt(lo, hi));
  }
  return out;
}

TEST(KsStatisticTest, IdenticalSamplesHaveZeroDistance) {
  std::vector<int64_t> a{1, 2, 3, 4, 5};
  auto d = KsStatistic(a, a);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST(KsStatisticTest, DisjointSamplesHaveDistanceOne) {
  auto d = KsStatistic({1, 2, 3}, {10, 11, 12});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 1.0);
}

TEST(KsStatisticTest, KnownIntermediateValue) {
  // F_a jumps to 1 at 1; F_b jumps to 1 at 2. Gap at v=1: |1 - 0.5| = 0.5.
  auto d = KsStatistic({1, 1}, {1, 2});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.5);
}

TEST(KsStatisticTest, EmptySampleIsError) {
  EXPECT_FALSE(KsStatistic({}, {1}).ok());
  EXPECT_FALSE(KsStatistic({1}, {}).ok());
}

TEST(KsStatisticTest, SymmetricInArguments) {
  Rng rng(1);
  auto a = UniformSample(rng, 100, 0, 50);
  auto b = UniformSample(rng, 80, 10, 90);
  EXPECT_DOUBLE_EQ(*KsStatistic(a, b), *KsStatistic(b, a));
}

TEST(KsCriticalValueTest, ShrinksWithSampleSize) {
  double small = KsCriticalValue(50, 50, 0.01);
  double large = KsCriticalValue(5000, 5000, 0.01);
  EXPECT_GT(small, large);
  EXPECT_GT(small, 0.0);
}

TEST(KsCriticalValueTest, LowerAlphaRaisesThreshold) {
  EXPECT_GT(KsCriticalValue(100, 100, 0.001), KsCriticalValue(100, 100, 0.05));
}

TEST(ChangeDetectorTest, NoAlarmOnStationaryStream) {
  ChangeDetector::Options opts;
  opts.window_size = 200;
  opts.alpha = 0.001;
  ChangeDetector detector(opts);
  Rng rng(7);
  detector.Reset(UniformSample(rng, 1000, 100, 200));
  int alarms = 0;
  for (int i = 0; i < 5000; ++i) {
    if (detector.Observe(rng.UniformInt(100, 200))) {
      ++alarms;
    }
  }
  EXPECT_EQ(alarms, 0);
}

TEST(ChangeDetectorTest, DetectsLargeShift) {
  ChangeDetector::Options opts;
  opts.window_size = 200;
  opts.alpha = 0.001;
  ChangeDetector detector(opts);
  Rng rng(8);
  detector.Reset(UniformSample(rng, 1000, 100, 200));
  // Feed shifted data: distribution moved up by 3x.
  bool detected = false;
  int observations_until_detection = 0;
  for (int i = 0; i < 2000 && !detected; ++i) {
    detected = detector.Observe(rng.UniformInt(300, 600));
    ++observations_until_detection;
  }
  EXPECT_TRUE(detected);
  // Needs a full window before it can compare.
  EXPECT_GE(observations_until_detection, 200);
  EXPECT_LE(observations_until_detection, 500);
  EXPECT_EQ(detector.num_alarms(), 1);
}

TEST(ChangeDetectorTest, DetectsModerateMeanShift) {
  ChangeDetector::Options opts;
  opts.window_size = 400;
  opts.alpha = 0.001;
  ChangeDetector detector(opts);
  Rng rng(9);
  std::vector<int64_t> ref;
  for (int i = 0; i < 2000; ++i) {
    ref.push_back(static_cast<int64_t>(rng.LogNormal(5.0, 0.5)));
  }
  detector.Reset(ref);
  bool detected = false;
  for (int i = 0; i < 3000 && !detected; ++i) {
    detected = detector.Observe(
        static_cast<int64_t>(rng.LogNormal(5.6, 0.5)));
  }
  EXPECT_TRUE(detected);
}

TEST(ChangeDetectorTest, CooldownSuppressesRapidRefiring) {
  ChangeDetector::Options opts;
  opts.window_size = 100;
  opts.alpha = 0.01;
  opts.cooldown = 500;
  ChangeDetector detector(opts);
  Rng rng(10);
  detector.Reset(UniformSample(rng, 500, 0, 10));
  int alarms = 0;
  for (int i = 0; i < 600; ++i) {
    if (detector.Observe(rng.UniformInt(1000, 2000))) {
      ++alarms;
    }
  }
  // Without a Reset after the first alarm, the cooldown limits re-fires.
  EXPECT_LE(alarms, 2);
  EXPECT_GE(alarms, 1);
}

TEST(ChangeDetectorTest, ResetClearsState) {
  ChangeDetector::Options opts;
  opts.window_size = 100;
  opts.alpha = 0.001;
  ChangeDetector detector(opts);
  Rng rng(11);
  detector.Reset(UniformSample(rng, 500, 0, 10));
  for (int i = 0; i < 300; ++i) {
    detector.Observe(rng.UniformInt(500, 600));
  }
  EXPECT_GE(detector.num_alarms(), 1);
  // Re-seed with the new distribution: no further alarms on it.
  detector.Reset(UniformSample(rng, 500, 500, 600));
  int alarms_after = 0;
  for (int i = 0; i < 1000; ++i) {
    if (detector.Observe(rng.UniformInt(500, 600))) {
      ++alarms_after;
    }
  }
  EXPECT_EQ(alarms_after, 0);
}

TEST(ChangeDetectorTest, CurrentWindowHoldsRecentObservations) {
  ChangeDetector::Options opts;
  opts.window_size = 5;
  ChangeDetector detector(opts);
  detector.Reset({1, 2, 3});
  for (int64_t v = 10; v < 20; ++v) {
    detector.Observe(v);
  }
  EXPECT_EQ(detector.CurrentWindow(),
            (std::vector<int64_t>{15, 16, 17, 18, 19}));
}

}  // namespace
}  // namespace dcv
