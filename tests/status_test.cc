#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dcv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InfeasibleError("x").code(), StatusCode::kInfeasible);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status Chained(int x) {
  DCV_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusConvertsToInternalError) {
  Result<int> r = OkStatus();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

Result<int> Doubled(int x) {
  DCV_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dcv
