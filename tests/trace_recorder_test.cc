#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace_recorder.h"

namespace dcv::obs {
namespace {

TEST(TraceRecorderTest, RecordsEventsInOrder) {
  TraceRecorder rec;
  rec.Record(TraceEventKind::kLocalAlarm, 5, 2, 97);
  rec.Record(TraceEventKind::kPollStart, 5);
  rec.Record(TraceEventKind::kPollEnd, 5, TraceRecorder::kCoordinator, 3, 12);
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kLocalAlarm);
  EXPECT_EQ(events[0].epoch, 5);
  EXPECT_EQ(events[0].site, 2);
  EXPECT_EQ(events[0].value, 97);
  EXPECT_EQ(events[1].site, TraceRecorder::kCoordinator);
  EXPECT_EQ(events[2].value, 3);
  EXPECT_EQ(events[2].duration_us, 12);
  EXPECT_EQ(rec.dropped(), 0);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder rec(/*capacity=*/3);
  for (int64_t e = 0; e < 5; ++e) {
    rec.Record(TraceEventKind::kLocalAlarm, e, 0, e);
  }
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 2);
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first: epochs 2, 3, 4 survive.
  EXPECT_EQ(events[0].epoch, 2);
  EXPECT_EQ(events[1].epoch, 3);
  EXPECT_EQ(events[2].epoch, 4);
}

TEST(TraceRecorderTest, ClearResetsEverything) {
  TraceRecorder rec(/*capacity=*/2);
  rec.Record(TraceEventKind::kCrash, 1, 0);
  rec.Record(TraceEventKind::kRecovery, 2, 0);
  rec.Record(TraceEventKind::kResync, 3, 0);
  EXPECT_EQ(rec.dropped(), 1);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0);
  EXPECT_TRUE(rec.Events().empty());
  rec.Record(TraceEventKind::kViolation, 9);
  ASSERT_EQ(rec.Events().size(), 1u);
  EXPECT_EQ(rec.Events()[0].epoch, 9);
}

TEST(TraceRecorderTest, KindNamesAreStable) {
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kLocalAlarm), "local_alarm");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kThresholdRecompute),
            "threshold_recompute");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kViolation), "violation");
}

TEST(TraceRecorderTest, JsonlGolden) {
  TraceRecorder rec;
  rec.Record(TraceEventKind::kLocalAlarm, 12, 3, 97);
  rec.Record(TraceEventKind::kPollEnd, 12, TraceRecorder::kCoordinator, 4, 38);
  EXPECT_EQ(rec.ToJsonl(),
            "{\"kind\":\"local_alarm\",\"epoch\":12,\"site\":3,\"value\":97}\n"
            "{\"kind\":\"poll_end\",\"epoch\":12,\"site\":-1,\"value\":4,"
            "\"duration_us\":38}\n");
}

TEST(TraceRecorderTest, ChromeTraceGolden) {
  TraceRecorder rec;
  rec.DeclareSites(1);
  rec.Record(TraceEventKind::kLocalAlarm, 2, 0, 7);
  rec.Record(TraceEventKind::kThresholdRecompute, 3,
             TraceRecorder::kCoordinator, 1, 50);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      // Coordinator track metadata.
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"coordinator\"}},"
      "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"sort_index\":0}},"
      // Site 0 track metadata.
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"site 0\"}},"
      "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"sort_index\":1}},"
      // Instant on the site track: ts = epoch * 1000.
      "{\"name\":\"local_alarm\",\"cat\":\"dcv\",\"ph\":\"i\",\"s\":\"t\","
      "\"ts\":2000,\"pid\":1,\"tid\":1,\"args\":{\"epoch\":2,\"value\":7}},"
      // Duration slice on the coordinator track.
      "{\"name\":\"threshold_recompute\",\"cat\":\"dcv\",\"ph\":\"X\","
      "\"dur\":50,\"ts\":3000,\"pid\":1,\"tid\":0,"
      "\"args\":{\"epoch\":3,\"value\":1}}"
      "]}";
  EXPECT_EQ(rec.ToChromeJson(), expected);
}

TEST(TraceRecorderTest, ChromeTraceEmitsDeclaredSiteTracksWithoutEvents) {
  TraceRecorder rec;
  rec.DeclareSites(3);
  std::string json = rec.ToChromeJson();
  // One named track per declared site even though nothing was recorded.
  EXPECT_NE(json.find("\"name\":\"site 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"site 2\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"site 3\""), std::string::npos);
}

TEST(TraceRecorderTest, ChromeTraceInfersSitesFromEvents) {
  TraceRecorder rec;  // No DeclareSites call.
  rec.Record(TraceEventKind::kLocalAlarm, 0, 4, 1);
  std::string json = rec.ToChromeJson();
  // Max site index 4 => tracks for sites 0..4.
  EXPECT_NE(json.find("\"name\":\"site 4\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"site 0\""), std::string::npos);
}

TEST(TraceRecorderTest, WriteFilesRoundTrip) {
  TraceRecorder rec;
  rec.Record(TraceEventKind::kViolation, 1, TraceRecorder::kCoordinator, 1);
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(rec.WriteJsonl(dir + "/trace.jsonl").ok());
  ASSERT_TRUE(rec.WriteChromeTrace(dir + "/trace.json").ok());
  EXPECT_FALSE(rec.WriteJsonl("/nonexistent-dir/trace.jsonl").ok());
}

}  // namespace
}  // namespace dcv::obs
