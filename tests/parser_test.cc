#include "constraints/parser.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

TEST(ParserTest, SimpleSumConstraint) {
  auto parsed = ParseConstraint("x1 + x2 <= 5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars(), 2);
  EXPECT_EQ(parsed->var_names, (std::vector<std::string>{"x1", "x2"}));
  EXPECT_TRUE(parsed->expr.Evaluate({2, 3}));
  EXPECT_FALSE(parsed->expr.Evaluate({3, 3}));
}

TEST(ParserTest, CoefficientsWithAndWithoutStar) {
  auto a = ParseConstraint("3*x + 2*y <= 10");
  auto b = ParseConstraint("3x + 2y <= 10");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t x = 0; x <= 4; ++x) {
    for (int64_t y = 0; y <= 4; ++y) {
      EXPECT_EQ(a->expr.Evaluate({x, y}), b->expr.Evaluate({x, y}));
    }
  }
}

TEST(ParserTest, SubtractionAndUnaryMinus) {
  auto parsed = ParseConstraint("-a + 2b - 3 <= 4");
  ASSERT_TRUE(parsed.ok());
  // -a + 2b - 3 <= 4.
  EXPECT_TRUE(parsed->expr.Evaluate({0, 0}));    // -3 <= 4.
  EXPECT_FALSE(parsed->expr.Evaluate({0, 4}));   // 8-3=5 > 4.
  EXPECT_TRUE(parsed->expr.Evaluate({10, 4}));   // -10+8-3=-5 <= 4.
}

TEST(ParserTest, NegativeThreshold) {
  auto parsed = ParseConstraint("a - b <= -2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->expr.Evaluate({0, 2}));
  EXPECT_FALSE(parsed->expr.Evaluate({0, 1}));
}

TEST(ParserTest, MinMaxSumFunctions) {
  auto parsed = ParseConstraint("MIN{a, b} + MAX{c, 2d} + SUM{a, c} <= 10");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars(), 4);
  // min(1,2) + max(3, 2) + (1+3) = 1 + 3 + 4 = 8 <= 10.
  EXPECT_TRUE(parsed->expr.Evaluate({1, 2, 3, 1}));
  // min(5,9)=5, max(0,8)=8, 5+0=5 -> 18 > 10.
  EXPECT_FALSE(parsed->expr.Evaluate({5, 9, 0, 4}));
}

TEST(ParserTest, BooleanPrecedenceAndBindsTighter) {
  auto parsed = ParseConstraint("a <= 1 || b <= 1 && c <= 1");
  ASSERT_TRUE(parsed.ok());
  // Parsed as (a<=1) || ((b<=1) && (c<=1)).
  EXPECT_TRUE(parsed->expr.Evaluate({0, 9, 9}));
  EXPECT_FALSE(parsed->expr.Evaluate({9, 0, 9}));
  EXPECT_TRUE(parsed->expr.Evaluate({9, 0, 0}));
}

TEST(ParserTest, ParenthesizedBooleanGrouping) {
  auto parsed = ParseConstraint("(a <= 1 || b <= 1) && c <= 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->expr.Evaluate({0, 9, 9}));
  EXPECT_TRUE(parsed->expr.Evaluate({0, 9, 0}));
}

TEST(ParserTest, ParenthesizedArithmeticGrouping) {
  auto parsed = ParseConstraint("2*(a + b) <= 6");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->expr.Evaluate({1, 2}));
  EXPECT_FALSE(parsed->expr.Evaluate({2, 2}));
}

TEST(ParserTest, PaperExampleParses) {
  auto parsed = ParseConstraint(
      "((3x1 + x2 >= 1) || (MIN{x1, 2x3 - x2} <= 5)) && "
      "(x1 + MAX{3x2, x3} >= 4)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars(), 3);
  EXPECT_TRUE(parsed->expr.Evaluate({1, 1, 1}));
  EXPECT_FALSE(parsed->expr.Evaluate({0, 1, 0}));
}

TEST(ParserTest, KeywordOperatorsAndOr) {
  auto parsed = ParseConstraint("a <= 1 AND b <= 1 OR c <= 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->expr.Evaluate({9, 9, 0}));
  EXPECT_TRUE(parsed->expr.Evaluate({0, 0, 9}));
  EXPECT_FALSE(parsed->expr.Evaluate({0, 9, 9}));
}

TEST(ParserTest, ScalingMinFlipsToMaxUnderNegation) {
  // -MIN{a,b} <= -3 is equivalent to MAX{-a,-b} <= -3, i.e. min(a,b) >= 3.
  auto parsed = ParseConstraint("0 - MIN{a, b} <= -3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->expr.Evaluate({3, 5}));
  EXPECT_FALSE(parsed->expr.Evaluate({2, 5}));
}

TEST(ParserTest, RoundTripThroughToString) {
  const std::string source =
      "((3*x1 + x2 >= 1) || (MIN{x1, 2*x3 - x2} <= 5)) && "
      "(x1 + MAX{3*x2, x3} >= 4)";
  auto parsed = ParseConstraint(source);
  ASSERT_TRUE(parsed.ok());
  std::string printed = parsed->expr.ToString(&parsed->var_names);
  auto reparsed = ParseConstraintWithVars(printed, parsed->var_names);
  ASSERT_TRUE(reparsed.ok()) << printed;
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> v{rng.UniformInt(0, 8), rng.UniformInt(0, 8),
                           rng.UniformInt(0, 8)};
    EXPECT_EQ(parsed->expr.Evaluate(v), reparsed->Evaluate(v));
  }
}

TEST(ParserTest, FixedVariableTableResolvesByName) {
  auto parsed = ParseConstraintWithVars("b + a <= 4", {"a", "b", "c"});
  ASSERT_TRUE(parsed.ok());
  // a is index 0, b is index 1 regardless of appearance order.
  EXPECT_TRUE(parsed->Evaluate({4, 0, 99}));
  EXPECT_FALSE(parsed->Evaluate({4, 1, 99}));
}

TEST(ParserTest, FixedVariableTableRejectsUnknown) {
  auto parsed = ParseConstraintWithVars("z <= 4", {"a", "b"});
  EXPECT_FALSE(parsed.ok());
}

TEST(ParserTest, ErrorMissingComparison) {
  EXPECT_FALSE(ParseConstraint("x1 + x2").ok());
}

TEST(ParserTest, ErrorDanglingOperator) {
  EXPECT_FALSE(ParseConstraint("x1 + <= 5").ok());
  EXPECT_FALSE(ParseConstraint("x1 <= 5 &&").ok());
}

TEST(ParserTest, ErrorUnbalancedDelimiters) {
  EXPECT_FALSE(ParseConstraint("(x1 <= 5").ok());
  EXPECT_FALSE(ParseConstraint("MIN{x1, x2 <= 5").ok());
  EXPECT_FALSE(ParseConstraint("x1) <= 5").ok());
}

TEST(ParserTest, ErrorTrailingGarbage) {
  EXPECT_FALSE(ParseConstraint("x1 <= 5 x2").ok());
}

TEST(ParserTest, ErrorEmptyInput) {
  EXPECT_FALSE(ParseConstraint("").ok());
}

TEST(ParserTest, ConstantOnlyAtom) {
  auto parsed = ParseConstraint("3 <= 5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->expr.Evaluate({}));
  auto parsed2 = ParseConstraint("7 <= 5");
  ASSERT_TRUE(parsed2.ok());
  EXPECT_FALSE(parsed2->expr.Evaluate({}));
}

}  // namespace
}  // namespace dcv
