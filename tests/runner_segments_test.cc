#include <gtest/gtest.h>

#include "sim/geometric_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

SimOptions MakeSimOptions(int64_t threshold) {
  SimOptions options;
  options.global_threshold = threshold;
  return options;
}

Trace MakeTrace(int sites, int64_t epochs, uint64_t seed) {
  SyntheticTraceOptions options;
  options.num_sites = sites;
  options.num_epochs = epochs;
  options.seed = seed;
  options.marginal = Marginal::kUniform;
  options.domain_max = 100;
  auto t = GenerateSyntheticTrace(options);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(RunnerSegmentsTest, RejectsBadSegmentLength) {
  Trace t = MakeTrace(2, 10, 1);
  PollingScheme scheme(1);
  EXPECT_FALSE(
      RunSimulationSegments(&scheme, SimOptions{}, t, t, 0).ok());
  EXPECT_FALSE(RunSimulationSegments(nullptr, SimOptions{}, t, t, 5).ok());
}

TEST(RunnerSegmentsTest, SegmentCountAndLengths) {
  Trace t = MakeTrace(2, 10, 2);
  PollingScheme scheme(1);
  SimOptions options;
  options.global_threshold = 300;
  auto segments = RunSimulationSegments(&scheme, options, t, t, 4);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);  // 4 + 4 + 2.
  EXPECT_EQ((*segments)[0].epochs, 4);
  EXPECT_EQ((*segments)[1].epochs, 4);
  EXPECT_EQ((*segments)[2].epochs, 2);
}

TEST(RunnerSegmentsTest, ExactMultipleHasNoEmptyTailSegment) {
  Trace t = MakeTrace(2, 8, 3);
  PollingScheme scheme(1);
  auto segments =
      RunSimulationSegments(&scheme, MakeSimOptions(300), t,
                            t, 4);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 2u);
}

TEST(RunnerSegmentsTest, SegmentsSumToWholeRun) {
  Trace t = MakeTrace(3, 500, 4);
  SimOptions options;
  options.global_threshold = 160;

  PollingScheme whole_scheme(1);
  auto whole = RunSimulation(&whole_scheme, options, t, t);
  ASSERT_TRUE(whole.ok());

  PollingScheme seg_scheme(1);
  auto segments = RunSimulationSegments(&seg_scheme, options, t, t, 77);
  ASSERT_TRUE(segments.ok());

  int64_t epochs = 0;
  int64_t messages = 0;
  int64_t violations = 0;
  int64_t detected = 0;
  int64_t polled = 0;
  for (const SimResult& s : *segments) {
    epochs += s.epochs;
    messages += s.messages.total();
    violations += s.true_violations;
    detected += s.detected_violations;
    polled += s.polled_epochs;
  }
  EXPECT_EQ(epochs, whole->epochs);
  EXPECT_EQ(messages, whole->messages.total());
  EXPECT_EQ(violations, whole->true_violations);
  EXPECT_EQ(detected, whole->detected_violations);
  EXPECT_EQ(polled, whole->polled_epochs);
}

TEST(RunnerSegmentsTest, MessageAttributionPerSegmentIsExact) {
  // A polling scheme with period 3 emits messages in a known pattern; each
  // segment must account exactly for its own epochs' polls.
  Trace t = MakeTrace(1, 9, 5);
  PollingScheme scheme(3);  // Polls at epochs 0, 3, 6.
  auto segments =
      RunSimulationSegments(&scheme, MakeSimOptions(1000), t,
                            t, 3);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  for (const SimResult& s : *segments) {
    // One poll (2 messages for a single site) per 3-epoch segment.
    EXPECT_EQ(s.messages.total(), 2);
    EXPECT_EQ(s.polled_epochs, 1);
  }
}

TEST(RunnerSegmentsTest, AdaptiveStateCarriesAcrossSegments) {
  // Run the Geometric scheme segmented and whole; identical totals prove
  // the scheme was not re-initialized at segment boundaries.
  Trace t = MakeTrace(3, 600, 6);
  SimOptions options;
  options.global_threshold = 170;

  GeometricScheme whole_scheme;
  auto whole = RunSimulation(&whole_scheme, options, t, t);
  ASSERT_TRUE(whole.ok());

  GeometricScheme seg_scheme;
  auto segments = RunSimulationSegments(&seg_scheme, options, t, t, 100);
  ASSERT_TRUE(segments.ok());
  int64_t messages = 0;
  for (const SimResult& s : *segments) {
    messages += s.messages.total();
  }
  EXPECT_EQ(messages, whole->messages.total());
  EXPECT_GT(messages, 0);
}

TEST(RunnerSegmentsTest, EmptyEvalViaRunSimulation) {
  Trace training = MakeTrace(2, 10, 7);
  Trace empty(2);
  PollingScheme scheme(1);
  auto result = RunSimulation(&scheme, MakeSimOptions(10), training, empty);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epochs, 0);
  EXPECT_EQ(result->messages.total(), 0);
}

}  // namespace
}  // namespace dcv
