// Robustness tests: the lexer/parser/normalizer must never crash or abort
// on malformed input — every outcome is either a parse or a clean Status.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraints/normalize.h"
#include "constraints/parser.h"

namespace dcv {
namespace {

const char kAlphabet[] =
    "abxyz019 +-*(){},<=>&|MINMAXSUM\t_";

TEST(ParserFuzzTest, RandomStringsNeverCrash) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 20000; ++trial) {
    size_t len = static_cast<size_t>(rng.UniformInt(0, 40));
    std::string text;
    for (size_t i = 0; i < len; ++i) {
      text.push_back(kAlphabet[rng.UniformInt(
          0, static_cast<int64_t>(sizeof(kAlphabet)) - 2)]);
    }
    auto parsed = ParseConstraint(text);
    if (parsed.ok()) {
      // Whatever parsed must evaluate and normalize without crashing.
      std::vector<int64_t> zeros(
          static_cast<size_t>(parsed->num_vars()), 0);
      (void)parsed->expr.Evaluate(zeros);
      (void)ToCnf(parsed->expr);
    }
  }
}

TEST(ParserFuzzTest, MutatedValidConstraintsNeverCrash) {
  // Start from valid constraints and apply random single-character edits:
  // many mutants stay valid (exercising odd-but-legal shapes), the rest
  // must fail with a clean Status.
  const std::string base =
      "((3*x1 + x2 >= 1) || (MIN{x1, 2*x3 - x2} <= 5)) && "
      "(x1 + MAX{3*x2, x3} >= 4)";
  Rng rng(0xF024);
  int parsed_ok = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::string text = base;
    int edits = static_cast<int>(rng.UniformInt(1, 4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // Replace.
          text[pos] = kAlphabet[rng.UniformInt(
              0, static_cast<int64_t>(sizeof(kAlphabet)) - 2)];
          break;
        case 1:  // Delete.
          text.erase(pos, 1);
          break;
        default:  // Insert.
          text.insert(pos, 1,
                      kAlphabet[rng.UniformInt(
                          0, static_cast<int64_t>(sizeof(kAlphabet)) - 2)]);
          break;
      }
    }
    auto parsed = ParseConstraint(text);
    if (parsed.ok()) {
      ++parsed_ok;
      std::vector<int64_t> zeros(
          static_cast<size_t>(parsed->num_vars()), 0);
      (void)parsed->expr.Evaluate(zeros);
      (void)ToCnf(parsed->expr);
    }
  }
  // Light mutation keeps a healthy fraction of inputs valid.
  EXPECT_GT(parsed_ok, 100);
}

TEST(ParserFuzzTest, RandomValidConstraintsRoundTrip) {
  // Generate syntactically valid constraints from the grammar, print them,
  // and re-parse; both must evaluate identically everywhere.
  Rng rng(0xF023);
  for (int trial = 0; trial < 300; ++trial) {
    const int num_vars = 3;
    auto gen_agg = [&](auto&& self, int depth) -> std::string {
      if (depth == 0 || rng.Bernoulli(0.5)) {
        std::string s;
        int terms = static_cast<int>(rng.UniformInt(1, 2));
        for (int i = 0; i < terms; ++i) {
          if (i > 0) {
            s += rng.Bernoulli(0.5) ? " + " : " - ";
          }
          if (rng.Bernoulli(0.5)) {
            s += std::to_string(rng.UniformInt(1, 4)) + "*";
          }
          s += std::string(1, static_cast<char>('a' + rng.UniformInt(0, 2)));
        }
        return s;
      }
      const char* fn = rng.Bernoulli(0.5)
                           ? "MIN"
                           : (rng.Bernoulli(0.5) ? "MAX" : "SUM");
      return std::string(fn) + "{" + self(self, depth - 1) + ", " +
             self(self, depth - 1) + "}";
    };
    auto gen_bool = [&](auto&& self, int depth) -> std::string {
      if (depth == 0 || rng.Bernoulli(0.5)) {
        return "(" + gen_agg(gen_agg, 2) +
               (rng.Bernoulli(0.5) ? " <= " : " >= ") +
               std::to_string(rng.UniformInt(-5, 15)) + ")";
      }
      return "(" + self(self, depth - 1) +
             (rng.Bernoulli(0.5) ? " && " : " || ") + self(self, depth - 1) +
             ")";
    };
    std::string text = gen_bool(gen_bool, 2);
    auto parsed = ParseConstraint(text);
    ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.status();
    std::string printed = parsed->expr.ToString(&parsed->var_names);
    auto reparsed = ParseConstraintWithVars(printed, parsed->var_names);
    ASSERT_TRUE(reparsed.ok()) << printed << " -> " << reparsed.status();
    for (int probe = 0; probe < 60; ++probe) {
      std::vector<int64_t> v(static_cast<size_t>(num_vars));
      for (auto& x : v) {
        x = rng.UniformInt(0, 6);
      }
      ASSERT_EQ(parsed->expr.Evaluate(v), reparsed->Evaluate(v))
          << "source: " << text << "\nprinted: " << printed;
    }
  }
}

TEST(ParserFuzzTest, DeeplyNestedInputIsHandled) {
  // Very deep nesting must either parse or error out, not smash the stack.
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "(";
  }
  text += "x <= 1";
  for (int i = 0; i < 200; ++i) {
    text += ")";
  }
  auto parsed = ParseConstraint(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->expr.Evaluate({1}));

  std::string unbalanced(500, '(');
  EXPECT_FALSE(ParseConstraint(unbalanced).ok());
}

TEST(ParserFuzzTest, HugeNumbersAreRejectedCleanly) {
  EXPECT_FALSE(ParseConstraint("x <= 99999999999999999999999999").ok());
}

}  // namespace
}  // namespace dcv
