#include "sim/multilevel_scheme.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/local_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

struct Workload {
  Trace training{0};
  Trace eval{0};
};

Workload MakeWorkload(uint64_t seed) {
  SyntheticTraceOptions options;
  options.num_sites = 5;
  options.num_epochs = 2000;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 5.0;
  options.param2 = 0.7;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, 1000);
  w.eval = *trace->Slice(1000, 2000);
  return w;
}

TEST(MultiLevelSchemeTest, RequiresSolverAndLevels) {
  MultiLevelScheme::Options options;
  options.solver = nullptr;
  MultiLevelScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = 1;
  ctx.weights = {1};
  MessageCounter counter;
  ctx.counter = &counter;
  EXPECT_FALSE(scheme.Initialize(ctx).ok());

  FptasSolver solver(0.05);
  MultiLevelScheme::Options bad_levels;
  bad_levels.solver = &solver;
  bad_levels.num_levels = 1;
  MultiLevelScheme scheme2(bad_levels);
  EXPECT_FALSE(scheme2.Initialize(ctx).ok());
}

class MultiLevelLevelsSweep : public testing::TestWithParam<int> {};

TEST_P(MultiLevelLevelsSweep, NeverMissesViolations) {
  Workload w = MakeWorkload(31 + static_cast<uint64_t>(GetParam()));
  FptasSolver solver(0.05);
  MultiLevelScheme::Options options;
  options.solver = &solver;
  options.num_levels = GetParam();
  MultiLevelScheme scheme(options);
  auto threshold = ThresholdForOverflowFraction(w.eval, {}, 0.03);
  ASSERT_TRUE(threshold.ok());
  SimOptions sim;
  sim.global_threshold = *threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->true_violations, 0);
  EXPECT_EQ(result->missed_violations, 0);
  EXPECT_EQ(result->detected_violations, result->true_violations);
}

INSTANTIATE_TEST_SUITE_P(Levels, MultiLevelLevelsSweep,
                         testing::Values(2, 3, 4, 6, 10));

TEST(MultiLevelSchemeTest, EdgesAreStrictlyIncreasingAndEndAtDomainMax) {
  Workload w = MakeWorkload(77);
  FptasSolver solver(0.05);
  MultiLevelScheme::Options options;
  options.solver = &solver;
  options.num_levels = 6;
  MultiLevelScheme scheme(options);
  auto threshold = ThresholdForOverflowFraction(w.eval, {}, 0.02);
  ASSERT_TRUE(threshold.ok());
  SimOptions sim;
  sim.global_threshold = *threshold;
  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < w.training.num_sites(); ++i) {
    const auto& edges = scheme.edges(i);
    ASSERT_GE(edges.size(), 2u);
    for (size_t j = 1; j < edges.size(); ++j) {
      EXPECT_LT(edges[j - 1], edges[j]) << "site " << i;
    }
    // Last edge is the (headroomed) domain maximum, above anything trained.
    EXPECT_GE(edges.back(), w.training.MaxValue(i));
  }
}

TEST(MultiLevelSchemeTest, BootstrapSendsOneReportPerSite) {
  Workload w = MakeWorkload(78);
  FptasSolver solver(0.05);
  MultiLevelScheme::Options options;
  options.solver = &solver;
  MultiLevelScheme scheme(options);
  SimContext ctx;
  ctx.num_sites = w.training.num_sites();
  ctx.weights.assign(static_cast<size_t>(ctx.num_sites), 1);
  ctx.global_threshold = 1'000'000'000;  // Never polls.
  ctx.training = &w.training;
  MessageCounter counter;
  ctx.counter = &counter;
  ASSERT_TRUE(scheme.Initialize(ctx).ok());
  auto r = scheme.OnEpoch(w.eval.epoch(0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(counter.of(MessageType::kFilterReport), ctx.num_sites);
}

TEST(MultiLevelSchemeTest, StableValuesGenerateNoTraffic) {
  // Constant values: after bootstrap, no band changes and (with a generous
  // threshold) no polls.
  Trace training(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(training.AppendEpoch({50, 60}).ok());
  }
  Trace eval(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(eval.AppendEpoch({50, 60}).ok());
  }
  FptasSolver solver(0.05);
  MultiLevelScheme::Options options;
  options.solver = &solver;
  options.num_levels = 4;
  MultiLevelScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = 1000;
  auto result = RunSimulation(&scheme, sim, training, eval);
  ASSERT_TRUE(result.ok());
  // Bootstrap reports only.
  EXPECT_EQ(result->messages.total(), 2);
  EXPECT_EQ(result->polled_epochs, 0);
}

TEST(MultiLevelSchemeTest, CertifiedBoundSkipsPollsThatSingleThresholdPays) {
  // One site hot, others cold: the band bound keeps the coordinator from
  // polling, while the single-threshold scheme polls on the hot alarm.
  Trace training(3);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(training
                    .AppendEpoch({rng.UniformInt(40, 60),
                                  rng.UniformInt(40, 60),
                                  rng.UniformInt(40, 60)})
                    .ok());
  }
  Trace eval(3);
  for (int i = 0; i < 100; ++i) {
    // Site 0 runs hot (but within its trained range); others sit cold.
    ASSERT_TRUE(eval.AppendEpoch({59, 41, 41}).ok());
  }
  SimOptions sim;
  sim.global_threshold = 170;  // 59 + 41 + 41 = 141: no violation.

  FptasSolver solver(0.05);
  MultiLevelScheme::Options ml_options;
  ml_options.solver = &solver;
  ml_options.num_levels = 6;
  MultiLevelScheme multi(ml_options);
  auto multi_result = RunSimulation(&multi, sim, training, eval);
  ASSERT_TRUE(multi_result.ok());

  LocalThresholdScheme::Options single_options;
  single_options.solver = &solver;
  LocalThresholdScheme single(single_options);
  auto single_result = RunSimulation(&single, sim, training, eval);
  ASSERT_TRUE(single_result.ok());

  EXPECT_EQ(multi_result->missed_violations, 0);
  EXPECT_EQ(single_result->missed_violations, 0);
  EXPECT_LT(multi_result->polled_epochs, single_result->polled_epochs);
}

}  // namespace
}  // namespace dcv
