// Focused tests for the Geometric comparator beyond the behavior covered in
// sim_schemes_test.cc: weighted constraints, slack arithmetic at the edges,
// and the covering invariant under adversarial value sequences.

#include "sim/geometric_scheme.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/runner.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

struct Harness {
  GeometricScheme scheme;
  MessageCounter counter;
  SimContext ctx;

  Status Init(int sites, std::vector<int64_t> weights, int64_t threshold) {
    ctx.num_sites = sites;
    ctx.weights = std::move(weights);
    ctx.global_threshold = threshold;
    ctx.counter = &counter;
    return scheme.Initialize(ctx);
  }
};

TEST(GeometricSchemeTest, InitialThresholdsRespectWeights) {
  Harness h;
  ASSERT_TRUE(h.Init(2, {1, 3}, 24).ok());
  // T/(n*A_i): 24/(2*1)=12, 24/(2*3)=4.
  EXPECT_EQ(h.scheme.thresholds(), (std::vector<int64_t>{12, 4}));
}

TEST(GeometricSchemeTest, WeightedSlackRedistribution) {
  Harness h;
  ASSERT_TRUE(h.Init(2, {2, 1}, 20).ok());
  // Initial thresholds: 20/(2*2)=5, 20/(2*1)=10.
  // Epoch: site 0 at 6 (> 5) -> alarm; weighted sum = 12+4=16, slack 4.
  auto r = h.scheme.OnEpoch({6, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_alarms, 1);
  EXPECT_FALSE(r->violation_reported);
  // share_i = slack/(n*A_i): site0 4/(2*2)=1 -> 7; site1 4/(2*1)=2 -> 6.
  EXPECT_EQ(h.scheme.thresholds(), (std::vector<int64_t>{7, 6}));
  // Covering preserved: 2*7 + 1*6 = 20 <= 20.
}

TEST(GeometricSchemeTest, CoveringInvariantUnderRandomSequences) {
  // After every adaptation, sum_i A_i * T_i <= T must hold, and whenever
  // the global constraint is violated at least one local must alarm.
  Rng rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    Harness h;
    const int n = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<int64_t> weights;
    for (int i = 0; i < n; ++i) {
      weights.push_back(rng.UniformInt(1, 3));
    }
    const int64_t threshold = rng.UniformInt(20, 200);
    ASSERT_TRUE(h.Init(n, weights, threshold).ok());
    for (int epoch = 0; epoch < 200; ++epoch) {
      std::vector<int64_t> values;
      int64_t sum = 0;
      for (int i = 0; i < n; ++i) {
        values.push_back(rng.UniformInt(0, 60));
        sum += weights[static_cast<size_t>(i)] * values.back();
      }
      bool violated = sum > threshold;
      auto r = h.scheme.OnEpoch(values);
      ASSERT_TRUE(r.ok());
      if (violated) {
        ASSERT_GT(r->num_alarms, 0) << "violation without alarm";
        ASSERT_TRUE(r->violation_reported);
      }
      // Post-adaptation covering: sum of weighted thresholds <= T.
      int64_t wt = 0;
      for (int i = 0; i < n; ++i) {
        wt += weights[static_cast<size_t>(i)] *
              h.scheme.thresholds()[static_cast<size_t>(i)];
      }
      ASSERT_LE(wt, threshold) << "trial " << trial << " epoch " << epoch;
    }
  }
}

TEST(GeometricSchemeTest, QuietEpochsSendNothing) {
  Harness h;
  ASSERT_TRUE(h.Init(3, {1, 1, 1}, 300).ok());
  for (int epoch = 0; epoch < 50; ++epoch) {
    auto r = h.scheme.OnEpoch({10, 20, 30});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->num_alarms, 0);
    EXPECT_FALSE(r->polled);
  }
  EXPECT_EQ(h.counter.total(), 0);
}

TEST(GeometricSchemeTest, RecoversAfterViolationClears) {
  Harness h;
  ASSERT_TRUE(h.Init(2, {1, 1}, 10).ok());
  // Violation epoch.
  auto r1 = h.scheme.OnEpoch({9, 9});
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->violation_reported);
  // System recovers: values drop well below; the adapted (negative-slack)
  // thresholds still alarm once, then re-center with positive slack.
  auto r2 = h.scheme.OnEpoch({2, 2});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->violation_reported);
  // Now thresholds have slack again: T_i = 2 + (10-4)/2 = 5.
  EXPECT_EQ(h.scheme.thresholds(), (std::vector<int64_t>{5, 5}));
  // And a calm epoch is silent.
  auto r3 = h.scheme.OnEpoch({3, 3});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->num_alarms, 0);
}

TEST(GeometricSchemeTest, MismatchedEpochSizeIsError) {
  Harness h;
  ASSERT_TRUE(h.Init(2, {1, 1}, 10).ok());
  EXPECT_FALSE(h.scheme.OnEpoch({1}).ok());
  EXPECT_FALSE(h.scheme.OnEpoch({1, 2, 3}).ok());
}

}  // namespace
}  // namespace dcv
