#include "runtime/mailbox.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace dcv {
namespace {

TEST(MailboxTest, FifoWithinCapacity) {
  Mailbox<int> box(4);
  EXPECT_EQ(box.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(box.TryPush(i), MailboxPush::kOk);
  }
  EXPECT_EQ(box.TryPush(99), MailboxPush::kFull);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(box.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(box.TryPop(&v));
}

TEST(MailboxTest, BoundedPushBlocksUntilConsumerDrains) {
  Mailbox<int> box(1);
  ASSERT_TRUE(box.Push(0));
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    // Full box: this Push must block until the consumer pops.
    ASSERT_TRUE(box.Push(1));
    second_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_accepted.load());

  int v = -1;
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 1);
}

TEST(MailboxTest, CloseWakesBlockedProducer) {
  Mailbox<int> box(1);
  ASSERT_TRUE(box.Push(0));
  std::thread producer([&] {
    // Blocked on a full box; Close must wake it with a rejection.
    EXPECT_FALSE(box.Push(1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Close();
  producer.join();
  EXPECT_EQ(box.TryPush(2), MailboxPush::kClosed);
}

TEST(MailboxTest, CloseWakesBlockedConsumer) {
  Mailbox<int> box(1);
  std::thread consumer([&] {
    int v = 0;
    // Blocked on an empty box; Close must wake it with end-of-stream.
    EXPECT_FALSE(box.Pop(&v));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Close();
  consumer.join();
}

TEST(MailboxTest, DrainOnShutdown) {
  Mailbox<int> box(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.Push(i));
  }
  box.Close();
  box.Close();  // Idempotent.
  EXPECT_TRUE(box.closed());
  // Accepted messages survive the close and drain in order...
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.Pop(&v));
    EXPECT_EQ(v, i);
  }
  // ...and only then does Pop report end-of-stream.
  EXPECT_FALSE(box.Pop(&v));
}

TEST(MailboxTest, MultiProducerPerProducerOrdering) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  Mailbox<std::pair<int, int>> box(16);  // Small: forces backpressure.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.Push({p, i}));
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  std::pair<int, int> item;
  for (int received = 0; received < kProducers * kPerProducer; ++received) {
    ASSERT_TRUE(box.Pop(&item));
    // Interleaving across producers is arbitrary, but each producer's
    // messages must arrive in its push order.
    EXPECT_EQ(item.second, next_expected[item.first]);
    ++next_expected[item.first];
  }
  for (auto& t : producers) {
    t.join();
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

TEST(MailboxTest, ZeroCapacityClampsToOne) {
  Mailbox<int> box(0);
  EXPECT_EQ(box.capacity(), 1u);
  EXPECT_EQ(box.TryPush(1), MailboxPush::kOk);
  EXPECT_EQ(box.TryPush(2), MailboxPush::kFull);
}

}  // namespace
}  // namespace dcv
