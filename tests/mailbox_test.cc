#include "runtime/mailbox.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace dcv {
namespace {

TEST(MailboxTest, FifoWithinCapacity) {
  Mailbox<int> box(4);
  EXPECT_EQ(box.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(box.TryPush(i), MailboxPush::kOk);
  }
  EXPECT_EQ(box.TryPush(99), MailboxPush::kFull);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(box.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(box.TryPop(&v));
}

TEST(MailboxTest, PopAllForDistinguishesTimeoutFromClosure) {
  Mailbox<int> box(4);
  std::vector<int> out;
  bool timed_out = false;

  // Open and empty: the deadline expires with timed_out set.
  EXPECT_EQ(box.PopAllFor(&out, /*timeout_ms=*/20, &timed_out), 0u);
  EXPECT_TRUE(timed_out);

  // Messages arriving before the deadline are delivered without it.
  ASSERT_TRUE(box.Push(7));
  out.clear();
  EXPECT_EQ(box.PopAllFor(&out, /*timeout_ms=*/1000, &timed_out), 1u);
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(out, std::vector<int>{7});

  // Closed and drained: 0 without the timeout flag — end of stream, not a
  // dead producer.
  box.Close();
  out.clear();
  EXPECT_EQ(box.PopAllFor(&out, /*timeout_ms=*/1000, &timed_out), 0u);
  EXPECT_FALSE(timed_out);
}

TEST(MailboxTest, PopAllForWakesOnLatePush) {
  Mailbox<int> box(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(box.Push(42));
  });
  std::vector<int> out;
  bool timed_out = true;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(box.PopAllFor(&out, /*timeout_ms=*/5000, &timed_out), 1u);
  EXPECT_FALSE(timed_out);
  // The wait ended on the push, not the 5 s deadline.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(4));
  producer.join();
}

TEST(MailboxTest, BoundedPushBlocksUntilConsumerDrains) {
  Mailbox<int> box(1);
  ASSERT_TRUE(box.Push(0));
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    // Full box: this Push must block until the consumer pops.
    ASSERT_TRUE(box.Push(1));
    second_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_accepted.load());

  int v = -1;
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 1);
}

TEST(MailboxTest, CloseWakesBlockedProducer) {
  Mailbox<int> box(1);
  ASSERT_TRUE(box.Push(0));
  std::thread producer([&] {
    // Blocked on a full box; Close must wake it with a rejection.
    EXPECT_FALSE(box.Push(1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Close();
  producer.join();
  EXPECT_EQ(box.TryPush(2), MailboxPush::kClosed);
}

TEST(MailboxTest, CloseWakesBlockedConsumer) {
  Mailbox<int> box(1);
  std::thread consumer([&] {
    int v = 0;
    // Blocked on an empty box; Close must wake it with end-of-stream.
    EXPECT_FALSE(box.Pop(&v));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Close();
  consumer.join();
}

TEST(MailboxTest, DrainOnShutdown) {
  Mailbox<int> box(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.Push(i));
  }
  box.Close();
  box.Close();  // Idempotent.
  EXPECT_TRUE(box.closed());
  // Accepted messages survive the close and drain in order...
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.Pop(&v));
    EXPECT_EQ(v, i);
  }
  // ...and only then does Pop report end-of-stream.
  EXPECT_FALSE(box.Pop(&v));
}

TEST(MailboxTest, MultiProducerPerProducerOrdering) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  Mailbox<std::pair<int, int>> box(16);  // Small: forces backpressure.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.Push({p, i}));
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  std::pair<int, int> item;
  for (int received = 0; received < kProducers * kPerProducer; ++received) {
    ASSERT_TRUE(box.Pop(&item));
    // Interleaving across producers is arbitrary, but each producer's
    // messages must arrive in its push order.
    EXPECT_EQ(item.second, next_expected[item.first]);
    ++next_expected[item.first];
  }
  for (auto& t : producers) {
    t.join();
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

TEST(MailboxTest, ZeroCapacityClampsToOne) {
  Mailbox<int> box(0);
  EXPECT_EQ(box.capacity(), 1u);
  EXPECT_EQ(box.TryPush(1), MailboxPush::kOk);
  EXPECT_EQ(box.TryPush(2), MailboxPush::kFull);
}

TEST(MailboxTest, PopAllDrainsEverythingInFifoOrder) {
  Mailbox<int> box(8);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(box.Push(i));
  }
  std::vector<int> out;
  EXPECT_EQ(box.PopAll(&out), 6u);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
  // The drain empties the box entirely.
  int v = -1;
  EXPECT_FALSE(box.TryPop(&v));
}

TEST(MailboxTest, PopAllAppendsWithoutClearing) {
  Mailbox<int> box(4);
  ASSERT_TRUE(box.Push(10));
  std::vector<int> out = {7};
  EXPECT_EQ(box.PopAll(&out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 10);
}

TEST(MailboxTest, PopAllBlocksUntilFirstMessage) {
  Mailbox<int> box(4);
  std::atomic<bool> drained{false};
  std::thread consumer([&] {
    std::vector<int> out;
    // Empty box: this PopAll must block until the producer pushes.
    EXPECT_EQ(box.PopAll(&out), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 42);
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(drained.load());
  ASSERT_TRUE(box.Push(42));
  consumer.join();
  EXPECT_TRUE(drained.load());
}

TEST(MailboxTest, PopAllWakesBlockedProducers) {
  Mailbox<int> box(2);
  ASSERT_TRUE(box.Push(0));
  ASSERT_TRUE(box.Push(1));
  std::atomic<bool> accepted{false};
  std::thread producer([&] {
    // Full box: blocked until the batch drain frees the whole capacity.
    ASSERT_TRUE(box.Push(2));
    accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load());
  std::vector<int> out;
  EXPECT_GE(box.PopAll(&out), 2u);
  producer.join();
  EXPECT_TRUE(accepted.load());
  // Whether 2 landed in the first drain or waits for the next, nothing is
  // lost and order holds.
  while (out.size() < 3u) {
    int v = -1;
    ASSERT_TRUE(box.Pop(&v));
    out.push_back(v);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(MailboxTest, PopAllDrainsBacklogAfterCloseThenReportsEndOfStream) {
  Mailbox<int> box(8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(box.Push(i));
  }
  box.Close();
  std::vector<int> out;
  // Accepted messages survive the close and drain in one batch...
  EXPECT_EQ(box.PopAll(&out), 3u);
  ASSERT_EQ(out.size(), 3u);
  // ...and only then does PopAll report end-of-stream.
  out.clear();
  EXPECT_EQ(box.PopAll(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(MailboxTest, CloseWakesBlockedPopAll) {
  Mailbox<int> box(4);
  std::thread consumer([&] {
    std::vector<int> out;
    // Blocked on an empty box; Close must wake it with end-of-stream.
    EXPECT_EQ(box.PopAll(&out), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Close();
  consumer.join();
}

TEST(MailboxTest, TryPopAllNeverBlocks) {
  Mailbox<int> box(4);
  std::vector<int> out;
  EXPECT_EQ(box.TryPopAll(&out), 0u);
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(box.Push(5));
  ASSERT_TRUE(box.Push(6));
  EXPECT_EQ(box.TryPopAll(&out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 6);
  box.Close();
  out.clear();
  EXPECT_EQ(box.TryPopAll(&out), 0u);
}

TEST(MailboxTest, PopAllSeesEachMultiProducerMessageExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  Mailbox<std::pair<int, int>> box(16);  // Small: forces backpressure.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.Push({p, i}));
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  std::vector<std::pair<int, int>> batch;
  int received = 0;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    size_t got = box.PopAll(&batch);
    ASSERT_GT(got, 0u);
    ASSERT_EQ(got, batch.size());
    for (const auto& [p, i] : batch) {
      // Per-producer FIFO must survive batch drains.
      EXPECT_EQ(i, next_expected[p]);
      ++next_expected[p];
    }
    received += static_cast<int>(got);
  }
  for (auto& t : producers) {
    t.join();
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

// Batched sends (the SendBatch substrate). PushAll must behave exactly like
// the equivalent sequence of Pushes — same FIFO order, same blocking, same
// drain-on-shutdown prefix semantics — just cheaper.

TEST(MailboxTest, PushAllDeliversInOrderAcrossCapacityWaves) {
  Mailbox<int> box(3);  // Batch is much larger than capacity.
  std::vector<int> items;
  for (int i = 0; i < 20; ++i) {
    items.push_back(i);
  }
  std::thread producer([&] { ASSERT_TRUE(box.PushAll(std::move(items))); });
  int v = -1;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(box.Pop(&v));
    EXPECT_EQ(v, i);
  }
  producer.join();
}

TEST(MailboxTest, PushAllBlockedOnFullBoxWakesOnCloseWithoutLosingPrefix) {
  // The shutdown-deadlock regression: a producer mid-PushAll into a full
  // box must be woken by Close with a rejection, and the prefix it already
  // enqueued must stay poppable.
  Mailbox<int> box(2);
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    std::vector<int> items = {1, 2, 3, 4, 5};
    EXPECT_FALSE(box.PushAll(std::move(items)));  // Blocks, then rejected.
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(returned.load());  // Still blocked on the full box.
  box.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // The accepted prefix (capacity's worth) drains in order.
  int v = -1;
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(box.Pop(&v));  // Closed and drained.
}

TEST(MailboxTest, TryPushAllTakesLongestPrefixAndReportsClosure) {
  Mailbox<int> box(3);
  std::vector<int> items = {10, 11, 12, 13, 14};
  bool closed = true;
  // Room for 3: the prefix lands, the caller's cursor advances by 3.
  EXPECT_EQ(box.TryPushAll(&items, 0, &closed), 3u);
  EXPECT_FALSE(closed);
  // Full now: transient 0, not closure — the caller should retry later.
  EXPECT_EQ(box.TryPushAll(&items, 3, &closed), 0u);
  EXPECT_FALSE(closed);
  int v = -1;
  ASSERT_TRUE(box.Pop(&v));
  EXPECT_EQ(v, 10);
  EXPECT_EQ(box.TryPushAll(&items, 3, &closed), 1u);
  EXPECT_FALSE(closed);
  // Closed: permanent 0 with the flag set — the caller should stop.
  box.Close();
  EXPECT_EQ(box.TryPushAll(&items, 4, &closed), 0u);
  EXPECT_TRUE(closed);
  // Everything accepted before the close is still there, in order.
  std::vector<int> out;
  EXPECT_EQ(box.TryPopAll(&out), 3u);
  EXPECT_EQ(out, (std::vector<int>{11, 12, 13}));
}

}  // namespace
}  // namespace dcv
