#include "constraints/normalize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraints/parser.h"

namespace dcv {
namespace {

AggExpr Var(int i, int64_t coef = 1) {
  return AggExpr::Linear(LinearExpr::FromTerm(i, coef));
}

// Checks semantic equivalence of a BoolExpr and its CNF over random
// assignments of `num_vars` variables in [0, hi].
void ExpectCnfEquivalent(const BoolExpr& expr, int num_vars, int64_t hi,
                         uint64_t seed, int trials = 500) {
  auto cnf = ToCnf(expr);
  ASSERT_TRUE(cnf.ok()) << cnf.status();
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<int64_t> v(static_cast<size_t>(num_vars));
    for (auto& x : v) {
      x = rng.UniformInt(0, hi);
    }
    ASSERT_EQ(expr.Evaluate(v), cnf->Evaluate(v))
        << "assignment mismatch at trial " << t << " for "
        << cnf->ToString();
  }
}

TEST(PushSumsInsideTest, LinearPassesThrough) {
  AggExpr e = Var(0, 3);
  auto norm = PushSumsInside(e);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->kind(), AggExpr::Kind::kLinear);
}

TEST(PushSumsInsideTest, SumOfLinearsMerges) {
  AggExpr e = AggExpr::Sum({Var(0), Var(1, 2)});
  auto norm = PushSumsInside(e);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->kind(), AggExpr::Kind::kLinear);
  EXPECT_EQ(norm->linear().CoefficientOf(0), 1);
  EXPECT_EQ(norm->linear().CoefficientOf(1), 2);
}

TEST(PushSumsInsideTest, PaperRewriteExample) {
  // A + MIN{B, C} == MIN{A+B, A+C} (§5.1).
  AggExpr e = AggExpr::Sum({Var(0), AggExpr::Min({Var(1), Var(2)})});
  auto norm = PushSumsInside(e);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->kind(), AggExpr::Kind::kMin);
  ASSERT_EQ(norm->children().size(), 2u);
  for (const AggExpr& child : norm->children()) {
    EXPECT_EQ(child.kind(), AggExpr::Kind::kLinear);
  }
  // Semantics preserved.
  Rng rng(21);
  for (int t = 0; t < 200; ++t) {
    std::vector<int64_t> v{rng.UniformInt(0, 9), rng.UniformInt(0, 9),
                           rng.UniformInt(0, 9)};
    EXPECT_EQ(e.Evaluate(v), norm->Evaluate(v));
  }
}

TEST(PushSumsInsideTest, NestedMinMaxPreservesSemantics) {
  // MAX{x0, MIN{x1, x2} + MAX{x3, 2}} + x4.
  AggExpr inner = AggExpr::Sum(
      {AggExpr::Min({Var(1), Var(2)}),
       AggExpr::Max({Var(3), AggExpr::Linear(LinearExpr::FromConstant(2))})});
  AggExpr e = AggExpr::Sum({AggExpr::Max({Var(0), inner}), Var(4)});
  auto norm = PushSumsInside(e);
  ASSERT_TRUE(norm.ok());
  Rng rng(22);
  for (int t = 0; t < 300; ++t) {
    std::vector<int64_t> v(5);
    for (auto& x : v) {
      x = rng.UniformInt(0, 7);
    }
    ASSERT_EQ(e.Evaluate(v), norm->Evaluate(v));
  }
  // The normalized tree has no SUM nodes.
  std::vector<const AggExpr*> stack{&*norm};
  while (!stack.empty()) {
    const AggExpr* node = stack.back();
    stack.pop_back();
    EXPECT_NE(node->kind(), AggExpr::Kind::kSum);
    for (const AggExpr& c : node->children()) {
      stack.push_back(&c);
    }
  }
}

TEST(PushSumsInsideTest, BudgetGuardTriggers) {
  // Sum of many MIN pairs: cross-product blow-up 2^k.
  std::vector<AggExpr> parts;
  for (int i = 0; i < 24; ++i) {
    parts.push_back(AggExpr::Min({Var(2 * i), Var(2 * i + 1)}));
  }
  AggExpr e = AggExpr::Sum(std::move(parts));
  NormalizeOptions options;
  options.max_nodes = 10000;
  auto norm = PushSumsInside(e, options);
  EXPECT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kResourceExhausted);
}

TEST(EliminateMinMaxTest, MinLeBecomesOr) {
  BoolExpr atom = BoolExpr::Atom(AggExpr::Min({Var(0), Var(1)}), CmpOp::kLe, 5);
  auto out = EliminateMinMax(atom);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->kind(), BoolExpr::Kind::kOr);
}

TEST(EliminateMinMaxTest, MaxLeBecomesAnd) {
  BoolExpr atom = BoolExpr::Atom(AggExpr::Max({Var(0), Var(1)}), CmpOp::kLe, 5);
  auto out = EliminateMinMax(atom);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->kind(), BoolExpr::Kind::kAnd);
}

TEST(EliminateMinMaxTest, DualsForGe) {
  BoolExpr min_ge =
      BoolExpr::Atom(AggExpr::Min({Var(0), Var(1)}), CmpOp::kGe, 5);
  BoolExpr max_ge =
      BoolExpr::Atom(AggExpr::Max({Var(0), Var(1)}), CmpOp::kGe, 5);
  auto a = EliminateMinMax(min_ge);
  auto b = EliminateMinMax(max_ge);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kind(), BoolExpr::Kind::kAnd);
  EXPECT_EQ(b->kind(), BoolExpr::Kind::kOr);
}

TEST(ToCnfTest, AtomYieldsSingleUnitClause) {
  BoolExpr atom = BoolExpr::Atom(Var(0), CmpOp::kLe, 3);
  auto cnf = ToCnf(atom);
  ASSERT_TRUE(cnf.ok());
  ASSERT_EQ(cnf->clauses.size(), 1u);
  EXPECT_EQ(cnf->clauses[0].atoms.size(), 1u);
}

TEST(ToCnfTest, DistributesOrOverAnd) {
  // (a<=1 && b<=1) || c<=1  ->  (a<=1 || c<=1) && (b<=1 || c<=1).
  BoolExpr e = BoolExpr::Or(
      {BoolExpr::And({BoolExpr::Atom(Var(0), CmpOp::kLe, 1),
                      BoolExpr::Atom(Var(1), CmpOp::kLe, 1)}),
       BoolExpr::Atom(Var(2), CmpOp::kLe, 1)});
  auto cnf = ToCnf(e);
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->clauses.size(), 2u);
  ExpectCnfEquivalent(e, 3, 3, 31);
}

TEST(ToCnfTest, PaperExampleEquivalence) {
  auto parsed = ParseConstraint(
      "((3x1 + x2 >= 1) || (MIN{x1, 2x3 - x2} <= 5)) && "
      "(x1 + MAX{3x2, x3} >= 4)");
  ASSERT_TRUE(parsed.ok());
  ExpectCnfEquivalent(parsed->expr, 3, 9, 32);
}

TEST(ToCnfTest, DeepMinMaxNesting) {
  auto parsed = ParseConstraint(
      "MAX{MIN{a, b} + c, MIN{c + 2d, MAX{a, b}}} <= 12");
  ASSERT_TRUE(parsed.ok());
  ExpectCnfEquivalent(parsed->expr, 4, 8, 33);
}

TEST(ToCnfTest, GeAtomsSurvive) {
  auto parsed = ParseConstraint("MIN{a, b} >= 3 && a + b <= 20");
  ASSERT_TRUE(parsed.ok());
  ExpectCnfEquivalent(parsed->expr, 2, 15, 34);
}

TEST(ToCnfTest, ClauseLimitGuard) {
  // OR of many ANDs: CNF cross product explodes.
  std::vector<BoolExpr> disjuncts;
  for (int i = 0; i < 12; ++i) {
    disjuncts.push_back(
        BoolExpr::And({BoolExpr::Atom(Var(2 * i), CmpOp::kLe, 1),
                       BoolExpr::Atom(Var(2 * i + 1), CmpOp::kLe, 1)}));
  }
  BoolExpr e = BoolExpr::Or(std::move(disjuncts));
  NormalizeOptions options;
  options.max_clauses = 1000;
  auto cnf = ToCnf(e, options);
  EXPECT_FALSE(cnf.ok());
  EXPECT_EQ(cnf.status().code(), StatusCode::kResourceExhausted);
}

class RandomConstraintEquivalence : public testing::TestWithParam<int> {};

TEST_P(RandomConstraintEquivalence, CnfMatchesOriginal) {
  // Build a random boolean constraint over MIN/MAX/SUM atoms and verify the
  // full normalization pipeline preserves semantics.
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const int num_vars = 4;

  auto random_agg = [&](auto&& self, int depth) -> AggExpr {
    if (depth == 0 || rng.Bernoulli(0.4)) {
      LinearExpr lin;
      int terms = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < terms; ++i) {
        lin.AddTerm(static_cast<int>(rng.UniformInt(0, num_vars - 1)),
                    rng.UniformInt(-3, 3));
      }
      lin.AddConstant(rng.UniformInt(-2, 2));
      return AggExpr::Linear(std::move(lin));
    }
    std::vector<AggExpr> kids;
    int n = static_cast<int>(rng.UniformInt(2, 3));
    for (int i = 0; i < n; ++i) {
      kids.push_back(self(self, depth - 1));
    }
    switch (rng.UniformInt(0, 2)) {
      case 0:
        return AggExpr::Sum(std::move(kids));
      case 1:
        return AggExpr::Min(std::move(kids));
      default:
        return AggExpr::Max(std::move(kids));
    }
  };
  auto random_bool = [&](auto&& self, int depth) -> BoolExpr {
    if (depth == 0 || rng.Bernoulli(0.5)) {
      return BoolExpr::Atom(random_agg(random_agg, 2),
                            rng.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kGe,
                            rng.UniformInt(-5, 15));
    }
    std::vector<BoolExpr> kids;
    int n = static_cast<int>(rng.UniformInt(2, 3));
    for (int i = 0; i < n; ++i) {
      kids.push_back(self(self, depth - 1));
    }
    return rng.Bernoulli(0.5) ? BoolExpr::And(std::move(kids))
                              : BoolExpr::Or(std::move(kids));
  };

  BoolExpr expr = random_bool(random_bool, 2);
  ExpectCnfEquivalent(expr, num_vars, 6,
                      static_cast<uint64_t>(GetParam()) + 1000, 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConstraintEquivalence,
                         testing::Range(0, 20));

}  // namespace
}  // namespace dcv
