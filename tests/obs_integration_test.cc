// End-to-end observability checks: attaching a MetricsRegistry and a
// TraceRecorder to a run must (a) mirror the SimResult tallies exactly and
// (b) never change protocol behavior — same messages, same detections, bit
// for bit, for every scheme.

#include <functional>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "obs/obs.h"
#include "sim/adaptive_filter_scheme.h"
#include "sim/boolean_scheme.h"
#include "sim/geometric_scheme.h"
#include "sim/local_scheme.h"
#include "sim/multilevel_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

struct Workload {
  Trace training{0};
  Trace eval{0};
  int64_t threshold = 0;
};

Workload MakeWorkload(uint64_t seed, int num_sites = 4,
                      int64_t train_epochs = 600, int64_t eval_epochs = 600,
                      double overflow_fraction = 0.03) {
  SyntheticTraceOptions options;
  options.num_sites = num_sites;
  options.num_epochs = train_epochs + eval_epochs;
  options.seed = seed;
  options.marginal = Marginal::kLogNormal;
  options.param1 = 4.0;
  options.param2 = 0.8;
  options.domain_max = 1'000'000;
  options.heterogeneous = true;
  auto trace = GenerateSyntheticTrace(options);
  EXPECT_TRUE(trace.ok());
  Workload w;
  w.training = *trace->Slice(0, train_epochs);
  w.eval = *trace->Slice(train_epochs, train_epochs + eval_epochs);
  auto t = ThresholdForOverflowFraction(w.eval, {}, overflow_fraction);
  EXPECT_TRUE(t.ok());
  w.threshold = *t;
  return w;
}

std::map<obs::TraceEventKind, int64_t> CountByKind(
    const obs::TraceRecorder& rec) {
  std::map<obs::TraceEventKind, int64_t> counts;
  for (const obs::TraceEvent& e : rec.Events()) {
    ++counts[e.kind];
  }
  return counts;
}

TEST(ObsIntegrationTest, TraceEventCountsMatchSimResultTallies) {
  Workload w = MakeWorkload(11);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme scheme(options);

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  SimOptions sim;
  sim.global_threshold = w.threshold;
  sim.metrics = &registry;
  sim.recorder = &recorder;

  auto result = RunSimulation(&scheme, sim, w.training, w.eval);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->total_alarms, 0) << "workload produced no activity";
  ASSERT_GT(result->true_violations, 0);
  EXPECT_EQ(recorder.dropped(), 0);

  auto kinds = CountByKind(recorder);
  EXPECT_EQ(kinds[obs::TraceEventKind::kLocalAlarm], result->total_alarms);
  EXPECT_EQ(kinds[obs::TraceEventKind::kPollStart], result->polled_epochs);
  EXPECT_EQ(kinds[obs::TraceEventKind::kPollEnd], result->polled_epochs);
  EXPECT_EQ(kinds[obs::TraceEventKind::kViolation], result->true_violations);
  // Initial thresholds install out of band (one recompute, no pushes), and
  // without change detection or faults nothing is pushed later.
  EXPECT_EQ(kinds[obs::TraceEventKind::kThresholdRecompute], 1);
  EXPECT_EQ(kinds[obs::TraceEventKind::kThresholdUpdate], 0);

  // Registry counters mirror the same tallies...
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("sim/epochs"), result->epochs);
  EXPECT_EQ(snap.counters.at("sim/alarms"), result->total_alarms);
  EXPECT_EQ(snap.counters.at("sim/polled_epochs"), result->polled_epochs);
  EXPECT_EQ(snap.counters.at("sim/true_violations"), result->true_violations);
  EXPECT_EQ(snap.counters.at("sim/detected_violations"),
            result->detected_violations);
  EXPECT_EQ(snap.counters.at("channel/msg/alarm"),
            result->messages.of(MessageType::kAlarm));
  EXPECT_EQ(snap.counters.at("channel/msg/poll_request"),
            result->messages.of(MessageType::kPollRequest));
  EXPECT_EQ(snap.counters.at("channel/msg/poll_response"),
            result->messages.of(MessageType::kPollResponse));
  // ...and solver instrumentation fired.
  EXPECT_EQ(snap.counters.at("solver/fptas/solves"), 1);
  EXPECT_GT(snap.counters.at("solver/fptas/dp_cells"), 0);
  EXPECT_EQ(snap.histograms.at("solver/fptas/solve_us").count, 1);
  EXPECT_EQ(snap.histograms.at("channel/poll_us").count,
            result->polled_epochs);

  // The single-segment result carries the full snapshot delta.
  EXPECT_EQ(result->metrics.counters.at("sim/alarms"), result->total_alarms);

  // Unified JSON export includes all three sections.
  std::string json = result->ToJson();
  EXPECT_NE(json.find("\"messages\""), std::string::npos);
  EXPECT_NE(json.find("\"detection\""), std::string::npos);
  EXPECT_NE(json.find("\"reliability\""), std::string::npos);
  EXPECT_NE(json.find("\"sim/alarms\""), std::string::npos);
}

TEST(ObsIntegrationTest, SegmentMetricsDeltasSumToWholeRun) {
  Workload w = MakeWorkload(12);
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme scheme(options);

  obs::MetricsRegistry registry;
  SimOptions sim;
  sim.global_threshold = w.threshold;
  sim.metrics = &registry;

  auto segments =
      RunSimulationSegments(&scheme, sim, w.training, w.eval, 200);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  int64_t alarm_delta_sum = 0;
  int64_t epoch_delta_sum = 0;
  for (const SimResult& seg : *segments) {
    alarm_delta_sum += seg.metrics.counters.at("sim/alarms");
    epoch_delta_sum += seg.metrics.counters.at("sim/epochs");
    EXPECT_EQ(seg.metrics.counters.at("sim/alarms"), seg.total_alarms);
    EXPECT_EQ(seg.metrics.counters.at("sim/epochs"), seg.epochs);
  }
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("sim/alarms"), alarm_delta_sum);
  EXPECT_EQ(snap.counters.at("sim/epochs"), epoch_delta_sum);
  EXPECT_EQ(epoch_delta_sum, w.eval.num_epochs());
}

// Runs `make_scheme()` twice — observed and unobserved — and requires
// bit-identical protocol outcomes.
void ExpectObserversAreInert(
    const std::function<std::unique_ptr<DetectionScheme>()>& make_scheme,
    const Workload& w) {
  SimOptions plain;
  plain.global_threshold = w.threshold;

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  SimOptions observed = plain;
  observed.metrics = &registry;
  observed.recorder = &recorder;

  auto scheme_a = make_scheme();
  auto scheme_b = make_scheme();
  auto a = RunSimulation(scheme_a.get(), plain, w.training, w.eval);
  auto b = RunSimulation(scheme_b.get(), observed, w.training, w.eval);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  SCOPED_TRACE(a->scheme_name);
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    EXPECT_EQ(a->messages.of(type), b->messages.of(type))
        << MessageTypeName(type);
  }
  EXPECT_EQ(a->epochs, b->epochs);
  EXPECT_EQ(a->alarm_epochs, b->alarm_epochs);
  EXPECT_EQ(a->total_alarms, b->total_alarms);
  EXPECT_EQ(a->polled_epochs, b->polled_epochs);
  EXPECT_EQ(a->true_violations, b->true_violations);
  EXPECT_EQ(a->detected_violations, b->detected_violations);
  EXPECT_EQ(a->missed_violations, b->missed_violations);
  EXPECT_EQ(a->false_alarm_epochs, b->false_alarm_epochs);
  EXPECT_GT(b->messages.total(), 0) << "inertness check needs traffic";
}

TEST(ObsIntegrationTest, ObserversDoNotChangeProtocolForAnyScheme) {
  Workload w = MakeWorkload(13);
  FptasSolver solver(0.05);

  ExpectObserversAreInert(
      [&] {
        LocalThresholdScheme::Options o;
        o.solver = &solver;
        return std::make_unique<LocalThresholdScheme>(o);
      },
      w);
  ExpectObserversAreInert([] { return std::make_unique<GeometricScheme>(); },
                          w);
  ExpectObserversAreInert([] { return std::make_unique<PollingScheme>(7); },
                          w);
  ExpectObserversAreInert(
      [] { return std::make_unique<AdaptiveFilterScheme>(); }, w);
  ExpectObserversAreInert(
      [&] {
        MultiLevelScheme::Options o;
        o.solver = &solver;
        return std::make_unique<MultiLevelScheme>(o);
      },
      w);

  auto constraint = ParseConstraintWithVars(
      "s0 + s1 + s2 + s3 <= " + std::to_string(w.threshold),
      {"s0", "s1", "s2", "s3"});
  ASSERT_TRUE(constraint.ok()) << constraint.status();
  ExpectObserversAreInert(
      [&] {
        BooleanLocalScheme::Options o;
        o.solver = &solver;
        return std::make_unique<BooleanLocalScheme>(*constraint, o);
      },
      w);
}

}  // namespace
}  // namespace dcv
