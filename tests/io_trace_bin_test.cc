#include "trace/trace_bin.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/block_writer.h"
#include "io/format.h"
#include "sim/local_scheme.h"
#include "sim/message.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/trace.h"

namespace dcv {
namespace {

/// Per-process temp path: ctest runs each discovered test in its own
/// process in parallel, so bare names would collide across tests.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/io_trace_" + std::to_string(getpid()) + "_" +
         name;
}

Trace MakeTrace(int sites, int64_t epochs, uint64_t seed) {
  Rng rng(seed);
  Trace trace(sites);
  std::vector<int64_t> values(static_cast<size_t>(sites), 500);
  for (int64_t t = 0; t < epochs; ++t) {
    for (auto& v : values) {
      v += rng.UniformInt(-20, 20);
      if (v < 0) v = 0;
    }
    EXPECT_TRUE(trace.AppendEpoch(values).ok());
  }
  return trace;
}

void ExpectSameTrace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  ASSERT_EQ(a.num_epochs(), b.num_epochs());
  EXPECT_EQ(a.site_names(), b.site_names());
  for (int64_t t = 0; t < a.num_epochs(); ++t) {
    ASSERT_EQ(a.epoch(t), b.epoch(t)) << "epoch " << t;
  }
}

TEST(TraceBinTest, RoundTripsAcrossCodecs) {
  const Trace trace = MakeTrace(5, 1000, 11);
  for (io::RowCodec codec :
       {io::RowCodec::kFlat, io::RowCodec::kDelta, io::RowCodec::kZoh}) {
    const std::string path = TempPath("trace_rt.dcvb");
    io::WriterOptions options;
    options.codec = codec;
    options.block_rows = 128;
    ASSERT_TRUE(WriteTraceBin(trace, path, options).ok());
    auto back = ReadTraceBin(path);
    ASSERT_TRUE(back.ok()) << back.status();
    ExpectSameTrace(trace, *back);
    std::remove(path.c_str());
  }
}

TEST(TraceBinTest, PreservesSiteNames) {
  Trace trace(std::vector<std::string>{"edge-a", "edge-b"});
  ASSERT_TRUE(trace.AppendEpoch({1, 2}).ok());
  ASSERT_TRUE(trace.AppendEpoch({3, 4}).ok());
  const std::string path = TempPath("names.dcvb");
  ASSERT_TRUE(WriteTraceBin(trace, path).ok());
  auto back = ReadTraceBin(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectSameTrace(trace, *back);
  std::remove(path.c_str());
}

TEST(TraceBinTest, SniffsAndLoadsBothFormats) {
  const Trace trace = MakeTrace(3, 50, 12);
  const std::string bin_path = TempPath("sniff.dcvb");
  const std::string csv_path = TempPath("sniff.csv");
  ASSERT_TRUE(WriteTraceBin(trace, bin_path).ok());
  ASSERT_TRUE(trace.WriteCsv(csv_path).ok());

  auto bin_format = SniffTraceFormat(bin_path);
  ASSERT_TRUE(bin_format.ok());
  EXPECT_EQ(*bin_format, TraceFormat::kBinary);
  auto csv_format = SniffTraceFormat(csv_path);
  ASSERT_TRUE(csv_format.ok());
  EXPECT_EQ(*csv_format, TraceFormat::kCsv);
  EXPECT_FALSE(SniffTraceFormat(TempPath("missing.dcvb")).ok());

  auto from_bin = LoadTrace(bin_path);
  auto from_csv = LoadTrace(csv_path);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status();
  ASSERT_TRUE(from_csv.ok()) << from_csv.status();
  ExpectSameTrace(*from_bin, *from_csv);
  std::remove(bin_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(TraceBinTest, RejectsNegativeValues) {
  // A structurally valid dcvb file whose payload holds a negative value:
  // ReadTraceBin applies AppendEpoch's validation, so the CRC-clean but
  // semantically invalid observation is rejected.
  const std::string path = TempPath("negative.dcvb");
  {
    auto writer = io::BlockWriter::Open(path, {"site0"}, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRow({-5}).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto back = ReadTraceBin(path);
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

/// The acceptance property: replaying the same trace from CSV and from the
/// binary format must produce bit-identical detection results — the
/// container may never perturb the protocol.
void ExpectSameSimResult(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.messages.total(), b.messages.total());
  for (int m = 0; m < kNumMessageTypes; ++m) {
    EXPECT_EQ(a.messages.of(static_cast<MessageType>(m)),
              b.messages.of(static_cast<MessageType>(m)))
        << MessageTypeName(static_cast<MessageType>(m));
  }
  EXPECT_EQ(a.alarm_epochs, b.alarm_epochs);
  EXPECT_EQ(a.total_alarms, b.total_alarms);
  EXPECT_EQ(a.polled_epochs, b.polled_epochs);
  EXPECT_EQ(a.true_violations, b.true_violations);
  EXPECT_EQ(a.detected_violations, b.detected_violations);
  EXPECT_EQ(a.missed_violations, b.missed_violations);
  EXPECT_EQ(a.false_alarm_epochs, b.false_alarm_epochs);
}

TEST(TraceBinTest, CsvAndBinaryYieldIdenticalDetections) {
  const Trace full = MakeTrace(4, 2000, 13);
  const std::string bin_path = TempPath("detect.dcvb");
  const std::string csv_path = TempPath("detect.csv");
  io::WriterOptions options;
  options.codec = io::RowCodec::kDelta;
  options.block_rows = 256;
  ASSERT_TRUE(WriteTraceBin(full, bin_path, options).ok());
  ASSERT_TRUE(full.WriteCsv(csv_path).ok());

  auto from_bin = LoadTrace(bin_path);
  auto from_csv = LoadTrace(csv_path);
  ASSERT_TRUE(from_bin.ok() && from_csv.ok());

  for (const std::string scheme_kind : {"local", "polling"}) {
    auto run = [&](const Trace& trace) -> Result<SimResult> {
      DCV_ASSIGN_OR_RETURN(Trace training, trace.Slice(0, 1000));
      DCV_ASSIGN_OR_RETURN(Trace eval,
                           trace.Slice(1000, trace.num_epochs()));
      SimOptions sim;
      // Tight enough that both alarms and real violations occur.
      sim.global_threshold = 4 * 520;
      FptasSolver solver(0.05);
      if (scheme_kind == "local") {
        LocalThresholdScheme::Options lo;
        lo.solver = &solver;
        LocalThresholdScheme scheme(lo);
        return RunSimulation(&scheme, sim, training, eval);
      }
      PollingScheme scheme(/*period=*/5);
      return RunSimulation(&scheme, sim, training, eval);
    };
    auto bin_result = run(*from_bin);
    auto csv_result = run(*from_csv);
    ASSERT_TRUE(bin_result.ok()) << bin_result.status();
    ASSERT_TRUE(csv_result.ok()) << csv_result.status();
    ExpectSameSimResult(*bin_result, *csv_result);
    EXPECT_GT(bin_result->true_violations, 0) << scheme_kind;
  }
  std::remove(bin_path.c_str());
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace dcv
