#include "threshold/fptas.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "histogram/empirical_cdf.h"
#include "histogram/equi_depth.h"
#include "threshold/exact_dp.h"

namespace dcv {
namespace {

struct RandomInstance {
  std::vector<std::unique_ptr<EmpiricalCdf>> models;
  ThresholdProblem problem;
};

RandomInstance MakeRandomInstance(Rng& rng, int max_vars, int64_t max_domain,
                                  int64_t max_budget) {
  RandomInstance inst;
  const int n = static_cast<int>(rng.UniformInt(1, max_vars));
  inst.problem.budget = rng.UniformInt(0, max_budget);
  for (int i = 0; i < n; ++i) {
    const int64_t m = rng.UniformInt(2, max_domain);
    std::vector<int64_t> data;
    const int count = static_cast<int>(rng.UniformInt(4, 20));
    for (int k = 0; k < count; ++k) {
      data.push_back(rng.UniformInt(0, m));
    }
    inst.models.push_back(std::make_unique<EmpiricalCdf>(data, m));
    inst.problem.vars.push_back(ProblemVar{
        i, rng.UniformInt(1, 3), CdfView(inst.models.back().get(), false)});
  }
  return inst;
}

TEST(FptasTest, EmptyProblem) {
  FptasSolver solver;
  auto sol = solver.Solve(ThresholdProblem{});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->thresholds.empty());
}

TEST(FptasTest, RejectsNonPositiveEps) {
  FptasSolver solver(0.0);
  EmpiricalCdf model({1, 2}, 3);
  ThresholdProblem p;
  p.budget = 3;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  EXPECT_FALSE(solver.Solve(p).ok());
}

TEST(FptasTest, SingleVariableIsExact) {
  EmpiricalCdf model({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 9);
  ThresholdProblem p;
  p.budget = 6;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  FptasSolver solver(0.05);
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  // With one variable the level search finds the largest affordable
  // threshold's probability class; the chosen threshold must be within an
  // alpha factor of the best P = 0.7.
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
  EXPECT_GE(std::exp(sol->log_probability), 0.7 / 1.05 - 1e-9);
}

TEST(FptasTest, AlwaysSatisfiesBudget) {
  Rng rng(123);
  FptasSolver solver(0.1);
  for (int trial = 0; trial < 50; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, 6, 30, 60);
    auto sol = solver.Solve(inst.problem);
    ASSERT_TRUE(sol.ok()) << sol.status();
    EXPECT_TRUE(SatisfiesBudget(inst.problem, sol->thresholds))
        << "trial " << trial;
  }
}

class FptasApproximationSweep : public testing::TestWithParam<double> {};

TEST_P(FptasApproximationSweep, WithinOnePlusEpsOfExactDp) {
  const double eps = GetParam();
  Rng rng(static_cast<uint64_t>(eps * 1e6) + 7);
  FptasSolver fptas(eps);
  ExactDpSolver exact;
  int nontrivial = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, 4, 12, 30);
    auto approx = fptas.Solve(inst.problem);
    auto opt = exact.Solve(inst.problem);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(opt.ok());
    if (opt->log_probability == kNegInf) {
      continue;  // Degenerate instance: nothing to compare.
    }
    ++nontrivial;
    // prod_approx >= prod_opt / (1 + eps)  <=>
    // log_approx >= log_opt - log(1 + eps).
    EXPECT_GE(approx->log_probability,
              opt->log_probability - std::log1p(eps) - 1e-9)
        << "trial " << trial << " eps " << eps;
    // And the approximation can never beat the optimum.
    EXPECT_LE(approx->log_probability, opt->log_probability + 1e-9);
  }
  EXPECT_GT(nontrivial, 10);
}

INSTANTIATE_TEST_SUITE_P(EpsValues, FptasApproximationSweep,
                         testing::Values(0.5, 0.2, 0.05, 0.01));

TEST(FptasTest, MatchesExactDpOnSkewedHistograms) {
  // Equi-depth histograms from lognormal data, as in the paper's setup.
  Rng rng(321);
  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  ThresholdProblem p;
  const int n = 3;
  for (int i = 0; i < n; ++i) {
    std::vector<int64_t> data;
    for (int k = 0; k < 500; ++k) {
      data.push_back(static_cast<int64_t>(rng.LogNormal(2.0 + i, 0.8)));
    }
    auto h = EquiDepthHistogram::Build(data, 500, 50);
    ASSERT_TRUE(h.ok());
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(*h)));
    p.vars.push_back(ProblemVar{i, 1, CdfView(models.back().get(), false)});
  }
  p.budget = 120;
  FptasSolver fptas(0.05);
  ExactDpSolver exact;
  auto approx = fptas.Solve(p);
  auto opt = exact.Solve(p);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(opt.ok());
  ASSERT_GT(opt->log_probability, kNegInf);
  EXPECT_GE(approx->log_probability,
            opt->log_probability - std::log1p(0.05) - 1e-9);
}

TEST(FptasTest, DegenerateFallbackWhenBudgetTooTight) {
  // All observations at 10; budget cannot reach threshold 10.
  EmpiricalCdf model(std::vector<int64_t>(5, 10), 10);
  ThresholdProblem p;
  p.budget = 4;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  FptasSolver solver(0.05);
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->degenerate);
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
  EXPECT_EQ(sol->log_probability, kNegInf);
}

TEST(FptasTest, StatsReportPlausibleSizes) {
  Rng rng(55);
  RandomInstance inst = MakeRandomInstance(rng, 5, 50, 100);
  FptasSolver solver(0.1);
  FptasSolver::Stats stats;
  auto sol = solver.SolveWithStats(inst.problem, &stats);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(stats.useful_levels, 0);
  EXPECT_GE(stats.total_levels, 0);
  EXPECT_EQ(stats.dp_cells,
            static_cast<int64_t>(inst.problem.vars.size()) *
                (stats.total_levels + 1));
  if (!sol->degenerate) {
    EXPECT_GE(stats.deficit, 0);
  }
}

TEST(FptasTest, DpCellGuard) {
  // A tight budget forces a deep deficit search; a tiny cell cap must
  // surface as ResourceExhausted rather than a silent fallback.
  EmpiricalCdf model({10, 20, 30, 40, 50}, 50);
  ThresholdProblem p;
  p.budget = 10;  // Only the smallest observation is affordable.
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&model, false)});
  FptasSolver::Options options;
  options.eps = 0.001;
  options.max_dp_cells = 8;
  FptasSolver solver(options);
  EXPECT_EQ(solver.Solve(p).status().code(), StatusCode::kResourceExhausted);
}

TEST(FptasTest, SmallerEpsNeverWorse) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, 4, 20, 40);
    FptasSolver coarse(0.5);
    FptasSolver fine(0.01);
    auto a = coarse.Solve(inst.problem);
    auto b = fine.Solve(inst.problem);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Finer eps has a strictly tighter guarantee; allow the rounding noise
    // of the coarse grid.
    EXPECT_GE(b->log_probability, a->log_probability - 1e-9);
  }
}

TEST(FptasTest, MirroredProblemRespectsBudget) {
  EmpiricalCdf model({6, 7, 8, 9, 10}, 10);
  ThresholdProblem p;
  p.budget = 9;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, true)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&model, true)});
  FptasSolver solver(0.05);
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
  EXPECT_GT(sol->log_probability, kNegInf);
}

}  // namespace
}  // namespace dcv
