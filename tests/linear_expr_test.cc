#include "constraints/linear_expr.h"

#include <gtest/gtest.h>

namespace dcv {
namespace {

TEST(LinearExprTest, EmptyIsZeroConstant) {
  LinearExpr e;
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.offset(), 0);
  EXPECT_EQ(e.Evaluate({1, 2, 3}), 0);
  EXPECT_EQ(e.max_var(), -1);
}

TEST(LinearExprTest, FromTermAndEvaluate) {
  LinearExpr e = LinearExpr::FromTerm(1, 3);
  EXPECT_EQ(e.Evaluate({10, 20, 30}), 60);
  EXPECT_EQ(e.CoefficientOf(1), 3);
  EXPECT_EQ(e.CoefficientOf(0), 0);
  EXPECT_EQ(e.max_var(), 1);
}

TEST(LinearExprTest, AddTermMergesAndCancels) {
  LinearExpr e;
  e.AddTerm(2, 5);
  e.AddTerm(0, 1);
  e.AddTerm(2, -5);  // Cancels to zero and is removed.
  EXPECT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.CoefficientOf(2), 0);
  EXPECT_EQ(e.CoefficientOf(0), 1);
}

TEST(LinearExprTest, TermsStaySorted) {
  LinearExpr e;
  e.AddTerm(5, 1);
  e.AddTerm(1, 1);
  e.AddTerm(3, 1);
  ASSERT_EQ(e.terms().size(), 3u);
  EXPECT_EQ(e.terms()[0].var, 1);
  EXPECT_EQ(e.terms()[1].var, 3);
  EXPECT_EQ(e.terms()[2].var, 5);
}

TEST(LinearExprTest, AddCombinesExpressions) {
  LinearExpr a = LinearExpr::FromTerm(0, 2);
  a.AddConstant(5);
  LinearExpr b = LinearExpr::FromTerm(0, 3);
  b.AddTerm(1, 1);
  a.Add(b);
  EXPECT_EQ(a.CoefficientOf(0), 5);
  EXPECT_EQ(a.CoefficientOf(1), 1);
  EXPECT_EQ(a.offset(), 5);
  EXPECT_EQ(a.Evaluate({1, 1}), 11);
}

TEST(LinearExprTest, ScaleMultipliesEverything) {
  LinearExpr e = LinearExpr::FromTerm(0, 2);
  e.AddConstant(3);
  e.Scale(-2);
  EXPECT_EQ(e.CoefficientOf(0), -4);
  EXPECT_EQ(e.offset(), -6);
  e.Scale(0);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.offset(), 0);
}

TEST(LinearExprTest, EvaluateIgnoresMissingVars) {
  LinearExpr e = LinearExpr::FromTerm(5, 7);
  EXPECT_EQ(e.Evaluate({1, 2}), 0);  // x5 not in assignment -> treated as 0.
}

TEST(LinearExprTest, ToStringFormats) {
  LinearExpr e;
  e.AddTerm(0, 3);
  e.AddTerm(1, 1);
  e.AddTerm(2, -2);
  e.AddConstant(-5);
  EXPECT_EQ(e.ToString(), "3*x0 + x1 - 2*x2 - 5");
  std::vector<std::string> names{"a", "b", "c"};
  EXPECT_EQ(e.ToString(&names), "3*a + b - 2*c - 5");
}

TEST(LinearExprTest, ToStringConstantAndNegativeLead) {
  EXPECT_EQ(LinearExpr::FromConstant(7).ToString(), "7");
  EXPECT_EQ(LinearExpr().ToString(), "0");
  LinearExpr e = LinearExpr::FromTerm(0, -1);
  EXPECT_EQ(e.ToString(), "-x0");
}

TEST(LinearExprTest, EqualityIsStructural) {
  LinearExpr a = LinearExpr::FromTerm(0, 1);
  LinearExpr b = LinearExpr::FromTerm(0, 1);
  EXPECT_EQ(a, b);
  b.AddConstant(1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace dcv
