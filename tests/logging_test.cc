#include <gtest/gtest.h>

#include "common/logging.h"

namespace dcv {
namespace {

// Restores the process-wide log level after each test so the suite does not
// leak state into other test binaries' expectations.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

 private:
  LogLevel saved_ = LogLevel::kInfo;
};

constexpr LogLevel kAllLevels[] = {LogLevel::kDebug, LogLevel::kInfo,
                                   LogLevel::kWarning, LogLevel::kError,
                                   LogLevel::kFatal};

TEST_F(LoggingTest, EnabledIffSeverityAtLeastLevel) {
  // Full matrix: the boundary is inclusive (severity == level is emitted).
  for (LogLevel level : kAllLevels) {
    SetLogLevel(level);
    for (LogLevel severity : kAllLevels) {
      EXPECT_EQ(LogLevelEnabled(severity),
                static_cast<int>(severity) >= static_cast<int>(level))
          << "level=" << static_cast<int>(level)
          << " severity=" << static_cast<int>(severity);
    }
  }
}

TEST_F(LoggingTest, DebugVisibleAtDebugLevel) {
  // Regression for the kDebug boundary: DEBUG must be emitted when the
  // level is exactly kDebug, not only at some level below it.
  SetLogLevel(LogLevel::kDebug);
  ScopedLogCapture capture;
  DCV_LOG(DEBUG) << "dbg";
  ASSERT_EQ(capture.entries().size(), 1u);
  EXPECT_EQ(capture.entries()[0].level, LogLevel::kDebug);
  EXPECT_EQ(capture.entries()[0].message, "dbg");
}

TEST_F(LoggingTest, EverySeverityEmitsAtDebugLevel) {
  SetLogLevel(LogLevel::kDebug);
  ScopedLogCapture capture;
  DCV_LOG(DEBUG) << "d";
  DCV_LOG(INFO) << "i";
  DCV_LOG(WARNING) << "w";
  DCV_LOG(ERROR) << "e";
  // kFatal aborts and is covered by the death test below.
  ASSERT_EQ(capture.entries().size(), 4u);
  EXPECT_EQ(capture.entries()[0].level, LogLevel::kDebug);
  EXPECT_EQ(capture.entries()[1].level, LogLevel::kInfo);
  EXPECT_EQ(capture.entries()[2].level, LogLevel::kWarning);
  EXPECT_EQ(capture.entries()[3].level, LogLevel::kError);
}

TEST_F(LoggingTest, BelowLevelMessagesAreSuppressed) {
  SetLogLevel(LogLevel::kError);
  ScopedLogCapture capture;
  DCV_LOG(DEBUG) << "d";
  DCV_LOG(INFO) << "i";
  DCV_LOG(WARNING) << "w";
  DCV_LOG(ERROR) << "e";
  ASSERT_EQ(capture.entries().size(), 1u);
  EXPECT_EQ(capture.entries()[0].level, LogLevel::kError);
  EXPECT_EQ(capture.entries()[0].message, "e");
}

TEST_F(LoggingTest, SuppressedArgumentsAreNotEvaluated) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "x";
  };
  DCV_LOG(DEBUG) << expensive();
  DCV_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0);
  DCV_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, FatalAborts) {
  SetLogLevel(LogLevel::kFatal);
  EXPECT_DEATH({ DCV_LOG(FATAL) << "boom"; }, "boom");
}

TEST_F(LoggingTest, CheckPassesAndFails) {
  DCV_CHECK(1 + 1 == 2) << "never shown";
  EXPECT_DEATH({ DCV_CHECK(false) << "detail"; },
               "Check failed: false detail");
}

}  // namespace
}  // namespace dcv
