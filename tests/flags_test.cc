#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dcv {
namespace {

FlagSet MakeSet() {
  FlagSet flags;
  flags.Value("sites").Value("trace").Value("eps");
  flags.Boolean("quiet").Boolean("virtual-time");
  return flags;
}

TEST(FlagSetTest, ParsesBothValueSyntaxes) {
  auto parsed = MakeSet().Parse({"--sites=8", "--trace", "week.csv"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->GetString("sites", ""), "8");
  EXPECT_EQ(parsed->GetString("trace", ""), "week.csv");
  EXPECT_TRUE(parsed->Has("sites"));
  EXPECT_FALSE(parsed->Has("eps"));
}

TEST(FlagSetTest, TypedLookupsAndFallbacks) {
  auto parsed = MakeSet().Parse({"--sites", "12", "--eps=0.25"});
  ASSERT_TRUE(parsed.ok());
  auto sites = parsed->GetInt("sites", 4);
  ASSERT_TRUE(sites.ok());
  EXPECT_EQ(*sites, 12);
  auto eps = parsed->GetDouble("eps", 0.1);
  ASSERT_TRUE(eps.ok());
  EXPECT_DOUBLE_EQ(*eps, 0.25);
  auto fallback = parsed->GetInt("trace", 99);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 99);
}

TEST(FlagSetTest, BooleanFlags) {
  auto parsed = MakeSet().Parse({"--quiet", "--virtual-time=0"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("quiet"));
  EXPECT_FALSE(parsed->GetBool("virtual-time"));

  auto absent = MakeSet().Parse(std::vector<std::string>{});
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->GetBool("quiet"));
}

TEST(FlagSetTest, BooleanWordSpellings) {
  auto parsed = MakeSet().Parse({"--quiet=true", "--virtual-time=False"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed->GetBool("quiet"));
  EXPECT_FALSE(parsed->GetBool("virtual-time"));

  auto yes_no = MakeSet().Parse({"--quiet=YES", "--virtual-time=no"});
  ASSERT_TRUE(yes_no.ok());
  EXPECT_TRUE(yes_no->GetBool("quiet"));
  EXPECT_FALSE(yes_no->GetBool("virtual-time"));
}

TEST(FlagSetTest, RejectsMalformedBooleanAtParseTime) {
  // The old behavior treated any value != "0" as true, so "--quiet=maybe"
  // (or a typo like "flase") silently enabled the flag. It must error.
  auto parsed = MakeSet().Parse({"--quiet=maybe"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("invalid boolean value 'maybe'"),
            std::string::npos)
      << parsed.status().message();
  EXPECT_NE(parsed.status().message().find("--quiet"), std::string::npos);

  EXPECT_FALSE(MakeSet().Parse({"--virtual-time=flase"}).ok());
  EXPECT_FALSE(MakeSet().Parse({"--quiet=2"}).ok());
  EXPECT_FALSE(MakeSet().Parse({"--quiet="}).ok());
}

TEST(FlagSetTest, GetBoolValueOnValueFlags) {
  auto parsed = MakeSet().Parse({"--trace", "false", "--sites=1"});
  ASSERT_TRUE(parsed.ok());
  auto off = parsed->GetBoolValue("trace", true);
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(*off);
  // "--sites=1" reads as boolean true; absent flag yields the fallback.
  auto on = parsed->GetBoolValue("sites", false);
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(*on);
  auto fallback = parsed->GetBoolValue("eps", true);
  ASSERT_TRUE(fallback.ok());
  EXPECT_TRUE(*fallback);
}

TEST(FlagSetTest, GetBoolValueRejectsGarbage) {
  // Value flags skip parse-time boolean validation (most are not booleans),
  // so the typed lookup must do it: "--acks ture" must not enable acks.
  auto parsed = MakeSet().Parse({"--trace=ture"});
  ASSERT_TRUE(parsed.ok());
  auto as_bool = parsed->GetBoolValue("trace", false);
  ASSERT_FALSE(as_bool.ok());
  EXPECT_NE(as_bool.status().message().find("invalid boolean value 'ture'"),
            std::string::npos)
      << as_bool.status().message();
}

TEST(FlagSetTest, SpaceFormDoesNotConsumeNextFlag) {
  // "--trace --quiet" forgot the value; the old parser consumed "--quiet"
  // as the trace path and then reported the *next* flag as unknown (or
  // silently misbehaved). It must name the flag whose value is missing.
  auto parsed = MakeSet().Parse({"--trace", "--quiet"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("flag --trace needs a value"),
            std::string::npos)
      << parsed.status().message();
  // A value that merely starts with a dash (not double) still parses.
  auto negative = MakeSet().Parse({"--eps", "-0.5"});
  ASSERT_TRUE(negative.ok());
  auto eps = negative->GetDouble("eps", 0.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_DOUBLE_EQ(*eps, -0.5);
}

TEST(FlagSetTest, RejectsUnknownFlag) {
  auto parsed = MakeSet().Parse({"--treshold", "5"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unknown flag"), std::string::npos)
      << parsed.status().message();
}

TEST(FlagSetTest, RejectsDuplicateFlag) {
  auto parsed = MakeSet().Parse({"--sites", "4", "--sites=8"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate flag"),
            std::string::npos)
      << parsed.status().message();
}

TEST(FlagSetTest, RejectsMissingValueAndBadSyntax) {
  EXPECT_FALSE(MakeSet().Parse({"--sites"}).ok());
  EXPECT_FALSE(MakeSet().Parse({"sites=4"}).ok());
  EXPECT_FALSE(MakeSet().Parse({"-sites", "4"}).ok());
}

TEST(FlagSetTest, RequiredAndNumericErrors) {
  auto parsed = MakeSet().Parse({"--sites=abc"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetInt("sites", 0).ok());
  EXPECT_FALSE(parsed->GetRequired("trace").ok());
  auto req = parsed->GetRequired("sites");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(*req, "abc");
}

TEST(FlagSetTest, ParsesFromArgv) {
  const char* argv[] = {"dcvtool", "run", "--sites=3", "--quiet"};
  auto parsed = MakeSet().Parse(4, const_cast<char* const*>(argv), 2);
  ASSERT_TRUE(parsed.ok());
  auto sites = parsed->GetInt("sites", 0);
  ASSERT_TRUE(sites.ok());
  EXPECT_EQ(*sites, 3);
  EXPECT_TRUE(parsed->GetBool("quiet"));
}

}  // namespace
}  // namespace dcv
