#include "common/csv.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcv {
namespace {

TEST(CsvTest, SerializeSimple) {
  CsvTable t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.Serialize(), "a,b\n1,2\n3,4\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvTable t;
  t.AddRow({"plain", "has,comma", "has\"quote", "has\nnewline"});
  EXPECT_EQ(t.Serialize(),
            "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvTest, ParseRoundTrip) {
  CsvTable t({"x", "y"});
  t.AddRow({"a,b", "c\"d"});
  t.AddRow({"", "line\nbreak"});
  auto parsed = CsvTable::Parse(t.Serialize(), /*has_header=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header(), (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->row(0), (std::vector<std::string>{"a,b", "c\"d"}));
  EXPECT_EQ(parsed->row(1), (std::vector<std::string>{"", "line\nbreak"}));
}

TEST(CsvTest, ParseWithoutHeader) {
  auto parsed = CsvTable::Parse("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->header().empty());
  EXPECT_EQ(parsed->num_rows(), 2u);
}

TEST(CsvTest, ParseHandlesCrLf) {
  auto parsed = CsvTable::Parse("a,b\r\n1,2\r\n", /*has_header=*/true);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->row(0), (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(CsvTable::Parse("\"open", false).ok());
}

TEST(CsvTest, TypedAccessors) {
  CsvTable t({"i", "d"});
  t.AddRow({"42", "2.5"});
  EXPECT_EQ(*t.ColumnIndex("d"), 1u);
  EXPECT_FALSE(t.ColumnIndex("missing").ok());
  EXPECT_EQ(*t.Int64At(0, 0), 42);
  EXPECT_DOUBLE_EQ(*t.DoubleAt(0, 1), 2.5);
  EXPECT_FALSE(t.Int64At(0, 1).ok());   // "2.5" is not an int.
  EXPECT_FALSE(t.Int64At(5, 0).ok());   // Out of range.
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t({"k", "v"});
  t.AddRow({"alpha", "1"});
  std::string path = testing::TempDir() + "/dcv_csv_test.csv";
  ASSERT_TRUE(t.WriteToFile(path).ok());
  auto back = CsvTable::ReadFromFile(path, /*has_header=*/true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->row(0), (std::vector<std::string>{"alpha", "1"}));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(CsvTable::ReadFromFile("/nonexistent/x.csv", true).status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, RandomContentRoundTripsExactly) {
  // Property: serialize(parse(serialize(table))) is the identity for any
  // field content, including quotes, commas, and newlines.
  Rng rng(2718);
  const char alphabet[] = "ab,\"\n\r x1;";
  for (int trial = 0; trial < 300; ++trial) {
    const int cols = static_cast<int>(rng.UniformInt(1, 4));
    CsvTable table;
    const int rows = static_cast<int>(rng.UniformInt(1, 6));
    for (int r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (int c = 0; c < cols; ++c) {
        std::string field;
        // A row consisting of one empty field is indistinguishable from a
        // blank line (which Parse intentionally skips), so keep single-
        // column fields nonempty.
        int len = static_cast<int>(rng.UniformInt(cols == 1 ? 1 : 0, 8));
        for (int k = 0; k < len; ++k) {
          field.push_back(alphabet[rng.UniformInt(
              0, static_cast<int64_t>(sizeof(alphabet)) - 2)]);
        }
        row.push_back(std::move(field));
      }
      table.AddRow(std::move(row));
    }
    auto parsed = CsvTable::Parse(table.Serialize(), /*has_header=*/false);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ASSERT_EQ(parsed->num_rows(), table.num_rows()) << "trial " << trial;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      ASSERT_EQ(parsed->row(r), table.row(r)) << "trial " << trial;
    }
  }
}

TEST(CsvTest, DoubleRowsRoundTripBitExact) {
  // Golden set: the values %.17g famously mangles under shorter precision,
  // plus the non-finite policy values. Serialize -> parse -> DoubleAt must
  // recover every bit (loaders of solver sweeps and telemetry dumps rely
  // on this).
  const std::vector<double> goldens = {
      0.0,
      -0.0,
      1.0 / 3.0,
      0.1,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),  // 5e-324.
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  CsvTable table;
  table.AddDoubleRow(goldens);
  table.AddDoubleRow({std::numeric_limits<double>::quiet_NaN()});
  auto parsed = CsvTable::Parse(table.Serialize(), /*has_header=*/false);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  for (size_t c = 0; c < goldens.size(); ++c) {
    auto back = parsed->DoubleAt(0, c);
    ASSERT_TRUE(back.ok()) << back.status();
    uint64_t want_bits = 0;
    uint64_t got_bits = 0;
    std::memcpy(&want_bits, &goldens[c], sizeof(want_bits));
    std::memcpy(&got_bits, &*back, sizeof(got_bits));
    EXPECT_EQ(got_bits, want_bits) << "column " << c << " = " << goldens[c];
  }
  auto nan_back = parsed->DoubleAt(1, 0);
  ASSERT_TRUE(nan_back.ok()) << nan_back.status();
  EXPECT_TRUE(std::isnan(*nan_back));
}

TEST(CsvTest, RandomDoublesRoundTripBitExact) {
  Rng rng(31415);
  CsvTable table;
  std::vector<double> values;
  for (int trial = 0; trial < 500; ++trial) {
    // Random bit patterns cover subnormals and extreme exponents; skip the
    // NaN space since NaN payload bits are intentionally not preserved.
    uint64_t bits = rng.NextUint64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isnan(v)) {
      continue;
    }
    values.push_back(v);
  }
  table.AddDoubleRow(values);
  auto parsed = CsvTable::Parse(table.Serialize(), /*has_header=*/false);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  for (size_t c = 0; c < values.size(); ++c) {
    auto back = parsed->DoubleAt(0, c);
    ASSERT_TRUE(back.ok()) << back.status();
    uint64_t want_bits = 0;
    uint64_t got_bits = 0;
    std::memcpy(&want_bits, &values[c], sizeof(want_bits));
    std::memcpy(&got_bits, &*back, sizeof(got_bits));
    EXPECT_EQ(got_bits, want_bits) << "column " << c << " = " << values[c];
  }
}

}  // namespace
}  // namespace dcv
