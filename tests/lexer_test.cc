#include "constraints/lexer.h"

#include <gtest/gtest.h>

namespace dcv {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) {
    out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().kind, TokenKind::kEnd);
}

TEST(LexerTest, IntegersAndIdentifiers) {
  auto tokens = Tokenize("12 foo x1 _bar");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{TokenKind::kInt, TokenKind::kIdent,
                                    TokenKind::kIdent, TokenKind::kIdent,
                                    TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[0].int_value, 12);
  EXPECT_EQ((*tokens)[1].text, "foo");
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("MIN min Max SUM and OR");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{TokenKind::kMin, TokenKind::kMin,
                                    TokenKind::kMax, TokenKind::kSum,
                                    TokenKind::kAnd, TokenKind::kOr,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Tokenize("<= >= && || + - * ( ) { } ,");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kLe, TokenKind::kGe, TokenKind::kAnd,
                TokenKind::kOr, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kLParen, TokenKind::kRParen,
                TokenKind::kLBrace, TokenKind::kRBrace, TokenKind::kComma,
                TokenKind::kEnd}));
}

TEST(LexerTest, NoSpacesNeeded) {
  auto tokens = Tokenize("3*x1+x2<=5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 8u);
}

TEST(LexerTest, JuxtaposedIntIdent) {
  // "3x1" lexes as INT(3) IDENT(x1), which the parser treats as 3*x1.
  auto tokens = Tokenize("3x1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
}

TEST(LexerTest, RejectsStrictComparisons) {
  EXPECT_FALSE(Tokenize("x < 5").ok());
  EXPECT_FALSE(Tokenize("x > 5").ok());
}

TEST(LexerTest, RejectsStrayAmpersandAndPipe) {
  EXPECT_FALSE(Tokenize("a & b").ok());
  EXPECT_FALSE(Tokenize("a | b").ok());
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("x1 ^ 2").ok());
  EXPECT_FALSE(Tokenize("x1 = 2").ok());
}

TEST(LexerTest, TracksOffsets) {
  auto tokens = Tokenize("ab  12");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 4u);
}

}  // namespace
}  // namespace dcv
