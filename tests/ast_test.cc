#include "constraints/ast.h"

#include <gtest/gtest.h>

namespace dcv {
namespace {

AggExpr Var(int i, int64_t coef = 1) {
  return AggExpr::Linear(LinearExpr::FromTerm(i, coef));
}

TEST(AggExprTest, LinearLeafEvaluates) {
  AggExpr e = Var(0, 3);
  EXPECT_EQ(e.Evaluate({4}), 12);
  EXPECT_EQ(e.kind(), AggExpr::Kind::kLinear);
}

TEST(AggExprTest, SumEvaluates) {
  AggExpr e = AggExpr::Sum({Var(0), Var(1, 2)});
  EXPECT_EQ(e.Evaluate({3, 5}), 13);
}

TEST(AggExprTest, MinMaxEvaluate) {
  AggExpr mn = AggExpr::Min({Var(0), Var(1)});
  AggExpr mx = AggExpr::Max({Var(0), Var(1)});
  EXPECT_EQ(mn.Evaluate({7, 3}), 3);
  EXPECT_EQ(mx.Evaluate({7, 3}), 7);
}

TEST(AggExprTest, NestedEvaluation) {
  // MAX{MIN{x0, x1} + 2, x2}
  AggExpr inner = AggExpr::Min({Var(0), Var(1)});
  AggExpr sum = AggExpr::Sum(
      {inner, AggExpr::Linear(LinearExpr::FromConstant(2))});
  AggExpr e = AggExpr::Max({sum, Var(2)});
  EXPECT_EQ(e.Evaluate({5, 9, 4}), 7);   // min=5, +2=7 > 4.
  EXPECT_EQ(e.Evaluate({5, 9, 10}), 10);
}

TEST(AggExprTest, MaxVarAndNodeCount) {
  AggExpr e = AggExpr::Max({Var(3), AggExpr::Min({Var(1), Var(7)})});
  EXPECT_EQ(e.max_var(), 7);
  EXPECT_EQ(e.NodeCount(), 5u);
}

TEST(AggExprTest, ToStringRendersFunctions) {
  AggExpr e = AggExpr::Min({Var(0), AggExpr::Sum({Var(1), Var(2)})});
  EXPECT_EQ(e.ToString(), "MIN{x0, SUM{x1, x2}}");
}

TEST(BoolExprTest, AtomLeAndGe) {
  BoolExpr le = BoolExpr::Atom(Var(0), CmpOp::kLe, 5);
  BoolExpr ge = BoolExpr::Atom(Var(0), CmpOp::kGe, 5);
  EXPECT_TRUE(le.Evaluate({5}));
  EXPECT_FALSE(le.Evaluate({6}));
  EXPECT_TRUE(ge.Evaluate({5}));
  EXPECT_FALSE(ge.Evaluate({4}));
}

TEST(BoolExprTest, AndOrShortSemantics) {
  BoolExpr a = BoolExpr::Atom(Var(0), CmpOp::kLe, 5);
  BoolExpr b = BoolExpr::Atom(Var(1), CmpOp::kLe, 5);
  BoolExpr both = BoolExpr::And({a, b});
  BoolExpr either = BoolExpr::Or({a, b});
  EXPECT_TRUE(both.Evaluate({5, 5}));
  EXPECT_FALSE(both.Evaluate({5, 6}));
  EXPECT_TRUE(either.Evaluate({5, 6}));
  EXPECT_FALSE(either.Evaluate({6, 6}));
}

TEST(BoolExprTest, PaperExampleConstraint) {
  // ((3x0 + x1 >= 1) || (MIN{x0, 2x2 - x1} <= 5)) && (x0 + MAX{3x1, x2} >= 4)
  BoolExpr left1 = BoolExpr::Atom(
      AggExpr::Sum({Var(0, 3), Var(1)}), CmpOp::kGe, 1);
  LinearExpr two_x2_minus_x1;
  two_x2_minus_x1.AddTerm(2, 2);
  two_x2_minus_x1.AddTerm(1, -1);
  BoolExpr left2 = BoolExpr::Atom(
      AggExpr::Min({Var(0), AggExpr::Linear(two_x2_minus_x1)}), CmpOp::kLe, 5);
  BoolExpr right = BoolExpr::Atom(
      AggExpr::Sum({Var(0), AggExpr::Max({Var(1, 3), Var(2)})}), CmpOp::kGe,
      4);
  BoolExpr g = BoolExpr::And({BoolExpr::Or({left1, left2}), right});

  EXPECT_TRUE(g.Evaluate({1, 1, 1}));    // 4>=1; 1+3=4>=4.
  EXPECT_FALSE(g.Evaluate({0, 1, 0}));   // Right: 0+max(3,0)=3 < 4.
  EXPECT_TRUE(g.Evaluate({0, 0, 4}));    // Left2: min(0,8)=0<=5; right: 4>=4.
}

TEST(BoolExprTest, MaxVarAndNodeCount) {
  BoolExpr e = BoolExpr::And({BoolExpr::Atom(Var(2), CmpOp::kLe, 1),
                              BoolExpr::Atom(Var(5), CmpOp::kLe, 1)});
  EXPECT_EQ(e.max_var(), 5);
  EXPECT_EQ(e.NodeCount(), 5u);  // And + 2 atoms + 2 agg leaves.
}

TEST(BoolExprTest, ToStringRendersTree) {
  BoolExpr e = BoolExpr::Or({BoolExpr::Atom(Var(0), CmpOp::kLe, 3),
                             BoolExpr::Atom(Var(1), CmpOp::kGe, 7)});
  EXPECT_EQ(e.ToString(), "((x0 <= 3) || (x1 >= 7))");
}

}  // namespace
}  // namespace dcv
