#include "threshold/exact_dp.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "histogram/empirical_cdf.h"

namespace dcv {
namespace {

// Brute-force optimum by enumerating all threshold vectors (tiny domains).
double BruteForceBest(const ThresholdProblem& problem) {
  const size_t n = problem.vars.size();
  std::vector<int64_t> t(n, 0);
  double best = kNegInf;
  for (;;) {
    if (SatisfiesBudget(problem, t)) {
      best = std::max(best, LogProbability(problem, t));
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (t[i] < problem.vars[i].cdf.domain_max()) {
        ++t[i];
        break;
      }
      t[i] = 0;
    }
    if (i == n) {
      break;
    }
  }
  return best;
}

TEST(ExactDpTest, EmptyProblem) {
  ExactDpSolver solver;
  auto sol = solver.Solve(ThresholdProblem{});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->thresholds.empty());
}

TEST(ExactDpTest, SingleVariableTakesWholeBudget) {
  EmpiricalCdf model({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 9);
  ThresholdProblem p;
  p.budget = 6;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  ExactDpSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds[0], 6);
  EXPECT_NEAR(sol->log_probability, std::log(0.7), 1e-12);
}

TEST(ExactDpTest, PrefersTheSkewedSite) {
  // Site 0 concentrated near 0, site 1 spread out: most budget should go to
  // site 1.
  EmpiricalCdf low({0, 0, 0, 1, 1}, 20);
  EmpiricalCdf wide({2, 6, 10, 14, 18}, 20);
  ThresholdProblem p;
  p.budget = 20;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&low, false)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&wide, false)});
  ExactDpSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->thresholds[1], sol->thresholds[0]);
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
}

TEST(ExactDpTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<std::unique_ptr<EmpiricalCdf>> models;
    ThresholdProblem p;
    p.budget = rng.UniformInt(0, 15);
    for (int i = 0; i < n; ++i) {
      const int64_t m = rng.UniformInt(2, 6);
      std::vector<int64_t> data;
      const int count = static_cast<int>(rng.UniformInt(3, 10));
      for (int k = 0; k < count; ++k) {
        data.push_back(rng.UniformInt(0, m));
      }
      models.push_back(std::make_unique<EmpiricalCdf>(data, m));
      p.vars.push_back(ProblemVar{i, rng.UniformInt(1, 3),
                                  CdfView(models.back().get(), false)});
    }
    ExactDpSolver solver;
    auto sol = solver.Solve(p);
    ASSERT_TRUE(sol.ok());
    ASSERT_TRUE(SatisfiesBudget(p, sol->thresholds));
    double brute = BruteForceBest(p);
    if (brute == kNegInf) {
      EXPECT_EQ(sol->log_probability, kNegInf);
    } else {
      EXPECT_NEAR(sol->log_probability, brute, 1e-9) << "trial " << trial;
    }
  }
}

TEST(ExactDpTest, MirroredVariablesSolveLowerBoundProblems) {
  // Canonical form of x0 + x1 >= 8 over M=10: (10-x0) + (10-x1) <= 12.
  // Data concentrated high: mirrored CDF mass near small Y.
  EmpiricalCdf model({7, 8, 8, 9, 10}, 10);
  ThresholdProblem p;
  p.budget = 12;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, true)});
  p.vars.push_back(ProblemVar{1, 1, CdfView(&model, true)});
  ExactDpSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(SatisfiesBudget(p, sol->thresholds));
  EXPECT_GT(sol->log_probability, kNegInf);
  // Y <= t means X >= 10 - t; most mass is at X >= 7, i.e. Y <= 3, so both
  // thresholds should be at least 3.
  EXPECT_GE(sol->thresholds[0] + sol->thresholds[1], 5);
}

TEST(ExactDpTest, ZeroBudgetForcesZeroThresholds) {
  EmpiricalCdf model({1, 2, 3}, 5);
  ThresholdProblem p;
  p.budget = 0;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  ExactDpSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds[0], 0);
  // No observation is <= 0: zero probability, flagged degenerate.
  EXPECT_EQ(sol->log_probability, kNegInf);
  EXPECT_TRUE(sol->degenerate);
}

TEST(ExactDpTest, TableSizeGuard) {
  EmpiricalCdf model({1, 2, 3}, 5);
  ThresholdProblem p;
  p.budget = 1'000'000'000;
  p.vars.push_back(ProblemVar{0, 1, CdfView(&model, false)});
  ExactDpSolver::Options options;
  options.max_table_cells = 1000;
  ExactDpSolver solver(options);
  EXPECT_EQ(solver.Solve(p).status().code(), StatusCode::kResourceExhausted);
}

TEST(ExactDpTest, WeightsRestrictChoices) {
  // Weight 5 on a budget of 9 permits threshold at most 1.
  EmpiricalCdf model({0, 1, 2, 3}, 3);
  ThresholdProblem p;
  p.budget = 9;
  p.vars.push_back(ProblemVar{0, 5, CdfView(&model, false)});
  ExactDpSolver solver;
  auto sol = solver.Solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->thresholds[0], 1);
}

}  // namespace
}  // namespace dcv
