#include "sim/runner.h"

#include <gtest/gtest.h>

#include "sim/polling_scheme.h"
#include "trace/synthetic.h"

namespace dcv {
namespace {

SimOptions MakeSimOptions(int64_t threshold) {
  SimOptions options;
  options.global_threshold = threshold;
  return options;
}

Trace MakeTrace(std::vector<std::vector<int64_t>> rows, int sites) {
  Trace t(sites);
  for (auto& r : rows) {
    EXPECT_TRUE(t.AppendEpoch(std::move(r)).ok());
  }
  return t;
}

TEST(RunnerTest, RejectsNullScheme) {
  Trace t(1);
  EXPECT_FALSE(RunSimulation(nullptr, SimOptions{}, t, t).ok());
}

TEST(RunnerTest, RejectsSiteCountMismatch) {
  Trace training = MakeTrace({{1, 2}}, 2);
  Trace eval = MakeTrace({{1}}, 1);
  PollingScheme scheme(1);
  EXPECT_FALSE(RunSimulation(&scheme, SimOptions{}, training, eval).ok());
}

TEST(RunnerTest, RejectsBadWeights) {
  Trace t = MakeTrace({{1}}, 1);
  PollingScheme scheme(1);
  SimOptions options;
  options.weights = {0};
  EXPECT_FALSE(RunSimulation(&scheme, options, t, t).ok());
  options.weights = {1, 1};
  EXPECT_FALSE(RunSimulation(&scheme, options, t, t).ok());
}

TEST(RunnerTest, EmptyWeightsDefaultToOnes) {
  Trace t = MakeTrace({{3, 4}, {1, 1}}, 2);
  PollingScheme scheme(1);
  SimOptions options;
  options.global_threshold = 5;
  auto result = RunSimulation(&scheme, options, t, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->true_violations, 1);  // 7 > 5 at epoch 0.
  EXPECT_EQ(result->detected_violations, 1);
}

TEST(RunnerTest, GroundTruthUsesWeights) {
  Trace t = MakeTrace({{3, 4}}, 2);
  PollingScheme scheme(1);
  SimOptions options;
  options.global_threshold = 10;
  options.weights = {2, 1};
  auto result = RunSimulation(&scheme, options, t, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->true_violations, 0);  // 2*3 + 4 = 10, not > 10.
  options.weights = {3, 1};
  auto result2 = RunSimulation(&scheme, options, t, t);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->true_violations, 1);  // 13 > 10.
}

TEST(RunnerTest, FalseAlarmAccounting) {
  // Period-1 polling polls every epoch; non-violating epochs count as
  // false-alarm (unnecessary) polls.
  Trace t = MakeTrace({{1}, {9}, {1}}, 1);
  PollingScheme scheme(1);
  SimOptions options;
  options.global_threshold = 5;
  auto result = RunSimulation(&scheme, options, t, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->true_violations, 1);
  EXPECT_EQ(result->false_alarm_epochs, 2);
  EXPECT_EQ(result->epochs, 3);
}

TEST(RunnerTest, MessagesPerEpoch) {
  Trace t = MakeTrace({{1}, {1}}, 1);
  PollingScheme scheme(1);
  SimOptions options;
  options.global_threshold = 100;
  auto result = RunSimulation(&scheme, options, t, t);
  ASSERT_TRUE(result.ok());
  // 2 messages per epoch (1 request + 1 response for a single site).
  EXPECT_DOUBLE_EQ(result->MessagesPerEpoch(), 2.0);
}

TEST(RunnerTest, RejectsNonPositiveSegmentEpochs) {
  Trace t = MakeTrace({{1}, {2}}, 1);
  PollingScheme scheme(1);
  EXPECT_FALSE(
      RunSimulationSegments(&scheme, MakeSimOptions(5), t, t, 0).ok());
  EXPECT_FALSE(
      RunSimulationSegments(&scheme, MakeSimOptions(5), t, t, -5).ok());
}

TEST(RunnerTest, RejectsBadFaultSpec) {
  Trace t = MakeTrace({{1}}, 1);
  PollingScheme scheme(1);
  SimOptions options = MakeSimOptions(5);
  options.faults.loss = 1.5;
  EXPECT_FALSE(RunSimulation(&scheme, options, t, t).ok());
  options = MakeSimOptions(5);
  options.faults.crashes = {CrashWindow{3, 0, 10}};  // Site out of range.
  EXPECT_FALSE(RunSimulation(&scheme, options, t, t).ok());
}

TEST(RunnerTest, SchemeNameIsRecorded) {
  Trace t = MakeTrace({{1}}, 1);
  PollingScheme scheme(1);
  auto result = RunSimulation(&scheme, MakeSimOptions(5), t, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scheme_name, "polling");
}

}  // namespace
}  // namespace dcv
