#!/usr/bin/env python3
"""Strict-parse a metrics JSON artifact: fail on NaN/Infinity anywhere.

Regression harness for the bench emitters: a run with zero detections or
zero poll rounds must still produce well-defined JSON (quantiles and means
of empty histograms are 0, not NaN from a 0/0). Python's json module
accepts the non-standard NaN/Infinity tokens by default, so this script
parses with parse_constant wired to raise, then walks the result to catch
any float that sneaked through.

Usage: check_json_finite.py FILE [--expect-zero GAUGE ...]

--expect-zero names gauges that must be present AND exactly 0 — the
breach-free bench asserts its detection-lag and poll-round stats emit as
explicit zeros rather than being dropped or polluted.
"""

import argparse
import json
import math
import sys


def reject_constant(token):
    raise SystemExit(f"non-finite JSON token {token!r} in artifact")


def walk(node, path):
    if isinstance(node, float):
        if math.isnan(node) or math.isinf(node):
            raise SystemExit(f"non-finite value at {path}: {node}")
    elif isinstance(node, dict):
        for k, v in node.items():
            walk(v, f"{path}/{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk(v, f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--expect-zero", nargs="*", default=[])
    args = parser.parse_args()

    with open(args.file, "r", encoding="utf-8") as f:
        doc = json.load(f, parse_constant=reject_constant)
    walk(doc, "")

    gauges = doc.get("gauges", {})
    for name in args.expect_zero:
        matches = [k for k in gauges if k.endswith(name)]
        if not matches:
            raise SystemExit(f"expected gauge suffix {name!r} missing "
                             f"(have {sorted(gauges)})")
        for k in matches:
            if gauges[k] != 0:
                raise SystemExit(f"expected {k} == 0, got {gauges[k]}")

    print(f"ok: {args.file} finite"
          + (f", {len(args.expect_zero)} zero-gauges verified"
             if args.expect_zero else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
