#!/usr/bin/env python3
"""Multi-process socket transport smoke test.

Launches a dcvtool coordinator (`run --transport socket`) plus N separate
`dcvtool site-worker` processes on loopback, waits for the run to finish,
then runs the same workload on the in-process thread transport and asserts
that every protocol-relevant output line is identical: per-run detection
counts, message totals and per-type breakdown. Timing lines and wire-level
socket stats are excluded (they legitimately differ between transports).

With --metrics-json the coordinator's merged telemetry document (its own
registry folded with every worker's final kTelemetry push) is written,
schema-validated via validate_metrics.py, and checked for worker-side
counters. With --trace-out the merged Chrome trace is written and checked
for one lane per process (and, under --chaos kill-worker, for the
worker_reconnect recovery instant event).

Exit code 0 on success; non-zero with a diagnostic otherwise.
"""

import argparse
import json
import os
import subprocess
import sys

# Output keys that must be bit-identical across transports.
COMPARED_KEYS = [
    "threshold",
    "protocol",
    "mode",
    "sites",
    "messages",
    "messages-breakdown",
    "reliability",
    "epochs",
    "alarm-epochs",
    "polled-epochs",
    "true-violations",
    "detected",
    "missed",
    "false-alarm-epochs",
    "updates",
]


def parse_output(text):
    values = {}
    for line in text.splitlines():
        if ": " in line:
            key, value = line.split(": ", 1)
            values[key.strip()] = value.strip()
    return values


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dcvtool", required=True)
    parser.add_argument("--trace", required=True)
    parser.add_argument("--train-epochs", type=int, required=True)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=1,
                        help="coordinator shard count (two-level tree)")
    parser.add_argument("--chaos", default="none",
                        choices=["none", "kill-shard", "kill-worker",
                                 "reshard"],
                        help="inject one seed-resolved failure into the "
                             "socket run; the healthy thread run is still "
                             "the comparison baseline, so a match proves "
                             "zero lost detections across the failure")
    parser.add_argument("--chaos-seed", type=int, default=3)
    parser.add_argument("--heartbeat-timeout-ms", type=int, default=500)
    parser.add_argument("--timeout", type=float, default=240.0)
    parser.add_argument("--metrics-json", default="",
                        help="write the coordinator's merged telemetry "
                             "document here and validate it against "
                             "tools/metrics_schema.json")
    parser.add_argument("--trace-out", default="",
                        help="write the merged Chrome trace here and assert "
                             "it carries coordinator + worker lanes")
    args = parser.parse_args()

    coordinator_cmd = [
        args.dcvtool, "run",
        "--trace", args.trace,
        "--train-epochs", str(args.train_epochs),
        "--virtual-time",
        "--transport", "socket",
        "--listen-port", "0",
        "--threads", str(args.workers),
        "--shards", str(args.shards),
    ]
    if args.metrics_json:
        coordinator_cmd += ["--metrics-json", args.metrics_json]
    if args.trace_out:
        coordinator_cmd += ["--trace-out", args.trace_out,
                            "--trace-format", "chrome"]
    if args.chaos != "none":
        coordinator_cmd += [
            "--chaos", args.chaos,
            "--chaos-seed", str(args.chaos_seed),
            "--heartbeat-timeout-ms", str(args.heartbeat_timeout_ms),
        ]
    coordinator = subprocess.Popen(
        coordinator_cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    # The coordinator prints the resolved ephemeral port first.
    first_line = coordinator.stdout.readline()
    if not first_line.startswith("listening-port: "):
        coordinator.kill()
        rest = coordinator.stdout.read()
        sys.exit("coordinator did not announce a port: %r %r"
                 % (first_line, rest))
    port = int(first_line.split(": ", 1)[1])

    site_workers = []
    for w in range(args.workers):
        worker_cmd = [
            args.dcvtool, "site-worker",
            "--port", str(port),
            "--worker", str(w),
            "--workers", str(args.workers),
            "--trace", args.trace,
            "--train-epochs", str(args.train_epochs),
        ]
        if args.chaos == "kill-worker":
            # The severed worker must redial; reconnection is opt-in on
            # the worker side.
            worker_cmd.append("--allow-reconnect")
        site_workers.append(subprocess.Popen(
            worker_cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        ))

    try:
        socket_out, _ = coordinator.communicate(timeout=args.timeout)
    except subprocess.TimeoutExpired:
        coordinator.kill()
        for p in site_workers:
            p.kill()
        sys.exit("coordinator timed out after %.0fs" % args.timeout)
    socket_out = first_line + socket_out
    if coordinator.returncode != 0:
        for p in site_workers:
            p.kill()
        sys.exit("coordinator failed (rc=%d):\n%s"
                 % (coordinator.returncode, socket_out))

    for w, p in enumerate(site_workers):
        try:
            out, _ = p.communicate(timeout=30.0)
        except subprocess.TimeoutExpired:
            p.kill()
            sys.exit("site-worker %d timed out" % w)
        if p.returncode != 0:
            sys.exit("site-worker %d failed (rc=%d):\n%s"
                     % (w, p.returncode, out))

    thread = subprocess.run(
        [
            args.dcvtool, "run",
            "--trace", args.trace,
            "--train-epochs", str(args.train_epochs),
            "--virtual-time",
            "--threads", str(args.workers),
            "--shards", str(args.shards),
        ],
        capture_output=True,
        text=True,
        timeout=args.timeout,
    )
    if thread.returncode != 0:
        sys.exit("thread-transport run failed (rc=%d):\n%s%s"
                 % (thread.returncode, thread.stdout, thread.stderr))

    socket_values = parse_output(socket_out)
    thread_values = parse_output(thread.stdout)
    mismatches = []
    for key in COMPARED_KEYS:
        if key not in socket_values and key not in thread_values:
            continue  # e.g. "reliability" only appears under fault flags.
        if socket_values.get(key) != thread_values.get(key):
            mismatches.append("  %s: socket=%r thread=%r"
                              % (key, socket_values.get(key),
                                 thread_values.get(key)))
    if mismatches:
        sys.exit("socket run diverged from thread run:\n"
                 + "\n".join(mismatches)
                 + "\n--- socket output ---\n" + socket_out
                 + "\n--- thread output ---\n" + thread.stdout)

    if args.metrics_json:
        validator = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "validate_metrics.py")
        check = subprocess.run(
            [sys.executable, validator, args.metrics_json],
            capture_output=True, text=True, timeout=30.0)
        if check.returncode != 0:
            sys.exit("merged metrics document failed schema validation:\n"
                     + check.stdout + check.stderr)
        with open(args.metrics_json, encoding="utf-8") as f:
            merged = json.load(f)
        counters = merged.get("metrics", {}).get("counters", {})
        # The merge must actually contain worker-side work, not just the
        # coordinator's own registry: site updates only ever tick inside the
        # worker processes on a socket run.
        if counters.get("runtime/site/updates", 0) <= 0:
            sys.exit("merged document has no worker-side counters: %r"
                     % {k: v for k, v in counters.items() if "site" in k})

    if args.trace_out:
        with open(args.trace_out, encoding="utf-8") as f:
            trace = json.load(f)
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        lanes = {e["pid"] for e in events if e.get("ph") != "M"}
        # One coordinator lane plus one per worker process.
        if len(lanes) < 1 + args.workers:
            sys.exit("merged trace has %d process lanes, want >= %d"
                     % (len(lanes), 1 + args.workers))
        if args.chaos == "kill-worker":
            names = {e.get("name") for e in events}
            if "worker_reconnect" not in names:
                sys.exit("kill-worker trace lacks a worker_reconnect "
                         "instant event; got %r" % sorted(
                             n for n in names if n))

    print("socket smoke OK: %d workers, %d shards on port %d, "
          "%s messages, %s epochs, chaos=%s"
          % (args.workers, args.shards, port, socket_values.get("messages"),
             socket_values.get("epochs"), args.chaos))
    return 0


if __name__ == "__main__":
    sys.exit(main())
