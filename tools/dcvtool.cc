// dcvtool — command-line front end for the dcv library.
//
//   dcvtool generate --out trace.csv [--sites 10] [--weeks 5] [--seed 42]
//           [--format csv|bin] [--codec flat|delta|zoh]
//           [--compress none|lz4|auto] [--block-rows N]
//       Write a synthetic SNMP-style multi-site trace. --format bin writes
//       the dcvb binary columnar container (src/io/format.h) instead of
//       CSV; the codec/compression flags tune it and are rejected with
//       --format csv.
//
//   dcvtool convert --in trace.{csv|bin} --out other.{csv|bin}
//           [--format csv|bin] [--codec flat|delta|zoh]
//           [--compress none|lz4|auto] [--block-rows N]
//       Convert a trace between CSV and the binary container (either
//       direction; the input format is sniffed from its magic bytes).
//       --format defaults to the opposite of the input. Conversion is
//       lossless: csv -> bin -> csv reproduces the original file byte for
//       byte.
//
//   dcvtool plan --trace trace.csv --constraint "a + b <= 100"
//           [--train-epochs N] [--eps 0.05] [--buckets 100]
//           [--solver fptas|exact-dp|equal-value|equal-tail]
//           [--out plan.txt]
//       Build per-site histograms from the trace (site columns must match
//       the constraint's variable names), select local thresholds, and
//       print/write a deployable monitor plan.
//
//   dcvtool simulate --trace trace.csv --threshold T
//           [--train-epochs N] [--scheme local|fptas|exact-dp|equal-value|
//            equal-tail|geometric|polling|filters|multilevel] [--poll-period 5]
//           [--loss P] [--dup P] [--delay-prob P] [--max-delay E]
//           [--acks 0|1] [--max-attempts K]
//           [--degrade last-known|assume-breach]
//           [--crash site:from:to[,site:from:to...]]
//           [--partition from:to[,from:to...]] [--fault-seed S]
//           [--metrics-json out.json] [--trace-out out.trace]
//           [--trace-format jsonl|chrome] [--quiet]
//       Replay the remaining epochs through a detection scheme and report
//       messages and detection accuracy. The fault flags inject link loss,
//       duplication, delay, site crashes, and coordinator partitions into
//       the site<->coordinator channel (epochs are relative to the start of
//       the evaluation slice); when any are set a reliability breakdown is
//       printed as well. --metrics-json dumps the unified telemetry JSON
//       (message/detection/reliability counters plus every registry metric);
//       --trace-out captures per-epoch protocol events as JSONL or Chrome
//       trace_event JSON (loadable in Perfetto); --quiet suppresses the
//       stdout table (JSON outputs are still written).
//
//   dcvtool run [--trace trace.csv [--train-epochs N] [--threshold T]]
//           [--sites 4] [--updates 100000] [--seed 42] [--synthetic-max M]
//           [--scheme local|polling] [--solver fptas|...] [--eps 0.05]
//           [--poll-period 5] [--threads K] [--shards S] [--virtual-time]
//           [--engine multiplexed|actor]
//           [--conformance] [--transport thread|socket] [--listen-port P]
//           [--chaos none|kill-shard|kill-worker|reshard] [--chaos-seed S]
//           [--heartbeat-timeout-ms T] [--allow-reconnect]
//           [--metrics-json out.json] [--trace-out out.trace]
//           [--trace-format jsonl|chrome] [--stats-interval-ms T]
//           [--quiet] [+ fault flags as above]
//       Run the concurrent coordinator/site runtime (src/runtime): real
//       threads behind a mailbox transport instead of the lockstep
//       simulator. With --trace the sites replay trace columns; without,
//       each of --sites generates --updates synthetic values from its
//       (seed, site) stream. --virtual-time runs the deterministic
//       epoch-barrier mode (bit-identical to `simulate`); the default is
//       free-running throughput mode. --conformance (needs --trace) runs
//       the lockstep simulator AND the virtual-time runtime and verifies
//       they agree epoch by epoch (with --transport socket a third run
//       over loopback TCP is verified as well). --threads packs the sites
//       onto K worker threads (default: one per core with the multiplexed
//       engine, one per site with --engine actor). --engine picks the
//       site-side data plane: "multiplexed" (default) drives all of a
//       worker's sites from one flat structure-of-arrays loop with batched
//       transport drains — the only way a million sites fit on one box —
//       while "actor" keeps the original one-object-per-site runtime
//       (conformance baseline). Results are bit-identical. --shards S
//       partitions the sites across S shard coordinator threads feeding a
//       root aggregator (two-level coordinator tree; S in [1, sites],
//       default 1 = flat coordinator); virtual-time results are identical
//       for every legal S.
//       --transport socket makes this process the coordinator: it listens
//       on --listen-port (0 = ephemeral; the bound port is printed as
//       "listening-port: P"), waits for one `dcvtool site-worker` process
//       per worker slot, and prints the wire stats as "socket: ...".
//       --chaos injects one seed-resolved failure mid-run: kill-shard
//       crashes a shard coordinator thread (the root detects the silence
//       via --heartbeat-timeout-ms and recovers its sites), kill-worker
//       severs a worker's TCP link (socket transport only; heals via the
//       reconnect protocol), reshard pushes a new site->shard layout at an
//       epoch boundary. Detection results must be unchanged — that is the
//       point. --allow-reconnect keeps the coordinator accepting resume
//       handshakes even without chaos (kill-worker implies it).
//       --metrics-json writes the merged telemetry document: the
//       coordinator registry folded with every worker's final kTelemetry
//       push (counters summed, histograms merged, worker gauges
//       namespaced "workerK/..."), so the document shape matches a
//       thread-transport run. --trace-out writes one merged timeline with
//       coordinator, shard, and worker lanes (worker events are shifted
//       by the handshake-estimated clock offset); chaos lifecycle shows
//       up as instant events. --stats-interval-ms prints a live
//       "stats: ..." snapshot line every T ms while the run is going.
//
//   dcvtool site-worker --port P --worker W --workers K
//           [--host 127.0.0.1] [--trace trace.csv --train-epochs N]
//           [--sites N --updates U --seed 42 --synthetic-max M]
//           [--engine multiplexed|actor]
//           [--connect-attempts A] [--connect-timeout-ms T]
//           [--allow-reconnect] [--reconnect-window-ms T] [--quiet]
//       The worker half of a socket-transport run: connects to the
//       coordinator at host:port, identifies as worker W of K, and serves
//       the sites s with s % K == W until the coordinator shuts the run
//       down. The workload flags must match the coordinator's run: the
//       same --trace/--train-epochs (sites replay their eval columns) or
//       the same --sites/--updates/--seed synthetic stream. The run mode
//       (virtual-time or free-running) is adopted from the coordinator's
//       handshake, not a flag.
//
// Every subcommand that takes a --trace accepts both formats transparently
// (the loader sniffs the magic bytes), so a binary trace drops into any
// existing pipeline.
//
// Every subcommand prints machine-greppable "key: value" lines in a fixed
// order with locale-independent number formatting, so CI can diff them.
// Flags accept both "--flag value" and "--flag=value"; unknown or repeated
// flags are rejected (common/flags.h).

#include <chrono>
#include <clocale>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/result.h"
#include "common/strings.h"
#include "constraints/normalize.h"
#include "constraints/parser.h"
#include "histogram/equi_depth.h"
#include "runtime/conformance.h"
#include "runtime/runtime.h"
#include "runtime/site_worker.h"
#include "sim/adaptive_filter_scheme.h"
#include "sim/geometric_scheme.h"
#include "sim/local_scheme.h"
#include "sim/monitor_plan.h"
#include "sim/multilevel_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/boolean_solver.h"
#include "threshold/exact_dp.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "io/format.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"
#include "trace/trace_bin.h"

namespace dcv {
namespace {

/// Writes `content` to `path`, overwriting.
Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  if (std::fclose(f) != 0 || written != content.size()) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

/// Size of an existing file, for the convert/generate summary lines.
Result<int64_t> FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  if (size < 0) {
    return InternalError("cannot size file: " + path);
  }
  return static_cast<int64_t>(size);
}

// ----------------------------------------------------------------------
// Binary-trace output flags shared by `generate` and `convert`.
void DeclareBinFlags(FlagSet* flags) {
  flags->Value("format").Value("codec").Value("compress").Value("block-rows");
}

Result<io::WriterOptions> ParseBinFlags(const ParsedFlags& flags) {
  io::WriterOptions options;
  DCV_ASSIGN_OR_RETURN(options.codec,
                       io::ParseRowCodec(flags.GetString("codec", "delta")));
  DCV_ASSIGN_OR_RETURN(
      options.compression,
      io::ParseBlockCompression(flags.GetString("compress", "none")));
  DCV_ASSIGN_OR_RETURN(int64_t block_rows,
                       flags.GetInt("block-rows", options.block_rows));
  options.block_rows = block_rows;
  return options;
}

/// Rejects --codec/--compress/--block-rows when the output is CSV: a
/// silently ignored tuning flag is how a benchmark ends up measuring the
/// wrong file.
Status RejectBinFlagsForCsv(const ParsedFlags& flags) {
  for (const char* flag : {"codec", "compress", "block-rows"}) {
    if (!flags.GetString(flag, "").empty()) {
      return InvalidArgumentError(std::string("--") + flag +
                                  " only applies to binary output "
                                  "(--format bin)");
    }
  }
  return OkStatus();
}

Status WriteTraceAs(const Trace& trace, const std::string& path,
                    const std::string& format, const ParsedFlags& flags) {
  if (format == "csv") {
    DCV_RETURN_IF_ERROR(RejectBinFlagsForCsv(flags));
    return trace.WriteCsv(path);
  }
  if (format == "bin") {
    DCV_ASSIGN_OR_RETURN(io::WriterOptions options, ParseBinFlags(flags));
    return WriteTraceBin(trace, path, options);
  }
  return InvalidArgumentError("--format must be csv or bin, got '" + format +
                              "'");
}

/// Hard ceiling on site/worker counts accepted from the command line. The
/// runtime indexes sites with int and sizes mailboxes from the per-worker
/// site count, so this bound keeps every derived product (2 * sites + 16,
/// sites * updates, ...) comfortably inside int64 while still allowing runs
/// 50x beyond the million-site benchmark target.
constexpr int64_t kMaxSites = 50'000'000;

/// Validates an integer count flag against [lo, kMaxSites]; the flag name
/// lands in the error so a bad value exits 1 with an actionable message
/// instead of silently narrowing into a negative int downstream.
Status ValidateCount(int64_t value, int64_t lo, const char* flag) {
  if (value < lo || value > kMaxSites) {
    return InvalidArgumentError(
        std::string(flag) + " must be in [" + std::to_string(lo) + ", " +
        std::to_string(kMaxSites) + "], got " + std::to_string(value));
  }
  return OkStatus();
}

/// Rejects workloads whose total update count (sites * updates) cannot be
/// tracked in int64 accumulators.
Status ValidateWorkload(int64_t sites, int64_t updates) {
  if (updates < 1) {
    return InvalidArgumentError("--updates must be >= 1, got " +
                                std::to_string(updates));
  }
  if (sites > 0 && updates > std::numeric_limits<int64_t>::max() / sites) {
    return InvalidArgumentError(
        "--sites * --updates overflows a 64-bit total (" +
        std::to_string(sites) + " * " + std::to_string(updates) + ")");
  }
  return OkStatus();
}

Result<SiteEngineKind> ParseEngineKind(const std::string& name) {
  if (name == "multiplexed") {
    return SiteEngineKind::kMultiplexed;
  }
  if (name == "actor") {
    return SiteEngineKind::kActorPerSite;
  }
  return InvalidArgumentError(
      "--engine must be multiplexed or actor, got '" + name + "'");
}

// ----------------------------------------------------------------------
Status RunGenerate(const ParsedFlags& flags) {
  DCV_ASSIGN_OR_RETURN(std::string out, flags.GetRequired("out"));
  SnmpTraceOptions options;
  DCV_ASSIGN_OR_RETURN(int64_t sites, flags.GetInt("sites", 10));
  DCV_RETURN_IF_ERROR(ValidateCount(sites, 1, "--sites"));
  DCV_ASSIGN_OR_RETURN(int64_t weeks, flags.GetInt("weeks", 5));
  DCV_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  DCV_ASSIGN_OR_RETURN(int64_t shift_week, flags.GetInt("shift-week", -1));
  options.num_sites = static_cast<int>(sites);
  options.num_weeks = static_cast<int>(weeks);
  options.seed = static_cast<uint64_t>(seed);
  options.shift_week = static_cast<int>(shift_week);
  const std::string format = flags.GetString("format", "csv");
  DCV_ASSIGN_OR_RETURN(Trace trace, GenerateSnmpTrace(options));
  DCV_RETURN_IF_ERROR(WriteTraceAs(trace, out, format, flags));
  std::printf("trace: %s\n", out.c_str());
  std::printf("format: %s\n", format.c_str());
  std::printf("sites: %d\n", trace.num_sites());
  std::printf("epochs: %lld\n", static_cast<long long>(trace.num_epochs()));
  std::printf("epochs-per-week: %lld\n",
              static_cast<long long>(EpochsPerWeek(options)));
  return OkStatus();
}

// ----------------------------------------------------------------------
Status RunConvert(const ParsedFlags& flags) {
  DCV_ASSIGN_OR_RETURN(std::string in, flags.GetRequired("in"));
  DCV_ASSIGN_OR_RETURN(std::string out, flags.GetRequired("out"));
  DCV_ASSIGN_OR_RETURN(TraceFormat in_format, SniffTraceFormat(in));
  const std::string format = flags.GetString(
      "format", in_format == TraceFormat::kBinary ? "csv" : "bin");
  DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(in));
  DCV_RETURN_IF_ERROR(WriteTraceAs(trace, out, format, flags));
  DCV_ASSIGN_OR_RETURN(int64_t in_bytes, FileSize(in));
  DCV_ASSIGN_OR_RETURN(int64_t out_bytes, FileSize(out));
  std::printf("in: %s\n", in.c_str());
  std::printf("in-format: %s\n",
              in_format == TraceFormat::kBinary ? "bin" : "csv");
  std::printf("out: %s\n", out.c_str());
  std::printf("out-format: %s\n", format.c_str());
  std::printf("sites: %d\n", trace.num_sites());
  std::printf("epochs: %lld\n", static_cast<long long>(trace.num_epochs()));
  std::printf("in-bytes: %lld\n", static_cast<long long>(in_bytes));
  std::printf("out-bytes: %lld\n", static_cast<long long>(out_bytes));
  return OkStatus();
}

// ----------------------------------------------------------------------
Result<std::unique_ptr<ThresholdSolver>> MakeSolver(const std::string& name,
                                                    double eps) {
  if (name == "fptas") {
    return std::unique_ptr<ThresholdSolver>(
        std::make_unique<FptasSolver>(eps));
  }
  if (name == "exact-dp") {
    return std::unique_ptr<ThresholdSolver>(std::make_unique<ExactDpSolver>());
  }
  if (name == "equal-value") {
    return std::unique_ptr<ThresholdSolver>(
        std::make_unique<EqualValueSolver>());
  }
  if (name == "equal-tail") {
    return std::unique_ptr<ThresholdSolver>(
        std::make_unique<EqualTailSolver>());
  }
  return InvalidArgumentError("unknown solver '" + name + "'");
}

Status RunPlan(const ParsedFlags& flags) {
  DCV_ASSIGN_OR_RETURN(std::string trace_path, flags.GetRequired("trace"));
  DCV_ASSIGN_OR_RETURN(std::string constraint_text,
                       flags.GetRequired("constraint"));
  DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(trace_path));
  DCV_ASSIGN_OR_RETURN(int64_t train_epochs,
                       flags.GetInt("train-epochs", trace.num_epochs()));
  DCV_ASSIGN_OR_RETURN(double eps, flags.GetDouble("eps", 0.05));
  DCV_ASSIGN_OR_RETURN(int64_t buckets, flags.GetInt("buckets", 100));
  std::string solver_name = flags.GetString("solver", "fptas");
  if (train_epochs < 1 || train_epochs > trace.num_epochs()) {
    return InvalidArgumentError("--train-epochs out of range");
  }
  DCV_ASSIGN_OR_RETURN(Trace training, trace.Slice(0, train_epochs));

  // Resolve constraint variables against the trace's site columns.
  DCV_ASSIGN_OR_RETURN(
      BoolExpr expr,
      ParseConstraintWithVars(constraint_text, trace.site_names()));
  DCV_ASSIGN_OR_RETURN(CnfConstraint cnf, ToCnf(expr));

  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  std::vector<const DistributionModel*> model_ptrs;
  for (int i = 0; i < training.num_sites(); ++i) {
    int64_t m = std::max<int64_t>(1, 4 * training.MaxValue(i));
    DCV_ASSIGN_OR_RETURN(
        EquiDepthHistogram h,
        EquiDepthHistogram::Build(training.SiteSeries(i), m,
                                  static_cast<int>(buckets)));
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(h)));
    model_ptrs.push_back(models.back().get());
  }

  DCV_ASSIGN_OR_RETURN(auto base, MakeSolver(solver_name, eps));
  BooleanThresholdSolver solver(base.get());
  DCV_ASSIGN_OR_RETURN(BooleanSolution solution,
                       solver.Solve(cnf, model_ptrs));

  MonitorPlan plan;
  plan.constraint_text = constraint_text;
  plan.solver_name = solver_name;
  plan.site_names = trace.site_names();
  plan.bounds = solution.bounds;
  // For the common single-SUM-atom case, record the global threshold.
  if (cnf.clauses.size() == 1 && cnf.clauses[0].atoms.size() == 1 &&
      cnf.clauses[0].atoms[0].op == CmpOp::kLe) {
    plan.global_threshold = cnf.clauses[0].atoms[0].threshold;
  }
  DCV_RETURN_IF_ERROR(plan.Validate());

  std::printf("%s", plan.Serialize().c_str());
  std::printf("# P(all local constraints hold) ~= %.4f (training estimate)\n",
              std::exp(solution.log_probability));
  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    DCV_RETURN_IF_ERROR(plan.WriteToFile(out));
    std::printf("# written to %s\n", out.c_str());
  }
  return OkStatus();
}

// ----------------------------------------------------------------------
// Fault-injection flags shared by `simulate` and `run`, mapped onto
// sim/channel.h's FaultSpec. Crash windows are "site:from:to" and
// partitions "from:to", comma-separated.
void DeclareFaultFlags(FlagSet* flags) {
  flags->Value("loss").Value("dup").Value("delay-prob").Value("max-delay")
      .Value("acks").Value("max-attempts").Value("fault-seed")
      .Value("degrade").Value("crash").Value("partition");
}

Result<FaultSpec> ParseFaultFlags(const ParsedFlags& flags) {
  FaultSpec spec;
  DCV_ASSIGN_OR_RETURN(spec.loss, flags.GetDouble("loss", 0.0));
  DCV_ASSIGN_OR_RETURN(spec.duplicate, flags.GetDouble("dup", 0.0));
  DCV_ASSIGN_OR_RETURN(spec.delay, flags.GetDouble("delay-prob", 0.0));
  DCV_ASSIGN_OR_RETURN(int64_t max_delay, flags.GetInt("max-delay", 3));
  spec.max_delay_epochs = static_cast<int>(max_delay);
  DCV_ASSIGN_OR_RETURN(bool acks, flags.GetBoolValue("acks", false));
  spec.retry.enable_acks = acks;
  DCV_ASSIGN_OR_RETURN(int64_t attempts, flags.GetInt("max-attempts", 4));
  spec.retry.max_attempts = static_cast<int>(attempts);
  DCV_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("fault-seed", 0x5eed));
  spec.seed = static_cast<uint64_t>(seed);

  std::string degrade = flags.GetString("degrade", "last-known");
  if (degrade == "last-known") {
    spec.degrade = DegradeMode::kLastKnown;
  } else if (degrade == "assume-breach") {
    spec.degrade = DegradeMode::kAssumeBreach;
  } else {
    return InvalidArgumentError(
        "--degrade must be last-known or assume-breach");
  }

  std::string crash = flags.GetString("crash", "");
  if (!crash.empty()) {
    for (const std::string& item : StrSplit(crash, ',')) {
      std::vector<std::string> parts = StrSplit(item, ':');
      if (parts.size() != 3) {
        return InvalidArgumentError("--crash entries must be site:from:to");
      }
      CrashWindow w;
      DCV_ASSIGN_OR_RETURN(int64_t site, ParseInt64(parts[0]));
      w.site = static_cast<int>(site);
      DCV_ASSIGN_OR_RETURN(w.from, ParseInt64(parts[1]));
      DCV_ASSIGN_OR_RETURN(w.to, ParseInt64(parts[2]));
      spec.crashes.push_back(w);
    }
  }
  std::string partition = flags.GetString("partition", "");
  if (!partition.empty()) {
    for (const std::string& item : StrSplit(partition, ',')) {
      std::vector<std::string> parts = StrSplit(item, ':');
      if (parts.size() != 2) {
        return InvalidArgumentError("--partition entries must be from:to");
      }
      EpochWindow w;
      DCV_ASSIGN_OR_RETURN(w.from, ParseInt64(parts[0]));
      DCV_ASSIGN_OR_RETURN(w.to, ParseInt64(parts[1]));
      spec.partitions.push_back(w);
    }
  }
  return spec;
}

/// Early fault-flag validation, before any thread or socket spins up: bad
/// probabilities, out-of-range --crash site indices, inverted windows, and
/// contradictory combinations all exit 1 with a message naming the flag
/// (the deep Channel::Init checks would catch some of these, but only
/// after the workload is loaded and the fabric is half-built).
Status ValidateFaults(const FaultSpec& spec, int num_sites) {
  auto probability = [](double p, const char* flag) -> Status {
    if (p < 0.0 || p > 1.0) {
      return InvalidArgumentError(std::string(flag) +
                                  " must be a probability in [0, 1], got " +
                                  std::to_string(p));
    }
    return OkStatus();
  };
  DCV_RETURN_IF_ERROR(probability(spec.loss, "--loss"));
  DCV_RETURN_IF_ERROR(probability(spec.duplicate, "--dup"));
  DCV_RETURN_IF_ERROR(probability(spec.delay, "--delay-prob"));
  if (spec.delay > 0.0 && spec.max_delay_epochs < 1) {
    return InvalidArgumentError(
        "--delay-prob > 0 contradicts --max-delay < 1: delayed messages "
        "would have nowhere to go");
  }
  if (spec.retry.enable_acks && spec.retry.max_attempts < 1) {
    return InvalidArgumentError(
        "--acks contradicts --max-attempts < 1: retries are enabled but no "
        "attempt is allowed");
  }
  for (const CrashWindow& w : spec.crashes) {
    if (w.site < 0 || w.site >= num_sites) {
      return InvalidArgumentError(
          "--crash site " + std::to_string(w.site) +
          " is out of range for " + std::to_string(num_sites) + " sites");
    }
    if (w.from < 0 || w.to <= w.from) {
      return InvalidArgumentError(
          "--crash window for site " + std::to_string(w.site) +
          " must satisfy 0 <= from < to, got " + std::to_string(w.from) +
          ":" + std::to_string(w.to));
    }
  }
  for (size_t i = 0; i < spec.crashes.size(); ++i) {
    for (size_t j = i + 1; j < spec.crashes.size(); ++j) {
      const CrashWindow& a = spec.crashes[i];
      const CrashWindow& b = spec.crashes[j];
      if (a.site == b.site && a.from < b.to && b.from < a.to) {
        return InvalidArgumentError(
            "--crash windows for site " + std::to_string(a.site) +
            " overlap (" + std::to_string(a.from) + ":" +
            std::to_string(a.to) + " vs " + std::to_string(b.from) + ":" +
            std::to_string(b.to) + ")");
      }
    }
  }
  for (const EpochWindow& w : spec.partitions) {
    if (w.from < 0 || w.to <= w.from) {
      return InvalidArgumentError(
          "--partition windows must satisfy 0 <= from < to, got " +
          std::to_string(w.from) + ":" + std::to_string(w.to));
    }
  }
  return OkStatus();
}

Status RunSimulate(const ParsedFlags& flags) {
  DCV_ASSIGN_OR_RETURN(std::string trace_path, flags.GetRequired("trace"));
  DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(trace_path));
  DCV_ASSIGN_OR_RETURN(int64_t train_epochs,
                       flags.GetInt("train-epochs", trace.num_epochs() / 2));
  DCV_ASSIGN_OR_RETURN(int64_t threshold, flags.GetInt("threshold", -1));
  DCV_ASSIGN_OR_RETURN(double eps, flags.GetDouble("eps", 0.05));
  DCV_ASSIGN_OR_RETURN(int64_t poll_period, flags.GetInt("poll-period", 5));
  DCV_ASSIGN_OR_RETURN(int64_t levels, flags.GetInt("levels", 4));
  std::string scheme_name = flags.GetString("scheme", "fptas");
  if (train_epochs < 1 || train_epochs >= trace.num_epochs()) {
    return InvalidArgumentError("--train-epochs out of range");
  }
  DCV_ASSIGN_OR_RETURN(Trace training, trace.Slice(0, train_epochs));
  DCV_ASSIGN_OR_RETURN(Trace eval,
                       trace.Slice(train_epochs, trace.num_epochs()));
  if (threshold < 0) {
    // Default: 1% overflow on the evaluation period.
    DCV_ASSIGN_OR_RETURN(threshold,
                         ThresholdForOverflowFraction(eval, {}, 0.01));
  }

  std::unique_ptr<ThresholdSolver> base;
  std::unique_ptr<DetectionScheme> scheme;
  if (scheme_name == "fptas" || scheme_name == "equal-value" ||
      scheme_name == "equal-tail" || scheme_name == "exact-dp" ||
      scheme_name == "local") {
    // "local" is the paper's local-threshold scheme with its default
    // (FPTAS) solver; the solver names select the same scheme with a
    // specific threshold-selection algorithm.
    DCV_ASSIGN_OR_RETURN(
        base, MakeSolver(scheme_name == "local" ? "fptas" : scheme_name, eps));
    LocalThresholdScheme::Options options;
    options.solver = base.get();
    scheme = std::make_unique<LocalThresholdScheme>(options);
  } else if (scheme_name == "geometric") {
    scheme = std::make_unique<GeometricScheme>();
  } else if (scheme_name == "polling") {
    scheme = std::make_unique<PollingScheme>(poll_period);
  } else if (scheme_name == "filters") {
    scheme = std::make_unique<AdaptiveFilterScheme>();
  } else if (scheme_name == "multilevel") {
    DCV_ASSIGN_OR_RETURN(base, MakeSolver("fptas", eps));
    MultiLevelScheme::Options options;
    options.solver = base.get();
    options.num_levels = static_cast<int>(levels);
    scheme = std::make_unique<MultiLevelScheme>(options);
  } else {
    return InvalidArgumentError("unknown scheme '" + scheme_name + "'");
  }

  const std::string metrics_json = flags.GetString("metrics-json", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string trace_format = flags.GetString("trace-format", "jsonl");
  const bool quiet = flags.GetBool("quiet");
  if (trace_format != "jsonl" && trace_format != "chrome") {
    return InvalidArgumentError("--trace-format must be jsonl or chrome");
  }

  SimOptions sim;
  sim.global_threshold = threshold;
  DCV_ASSIGN_OR_RETURN(sim.faults, ParseFaultFlags(flags));

  // Observability is attached only when an export was requested, so plain
  // runs keep the uninstrumented fast path.
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(/*capacity=*/1 << 20);
  if (!metrics_json.empty()) {
    sim.metrics = &registry;
  }
  if (!trace_out.empty()) {
    sim.recorder = &recorder;
  }

  DCV_ASSIGN_OR_RETURN(SimResult result,
                       RunSimulation(scheme.get(), sim, training, eval));

  if (!metrics_json.empty()) {
    DCV_RETURN_IF_ERROR(WriteFile(metrics_json, result.ToJson() + "\n"));
  }
  if (!trace_out.empty()) {
    if (trace_format == "chrome") {
      DCV_RETURN_IF_ERROR(recorder.WriteChromeTrace(trace_out));
    } else {
      DCV_RETURN_IF_ERROR(recorder.WriteJsonl(trace_out));
    }
  }
  if (quiet) {
    return OkStatus();
  }

  std::printf("scheme: %s\n", result.scheme_name.c_str());
  std::printf("threshold: %lld\n", static_cast<long long>(threshold));
  std::printf("epochs: %lld\n", static_cast<long long>(result.epochs));
  std::printf("messages: %lld\n",
              static_cast<long long>(result.messages.total()));
  std::printf("messages-breakdown: %s\n", result.messages.ToString().c_str());
  std::printf("messages-per-epoch: %.3f\n", result.MessagesPerEpoch());
  std::printf("true-violations: %lld\n",
              static_cast<long long>(result.true_violations));
  std::printf("detected: %lld\n",
              static_cast<long long>(result.detected_violations));
  std::printf("missed: %lld\n",
              static_cast<long long>(result.missed_violations));
  std::printf("false-alarm-epochs: %lld\n",
              static_cast<long long>(result.false_alarm_epochs));
  if (sim.faults.any_faults() || sim.faults.retry.enable_acks) {
    std::printf("reliability: %s\n", result.reliability.ToString().c_str());
    std::printf("retransmissions: %lld\n",
                static_cast<long long>(result.reliability.retransmissions));
    std::printf("timed-out-polls: %lld\n",
                static_cast<long long>(result.reliability.timed_out_polls));
    std::printf("degraded-decisions: %lld\n",
                static_cast<long long>(result.reliability.degraded_decisions));
  }
  return OkStatus();
}

// ----------------------------------------------------------------------
// `dcvtool run`: the concurrent coordinator/site runtime.
Status PrintRuntimeResult(const RuntimeResult& result, bool show_reliability,
                          bool show_socket) {
  std::printf("protocol: %s\n", result.protocol.c_str());
  std::printf("mode: %s\n", result.mode.c_str());
  std::printf("sites: %zu\n", result.site_updates.size());
  std::printf("messages: %lld\n",
              static_cast<long long>(result.messages.total()));
  std::printf("messages-breakdown: %s\n", result.messages.ToString().c_str());
  if (result.mode == "virtual") {
    std::printf("epochs: %lld\n", static_cast<long long>(result.epochs));
    std::printf("alarm-epochs: %lld\n",
                static_cast<long long>(result.alarm_epochs));
    std::printf("polled-epochs: %lld\n",
                static_cast<long long>(result.polled_epochs));
    std::printf("true-violations: %lld\n",
                static_cast<long long>(result.true_violations));
    std::printf("detected: %lld\n",
                static_cast<long long>(result.detected_violations));
    std::printf("missed: %lld\n",
                static_cast<long long>(result.missed_violations));
    std::printf("false-alarm-epochs: %lld\n",
                static_cast<long long>(result.false_alarm_epochs));
  } else {
    std::printf("alarms: %lld\n", static_cast<long long>(result.total_alarms));
    std::printf("polls: %lld\n", static_cast<long long>(result.polled_epochs));
    std::printf("violations-flagged: %lld\n",
                static_cast<long long>(result.violations_flagged));
  }
  std::printf("updates: %lld\n", static_cast<long long>(result.total_updates));
  std::printf("elapsed-seconds: %.3f\n", result.elapsed_seconds);
  std::printf("updates-per-second: %.0f\n", result.updates_per_second);
  if (show_reliability) {
    std::printf("reliability: %s\n", result.reliability.ToString().c_str());
  }
  if (show_socket) {
    std::printf("socket: %s\n", result.socket.ToString().c_str());
  }
  return OkStatus();
}

/// Live progress for long free-running runs: prints one "stats: ..." line
/// every interval from the shared registry, on its own thread. RAII so
/// every early-return path in RunRuntime joins it before the registry
/// goes out of scope.
class ScopedStatsPrinter {
 public:
  ScopedStatsPrinter(obs::MetricsRegistry* registry, int interval_ms)
      : registry_(registry), interval_ms_(interval_ms) {
    if (registry_ != nullptr && interval_ms_ > 0) {
      thread_ = std::thread([this] { Loop(); });
    }
  }

  ~ScopedStatsPrinter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                         [this] { return stop_; })) {
      lock.unlock();
      PrintOnce();
      lock.lock();
    }
  }

  void PrintOnce() {
    obs::MetricsSnapshot snap = registry_->Snapshot();
    auto counter = [&snap](const char* name) -> long long {
      auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0
                                       : static_cast<long long>(it->second);
    };
    std::string lag;
    auto hit = snap.histograms.find("runtime/detection_lag_epochs");
    if (hit != snap.histograms.end() && hit->second.count > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " lag-p50=%.1f lag-p99=%.1f",
                    hit->second.Quantile(0.5), hit->second.Quantile(0.99));
      lag = buf;
    }
    std::printf("stats: alarms=%lld polls=%lld frames-rx=%lld%s\n",
                counter("runtime/coordinator/alarms"),
                counter("runtime/coordinator/polls"),
                counter("runtime/socket/frames_rx"), lag.c_str());
    std::fflush(stdout);
  }

  obs::MetricsRegistry* registry_;
  int interval_ms_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

Status RunRuntime(const ParsedFlags& flags) {
  RuntimeOptions options;
  DCV_ASSIGN_OR_RETURN(options.faults, ParseFaultFlags(flags));
  DCV_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
  DCV_RETURN_IF_ERROR(ValidateCount(threads, 0, "--threads"));
  options.num_workers = static_cast<int>(threads);
  DCV_ASSIGN_OR_RETURN(options.engine,
                       ParseEngineKind(flags.GetString("engine",
                                                       "multiplexed")));
  DCV_ASSIGN_OR_RETURN(int64_t shards, flags.GetInt("shards", 1));
  if (shards < 1) {
    return InvalidArgumentError(
        "--shards must be >= 1, got " + std::to_string(shards));
  }
  // An upper bound (shards <= sites) is enforced by the runtime once the
  // site count is known; both paths exit with a clear error.
  options.num_shards = static_cast<int>(shards);
  options.virtual_time = flags.GetBool("virtual-time");

  DCV_ASSIGN_OR_RETURN(options.chaos.kind,
                       ParseChaosKind(flags.GetString("chaos", "none")));
  DCV_ASSIGN_OR_RETURN(int64_t chaos_seed, flags.GetInt("chaos-seed", 1));
  options.chaos.seed = static_cast<uint64_t>(chaos_seed);
  DCV_ASSIGN_OR_RETURN(int64_t heartbeat,
                       flags.GetInt("heartbeat-timeout-ms", 0));
  if (heartbeat < 0) {
    return InvalidArgumentError("--heartbeat-timeout-ms must be >= 0");
  }
  options.heartbeat_timeout_ms = static_cast<int>(heartbeat);
  if (options.chaos.kind == ChaosKind::kKillShard &&
      options.heartbeat_timeout_ms == 0) {
    // Default the detection window instead of failing: a kill-shard run
    // without heartbeats would hang forever, which is never what was asked.
    options.heartbeat_timeout_ms = 1000;
  }
  options.socket.allow_reconnect = flags.GetBool("allow-reconnect");

  const std::string transport_name = flags.GetString("transport", "thread");
  if (transport_name == "socket") {
    options.transport = TransportKind::kSocket;
    DCV_ASSIGN_OR_RETURN(int64_t port, flags.GetInt("listen-port", 0));
    options.listen_port = static_cast<int>(port);
    // The smoke scripts parse this line to learn the ephemeral port, so it
    // must hit the pipe before the (long) accept wait starts.
    options.on_listening = [](int bound_port) {
      std::printf("listening-port: %d\n", bound_port);
      std::fflush(stdout);
    };
  } else if (transport_name != "thread") {
    return InvalidArgumentError(
        "--transport must be thread or socket, got '" + transport_name + "'");
  }
  if (options.chaos.kind == ChaosKind::kKillWorker &&
      options.transport != TransportKind::kSocket) {
    return InvalidArgumentError(
        "--chaos kill-worker needs --transport socket: there is no "
        "connection to sever in-process");
  }
  DCV_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  options.seed = static_cast<uint64_t>(seed);
  DCV_ASSIGN_OR_RETURN(options.synthetic_max,
                       flags.GetInt("synthetic-max", 1'000'000));
  DCV_ASSIGN_OR_RETURN(options.poll_period, flags.GetInt("poll-period", 5));
  DCV_ASSIGN_OR_RETURN(double eps, flags.GetDouble("eps", 0.05));

  const std::string scheme_name = flags.GetString("scheme", "local");
  if (scheme_name == "local") {
    options.protocol = RuntimeProtocol::kLocalThreshold;
  } else if (scheme_name == "polling") {
    options.protocol = RuntimeProtocol::kPolling;
  } else {
    return InvalidArgumentError(
        "run --scheme must be local or polling, got '" + scheme_name + "'");
  }
  DCV_ASSIGN_OR_RETURN(auto solver,
                       MakeSolver(flags.GetString("solver", "fptas"), eps));
  options.solver = solver.get();

  const std::string metrics_json = flags.GetString("metrics-json", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string trace_format = flags.GetString("trace-format", "jsonl");
  if (trace_format != "jsonl" && trace_format != "chrome") {
    return InvalidArgumentError("--trace-format must be jsonl or chrome");
  }
  DCV_ASSIGN_OR_RETURN(int64_t stats_interval,
                       flags.GetInt("stats-interval-ms", 0));
  if (stats_interval < 0) {
    return InvalidArgumentError("--stats-interval-ms must be >= 0");
  }
  const bool quiet = flags.GetBool("quiet");
  const bool conformance = flags.GetBool("conformance");
  const bool show_reliability =
      options.faults.any_faults() || options.faults.retry.enable_acks;

  // Observability is attached only when an export (or live stats) was
  // requested, so plain runs keep the uninstrumented fast path. On socket
  // runs the registry holds the coordinator side; the workers' final
  // telemetry pushes are merged in by the runtime before ToJson.
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(/*capacity=*/1 << 20);
  if (!metrics_json.empty() || stats_interval > 0) {
    options.metrics = &registry;
  }
  if (!trace_out.empty()) {
    options.recorder = &recorder;
  }
  ScopedStatsPrinter stats_printer(options.metrics,
                                   static_cast<int>(stats_interval));
  auto write_outputs = [&](const RuntimeResult& result) -> Status {
    if (!metrics_json.empty()) {
      DCV_RETURN_IF_ERROR(WriteFile(metrics_json, result.ToJson() + "\n"));
    }
    if (!trace_out.empty()) {
      if (trace_format == "chrome") {
        DCV_RETURN_IF_ERROR(recorder.WriteChromeTrace(trace_out));
      } else {
        DCV_RETURN_IF_ERROR(recorder.WriteJsonl(trace_out));
      }
    }
    return OkStatus();
  };

  const std::string trace_path = flags.GetString("trace", "");
  if (trace_path.empty()) {
    // Synthetic workload: per-site (seed, site) streams.
    if (conformance) {
      return InvalidArgumentError("--conformance needs --trace");
    }
    DCV_ASSIGN_OR_RETURN(int64_t sites, flags.GetInt("sites", 4));
    DCV_RETURN_IF_ERROR(ValidateCount(sites, 1, "--sites"));
    DCV_RETURN_IF_ERROR(
        ValidateFaults(options.faults, static_cast<int>(sites)));
    DCV_ASSIGN_OR_RETURN(int64_t updates, flags.GetInt("updates", 100000));
    DCV_RETURN_IF_ERROR(ValidateWorkload(sites, updates));
    DCV_ASSIGN_OR_RETURN(
        int64_t threshold,
        flags.GetInt("threshold",
                     static_cast<int64_t>(sites) * options.synthetic_max));
    options.global_threshold = threshold;
    // Local constraints at ~2% breach rate keep protocol traffic honest
    // without serializing every update on the coordinator.
    if (options.protocol == RuntimeProtocol::kLocalThreshold) {
      options.thresholds.assign(
          static_cast<size_t>(sites),
          options.synthetic_max - options.synthetic_max / 50);
      options.domain_max.assign(static_cast<size_t>(sites),
                                options.synthetic_max);
    }
    DCV_ASSIGN_OR_RETURN(
        RuntimeResult result,
        RunSyntheticRuntime(static_cast<int>(sites), updates, options));
    DCV_RETURN_IF_ERROR(write_outputs(result));
    if (quiet) {
      return OkStatus();
    }
    return PrintRuntimeResult(result, show_reliability,
                              options.transport == TransportKind::kSocket);
  }

  DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(trace_path));
  DCV_ASSIGN_OR_RETURN(int64_t train_epochs,
                       flags.GetInt("train-epochs", trace.num_epochs() / 2));
  if (train_epochs < 1 || train_epochs >= trace.num_epochs()) {
    return InvalidArgumentError("--train-epochs out of range");
  }
  DCV_ASSIGN_OR_RETURN(Trace training, trace.Slice(0, train_epochs));
  DCV_ASSIGN_OR_RETURN(Trace eval,
                       trace.Slice(train_epochs, trace.num_epochs()));
  DCV_RETURN_IF_ERROR(ValidateFaults(options.faults, eval.num_sites()));
  DCV_ASSIGN_OR_RETURN(int64_t threshold, flags.GetInt("threshold", -1));
  if (threshold < 0) {
    DCV_ASSIGN_OR_RETURN(threshold,
                         ThresholdForOverflowFraction(eval, {}, 0.01));
  }
  options.global_threshold = threshold;

  if (conformance) {
    ConformanceSpec spec;
    spec.protocol = options.protocol;
    spec.solver = options.solver;
    spec.poll_period = options.poll_period;
    spec.global_threshold = threshold;
    spec.faults = options.faults;
    spec.num_workers = options.num_workers;
    spec.engine = options.engine;
    spec.num_shards = options.num_shards;
    spec.transport = options.transport;
    spec.chaos = options.chaos;
    spec.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
    DCV_ASSIGN_OR_RETURN(ConformanceReport report,
                         RunConformance(training, eval, spec));
    if (!quiet) {
      std::printf("threshold: %lld\n", static_cast<long long>(threshold));
      std::printf("epochs: %lld\n",
                  static_cast<long long>(report.lockstep.epochs));
      std::printf("lockstep-messages: %lld\n",
                  static_cast<long long>(report.lockstep.messages.total()));
      std::printf("runtime-messages: %lld\n",
                  static_cast<long long>(report.runtime.messages.total()));
      if (report.ran_socket) {
        std::printf("socket-messages: %lld\n",
                    static_cast<long long>(
                        report.socket_runtime.messages.total()));
        std::printf("socket: %s\n",
                    report.socket_runtime.socket.ToString().c_str());
      }
      std::printf("conformance: %s\n",
                  report.identical ? "IDENTICAL" : "MISMATCH");
      if (!report.identical) {
        std::printf("mismatch: %s\n", report.mismatch.c_str());
      }
    }
    if (!report.identical) {
      return InternalError("runtime diverged from the lockstep simulator: " +
                           report.mismatch);
    }
    return OkStatus();
  }

  DCV_ASSIGN_OR_RETURN(RuntimeResult result,
                       RunMonitorRuntime(training, eval, options));
  DCV_RETURN_IF_ERROR(write_outputs(result));
  if (quiet) {
    return OkStatus();
  }
  std::printf("threshold: %lld\n", static_cast<long long>(threshold));
  return PrintRuntimeResult(result, show_reliability,
                            options.transport == TransportKind::kSocket);
}

// ----------------------------------------------------------------------
// `dcvtool site-worker`: the worker-process half of a socket run.
Status RunSiteWorkerCommand(const ParsedFlags& flags) {
  SiteWorkerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  DCV_ASSIGN_OR_RETURN(int64_t port, flags.GetInt("port", 0));
  if (port < 1 || port > 65535) {
    return InvalidArgumentError("site-worker needs --port in [1, 65535]");
  }
  options.port = static_cast<int>(port);
  DCV_ASSIGN_OR_RETURN(int64_t worker, flags.GetInt("worker", 0));
  DCV_ASSIGN_OR_RETURN(int64_t workers, flags.GetInt("workers", 1));
  DCV_RETURN_IF_ERROR(ValidateCount(workers, 1, "--workers"));
  if (worker < 0 || worker >= workers) {
    return InvalidArgumentError(
        "--worker " + std::to_string(worker) + " is out of range for " +
        std::to_string(workers) + " workers (must be in [0, --workers))");
  }
  options.worker = static_cast<int>(worker);
  options.num_workers = static_cast<int>(workers);
  DCV_ASSIGN_OR_RETURN(
      options.engine,
      ParseEngineKind(flags.GetString("engine", "multiplexed")));
  DCV_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  options.seed = static_cast<uint64_t>(seed);
  DCV_ASSIGN_OR_RETURN(options.synthetic_max,
                       flags.GetInt("synthetic-max", 1'000'000));
  DCV_ASSIGN_OR_RETURN(
      int64_t attempts,
      flags.GetInt("connect-attempts", options.socket.connect_attempts));
  options.socket.connect_attempts = static_cast<int>(attempts);
  DCV_ASSIGN_OR_RETURN(
      int64_t connect_timeout,
      flags.GetInt("connect-timeout-ms", options.socket.connect_timeout_ms));
  options.socket.connect_timeout_ms = static_cast<int>(connect_timeout);
  options.socket.allow_reconnect = flags.GetBool("allow-reconnect");
  DCV_ASSIGN_OR_RETURN(
      int64_t reconnect_window,
      flags.GetInt("reconnect-window-ms", options.socket.reconnect_window_ms));
  options.socket.reconnect_window_ms = static_cast<int>(reconnect_window);
  const bool quiet = flags.GetBool("quiet");

  // Workload: the eval slice of a trace (must match the coordinator's
  // --trace/--train-epochs split) or a synthetic per-site stream (must
  // match its --sites/--updates/--seed).
  Trace eval(0);
  bool have_trace = false;
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(trace_path));
    DCV_ASSIGN_OR_RETURN(int64_t train_epochs,
                         flags.GetInt("train-epochs", trace.num_epochs() / 2));
    if (train_epochs < 1 || train_epochs >= trace.num_epochs()) {
      return InvalidArgumentError("--train-epochs out of range");
    }
    DCV_ASSIGN_OR_RETURN(eval, trace.Slice(train_epochs, trace.num_epochs()));
    options.num_sites = eval.num_sites();
    have_trace = true;
  } else {
    DCV_ASSIGN_OR_RETURN(int64_t sites, flags.GetInt("sites", 4));
    DCV_RETURN_IF_ERROR(ValidateCount(sites, 1, "--sites"));
    options.num_sites = static_cast<int>(sites);
    DCV_ASSIGN_OR_RETURN(options.synthetic_updates,
                         flags.GetInt("updates", 100000));
    DCV_RETURN_IF_ERROR(ValidateWorkload(sites, options.synthetic_updates));
  }

  // Always instrument the worker: the per-process registry/recorder is what
  // the periodic + final kTelemetry pushes serialize, and a bare worker
  // would leave an empty hole in the coordinator's merged document. The
  // ring is modest — pushes ship only the freshest events anyway.
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(/*capacity=*/1 << 16);
  options.metrics = &registry;
  options.recorder = &recorder;

  DCV_ASSIGN_OR_RETURN(
      SiteWorkerReport report,
      RunSiteWorker(have_trace ? &eval : nullptr, options));
  if (quiet) {
    return OkStatus();
  }
  std::printf("worker: %d\n", options.worker);
  std::string owned;
  for (size_t i = 0; i < report.sites.size(); ++i) {
    owned += (i > 0 ? "," : "") + std::to_string(report.sites[i]);
  }
  std::printf("sites-owned: %s\n", owned.c_str());
  std::printf("mode: %s\n", report.virtual_time ? "virtual" : "free-running");
  std::printf("updates: %lld\n", static_cast<long long>(report.total_updates));
  std::printf("socket: %s\n", report.socket.ToString().c_str());
  return OkStatus();
}

// ----------------------------------------------------------------------
Status RunCheck(const ParsedFlags& flags) {
  // Replay a trace against a shipped monitor plan: per-epoch local checks
  // plus exact evaluation of the plan's constraint, reporting alarm and
  // violation statistics — what an operator runs before rolling a plan out.
  DCV_ASSIGN_OR_RETURN(std::string plan_path, flags.GetRequired("plan"));
  DCV_ASSIGN_OR_RETURN(std::string trace_path, flags.GetRequired("trace"));
  DCV_ASSIGN_OR_RETURN(MonitorPlan plan, MonitorPlan::ReadFromFile(plan_path));
  DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(trace_path));
  if (trace.site_names() != plan.site_names) {
    return InvalidArgumentError(
        "trace site columns do not match the plan's sites");
  }
  BoolExpr constraint = BoolExpr::Atom(
      AggExpr::Linear(LinearExpr::FromConstant(0)), CmpOp::kLe, 0);
  bool have_constraint = false;
  if (!plan.constraint_text.empty()) {
    DCV_ASSIGN_OR_RETURN(
        constraint,
        ParseConstraintWithVars(plan.constraint_text, plan.site_names));
    have_constraint = true;
  }

  int64_t alarm_epochs = 0;
  int64_t total_alarms = 0;
  int64_t violations = 0;
  int64_t covered = 0;
  for (int64_t t = 0; t < trace.num_epochs(); ++t) {
    const auto& values = trace.epoch(t);
    int alarms = 0;
    for (int i = 0; i < trace.num_sites(); ++i) {
      if (!plan.SiteOk(i, values[static_cast<size_t>(i)])) {
        ++alarms;
      }
    }
    alarm_epochs += alarms > 0 ? 1 : 0;
    total_alarms += alarms;
    if (have_constraint && !constraint.Evaluate(values)) {
      ++violations;
      covered += alarms > 0 ? 1 : 0;
    }
  }
  std::printf("epochs: %lld\n", static_cast<long long>(trace.num_epochs()));
  std::printf("alarm-epochs: %lld\n", static_cast<long long>(alarm_epochs));
  std::printf("total-alarms: %lld\n", static_cast<long long>(total_alarms));
  if (have_constraint) {
    std::printf("constraint-violations: %lld\n",
                static_cast<long long>(violations));
    std::printf("violations-covered-by-alarms: %lld\n",
                static_cast<long long>(covered));
    if (covered != violations) {
      return InternalError(
          "covering property violated on this trace — do not deploy");
    }
    std::printf("covering: OK\n");
  }
  return OkStatus();
}

// ----------------------------------------------------------------------
// Per-command flag declarations: Parse rejects anything not declared here,
// so a typo aborts instead of silently running with a default.
FlagSet GenerateFlags() {
  FlagSet flags;
  flags.Value("out").Value("sites").Value("weeks").Value("seed")
      .Value("shift-week");
  DeclareBinFlags(&flags);
  return flags;
}

FlagSet ConvertFlags() {
  FlagSet flags;
  flags.Value("in").Value("out");
  DeclareBinFlags(&flags);
  return flags;
}

FlagSet PlanFlags() {
  FlagSet flags;
  flags.Value("trace").Value("constraint").Value("train-epochs").Value("eps")
      .Value("buckets").Value("solver").Value("out");
  return flags;
}

FlagSet SimulateFlags() {
  FlagSet flags;
  flags.Value("trace").Value("train-epochs").Value("threshold").Value("eps")
      .Value("poll-period").Value("levels").Value("scheme")
      .Value("metrics-json").Value("trace-out").Value("trace-format");
  flags.Boolean("quiet");
  DeclareFaultFlags(&flags);
  return flags;
}

FlagSet RunFlags() {
  FlagSet flags;
  flags.Value("trace").Value("train-epochs").Value("threshold").Value("eps")
      .Value("scheme").Value("solver").Value("poll-period").Value("threads")
      .Value("shards").Value("sites").Value("updates").Value("seed")
      .Value("synthetic-max").Value("metrics-json").Value("transport")
      .Value("listen-port").Value("chaos").Value("chaos-seed")
      .Value("heartbeat-timeout-ms").Value("trace-out").Value("trace-format")
      .Value("stats-interval-ms").Value("engine");
  flags.Boolean("virtual-time").Boolean("quiet").Boolean("conformance")
      .Boolean("allow-reconnect");
  DeclareFaultFlags(&flags);
  return flags;
}

FlagSet SiteWorkerFlags() {
  FlagSet flags;
  flags.Value("host").Value("port").Value("worker").Value("workers")
      .Value("trace").Value("train-epochs").Value("sites").Value("updates")
      .Value("seed").Value("synthetic-max").Value("connect-attempts")
      .Value("connect-timeout-ms").Value("reconnect-window-ms")
      .Value("engine");
  flags.Boolean("quiet").Boolean("allow-reconnect");
  return flags;
}

FlagSet CheckFlags() {
  FlagSet flags;
  flags.Value("plan").Value("trace");
  return flags;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dcvtool "
               "<generate|convert|plan|simulate|run|site-worker|check> "
               "--flag value ...\nsee the header of tools/dcvtool.cc for "
               "details\n");
  return 2;
}

int Main(int argc, char** argv) {
  // Pin numeric formatting to the C locale so the printed tables (and any
  // %.3f therein) are byte-identical regardless of the caller's LC_ALL.
  std::setlocale(LC_ALL, "C");
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  FlagSet flag_set;
  Status (*handler)(const ParsedFlags&) = nullptr;
  if (command == "generate") {
    flag_set = GenerateFlags();
    handler = RunGenerate;
  } else if (command == "convert") {
    flag_set = ConvertFlags();
    handler = RunConvert;
  } else if (command == "plan") {
    flag_set = PlanFlags();
    handler = RunPlan;
  } else if (command == "simulate") {
    flag_set = SimulateFlags();
    handler = RunSimulate;
  } else if (command == "run") {
    flag_set = RunFlags();
    handler = RunRuntime;
  } else if (command == "site-worker") {
    flag_set = SiteWorkerFlags();
    handler = RunSiteWorkerCommand;
  } else if (command == "check") {
    flag_set = CheckFlags();
    handler = RunCheck;
  } else {
    return Usage();
  }
  auto flags = flag_set.Parse(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return Usage();
  }
  Status status = handler(*flags);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dcv

int main(int argc, char** argv) { return dcv::Main(argc, argv); }
