#!/usr/bin/env python3
"""Validates a `dcvtool simulate --metrics-json` file against the checked-in
schema (tools/metrics_schema.json): the document must be valid JSON and
contain every required key path, and — when the run had a metrics registry
attached — every required registry counter.

Usage: validate_metrics.py <metrics.json> [--schema <schema.json>]

Exit status 0 on success, 1 with a per-failure message otherwise. Stdlib
only, so it runs on any CI image with a Python 3 interpreter.
"""

import argparse
import json
import os
import sys


def lookup(doc, dotted_path):
    """Returns (found, value) for a dot-separated key path."""
    node = doc
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="metrics JSON file to validate")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "metrics_schema.json"),
        help="schema file (default: metrics_schema.json next to this script)")
    args = parser.parse_args()

    try:
        with open(args.schema, encoding="utf-8") as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load schema {args.schema}: {e}")
        return 1

    try:
        with open(args.metrics, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load metrics {args.metrics}: {e}")
        return 1

    failures = []
    for path in schema.get("required", []):
        found, _ = lookup(doc, path)
        if not found:
            failures.append(f"missing required key: {path}")

    found, counters = lookup(doc, "metrics.counters")
    if found and isinstance(counters, dict) and counters:
        for name in schema.get("required_counters", []):
            if name not in counters:
                failures.append(f"missing required counter: {name}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: {args.metrics} matches {os.path.basename(args.schema)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
