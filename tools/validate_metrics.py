#!/usr/bin/env python3
"""Validates a `dcvtool --metrics-json` file against the checked-in schema
(tools/metrics_schema.json). Two document shapes are understood:

  * simulate documents (SimResult::ToJson, top-level "scheme" key): the
    schema's "required" key paths and "required_counters".
  * runtime documents (RuntimeResult::ToJson, top-level "protocol" key) —
    including the merged cross-process telemetry document a socket-transport
    coordinator writes: "runtime_required" key paths,
    "runtime_required_counters", the "runtime_socket_counters" namespace
    (enforced only when the run actually used the socket transport), and
    the detection-lag histogram with its p50/p95/p99 quantile keys.

Usage: validate_metrics.py <metrics.json> [--schema <schema.json>]

Exit status 0 on success, 1 with a per-failure message otherwise. Stdlib
only, so it runs on any CI image with a Python 3 interpreter.
"""

import argparse
import json
import os
import sys


def lookup(doc, dotted_path):
    """Returns (found, value) for a dot-separated key path."""
    node = doc
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def check_counters(doc, names, failures):
    found, counters = lookup(doc, "metrics.counters")
    if not (found and isinstance(counters, dict) and counters):
        return
    for name in names:
        if name not in counters:
            failures.append(f"missing required counter: {name}")


def check_histograms(doc, schema, failures):
    found, histograms = lookup(doc, "metrics.histograms")
    if not (found and isinstance(histograms, dict)):
        return
    for name in schema.get("runtime_required_histograms", []):
        if name not in histograms:
            failures.append(f"missing required histogram: {name}")
            continue
        for key in schema.get("histogram_required_keys", []):
            if key not in histograms[name]:
                failures.append(f"histogram {name} missing key: {key}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="metrics JSON file to validate")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "metrics_schema.json"),
        help="schema file (default: metrics_schema.json next to this script)")
    args = parser.parse_args()

    try:
        with open(args.schema, encoding="utf-8") as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load schema {args.schema}: {e}")
        return 1

    try:
        with open(args.metrics, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load metrics {args.metrics}: {e}")
        return 1

    is_runtime = isinstance(doc, dict) and "protocol" in doc
    kind = "runtime" if is_runtime else "simulate"

    failures = []
    required = schema.get("runtime_required" if is_runtime else "required", [])
    for path in required:
        found, _ = lookup(doc, path)
        if not found:
            failures.append(f"missing required key: {path}")

    if is_runtime:
        check_counters(doc, schema.get("runtime_required_counters", []),
                       failures)
        # The wire namespace only exists when frames actually flowed; a
        # thread-transport runtime document legitimately omits it.
        _, frames = lookup(doc, "socket.frames_sent")
        if isinstance(frames, (int, float)) and frames > 0:
            check_counters(doc, schema.get("runtime_socket_counters", []),
                           failures)
        check_histograms(doc, schema, failures)
    else:
        check_counters(doc, schema.get("required_counters", []), failures)

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: {args.metrics} matches {os.path.basename(args.schema)} "
          f"({kind} document)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
