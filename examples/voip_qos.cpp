// VoIP QoS monitoring — the paper's third motivating application (§1):
// "for a Voice over IP call, QoS can be ensured using a global constraint
// that specifies that the sum of link delays observed at routers along the
// call path is at most 200 msec."
//
// A call can be routed over either of two paths sharing some links. QoS
// holds as long as at least one path is usable; calls also need both edge
// links healthy. That is a boolean constraint with MIN and SUM — parsed
// from text, normalized into CNF (§5.1), and compiled into per-router
// local delay bounds by the boolean threshold solver (§5.4).

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "constraints/normalize.h"
#include "constraints/parser.h"
#include "histogram/equi_depth.h"
#include "threshold/boolean_solver.h"
#include "threshold/fptas.h"

int main() {
  using namespace dcv;

  // Links: ingress, a, b (path 1), c, d (path 2), egress. Delays in msec.
  const std::vector<std::string> links = {"ingress", "a", "b",
                                          "c",       "d", "egress"};
  // QoS constraint:
  //   * the better of the two paths must meet the 200 ms budget, and
  //   * each edge link must stay below 60 ms on its own.
  const std::string constraint_text =
      "MIN{ingress + a + b + egress, ingress + c + d + egress} <= 200 "
      "&& ingress <= 60 && egress <= 60";
  auto parsed = ParseConstraintWithVars(constraint_text, links);
  DCV_CHECK(parsed.ok()) << parsed.status();
  auto cnf = ToCnf(*parsed);
  DCV_CHECK(cnf.ok()) << cnf.status();
  std::printf("Global QoS constraint:\n  %s\n\nCNF after MIN/MAX "
              "elimination (%zu clauses):\n  %s\n\n",
              constraint_text.c_str(), cnf->clauses.size(),
              cnf->ToString(&links).c_str());

  // Historical per-link delay distributions (one week of measurements):
  // core links are fast and stable; path-2 links are slower; the edges sit
  // in between.
  Rng rng(5);
  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  std::vector<const DistributionModel*> model_ptrs;
  const double medians[] = {15, 20, 25, 45, 50, 12};
  for (size_t i = 0; i < links.size(); ++i) {
    std::vector<int64_t> delays;
    for (int k = 0; k < 2000; ++k) {
      delays.push_back(static_cast<int64_t>(
          rng.LogNormal(std::log(medians[i]), 0.35)));
    }
    auto h = EquiDepthHistogram::Build(delays, /*domain_max=*/1000, 100);
    DCV_CHECK(h.ok());
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(*h)));
    model_ptrs.push_back(models.back().get());
  }

  FptasSolver base(0.05);
  BooleanThresholdSolver solver(&base);
  auto solution = solver.Solve(*cnf, model_ptrs);
  DCV_CHECK(solution.ok()) << solution.status();

  std::printf("Per-router local delay bounds (alarm when exceeded):\n");
  for (size_t i = 0; i < links.size(); ++i) {
    std::printf("  %-8s delay <= %3lld ms\n", links[i].c_str(),
                static_cast<long long>(solution->bounds[i].hi));
  }
  std::printf(
      "\nEstimated probability all local bounds hold in a given interval: "
      "%.3f\n",
      std::exp(solution->log_probability));

  // Demonstrate the covering property on random delay vectors drawn inside
  // the bounds: the QoS constraint must hold on every one of them.
  Rng probe(6);
  for (int trial = 0; trial < 100000; ++trial) {
    std::vector<int64_t> delays(links.size());
    for (size_t i = 0; i < links.size(); ++i) {
      delays[i] = probe.UniformInt(solution->bounds[i].lo,
                                   solution->bounds[i].hi);
    }
    DCV_CHECK(parsed->Evaluate(delays))
        << "covering violated — this must never print";
  }
  std::printf(
      "\nVerified on 100000 sampled delay vectors inside the bounds: the "
      "QoS\nconstraint held on every one — as long as no router alarms, no "
      "call can\nbe out of budget, with zero monitoring traffic.\n");
  return 0;
}
