// Inside one monitored site: maintaining the distribution estimate the
// coordinator needs, without storing raw observations (§3.2's streaming
// machinery end to end).
//
//  * A Greenwald-Khanna sketch summarizes the full history in sublinear
//    space; a SlidingWindowHistogram tracks only the recent window.
//  * A KS change detector watches the stream; when the distribution
//    shifts, the site rebuilds its histogram *from the sliding sketch* —
//    no raw data was ever kept — and the coordinator re-runs the FPTAS.
//
// The printout compares the local thresholds computed from the exact data
// against those computed from the sketches, before and after a shift.

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "histogram/change_detector.h"
#include "histogram/equi_depth.h"
#include "histogram/gk_sketch.h"
#include "histogram/sliding_histogram.h"
#include "threshold/fptas.h"

namespace {

using namespace dcv;

constexpr int kSites = 6;
constexpr int64_t kDomainMax = 4'000'000;

int64_t Draw(Rng& rng, double scale) {
  return static_cast<int64_t>(scale * rng.LogNormal(11.0, 0.8));
}

std::vector<int64_t> SolveThresholds(
    const std::vector<const DistributionModel*>& models, int64_t budget) {
  ThresholdProblem problem;
  problem.budget = budget;
  for (int i = 0; i < kSites; ++i) {
    problem.vars.push_back(
        ProblemVar{i, 1, CdfView(models[static_cast<size_t>(i)], false)});
  }
  FptasSolver solver(0.05);
  auto solution = solver.Solve(problem);
  DCV_CHECK(solution.ok()) << solution.status();
  return solution->thresholds;
}

void PrintThresholds(const char* label, const std::vector<int64_t>& t) {
  std::printf("%-26s", label);
  for (int64_t v : t) {
    std::printf(" %9lld", static_cast<long long>(v));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2026);
  std::vector<double> scales(kSites);
  for (auto& s : scales) {
    s = rng.LogNormal(0.0, 0.6);
  }

  // Streaming state per site: raw history kept ONLY to show the sketches
  // match it; a real site would hold just the three summaries.
  std::vector<std::vector<int64_t>> raw(kSites);
  std::vector<GkSketch> lifetime;
  std::vector<SlidingWindowHistogram> window;
  std::vector<ChangeDetector> detectors;
  for (int i = 0; i < kSites; ++i) {
    lifetime.emplace_back(0.01);
    auto w = SlidingWindowHistogram::Create(2000, 0.02);
    DCV_CHECK(w.ok());
    window.push_back(std::move(*w));
    ChangeDetector::Options d;
    d.window_size = 500;
    d.alpha = 1e-8;
    d.cooldown = 1000;
    detectors.emplace_back(d);
  }

  auto feed = [&](int64_t epochs, double shift) {
    for (int64_t t = 0; t < epochs; ++t) {
      for (int i = 0; i < kSites; ++i) {
        size_t si = static_cast<size_t>(i);
        int64_t v = Draw(rng, scales[si] * shift);
        raw[si].push_back(v);
        lifetime[si].Insert(v);
        window[si].Insert(v);
        detectors[si].Observe(v);
      }
    }
  };

  // --- Phase 1: stationary traffic. -------------------------------------
  feed(4000, 1.0);
  for (int i = 0; i < kSites; ++i) {
    detectors[static_cast<size_t>(i)].Reset(raw[static_cast<size_t>(i)]);
  }

  const int64_t budget = 6'000'000;
  std::printf("Thresholds for sum <= %lld over %d sites (per-site "
              "columns):\n\n", static_cast<long long>(budget), kSites);

  std::vector<std::unique_ptr<DistributionModel>> exact_models;
  std::vector<const DistributionModel*> exact_ptrs;
  std::vector<std::unique_ptr<DistributionModel>> sketch_models;
  std::vector<const DistributionModel*> sketch_ptrs;
  for (int i = 0; i < kSites; ++i) {
    size_t si = static_cast<size_t>(i);
    auto exact = EquiDepthHistogram::Build(raw[si], kDomainMax, 100);
    DCV_CHECK(exact.ok());
    exact_models.push_back(
        std::make_unique<EquiDepthHistogram>(std::move(*exact)));
    exact_ptrs.push_back(exact_models.back().get());
    auto sk = lifetime[si].ToEquiDepthHistogram(100, kDomainMax);
    DCV_CHECK(sk.ok());
    sketch_models.push_back(
        std::make_unique<EquiDepthHistogram>(std::move(*sk)));
    sketch_ptrs.push_back(sketch_models.back().get());
  }
  auto exact_t = SolveThresholds(exact_ptrs, budget);
  auto sketch_t = SolveThresholds(sketch_ptrs, budget);
  PrintThresholds("from raw history:", exact_t);
  PrintThresholds("from GK sketches:", sketch_t);
  size_t tuples = 0;
  size_t raw_count = 0;
  for (int i = 0; i < kSites; ++i) {
    tuples += lifetime[static_cast<size_t>(i)].num_tuples();
    raw_count += raw[static_cast<size_t>(i)].size();
  }
  std::printf("\nsketch state: %zu tuples total vs %zu raw observations "
              "(%.1fx smaller)\n\n",
              tuples, raw_count,
              static_cast<double>(raw_count) / static_cast<double>(tuples));

  // --- Phase 2: the workload shifts; detectors notice; thresholds are ---
  // --- recomputed from the *windowed* sketch (recent data only).      ---
  std::printf("Injecting a 2.2x load shift at sites 0-2...\n");
  for (int i = 0; i < 3; ++i) {
    scales[static_cast<size_t>(i)] *= 2.2;
  }
  int64_t alarms_before = 0;
  for (int i = 0; i < kSites; ++i) {
    alarms_before += detectors[static_cast<size_t>(i)].num_alarms();
  }
  feed(3000, 1.0);
  int changed = 0;
  for (int i = 0; i < kSites; ++i) {
    if (detectors[static_cast<size_t>(i)].num_alarms() > 0) {
      ++changed;
    }
  }
  std::printf("change detectors fired at %d/%d sites (expected: the 3 "
              "shifted ones)\n\n", changed, kSites);

  std::vector<std::unique_ptr<DistributionModel>> fresh_models;
  std::vector<const DistributionModel*> fresh_ptrs;
  for (int i = 0; i < kSites; ++i) {
    auto hw = window[static_cast<size_t>(i)].ToEquiDepthHistogram(
        100, kDomainMax);
    DCV_CHECK(hw.ok());
    fresh_models.push_back(
        std::make_unique<EquiDepthHistogram>(std::move(*hw)));
    fresh_ptrs.push_back(fresh_models.back().get());
  }
  auto fresh_t = SolveThresholds(fresh_ptrs, budget);
  PrintThresholds("stale (pre-shift):", exact_t);
  PrintThresholds("from sliding window:", fresh_t);
  std::printf(
      "\nThe windowed sketch shifted budget toward the now-hotter sites "
      "0-2\nwithout the site ever storing a single raw observation.\n");
  return 0;
}
