// Environmental sensor monitoring — the paper's sensor-network motivation
// (§1): "collecting every individual reading ... may also be unnecessary;
// only extreme sensor readings that are either too low or too high may be
// of interest."
//
// Eight temperature sensors (tenths of °C). Normal operation means every
// reading stays inside a band: MIN over sensors >= 50 (5.0°C — freeze
// alert) and MAX over sensors <= 320 (32.0°C — overheat alert). This is a
// boolean constraint whose normalization produces *two-sided* local bounds
// (the MIN >= floor part becomes mirrored lower-bound constraints). The
// full pipeline — parse, normalize, solve, simulate — runs through
// BooleanLocalScheme, and the runner scores detections against the exact
// boolean constraint.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "constraints/parser.h"
#include "sim/boolean_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/trace.h"

namespace {

using namespace dcv;

constexpr int kSensors = 8;

// A day/night temperature cycle per sensor plus noise; a few cold snaps
// and heat spikes are injected into the live period.
Trace MakeTrace(int64_t epochs, bool live, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> site_offset(kSensors);
  for (auto& o : site_offset) {
    o = rng.Normal(0.0, 15.0);  // Sensor placement differences.
  }
  Trace trace(kSensors);
  for (int64_t t = 0; t < epochs; ++t) {
    double hour = static_cast<double>(t % 288) * 24.0 / 288.0;
    double base = 180.0 + 60.0 * std::sin((hour - 9.0) * M_PI / 12.0);
    std::vector<int64_t> row(kSensors);
    bool cold_snap = live && t >= 400 && t < 430;
    bool heat_spike = live && t >= 900 && t < 915;
    for (int i = 0; i < kSensors; ++i) {
      double v = base + site_offset[static_cast<size_t>(i)] +
                 rng.Normal(0.0, 8.0);
      if (cold_snap && i < 2) {
        v -= 165.0;  // Two exposed sensors drop near freezing.
      }
      if (heat_spike && i == 5) {
        v += 240.0;  // One sensor overheats.
      }
      row[static_cast<size_t>(i)] =
          std::max<int64_t>(0, static_cast<int64_t>(std::llround(v)));
    }
    DCV_CHECK(trace.AppendEpoch(std::move(row)).ok());
  }
  return trace;
}

}  // namespace

int main() {
  Trace training = MakeTrace(288 * 5, false, 71);
  Trace live = MakeTrace(288 * 5, true, 72);

  std::string text = "MIN{";
  for (int i = 0; i < kSensors; ++i) {
    text += (i ? ", " : "") + training.site_names()[static_cast<size_t>(i)];
  }
  std::string sensors_list = text.substr(4);
  text += "} >= 50 && MAX{" + sensors_list + "} <= 320";

  auto constraint = ParseConstraintWithVars(text, training.site_names());
  DCV_CHECK(constraint.ok()) << constraint.status();
  std::printf("Global constraint (all readings in band):\n  %s\n\n",
              text.c_str());

  FptasSolver solver(0.05);
  BooleanLocalScheme::Options options;
  options.solver = &solver;
  BooleanLocalScheme scheme(*constraint, options);

  SimOptions sim;
  BoolExpr expr = *constraint;
  sim.is_violation = [expr](const std::vector<int64_t>& values) {
    return !expr.Evaluate(values);
  };
  auto result = RunSimulation(&scheme, sim, training, live);
  DCV_CHECK(result.ok()) << result.status();

  std::printf("Per-sensor local bands (alarm outside):\n");
  for (int i = 0; i < kSensors; ++i) {
    const SiteBounds& b = scheme.bounds()[static_cast<size_t>(i)];
    std::printf("  sensor%-2d in [%3lld, %3lld]  (%4.1f - %4.1f degC)\n", i,
                static_cast<long long>(b.lo), static_cast<long long>(b.hi),
                static_cast<double>(b.lo) / 10.0,
                static_cast<double>(b.hi) / 10.0);
  }
  std::printf("\nLive period (%lld epochs, one cold snap + one heat "
              "spike):\n",
              static_cast<long long>(live.num_epochs()));
  std::printf("  band violations: %lld, detected: %lld, missed: %lld\n",
              static_cast<long long>(result->true_violations),
              static_cast<long long>(result->detected_violations),
              static_cast<long long>(result->missed_violations));
  std::printf("  messages: %lld (%s)\n",
              static_cast<long long>(result->messages.total()),
              result->messages.ToString().c_str());
  std::printf("  vs collecting every reading: %lld messages\n",
              static_cast<long long>(live.num_epochs() * kSensors));
  DCV_CHECK(result->missed_violations == 0);
  std::printf(
      "\nEvery extreme event was caught from local band checks alone; "
      "normal readings\nnever left the sensors.\n");
  return 0;
}
