// DDoS detection at the network edge — the paper's first motivating
// application (§1): "the total TCP SYN packet rate for a destination
// observed across the network's edge routers does not exceed a specified
// limit."
//
// 20 edge routers each observe a per-destination SYN rate. Normal traffic
// is low and bursty; a simulated attack ramps SYN floods across a subset of
// routers for one hour. We compare the local-threshold scheme against
// periodic polling: both the message bill and the detection latency.

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "sim/local_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/trace.h"

namespace {

using namespace dcv;

constexpr int kRouters = 20;
constexpr int64_t kEpochsPerHour = 60;  // One observation per minute.
constexpr int64_t kTrainHours = 48;
constexpr int64_t kLiveHours = 48;
constexpr int64_t kAttackStart = 30 * kEpochsPerHour;  // Hour 30 of live.
constexpr int64_t kAttackLength = kEpochsPerHour;

// SYN packets/sec seen at one router in one epoch.
int64_t NormalSynRate(Rng& rng, double scale) {
  return static_cast<int64_t>(scale * rng.LogNormal(3.0, 0.7));
}

Trace MakeTrace(int64_t epochs, bool with_attack, uint64_t seed,
                const std::vector<double>& router_scale) {
  Rng rng(seed);
  Trace trace(kRouters);
  for (int64_t t = 0; t < epochs; ++t) {
    std::vector<int64_t> rates(kRouters);
    bool attacking =
        with_attack && t >= kAttackStart && t < kAttackStart + kAttackLength;
    for (int i = 0; i < kRouters; ++i) {
      rates[static_cast<size_t>(i)] =
          NormalSynRate(rng, router_scale[static_cast<size_t>(i)]);
      // The botnet floods through a third of the edge; per-router the surge
      // is only ~4x its normal rate, so single-router anomaly detection is
      // unreliable — the *sum* is the signal.
      if (attacking && i % 3 == 0) {
        rates[static_cast<size_t>(i)] +=
            static_cast<int64_t>(250.0 * rng.LogNormal(1.0, 0.3));
      }
    }
    DCV_CHECK(trace.AppendEpoch(std::move(rates)).ok());
  }
  return trace;
}

}  // namespace

int main() {
  // Per-router ingress volumes are a property of the deployment, shared by
  // the training and live periods.
  Rng scale_rng(10);
  std::vector<double> router_scale(kRouters);
  for (auto& s : router_scale) {
    s = scale_rng.LogNormal(0.0, 0.8);  // Heterogeneous ingress volumes.
  }
  Trace training =
      MakeTrace(kTrainHours * kEpochsPerHour, false, 11, router_scale);
  Trace live = MakeTrace(kLiveHours * kEpochsPerHour, true, 12, router_scale);

  // Alarm when the network-wide SYN rate exceeds 3x the training p99.
  std::vector<int64_t> sums;
  for (int64_t t = 0; t < training.num_epochs(); ++t) {
    sums.push_back(training.WeightedSum(t, {}));
  }
  std::vector<double> sums_d(sums.begin(), sums.end());
  int64_t limit = static_cast<int64_t>(3.0 * Quantile(sums_d, 0.99));
  std::printf("Global constraint: network-wide SYN rate <= %lld pkts/s\n",
              static_cast<long long>(limit));

  SimOptions sim;
  sim.global_threshold = limit;

  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;
  LocalThresholdScheme local(options);
  auto local_result = RunSimulation(&local, sim, training, live);
  DCV_CHECK(local_result.ok()) << local_result.status();

  PollingScheme poll_1m(1);
  auto poll_result = RunSimulation(&poll_1m, sim, training, live);
  DCV_CHECK(poll_result.ok());
  PollingScheme poll_15m(15);
  auto poll15_result = RunSimulation(&poll_15m, sim, training, live);
  DCV_CHECK(poll15_result.ok());

  std::printf("\nAttack window: epochs %lld-%lld (%lld true violation "
              "epochs in the live trace)\n",
              static_cast<long long>(kAttackStart),
              static_cast<long long>(kAttackStart + kAttackLength - 1),
              static_cast<long long>(local_result->true_violations));
  std::printf("\n%-28s %14s %10s %10s\n", "scheme", "messages", "detected",
              "missed");
  auto row = [](const char* name, const SimResult& r) {
    std::printf("%-28s %14lld %10lld %10lld\n", name,
                static_cast<long long>(r.messages.total()),
                static_cast<long long>(r.detected_violations),
                static_cast<long long>(r.missed_violations));
  };
  row("local thresholds (FPTAS)", *local_result);
  row("polling every minute", *poll_result);
  row("polling every 15 minutes", *poll15_result);

  std::printf(
      "\nThe local-threshold monitor is silent during normal operation and "
      "still\ncatches every attack epoch; per-minute polling pays %lldx the "
      "messages for\nthe same guarantee, and sparse polling misses attack "
      "epochs outright.\n",
      static_cast<long long>(
          poll_result->messages.total() /
          std::max<int64_t>(1, local_result->messages.total())));
  DCV_CHECK(local_result->missed_violations == 0);
  return 0;
}
