// Enterprise uplink monitoring — the paper's second motivating application
// (§1): "for an Enterprise that is connected to the Internet via multiple
// links, if the cumulative traffic on the links exceeds a threshold, then
// this could be used to trigger actions like activating backup links."
//
// Four WAN links carry diurnal office traffic. Midway through the
// simulation the organization onboards a new office and two links see a
// persistent load increase: the per-site KS change detectors notice, the
// histograms are rebuilt, and the local thresholds are recomputed — no
// operator involved.

#include <cstdio>

#include "common/logging.h"
#include "sim/local_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

int main() {
  using namespace dcv;

  SnmpTraceOptions workload;
  workload.num_sites = 4;          // Four uplinks.
  workload.num_weeks = 4;          // Week 0 trains; 3 live weeks.
  workload.seed = 99;
  workload.base_median = 5.0e6;    // ~5 MB per 5-minute interval.
  workload.bimodal_fraction = 0.0; // Links aggregate many users: unimodal.
  workload.shift_week = 2;         // New office comes online in week 2.
  workload.shift_factor = 1.9;
  workload.shift_site_fraction = 0.5;
  auto trace = GenerateSnmpTrace(workload);
  DCV_CHECK(trace.ok()) << trace.status();
  const int64_t week = EpochsPerWeek(workload);
  Trace training = *trace->Slice(0, week);
  Trace live = *trace->Slice(week, 4 * week);

  auto capacity = ThresholdForOverflowFraction(live, {}, 0.005);
  DCV_CHECK(capacity.ok());
  std::printf("Contract: cumulative uplink traffic <= %lld bytes per "
              "5-minute interval\n(backup capacity is requested beyond "
              "that)\n\n",
              static_cast<long long>(*capacity));

  FptasSolver solver(0.05);
  auto run = [&](bool adaptive) {
    LocalThresholdScheme::Options options;
    options.solver = &solver;
    options.change_detection = adaptive;
    options.change_options.window_size = 574;  // Two whole days.
    options.change_options.alpha = 1e-10;
    options.change_options.cooldown = 1435;
    LocalThresholdScheme scheme(options);
    SimOptions sim;
    sim.global_threshold = *capacity;
    auto segments =
        RunSimulationSegments(&scheme, sim, training, live, week);
    DCV_CHECK(segments.ok()) << segments.status();
    std::printf("%s thresholds:\n", adaptive ? "Self-adapting" : "Static");
    for (size_t wk = 0; wk < segments->size(); ++wk) {
      const SimResult& s = (*segments)[wk];
      DCV_CHECK(s.missed_violations == 0);
      std::printf(
          "  week %zu: %6lld messages, %4lld capacity breaches "
          "(all detected)\n",
          wk + 1, static_cast<long long>(s.messages.total()),
          static_cast<long long>(s.true_violations));
    }
    if (adaptive) {
      std::printf("  change-detection recomputations: %lld\n",
                  static_cast<long long>(scheme.num_recomputes()));
    }
    std::printf("\n");
  };

  run(false);
  run(true);

  std::printf(
      "Week 1 is identical (no shift yet). After the week-2 load increase, "
      "the\nstatic monitor keeps alarming on traffic that is now normal, "
      "while the\nadaptive monitor rebuilds its histograms once and quiets "
      "back down —\nexactly the §3.2 recomputation loop the paper "
      "describes.\n");
  return 0;
}
