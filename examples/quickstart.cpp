// Quickstart: the full dcv workflow in ~80 lines.
//
//  1. Parse a global constraint over distributed site variables.
//  2. Build per-site distribution models from historical observations.
//  3. Select local thresholds with the FPTAS so that
//     (all local constraints hold) => (global constraint holds).
//  4. Replay live traffic through the monitoring simulator and count
//     messages — silence while the system is healthy, guaranteed detection
//     when it is not.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "sim/local_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

int main() {
  using namespace dcv;

  // --- Workload: 5 sites reporting a value every 5 minutes. ------------
  SnmpTraceOptions workload;
  workload.num_sites = 5;
  workload.num_weeks = 2;  // Week 0 trains, week 1 is "live".
  workload.seed = 7;
  auto trace = GenerateSnmpTrace(workload);
  DCV_CHECK(trace.ok()) << trace.status();
  const int64_t week = EpochsPerWeek(workload);
  Trace training = *trace->Slice(0, week);
  Trace live = *trace->Slice(week, 2 * week);

  // --- Global constraint: total traffic below T. ------------------------
  // Pick T so that roughly 1% of live epochs violate it (for the demo).
  auto threshold = ThresholdForOverflowFraction(live, {}, 0.01);
  DCV_CHECK(threshold.ok());
  std::printf("Global constraint:  sum of %d site variables <= %lld\n",
              live.num_sites(), static_cast<long long>(*threshold));

  // --- Local thresholds via the FPTAS (eps = 0.05). ---------------------
  FptasSolver solver(0.05);
  LocalThresholdScheme::Options options;
  options.solver = &solver;        // The paper's contribution.
  options.histogram_buckets = 100; // Equi-depth histograms, as in §6.4.
  LocalThresholdScheme scheme(options);

  SimOptions sim;
  sim.global_threshold = *threshold;
  auto result = RunSimulation(&scheme, sim, training, live);
  DCV_CHECK(result.ok()) << result.status();

  std::printf("Local thresholds chosen from training histograms:\n");
  for (size_t i = 0; i < scheme.thresholds().size(); ++i) {
    std::printf("  site %zu: alarm if X > %lld\n", i,
                static_cast<long long>(scheme.thresholds()[i]));
  }

  // --- What happened during the live week. ------------------------------
  std::printf("\nLive week (%lld five-minute epochs):\n",
              static_cast<long long>(live.num_epochs()));
  std::printf("  true violations of the global constraint : %lld\n",
              static_cast<long long>(result->true_violations));
  std::printf("  detected (covering guarantees all)       : %lld\n",
              static_cast<long long>(result->detected_violations));
  std::printf("  missed                                   : %lld\n",
              static_cast<long long>(result->missed_violations));
  std::printf("  epochs with any message traffic          : %lld\n",
              static_cast<long long>(result->alarm_epochs));
  std::printf("  total messages (%s)\n",
              result->messages.ToString().c_str());
  std::printf("  vs naive per-epoch polling               : %lld messages\n",
              static_cast<long long>(2 * live.num_epochs() *
                                     live.num_sites()));
  DCV_CHECK(result->missed_violations == 0);
  std::printf("\nNo violation went undetected, at a fraction of polling's "
              "cost.\n");
  return 0;
}
