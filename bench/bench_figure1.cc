// Reproduces Figure 1 of the paper: number of messages exchanged due to
// local threshold violations, per evaluation week, as the global threshold
// T is varied — for the FPTAS, Equal-Value, Equal-Tail and Geometric
// schemes.
//
// Setup mirrors §6: 10 sites (access points), one training week of 1435
// five-minute observations used to build 100-bucket equi-depth histograms
// and set local thresholds (FPTAS eps = 0.05), then four evaluation weeks.
// The synthetic SNMP workload substitutes for the Dartmouth trace (see
// DESIGN.md); it injects one distribution shift during evaluation week 2 so
// that — as in the paper — change detection triggers a threshold
// recomputation for the distribution-aware schemes.
//
// The x-axis of the paper's figure is the fraction of observations whose
// sum exceeds T; each table row below is one x-position.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "sim/geometric_scheme.h"
#include "sim/local_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

namespace dcv {
namespace {

constexpr int kNumSites = 10;
constexpr int kEvalWeeks = 4;
constexpr int kNumSchemes = 4;  // FPTAS, Equal-Value, Equal-Tail, Geometric.

const char* kSchemeNames[kNumSchemes] = {"FPTAS", "Equal-Value", "Equal-Tail",
                                         "Geometric"};

struct SweepPoint {
  double fraction;
  int64_t threshold;
  // messages[scheme][week].
  int64_t messages[kNumSchemes][kEvalWeeks];
};

// `metrics_out`: optional path for a BENCH_figure1.json-style metrics dump;
// null runs uninstrumented (the timing baseline the A/B overhead check
// compares against).
int Main(const char* metrics_out) {
  SnmpTraceOptions trace_options;
  trace_options.num_sites = kNumSites;
  trace_options.num_weeks = 1 + kEvalWeeks;
  trace_options.seed = 20031117;  // Nov 17, 2003 — the paper's first week.
  trace_options.shift_week = 2;   // One shift during evaluation (paper: one
                                  // recomputation, week of Nov 24-28).
  trace_options.shift_factor = 1.6;
  trace_options.shift_site_fraction = 0.3;
  // Dartmouth APs differ wildly in both load and burstiness: a few busy
  // access points plus many near-idle ones with heavy-tailed bursts.
  trace_options.site_scale_sigma = 1.3;
  trace_options.shape_spread = 0.8;
  trace_options.spike_shape = 1.2;
  trace_options.spike_prob = 0.01;
  auto trace = GenerateSnmpTrace(trace_options);
  DCV_CHECK(trace.ok()) << trace.status();
  const int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace eval_all = *trace->Slice(week, (1 + kEvalWeeks) * week);

  bench::PrintHeader(
      "Figure 1: messages due to local threshold violations vs overflow "
      "fraction\n(10 sites, 1 training week = 1435 obs, 4 eval weeks, "
      "100-bucket equi-depth\nhistograms, FPTAS eps=0.05; synthetic SNMP "
      "stand-in for the Dartmouth trace)");

  FptasSolver fptas(0.05);
  EqualValueSolver equal_value;
  EqualTailSolver equal_tail;
  obs::MetricsRegistry registry;

  const double fractions[] = {0.001, 0.005, 0.01, 0.02, 0.05, 0.10};
  std::vector<SweepPoint> sweep;

  for (double fraction : fractions) {
    auto threshold = ThresholdForOverflowFraction(eval_all, {}, fraction);
    DCV_CHECK(threshold.ok());
    SweepPoint point{};
    point.fraction = fraction;
    point.threshold = *threshold;

    // Distribution-aware schemes get change detection, as in §6.4.
    auto make_local_options = [&](const ThresholdSolver* solver,
                                  bool change_detection) {
      LocalThresholdScheme::Options o;
      o.solver = solver;
      o.histogram_buckets = 100;
      o.change_detection = change_detection;
      o.change_options.window_size = 574;  // Two whole days: no diurnal aliasing.
      o.change_options.alpha = 1e-10;
      o.change_options.cooldown = 1435;
      return o;
    };
    LocalThresholdScheme fptas_scheme(make_local_options(&fptas, true));
    LocalThresholdScheme ev_scheme(make_local_options(&equal_value, false));
    LocalThresholdScheme et_scheme(make_local_options(&equal_tail, true));
    GeometricScheme geometric;
    DetectionScheme* schemes[kNumSchemes] = {&fptas_scheme, &ev_scheme,
                                             &et_scheme, &geometric};

    SimOptions sim;
    sim.global_threshold = *threshold;
    sim.metrics = metrics_out != nullptr ? &registry : nullptr;
    for (int s = 0; s < kNumSchemes; ++s) {
      // One continuous run over the four weeks, split for per-week
      // reporting: adapted state (recomputed thresholds, Geometric
      // adjustments) carries across week boundaries as in the paper.
      auto r =
          RunSimulationSegments(schemes[s], sim, training, eval_all, week);
      DCV_CHECK(r.ok()) << r.status();
      DCV_CHECK(r->size() == static_cast<size_t>(kEvalWeeks));
      for (int w = 0; w < kEvalWeeks; ++w) {
        const SimResult& seg = (*r)[static_cast<size_t>(w)];
        DCV_CHECK(seg.missed_violations == 0)
            << kSchemeNames[s] << " missed detections (covering broken)";
        point.messages[s][w] = seg.messages.total();
      }
    }
    sweep.push_back(point);
  }

  for (int w = 0; w < kEvalWeeks; ++w) {
    std::printf("\n--- Evaluation week %d ---\n", w + 1);
    bench::PrintRow({"overflow%", "FPTAS", "Equal-Value", "Equal-Tail",
                     "Geometric", "EV/FPTAS", "ET/FPTAS", "Geo/FPTAS"},
                    12);
    for (const SweepPoint& p : sweep) {
      int64_t fm = p.messages[0][w];
      auto ratio = [&](int64_t other) {
        return fm > 0 ? bench::Fmt(static_cast<double>(other) /
                                   static_cast<double>(fm))
                      : std::string("inf");
      };
      bench::PrintRow(
          {bench::Fmt(100.0 * p.fraction, 1), bench::Fmt(fm),
           bench::Fmt(p.messages[1][w]), bench::Fmt(p.messages[2][w]),
           bench::Fmt(p.messages[3][w]), ratio(p.messages[1][w]),
           ratio(p.messages[2][w]), ratio(p.messages[3][w])},
          12);
    }
  }

  std::printf(
      "\nPaper's claim: FPTAS ~70%% fewer messages than Equal-Value "
      "(EV/FPTAS ~3x)\nand ~50%% fewer than Equal-Tail/Geometric "
      "(~2x), across all four weeks.\n");
  if (metrics_out != nullptr) {
    bench::WriteMetricsJson(registry, metrics_out);
    std::printf("\nmetrics written to %s\n", metrics_out);
  }
  return 0;
}

}  // namespace
}  // namespace dcv

int main(int argc, char** argv) {
  return dcv::Main(argc > 1 ? argv[1] : nullptr);
}
