// Validates the FPTAS's approximation guarantee (Theorem 2) empirically:
// on instances small enough for the exact pseudo-polynomial DP (§4), the
// FPTAS objective must be within (1+eps) of optimal. Reports the measured
// worst/mean gap per eps, plus how often the FPTAS is exactly optimal —
// the paper's analysis is a worst-case bound; in practice the gap is far
// smaller.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "histogram/empirical_cdf.h"
#include "histogram/equi_depth.h"
#include "threshold/exact_dp.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"

namespace dcv {
namespace {

struct Instance {
  std::vector<std::unique_ptr<DistributionModel>> models;
  ThresholdProblem problem;
};

Instance RandomInstance(Rng& rng, bool histogram_based) {
  Instance inst;
  const int n = static_cast<int>(rng.UniformInt(2, 8));
  int64_t weight_sum = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t m = rng.UniformInt(8, 60);
    int64_t weight = rng.UniformInt(1, 3);
    weight_sum += weight * m;
    std::vector<int64_t> data;
    const int count = static_cast<int>(rng.UniformInt(20, 200));
    for (int k = 0; k < count; ++k) {
      double v = rng.LogNormal(std::log(static_cast<double>(m) / 4.0), 0.8);
      data.push_back(Clamp<int64_t>(static_cast<int64_t>(v), 0, m));
    }
    if (histogram_based) {
      auto h = EquiDepthHistogram::Build(data, m, 20);
      DCV_CHECK(h.ok());
      inst.models.push_back(
          std::make_unique<EquiDepthHistogram>(std::move(*h)));
    } else {
      inst.models.push_back(std::make_unique<EmpiricalCdf>(data, m));
    }
    inst.problem.vars.push_back(
        ProblemVar{i, weight, CdfView(inst.models.back().get(), false)});
  }
  // Budgets between very tight and loose.
  inst.problem.budget = rng.UniformInt(weight_sum / 8, weight_sum);
  return inst;
}

void RunSweep(bool histogram_based, const char* label) {
  bench::PrintHeader(std::string("FPTAS vs exact DP optimality gap (") +
                     label + " CDFs)\n(gap = OPT_product / FPTAS_product; "
                     "Theorem 2 guarantees gap <= 1 + eps)");
  bench::PrintRow({"eps", "instances", "worst gap", "mean gap", "bound",
                   "exact-opt%"});
  for (double eps : {0.5, 0.2, 0.1, 0.05, 0.01}) {
    Rng rng(static_cast<uint64_t>(eps * 1e6) + (histogram_based ? 17 : 0));
    FptasSolver fptas(eps);
    ExactDpSolver exact;
    double worst = 1.0;
    double sum = 0.0;
    int count = 0;
    int optimal = 0;
    for (int trial = 0; trial < 200; ++trial) {
      Instance inst = RandomInstance(rng, histogram_based);
      auto a = fptas.Solve(inst.problem);
      auto o = exact.Solve(inst.problem);
      DCV_CHECK(a.ok() && o.ok());
      if (o->log_probability == kNegInf) {
        continue;
      }
      double gap = std::exp(o->log_probability - a->log_probability);
      DCV_CHECK(gap <= 1.0 + eps + 1e-6)
          << "guarantee violated: gap=" << gap << " eps=" << eps;
      worst = std::max(worst, gap);
      sum += gap;
      ++count;
      if (gap <= 1.0 + 1e-9) {
        ++optimal;
      }
    }
    bench::PrintRow({bench::Fmt(eps), bench::Fmt(static_cast<int64_t>(count)),
                     bench::Fmt(worst, 4), bench::Fmt(sum / count, 4),
                     bench::Fmt(1.0 + eps, 4),
                     bench::Fmt(100.0 * optimal / count, 1)});
  }
}

int Main() {
  RunSweep(/*histogram_based=*/false, "exact empirical");
  RunSweep(/*histogram_based=*/true, "20-bucket equi-depth");

  // Objective comparison against the heuristics on the same instances —
  // the quantity the experiments translate into message counts.
  bench::PrintHeader(
      "Objective comparison: P(all local constraints hold), FPTAS vs "
      "heuristics\n(geometric mean over instances; higher is better)");
  bench::PrintRow({"budget", "FPTAS", "Equal-Value", "Equal-Tail"});
  for (double budget_frac : {0.15, 0.3, 0.5, 0.7}) {
    Rng rng(991);
    FptasSolver fptas(0.05);
    EqualValueSolver ev;
    EqualTailSolver et;
    double lf = 0;
    double lev = 0;
    double let = 0;
    int count = 0;
    for (int trial = 0; trial < 150; ++trial) {
      Instance inst = RandomInstance(rng, true);
      int64_t weight_sum = 0;
      for (const auto& v : inst.problem.vars) {
        weight_sum += v.weight * v.cdf.domain_max();
      }
      inst.problem.budget =
          static_cast<int64_t>(budget_frac * static_cast<double>(weight_sum));
      auto f = fptas.Solve(inst.problem);
      auto e1 = ev.Solve(inst.problem);
      auto e2 = et.Solve(inst.problem);
      DCV_CHECK(f.ok() && e1.ok() && e2.ok());
      if (f->log_probability == kNegInf || e1->log_probability == kNegInf ||
          e2->log_probability == kNegInf) {
        continue;
      }
      lf += f->log_probability;
      lev += e1->log_probability;
      let += e2->log_probability;
      ++count;
    }
    bench::PrintRow({bench::Fmt(budget_frac),
                     bench::Fmt(std::exp(lf / count), 4),
                     bench::Fmt(std::exp(lev / count), 4),
                     bench::Fmt(std::exp(let / count), 4)});
  }
  return 0;
}

}  // namespace
}  // namespace dcv

int main() { return dcv::Main(); }
