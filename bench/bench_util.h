#ifndef DCV_BENCH_BENCH_UTIL_H_
#define DCV_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harnesses: fixed-width table printing
// and the standard workload builders, so every bench binary reports in the
// same format (one table per paper figure/table; see EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace dcv::bench {

/// Prints a separator + title line for one experiment.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints one row of right-aligned cells with the given width.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) {
    std::printf("%*s", width, c.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Fmt(int64_t v) { return std::to_string(v); }

/// Dumps a registry snapshot as JSON to `path` (the BENCH_*.json pattern:
/// each harness can leave a machine-readable metrics file next to its
/// table output). Returns false (after a warning on stderr) on I/O errors
/// so harnesses can ignore the failure without aborting the run.
inline bool WriteMetricsJson(const obs::MetricsRegistry& registry,
                             const std::string& path) {
  const std::string json = registry.Snapshot().ToJson() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                 path.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok) {
    std::fprintf(stderr, "warning: short metrics write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace dcv::bench

#endif  // DCV_BENCH_BENCH_UTIL_H_
