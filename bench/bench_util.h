#ifndef DCV_BENCH_BENCH_UTIL_H_
#define DCV_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harnesses: fixed-width table printing
// and the standard workload builders, so every bench binary reports in the
// same format (one table per paper figure/table; see EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <vector>

namespace dcv::bench {

/// Prints a separator + title line for one experiment.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints one row of right-aligned cells with the given width.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) {
    std::printf("%*s", width, c.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Fmt(int64_t v) { return std::to_string(v); }

}  // namespace dcv::bench

#endif  // DCV_BENCH_BENCH_UTIL_H_
