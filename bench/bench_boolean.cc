// Exercises §5 of the paper: threshold selection for boolean constraints.
//  * Disjunctions (§5.2): the per-disjunct FPTAS + best-branch selection is
//    itself an FPTAS (Theorem 4) — measured against brute-force enumeration
//    of branch choices with the exact DP per branch.
//  * Conjunctions (§5.3): NP-hard to approximate (Theorem 5); we measure
//    the min-merge heuristic and the benefit of the lift step.
//  * General CNF (§5.4): the two-step heuristic end to end, plus covering
//    verification by exhaustive sampling.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "constraints/parser.h"
#include "histogram/empirical_cdf.h"
#include "threshold/boolean_solver.h"
#include "threshold/exact_dp.h"
#include "threshold/fptas.h"

namespace dcv {
namespace {

struct ModelSet {
  std::vector<std::unique_ptr<EmpiricalCdf>> owned;
  std::vector<const DistributionModel*> models;
};

ModelSet LogNormalModels(int n, int64_t m, uint64_t seed) {
  ModelSet s;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<int64_t> data;
    for (int k = 0; k < 300; ++k) {
      double v = rng.LogNormal(std::log(static_cast<double>(m) / 6.0),
                               0.5 + 0.2 * i);
      data.push_back(Clamp<int64_t>(static_cast<int64_t>(v), 0, m));
    }
    s.owned.push_back(std::make_unique<EmpiricalCdf>(data, m));
    s.models.push_back(s.owned.back().get());
  }
  return s;
}

void DisjunctionQuality() {
  bench::PrintHeader(
      "S5.2 Disjunctions: best-branch FPTAS vs exhaustive branch "
      "enumeration\n(objective ratio OPT/ours; Theorem 4 bound is 1+eps = "
      "1.05)");
  bench::PrintRow({"disjuncts", "instances", "worst", "mean"});
  for (int num_disjuncts : {2, 3, 4}) {
    Rng rng(static_cast<uint64_t>(num_disjuncts) * 100);
    FptasSolver fptas(0.05);
    ExactDpSolver exact;
    BooleanThresholdSolver ours(&fptas);
    BooleanThresholdSolver::Options no_lift;
    no_lift.lift_rounds = 0;
    BooleanThresholdSolver ours_nolift(&fptas, no_lift);
    BooleanThresholdSolver best(&exact, no_lift);
    double worst = 1.0;
    double sum = 0.0;
    int count = 0;
    for (int trial = 0; trial < 60; ++trial) {
      const int n = 3;
      const int64_t m = 40;
      ModelSet s = LogNormalModels(n, m, rng.NextUint64());
      // Random disjunction of sum constraints over subsets.
      std::vector<std::string> atoms;
      const char* names[3] = {"a", "b", "c"};
      for (int d = 0; d < num_disjuncts; ++d) {
        std::string atom;
        for (int v = 0; v < n; ++v) {
          if (rng.Bernoulli(0.7) || atom.empty()) {
            if (!atom.empty()) {
              atom += " + ";
            }
            atom += std::to_string(rng.UniformInt(1, 2)) + "*" + names[v];
          }
        }
        atom += " <= " + std::to_string(rng.UniformInt(m / 2, 3 * m));
        atoms.push_back("(" + atom + ")");
      }
      std::string text = atoms[0];
      for (size_t i = 1; i < atoms.size(); ++i) {
        text += " || " + atoms[i];
      }
      auto parsed = ParseConstraintWithVars(text, {"a", "b", "c"});
      DCV_CHECK(parsed.ok()) << parsed.status();
      auto cnf = ToCnf(*parsed);
      DCV_CHECK(cnf.ok());
      auto approx = ours_nolift.Solve(*cnf, s.models);
      auto opt = best.Solve(*cnf, s.models);
      if (!approx.ok() || !opt.ok()) {
        continue;  // Unsatisfiable random draw.
      }
      if (opt->log_probability == kNegInf) {
        continue;
      }
      double gap = std::exp(opt->log_probability - approx->log_probability);
      worst = std::max(worst, gap);
      sum += gap;
      ++count;
    }
    bench::PrintRow({bench::Fmt(static_cast<int64_t>(num_disjuncts)),
                     bench::Fmt(static_cast<int64_t>(count)),
                     bench::Fmt(worst, 4),
                     bench::Fmt(count > 0 ? sum / count : 0.0, 4)});
  }
}

void ConjunctionLift() {
  bench::PrintHeader(
      "S5.3 Conjunctions: min-merge heuristic, with and without the lift "
      "step\n(P(all local bounds hold), in-model estimate; higher is "
      "better)");
  bench::PrintRow({"conjuncts", "no-lift", "lifted", "lift gain%"});
  for (int num_conjuncts : {2, 3, 5, 8}) {
    Rng rng(static_cast<uint64_t>(num_conjuncts) * 31 + 7);
    FptasSolver fptas(0.05);
    BooleanThresholdSolver::Options no_lift;
    no_lift.lift_rounds = 0;
    BooleanThresholdSolver plain(&fptas, no_lift);
    BooleanThresholdSolver lifted(&fptas);
    double sum_plain = 0;
    double sum_lift = 0;
    int count = 0;
    for (int trial = 0; trial < 60; ++trial) {
      const int n = 4;
      const int64_t m = 40;
      ModelSet s = LogNormalModels(n, m, rng.NextUint64());
      const char* names[4] = {"a", "b", "c", "d"};
      std::string text;
      for (int c = 0; c < num_conjuncts; ++c) {
        std::string atom;
        for (int v = 0; v < n; ++v) {
          if (rng.Bernoulli(0.6) || atom.empty()) {
            if (!atom.empty()) {
              atom += " + ";
            }
            atom += names[v];
          }
        }
        atom += " <= " + std::to_string(rng.UniformInt(m, 3 * m));
        if (!text.empty()) {
          text += " && ";
        }
        text += "(" + atom + ")";
      }
      auto parsed = ParseConstraintWithVars(text, {"a", "b", "c", "d"});
      DCV_CHECK(parsed.ok());
      auto cnf = ToCnf(*parsed);
      DCV_CHECK(cnf.ok());
      auto a = plain.Solve(*cnf, s.models);
      auto b = lifted.Solve(*cnf, s.models);
      if (!a.ok() || !b.ok() || a->log_probability == kNegInf) {
        continue;
      }
      sum_plain += a->log_probability;
      sum_lift += b->log_probability;
      ++count;
    }
    double p_plain = std::exp(sum_plain / count);
    double p_lift = std::exp(sum_lift / count);
    bench::PrintRow({bench::Fmt(static_cast<int64_t>(num_conjuncts)),
                     bench::Fmt(p_plain, 4), bench::Fmt(p_lift, 4),
                     bench::Fmt(100.0 * (p_lift - p_plain) /
                                    std::max(1e-9, p_plain),
                                1)});
  }
}

void GeneralCnf() {
  bench::PrintHeader(
      "S5.4 General boolean constraints: two-step heuristic end to end\n"
      "(paper's example constraint + random CNFs; covering verified by "
      "sampling)");
  // The paper's running example (§3.1).
  {
    const int64_t m = 10;
    ModelSet s = LogNormalModels(3, m, 77);
    auto parsed = ParseConstraint(
        "((3x1 + x2 >= 1) || (MIN{x1, 2x3 - x2} <= 5)) && "
        "(x1 + MAX{3x2, x3} >= 4)");
    DCV_CHECK(parsed.ok());
    auto cnf = ToCnf(parsed->expr);
    DCV_CHECK(cnf.ok());
    FptasSolver fptas(0.05);
    BooleanThresholdSolver solver(&fptas);
    auto sol = solver.Solve(*cnf, s.models);
    DCV_CHECK(sol.ok()) << sol.status();
    std::printf("paper example: clauses=%zu  P(hold)=%.4f  bounds:",
                cnf->clauses.size(), std::exp(sol->log_probability));
    for (const SiteBounds& b : sol->bounds) {
      std::printf(" [%lld,%lld]", static_cast<long long>(b.lo),
                  static_cast<long long>(b.hi));
    }
    std::printf("\n");
    // Covering check by exhaustive enumeration over the box.
    int64_t violations = 0;
    for (int64_t a = sol->bounds[0].lo; a <= sol->bounds[0].hi; ++a) {
      for (int64_t b = sol->bounds[1].lo; b <= sol->bounds[1].hi; ++b) {
        for (int64_t c = sol->bounds[2].lo; c <= sol->bounds[2].hi; ++c) {
          if (!parsed->expr.Evaluate({a, b, c})) {
            ++violations;
          }
        }
      }
    }
    std::printf("covering check (exhaustive over box): %lld violations\n",
                static_cast<long long>(violations));
    DCV_CHECK(violations == 0);
  }

  // Random CNFs: report solver success/covering statistics.
  Rng rng(555);
  FptasSolver fptas(0.05);
  BooleanThresholdSolver solver(&fptas);
  int solved = 0;
  int infeasible = 0;
  int covering_ok = 0;
  double mean_p = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    const int n = 4;
    const int64_t m = 30;
    ModelSet s = LogNormalModels(n, m, rng.NextUint64());
    const char* names[4] = {"a", "b", "c", "d"};
    std::string text;
    int clauses = static_cast<int>(rng.UniformInt(2, 4));
    for (int c = 0; c < clauses; ++c) {
      int atoms = static_cast<int>(rng.UniformInt(1, 3));
      std::string clause;
      for (int a = 0; a < atoms; ++a) {
        std::string atom;
        for (int v = 0; v < n; ++v) {
          if (rng.Bernoulli(0.5) || atom.empty()) {
            if (!atom.empty()) {
              atom += " + ";
            }
            atom += names[v];
          }
        }
        bool ge = rng.Bernoulli(0.25);
        atom += ge ? " >= " + std::to_string(rng.UniformInt(0, m / 8))
                   : " <= " + std::to_string(rng.UniformInt(m, 4 * m));
        if (!clause.empty()) {
          clause += " || ";
        }
        clause += "(" + atom + ")";
      }
      if (!text.empty()) {
        text += " && ";
      }
      text += "(" + clause + ")";
    }
    auto parsed = ParseConstraintWithVars(text, {"a", "b", "c", "d"});
    DCV_CHECK(parsed.ok());
    auto cnf = ToCnf(*parsed);
    DCV_CHECK(cnf.ok());
    auto sol = solver.Solve(*cnf, s.models);
    if (!sol.ok()) {
      ++infeasible;
      continue;
    }
    ++solved;
    mean_p += std::exp(sol->log_probability);
    // Sampled covering check.
    bool ok = true;
    for (int probe = 0; probe < 2000 && ok; ++probe) {
      std::vector<int64_t> v(static_cast<size_t>(n));
      bool empty_box = false;
      for (int i = 0; i < n; ++i) {
        const SiteBounds& b = sol->bounds[static_cast<size_t>(i)];
        if (b.empty()) {
          empty_box = true;
          break;
        }
        v[static_cast<size_t>(i)] = rng.UniformInt(b.lo, b.hi);
      }
      if (empty_box) {
        break;
      }
      ok = parsed->Evaluate(v);
    }
    covering_ok += ok ? 1 : 0;
    DCV_CHECK(ok) << "covering violated for: " << text;
  }
  std::printf(
      "random CNFs: %d solved, %d unsatisfiable, covering held on %d/%d, "
      "mean P(hold)=%.4f\n",
      solved, infeasible, covering_ok, solved,
      solved > 0 ? mean_p / solved : 0.0);
}

int Main() {
  DisjunctionQuality();
  ConjunctionLift();
  GeneralCnf();
  return 0;
}

}  // namespace
}  // namespace dcv

int main() { return dcv::Main(); }
