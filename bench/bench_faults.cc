// Robustness sweep: every detection scheme under an imperfect network.
//
// The detection guarantees of the paper (§3.1: the covering property) are
// proved over a reliable transport. This harness quantifies what each scheme
// pays — and what it still detects — when the site<->coordinator channel
// drops, delays, and black-holes messages, with the ack/retransmission
// machinery of sim/channel.h switched on.
//
// Two scenario axes:
//   * link loss rate in {0, 2, 5, 10, 20}%;
//   * site crashes off/on (two sites each down for multi-day windows, plus
//     one short coordinator partition).
//
// Workload: the synthetic SNMP stand-in (10 sites, 1 training week, 2
// evaluation weeks), threshold at the 2% overflow fraction. Reported per
// scheme and scenario: messages/epoch (retransmissions and acks included),
// retransmissions, poll round-trips that timed out, degraded coordinator
// decisions, detected/true violations, and misses.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "sim/adaptive_filter_scheme.h"
#include "sim/geometric_scheme.h"
#include "sim/local_scheme.h"
#include "sim/multilevel_scheme.h"
#include "sim/polling_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

namespace dcv {
namespace {

constexpr int kNumSites = 10;
constexpr int kEvalWeeks = 2;

FaultSpec MakeSpec(double loss, bool crashes, int64_t eval_epochs) {
  FaultSpec spec;
  spec.loss = loss;
  spec.delay = loss > 0.0 ? 0.02 : 0.0;  // A little reordering jitter.
  spec.max_delay_epochs = 3;
  spec.retry.enable_acks = loss > 0.0 || crashes;
  spec.retry.max_attempts = 4;
  spec.degrade = DegradeMode::kAssumeBreach;
  spec.seed = 0xfa017;
  if (crashes) {
    // Two sites down for ~2 and ~1 days, one 2-hour coordinator partition.
    spec.crashes = {CrashWindow{0, eval_epochs / 4, eval_epochs / 4 + 574},
                    CrashWindow{7, eval_epochs / 2, eval_epochs / 2 + 287}};
    spec.partitions = {EpochWindow{3 * eval_epochs / 4,
                                   3 * eval_epochs / 4 + 24}};
  }
  return spec;
}

int Main() {
  SnmpTraceOptions trace_options;
  trace_options.num_sites = kNumSites;
  trace_options.num_weeks = 1 + kEvalWeeks;
  trace_options.seed = 20031117;
  trace_options.site_scale_sigma = 1.3;
  trace_options.shape_spread = 0.8;
  trace_options.spike_shape = 1.2;
  trace_options.spike_prob = 0.01;
  auto trace = GenerateSnmpTrace(trace_options);
  DCV_CHECK(trace.ok()) << trace.status();
  const int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace eval = *trace->Slice(week, (1 + kEvalWeeks) * week);

  auto threshold = ThresholdForOverflowFraction(eval, {}, 0.02);
  DCV_CHECK(threshold.ok());

  FptasSolver fptas(0.05);

  struct SchemeCase {
    const char* label;
    std::function<std::unique_ptr<DetectionScheme>()> make;
  };
  std::vector<SchemeCase> schemes;
  schemes.push_back({"fptas-local", [&] {
                       LocalThresholdScheme::Options o;
                       o.solver = &fptas;
                       o.histogram_buckets = 100;
                       return std::make_unique<LocalThresholdScheme>(o);
                     }});
  schemes.push_back({"geometric", [&] {
                       return std::make_unique<GeometricScheme>();
                     }});
  schemes.push_back({"polling-p10", [&] {
                       return std::make_unique<PollingScheme>(10);
                     }});
  schemes.push_back({"adaptive-filters", [&] {
                       AdaptiveFilterScheme::Options o;
                       o.precision = 0.05;
                       return std::make_unique<AdaptiveFilterScheme>(o);
                     }});
  schemes.push_back({"multi-level", [&] {
                       MultiLevelScheme::Options o;
                       o.solver = &fptas;
                       return std::make_unique<MultiLevelScheme>(o);
                     }});

  bench::PrintHeader(
      "Fault sweep: loss x crashes per scheme (10 sites, 2 eval weeks, "
      "T at 2%\noverflow, acks + <=4 attempts, assume-breach degradation; "
      "msgs/epoch\nincludes retransmissions and acks)");

  const double losses[] = {0.0, 0.02, 0.05, 0.10, 0.20};

  for (const SchemeCase& sc : schemes) {
    std::printf("\n--- %s ---\n", sc.label);
    bench::PrintRow({"loss%", "crashes", "msgs/ep", "retrans", "poll-t/o",
                     "degraded", "det/true", "missed"},
                    10);
    for (bool crashes : {false, true}) {
      for (double loss : losses) {
        SimOptions sim;
        sim.global_threshold = *threshold;
        sim.faults = MakeSpec(loss, crashes, eval.num_epochs());
        auto scheme = sc.make();
        auto r = RunSimulation(scheme.get(), sim, training, eval);
        DCV_CHECK(r.ok()) << sc.label << ": " << r.status();
        char det[32];
        std::snprintf(det, sizeof(det), "%lld/%lld",
                      static_cast<long long>(r->detected_violations),
                      static_cast<long long>(r->true_violations));
        bench::PrintRow(
            {bench::Fmt(100.0 * loss, 0), crashes ? "yes" : "no",
             bench::Fmt(r->MessagesPerEpoch()),
             bench::Fmt(r->reliability.retransmissions),
             bench::Fmt(r->reliability.timed_out_polls),
             bench::Fmt(r->reliability.degraded_decisions), det,
             bench::Fmt(r->missed_violations)},
            10);
      }
    }
  }

  std::printf(
      "\nReading guide: at 0%% loss every scheme matches its perfect-network "
      "message\ncounts (acks off). With loss, retransmission overhead grows "
      "roughly linearly\nwhile assume-breach degradation keeps misses near "
      "zero; crash windows show up\nas poll timeouts and degraded decisions "
      "rather than missed violations.\n");
  return 0;
}

}  // namespace
}  // namespace dcv

int main() { return dcv::Main(); }
