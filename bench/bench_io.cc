// Throughput and compression of the binary columnar trace format (src/io):
// for each workload profile x row codec (x LZ4 when compiled in), write the
// trace to disk through BlockWriter, scan it back through BlockReader, and
// report encode/decode throughput plus the on-disk size against the same
// trace as CSV. "MB/s" is logical int64 payload (rows * sites * 8 bytes)
// per wall second — the replay rate a consumer of the decoded values sees,
// independent of how well the codec shrank the file.
//
// Profiles:
//   ar1_smooth  - AR(1)-style random walk per site (small steps around a
//                 large level): the paper's SNMP-like autocorrelation in
//                 its purest form; delta's best case.
//   snmp        - the repo's diurnal SNMP generator (trace/snmp_synth.h):
//                 realistic mixed behavior.
//   sparse_step - long plateaus with rare level shifts (slowly-changing
//                 counters sampled fast); zoh's best case.
//   random      - uniform noise; the incompressibility floor.
//
// Usage: bench_io [--epochs 100000] [--sites 8] [--seed 42] [--dir .]
//                 [--json BENCH_io.json]
//
// --json dumps every (profile, codec, compression) cell's file size, ratio
// vs CSV, and throughputs as gauges (the BENCH_io.json artifact;
// EXPERIMENTS.md quotes it).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "io/block_reader.h"
#include "io/compress.h"
#include "io/format.h"
#include "obs/obs.h"
#include "trace/snmp_synth.h"
#include "trace/trace.h"
#include "trace/trace_bin.h"

namespace dcv {
namespace {

struct BenchConfig {
  int64_t epochs = 100000;
  int64_t sites = 8;
  uint64_t seed = 42;
  std::string dir = ".";
  std::string json_path;
};

Result<BenchConfig> ParseArgs(int argc, char** argv) {
  FlagSet flags;
  flags.Value("epochs").Value("sites").Value("seed").Value("dir")
      .Value("json");
  DCV_ASSIGN_OR_RETURN(ParsedFlags parsed, flags.Parse(argc, argv, 1));
  BenchConfig config;
  DCV_ASSIGN_OR_RETURN(config.epochs, parsed.GetInt("epochs", config.epochs));
  DCV_ASSIGN_OR_RETURN(config.sites, parsed.GetInt("sites", config.sites));
  if (config.epochs < 1 || config.sites < 1) {
    return InvalidArgumentError("--epochs and --sites must be >= 1");
  }
  DCV_ASSIGN_OR_RETURN(
      int64_t seed, parsed.GetInt("seed", static_cast<int64_t>(config.seed)));
  config.seed = static_cast<uint64_t>(seed);
  config.dir = parsed.GetString("dir", config.dir);
  config.json_path = parsed.GetString("json", "");
  return config;
}

/// AR(1)-style walk: each site holds a ~50k level and moves by a small
/// uniform step every epoch. Steps fit one zigzag-varint byte, which is the
/// regime the delta codec is built for.
Trace MakeAr1Trace(const BenchConfig& config) {
  Rng rng(config.seed);
  Trace trace(static_cast<int>(config.sites));
  std::vector<int64_t> values(static_cast<size_t>(config.sites), 50000);
  for (int64_t t = 0; t < config.epochs; ++t) {
    for (auto& v : values) {
      v += rng.UniformInt(-31, 31);
      if (v < 0) v = 0;
      if (v > 100000) v = 100000;
    }
    DCV_CHECK(trace.AppendEpoch(values).ok());
  }
  return trace;
}

/// Plateaus with rare jumps: a site keeps its value for ~100 epochs, then
/// steps to a new level. Zero-order-hold runs cover whole plateaus.
Trace MakeSparseStepTrace(const BenchConfig& config) {
  Rng rng(config.seed + 1);
  Trace trace(static_cast<int>(config.sites));
  std::vector<int64_t> values(static_cast<size_t>(config.sites));
  for (auto& v : values) {
    v = rng.UniformInt(0, 1000000);
  }
  for (int64_t t = 0; t < config.epochs; ++t) {
    for (auto& v : values) {
      if (rng.Bernoulli(0.01)) {
        v = rng.UniformInt(0, 1000000);
      }
    }
    DCV_CHECK(trace.AppendEpoch(values).ok());
  }
  return trace;
}

Trace MakeRandomTrace(const BenchConfig& config) {
  Rng rng(config.seed + 2);
  Trace trace(static_cast<int>(config.sites));
  std::vector<int64_t> values(static_cast<size_t>(config.sites));
  for (int64_t t = 0; t < config.epochs; ++t) {
    for (auto& v : values) {
      v = rng.UniformInt(0, 1000000);
    }
    DCV_CHECK(trace.AppendEpoch(values).ok());
  }
  return trace;
}

Result<Trace> MakeSnmpTrace(const BenchConfig& config) {
  SnmpTraceOptions options;
  options.num_sites = static_cast<int>(config.sites);
  options.seed = config.seed + 3;
  // Enough weeks to reach the requested epoch count, then trim.
  options.num_weeks = static_cast<int>(
      (config.epochs + EpochsPerWeek(options) - 1) / EpochsPerWeek(options));
  DCV_ASSIGN_OR_RETURN(Trace full, GenerateSnmpTrace(options));
  const int64_t n = std::min(config.epochs, full.num_epochs());
  return full.Slice(0, n);
}

Result<int64_t> FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  if (size < 0) {
    return InternalError("cannot size file: " + path);
  }
  return static_cast<int64_t>(size);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Scans the whole file through BlockReader::Next, returning decoded rows.
/// This is the replay fast path (no Trace assembly), which is what the
/// decode throughput column measures.
Result<int64_t> ScanFile(const std::string& path) {
  DCV_ASSIGN_OR_RETURN(auto reader, io::BlockReader::Open(path));
  io::ColumnBlock block;
  int64_t rows = 0;
  for (;;) {
    DCV_ASSIGN_OR_RETURN(bool more, reader->Next(&block));
    if (!more) {
      return rows;
    }
    rows += block.rows;
  }
}

Status RunOne(const Trace& trace, const std::string& profile,
              int64_t csv_bytes, io::RowCodec codec,
              io::BlockCompression compression, const BenchConfig& config,
              obs::MetricsRegistry* summary) {
  const std::string path = config.dir + "/bench_io_tmp.dcvb";
  io::WriterOptions options;
  options.codec = codec;
  options.compression = compression;

  const double logical_mb = static_cast<double>(trace.num_epochs()) *
                            static_cast<double>(trace.num_sites()) * 8.0 /
                            1e6;
  auto start = std::chrono::steady_clock::now();
  DCV_RETURN_IF_ERROR(WriteTraceBin(trace, path, options));
  const double encode_s = SecondsSince(start);

  start = std::chrono::steady_clock::now();
  DCV_ASSIGN_OR_RETURN(int64_t rows, ScanFile(path));
  const double decode_s = SecondsSince(start);
  if (rows != trace.num_epochs()) {
    return InternalError("scan returned " + std::to_string(rows) +
                         " rows, expected " +
                         std::to_string(trace.num_epochs()));
  }

  DCV_ASSIGN_OR_RETURN(int64_t file_bytes, FileSize(path));
  std::remove(path.c_str());
  const double ratio =
      static_cast<double>(csv_bytes) / static_cast<double>(file_bytes);
  const double encode_mb_s = logical_mb / encode_s;
  const double decode_mb_s = logical_mb / decode_s;

  std::string label(io::RowCodecName(codec));
  if (compression == io::BlockCompression::kLz4) {
    label += "+lz4";
  }
  std::printf("%12s %12s %12" PRId64 " %12" PRId64 " %10.2f %12.1f %12.1f\n",
              profile.c_str(), label.c_str(), csv_bytes, file_bytes, ratio,
              encode_mb_s, decode_mb_s);

  const std::string prefix = "bench/io/" + profile + "/" + label + "/";
  summary->gauge(prefix + "file_bytes")
      ->Set(static_cast<double>(file_bytes));
  summary->gauge(prefix + "csv_bytes")->Set(static_cast<double>(csv_bytes));
  summary->gauge(prefix + "ratio_vs_csv")->Set(ratio);
  summary->gauge(prefix + "encode_mb_s")->Set(encode_mb_s);
  summary->gauge(prefix + "decode_mb_s")->Set(decode_mb_s);
  return OkStatus();
}

Status RunBench(const BenchConfig& config) {
  obs::MetricsRegistry summary;
  std::printf("# binary trace format: %" PRId64 " epochs x %" PRId64
              " sites per profile, lz4: %s\n",
              config.epochs, config.sites,
              io::Lz4Available() ? "available" : "not built in");
  std::printf("%12s %12s %12s %12s %10s %12s %12s\n", "profile", "codec",
              "csv-bytes", "file-bytes", "ratio", "enc-MB/s", "dec-MB/s");

  struct Profile {
    std::string name;
    Trace trace;
  };
  std::vector<Profile> profiles;
  profiles.push_back({"ar1_smooth", MakeAr1Trace(config)});
  {
    DCV_ASSIGN_OR_RETURN(Trace snmp, MakeSnmpTrace(config));
    profiles.push_back({"snmp", std::move(snmp)});
  }
  profiles.push_back({"sparse_step", MakeSparseStepTrace(config)});
  profiles.push_back({"random", MakeRandomTrace(config)});

  for (const Profile& profile : profiles) {
    const std::string csv_path = config.dir + "/bench_io_tmp.csv";
    DCV_RETURN_IF_ERROR(profile.trace.WriteCsv(csv_path));
    DCV_ASSIGN_OR_RETURN(int64_t csv_bytes, FileSize(csv_path));
    std::remove(csv_path.c_str());
    for (io::RowCodec codec :
         {io::RowCodec::kFlat, io::RowCodec::kDelta, io::RowCodec::kZoh}) {
      DCV_RETURN_IF_ERROR(RunOne(profile.trace, profile.name, csv_bytes,
                                 codec, io::BlockCompression::kNone, config,
                                 &summary));
      if (io::Lz4Available()) {
        DCV_RETURN_IF_ERROR(RunOne(profile.trace, profile.name, csv_bytes,
                                   codec, io::BlockCompression::kLz4, config,
                                   &summary));
      }
    }
  }
  if (!config.json_path.empty() &&
      !bench::WriteMetricsJson(summary, config.json_path)) {
    return InternalError("cannot write " + config.json_path);
  }
  return OkStatus();
}

}  // namespace
}  // namespace dcv

int main(int argc, char** argv) {
  auto config = dcv::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "bench_io: %s\n",
                 std::string(config.status().message()).c_str());
    return 2;
  }
  dcv::Status status = dcv::RunBench(*config);
  if (!status.ok()) {
    std::fprintf(stderr, "bench_io: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  return 0;
}
