// Microbenchmarks for the streaming substrates the paper builds on
// (google-benchmark): Greenwald-Khanna quantile sketches [13], equi-depth
// histogram construction, DGIM sliding-window counting [8], and the KS
// change detector [17].

#include <benchmark/benchmark.h>

#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "histogram/change_detector.h"
#include "histogram/equi_depth.h"
#include "histogram/exp_histogram.h"
#include "histogram/gk_sketch.h"

namespace dcv {
namespace {

std::vector<int64_t> LogNormalData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> data;
  data.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    data.push_back(static_cast<int64_t>(rng.LogNormal(10.0, 1.0)));
  }
  return data;
}

void BM_GkSketchInsert(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  auto data = LogNormalData(100000, 1);
  for (auto _ : state) {
    GkSketch sketch(eps);
    for (int64_t v : data) {
      sketch.Insert(v);
    }
    benchmark::DoNotOptimize(sketch.num_tuples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_GkSketchInsert)->Arg(10)->Arg(50)->Arg(200);

void BM_GkSketchToHistogram(benchmark::State& state) {
  auto data = LogNormalData(100000, 2);
  GkSketch sketch(0.01);
  for (int64_t v : data) {
    sketch.Insert(v);
  }
  for (auto _ : state) {
    auto h = sketch.ToEquiDepthHistogram(100, 10'000'000);
    DCV_CHECK(h.ok());
    benchmark::DoNotOptimize(h->num_buckets());
  }
}
BENCHMARK(BM_GkSketchToHistogram);

void BM_EquiDepthBuild(benchmark::State& state) {
  auto data = LogNormalData(state.range(0), 3);
  for (auto _ : state) {
    auto h = EquiDepthHistogram::Build(data, 10'000'000, 100);
    DCV_CHECK(h.ok());
    benchmark::DoNotOptimize(h->num_buckets());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EquiDepthBuild)->Arg(1435)->Arg(10000)->Arg(100000);

void BM_EquiDepthCdfLookup(benchmark::State& state) {
  auto data = LogNormalData(10000, 4);
  auto h = EquiDepthHistogram::Build(data, 10'000'000, 100);
  DCV_CHECK(h.ok());
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h->CumulativeAt(rng.UniformInt(0, 10'000'000)));
  }
}
BENCHMARK(BM_EquiDepthCdfLookup);

void BM_DgimAdd(benchmark::State& state) {
  Rng rng(6);
  ExpHistogram h(100000, static_cast<int>(state.range(0)));
  int64_t t = 0;
  for (auto _ : state) {
    h.Add(++t, rng.Bernoulli(0.4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DgimAdd)->Arg(2)->Arg(8)->Arg(32);

void BM_SlidingWindowSumAdd(benchmark::State& state) {
  Rng rng(7);
  SlidingWindowSum sum(100000, 20, 8);
  int64_t t = 0;
  for (auto _ : state) {
    sum.Add(++t, rng.UniformInt(0, (1 << 20) - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingWindowSumAdd);

void BM_ChangeDetectorObserve(benchmark::State& state) {
  Rng rng(8);
  ChangeDetector::Options options;
  options.window_size = static_cast<size_t>(state.range(0));
  options.cooldown = 1;
  ChangeDetector detector(options);
  std::vector<int64_t> ref;
  for (int i = 0; i < 1435; ++i) {
    ref.push_back(rng.UniformInt(0, 100000));
  }
  detector.Reset(ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Observe(rng.UniformInt(0, 100000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChangeDetectorObserve)->Arg(100)->Arg(400)->Arg(1000);

}  // namespace
}  // namespace dcv

BENCHMARK_MAIN();
