// Microbenchmarks for the threshold-selection algorithms (google-benchmark):
// FPTAS runtime scaling in n and 1/eps (Theorem 2's complexity), the exact
// DP's pseudo-polynomial blow-up in the budget T (the reason the FPTAS
// exists), and the heuristics for context.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "histogram/equi_depth.h"
#include "threshold/exact_dp.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"

namespace dcv {
namespace {

struct Instance {
  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  ThresholdProblem problem;
};

// A paper-like instance: n sites, lognormal traffic, 100-bucket histograms,
// budget at roughly the 98th percentile of the sum.
Instance MakeInstance(int n, int64_t scale, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  int64_t budget = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t m = scale * 8;
    std::vector<int64_t> data;
    for (int k = 0; k < 1435; ++k) {
      double v = rng.LogNormal(std::log(static_cast<double>(scale)), 0.8);
      data.push_back(Clamp<int64_t>(static_cast<int64_t>(v), 0, m));
    }
    auto h = EquiDepthHistogram::Build(data, m, 100);
    DCV_CHECK(h.ok());
    inst.models.push_back(std::make_unique<EquiDepthHistogram>(std::move(*h)));
    inst.problem.vars.push_back(
        ProblemVar{i, 1, CdfView(inst.models.back().get(), false)});
    budget += static_cast<int64_t>(2.2 * static_cast<double>(scale));
  }
  inst.problem.budget = budget;
  return inst;
}

void BM_FptasVsSites(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance inst = MakeInstance(n, 100000, 42);
  FptasSolver solver(0.05);
  for (auto _ : state) {
    auto sol = solver.Solve(inst.problem);
    DCV_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->log_probability);
  }
}
BENCHMARK(BM_FptasVsSites)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(30);

void BM_FptasVsEps(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  Instance inst = MakeInstance(10, 100000, 43);
  FptasSolver solver(eps);
  for (auto _ : state) {
    auto sol = solver.Solve(inst.problem);
    DCV_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->log_probability);
  }
}
BENCHMARK(BM_FptasVsEps)->Arg(2)->Arg(10)->Arg(20)->Arg(100);

void BM_FptasVsDomain(benchmark::State& state) {
  // Theorem 2: only log(M-bar) dependence on the domain size.
  const int64_t scale = state.range(0);
  Instance inst = MakeInstance(10, scale, 44);
  FptasSolver solver(0.05);
  for (auto _ : state) {
    auto sol = solver.Solve(inst.problem);
    DCV_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->log_probability);
  }
}
BENCHMARK(BM_FptasVsDomain)
    ->Arg(1000)
    ->Arg(100000)
    ->Arg(10000000)
    ->Arg(100000000);

void BM_ExactDpVsBudget(benchmark::State& state) {
  // The O(n T^2) exact algorithm: quadratic blow-up in the budget.
  const int64_t scale = state.range(0);
  Instance inst = MakeInstance(4, scale, 45);
  ExactDpSolver solver;
  for (auto _ : state) {
    auto sol = solver.Solve(inst.problem);
    DCV_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->log_probability);
  }
}
BENCHMARK(BM_ExactDpVsBudget)->Arg(50)->Arg(200)->Arg(800);

void BM_EqualValue(benchmark::State& state) {
  Instance inst = MakeInstance(10, 100000, 46);
  EqualValueSolver solver;
  for (auto _ : state) {
    auto sol = solver.Solve(inst.problem);
    DCV_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->log_probability);
  }
}
BENCHMARK(BM_EqualValue);

void BM_EqualTail(benchmark::State& state) {
  Instance inst = MakeInstance(10, 100000, 47);
  EqualTailSolver solver;
  for (auto _ : state) {
    auto sol = solver.Solve(inst.problem);
    DCV_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->log_probability);
  }
}
BENCHMARK(BM_EqualTail);

}  // namespace
}  // namespace dcv

BENCHMARK_MAIN();
