// Ablation of the change-detection machinery (§3.2, citing Kifer et al.
// [17]): after an injected persistent load shift, how do stale thresholds
// compare to change-detection-driven recomputation? The paper observed one
// recomputation over four weeks (week of Nov 24-28) and found thresholds
// from the previous week's histograms remained effective.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "sim/local_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

namespace dcv {
namespace {

int Main() {
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 10;
  trace_options.num_weeks = 5;
  trace_options.seed = 424242;
  trace_options.shift_week = 2;  // Shift at the start of eval week 2.
  trace_options.shift_site_fraction = 0.4;

  bench::PrintHeader(
      "Change detection ablation: stale vs refreshed thresholds across a "
      "load shift\n(messages per eval week; shift of the given factor hits "
      "40% of sites at week 2)");

  for (double shift_factor : {1.0, 1.5, 2.0, 3.0}) {
    trace_options.shift_factor = shift_factor;
    auto trace = GenerateSnmpTrace(trace_options);
    DCV_CHECK(trace.ok());
    const int64_t week = EpochsPerWeek(trace_options);
    Trace training = *trace->Slice(0, week);
    Trace eval = *trace->Slice(week, 5 * week);

    auto threshold = ThresholdForOverflowFraction(eval, {}, 0.01);
    DCV_CHECK(threshold.ok());
    SimOptions sim;
    sim.global_threshold = *threshold;

    FptasSolver fptas(0.05);
    auto run = [&](bool change_detection) {
      LocalThresholdScheme::Options o;
      o.solver = &fptas;
      o.change_detection = change_detection;
      o.change_options.window_size = 574;  // Two whole days: no diurnal aliasing.
      o.change_options.alpha = 1e-10;
      o.change_options.cooldown = 1435;
      LocalThresholdScheme scheme(o);
      auto segments = RunSimulationSegments(&scheme, sim, training, eval, week);
      DCV_CHECK(segments.ok()) << segments.status();
      std::vector<int64_t> messages;
      for (const SimResult& s : *segments) {
        DCV_CHECK(s.missed_violations == 0);
        messages.push_back(s.messages.total());
      }
      messages.push_back(scheme.num_recomputes());
      return messages;
    };

    std::printf("\nshift factor %.1f (global T=%lld, 1%% overflow):\n",
                shift_factor, static_cast<long long>(*threshold));
    bench::PrintRow({"scheme", "week1", "week2", "week3", "week4",
                     "recomputes"});
    auto stale = run(false);
    auto fresh = run(true);
    bench::PrintRow({"static", bench::Fmt(stale[0]), bench::Fmt(stale[1]),
                     bench::Fmt(stale[2]), bench::Fmt(stale[3]),
                     bench::Fmt(stale[4])});
    bench::PrintRow({"change-det", bench::Fmt(fresh[0]), bench::Fmt(fresh[1]),
                     bench::Fmt(fresh[2]), bench::Fmt(fresh[3]),
                     bench::Fmt(fresh[4])});
  }

  std::printf(
      "\nExpected shape: identical in week 1 (no shift yet); for larger "
      "shifts the\nstatic scheme's messages blow up in weeks 2-4 while "
      "change detection recovers\nafter one recomputation. With shift "
      "factor 1.0 (stationary data), change\ndetection should not fire — "
      "matching the paper's observation that weekly\nhistograms are stable "
      "predictors.\n");
  return 0;
}

}  // namespace
}  // namespace dcv

int main() { return dcv::Main(); }
