// Throughput of the concurrent runtime (src/runtime) in free-running mode:
// N site threads push synthetic updates through the mailbox transport while
// the coordinator serves alarms and poll rounds. Reports aggregate
// updates/sec per site count — the scaling story for the threaded runtime
// vs. the single-threaded lockstep simulator.
//
// Usage: bench_runtime [--updates 200000] [--sites 2,4,8,16] [--seed 42]
//                      [--alarm-fraction 0.02] [--workers 0]
//                      [--transport thread|socket]
//
// --transport socket runs the same workload through the TCP transport on
// loopback (worker drivers in-process, one per worker thread), measuring
// the framing + kernel socket overhead against the mailbox baseline.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "runtime/runtime.h"
#include "runtime/site_worker.h"

namespace dcv {
namespace {

struct BenchConfig {
  int64_t updates = 200000;  ///< Per site.
  std::vector<int> site_counts = {2, 4, 8, 16};
  uint64_t seed = 42;
  double alarm_fraction = 0.02;  ///< Fraction of updates breaching T_i.
  int workers = 0;               ///< 0 = one thread per site.
  bool socket = false;           ///< Loopback TCP instead of mailboxes.
};

Result<BenchConfig> ParseArgs(int argc, char** argv) {
  FlagSet flags;
  flags.Value("updates").Value("sites").Value("seed").Value("alarm-fraction")
      .Value("workers").Value("transport");
  DCV_ASSIGN_OR_RETURN(ParsedFlags parsed, flags.Parse(argc, argv, 1));
  BenchConfig config;
  DCV_ASSIGN_OR_RETURN(config.updates,
                       parsed.GetInt("updates", config.updates));
  DCV_ASSIGN_OR_RETURN(
      int64_t seed, parsed.GetInt("seed", static_cast<int64_t>(config.seed)));
  config.seed = static_cast<uint64_t>(seed);
  DCV_ASSIGN_OR_RETURN(
      config.alarm_fraction,
      parsed.GetDouble("alarm-fraction", config.alarm_fraction));
  DCV_ASSIGN_OR_RETURN(int64_t workers,
                       parsed.GetInt("workers", config.workers));
  config.workers = static_cast<int>(workers);
  if (parsed.Has("sites")) {
    config.site_counts.clear();
    for (const std::string& tok :
         StrSplit(parsed.GetString("sites", ""), ',')) {
      DCV_ASSIGN_OR_RETURN(int64_t n, ParseInt64(tok));
      config.site_counts.push_back(static_cast<int>(n));
    }
  }
  const std::string transport = parsed.GetString("transport", "thread");
  if (transport == "socket") {
    config.socket = true;
  } else if (transport != "thread") {
    return InvalidArgumentError("--transport must be thread or socket");
  }
  return config;
}

int RunBench(const BenchConfig& config) {
  constexpr int64_t kSyntheticMax = 1'000'000;
  // T_i so that roughly alarm_fraction of U[0, max] draws breach it:
  // enough protocol traffic to be honest, not enough to serialize on the
  // coordinator.
  const int64_t site_threshold = static_cast<int64_t>(
      static_cast<double>(kSyntheticMax) * (1.0 - config.alarm_fraction));

  std::printf("# free-running runtime throughput (updates/site: %" PRId64
              ", alarm fraction: %.3f, transport: %s)\n",
              config.updates, config.alarm_fraction,
              config.socket ? "socket" : "thread");
  std::printf("%8s %8s %14s %12s %14s %10s %10s\n", "sites", "threads",
              "updates", "seconds", "updates/sec", "alarms", "polls");
  for (int sites : config.site_counts) {
    RuntimeOptions options;
    options.virtual_time = false;
    options.num_workers =
        config.workers == 0 ? 0 : std::min(config.workers, sites);
    options.seed = config.seed;
    options.synthetic_max = kSyntheticMax;
    options.global_threshold =
        static_cast<int64_t>(sites) * kSyntheticMax;  // Polls never flag.
    options.thresholds.assign(static_cast<size_t>(sites), site_threshold);
    options.domain_max.assign(static_cast<size_t>(sites), kSyntheticMax);

    // Socket mode: the coordinator listens on an ephemeral loopback port
    // and each worker drives its sites through a real TCP connection from
    // an in-process thread.
    std::vector<std::thread> worker_threads;
    if (config.socket) {
      const int num_workers =
          options.num_workers == 0 ? sites : options.num_workers;
      options.transport = TransportKind::kSocket;
      options.listen_port = 0;
      options.on_listening = [&worker_threads, num_workers, sites,
                              &config](int port) {
        for (int w = 0; w < num_workers; ++w) {
          worker_threads.emplace_back([w, port, num_workers, sites, &config] {
            SiteWorkerOptions wo;
            wo.port = port;
            wo.worker = w;
            wo.num_workers = num_workers;
            wo.num_sites = sites;
            wo.synthetic_updates = config.updates;
            wo.seed = config.seed;
            wo.synthetic_max = 1'000'000;
            auto report = RunSiteWorker(nullptr, wo);
            if (!report.ok()) {
              std::fprintf(stderr, "bench_runtime worker %d: %s\n", w,
                           std::string(report.status().message()).c_str());
            }
          });
        }
      };
    }
    auto result = RunSyntheticRuntime(sites, config.updates, options);
    for (std::thread& t : worker_threads) {
      t.join();
    }
    if (!result.ok()) {
      std::fprintf(stderr, "bench_runtime: %s\n",
                   std::string(result.status().message()).c_str());
      return 1;
    }
    const int threads = options.num_workers == 0 ? sites : options.num_workers;
    std::printf("%8d %8d %14" PRId64 " %12.3f %14.0f %10" PRId64
                " %10" PRId64 "\n",
                sites, threads, result->total_updates,
                result->elapsed_seconds, result->updates_per_second,
                result->total_alarms, result->polled_epochs);
  }
  return 0;
}

}  // namespace
}  // namespace dcv

int main(int argc, char** argv) {
  auto config = dcv::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "bench_runtime: %s\n",
                 std::string(config.status().message()).c_str());
    return 2;
  }
  return dcv::RunBench(*config);
}
