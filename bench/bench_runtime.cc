// Throughput of the concurrent runtime (src/runtime) in free-running mode:
// N site threads push synthetic updates through the mailbox transport while
// the coordinator serves alarms and poll rounds. Reports aggregate
// updates/sec per (site count, shard count) — the scaling story for the
// threaded runtime vs. the single-threaded lockstep simulator, and for the
// two-level coordinator tree (--shards) vs. the flat coordinator.
//
// Usage: bench_runtime [--updates U] [--sites 2,4,8,16] [--shards 1]
//                      [--seed 42] [--alarm-fraction 0.02] [--workers 0]
//                      [--engine multiplexed|actor]
//                      [--transport thread|socket] [--json out.json]
//                      [--chaos none|kill-shard] [--chaos-seed 3]
//                      [--heartbeat-timeout-ms 500]
//                      [--trace file [--train-epochs N] [--threshold T]]
//
// When --updates is omitted, each configuration gets a per-site update
// count derived from a fixed total budget (~2e8 updates, clamped to
// [50, 200000] per site), so a single sweep can span 2 sites to a million
// sites without either finishing in microseconds or running for hours.
// --engine picks the site-side data plane: "multiplexed" (default) packs
// every worker's sites into one flat SoA loop; "actor" is the
// one-object-per-site baseline the EXPERIMENTS comparison row measures
// against.
//
// --trace switches from the synthetic sweep to free-running replay of a
// recorded trace (CSV or the dcvb binary format — sniffed by magic bytes):
// the first --train-epochs epochs train local thresholds (FPTAS), the rest
// replay through the runtime at full speed, one row per site update. The
// --sites list is ignored (the trace fixes the site count); --shards still
// sweeps.
//
// --shards takes a comma list of coordinator shard counts; each is run
// against each site count (shard counts above the site count are skipped).
// --json writes every configuration's updates/sec, coordinator latency
// distribution, and detection-lag quantiles (p50/p95/p99 of
// runtime/detection_lag_epochs — how far the free-running coordinator
// trails the lockstep ground truth per poll round) to a metrics JSON file
// (the BENCH_runtime.json artifact).
// --transport socket runs the same workload through the TCP transport on
// loopback (worker drivers in-process, one per worker thread), measuring
// the framing + kernel socket overhead against the mailbox baseline.
// --chaos kill-shard injects one seed-resolved shard crash into every
// configuration and reports the measured recovery time; shards=1 configs
// run healthy (a flat coordinator has no shard to lose). Recovery gauges
// (shard_recoveries, recovery_ms) are always emitted so the JSON schema
// is stable with and without chaos.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/strings.h"
#include "obs/obs.h"
#include "runtime/chaos.h"
#include "runtime/runtime.h"
#include "runtime/site_worker.h"
#include "threshold/fptas.h"
#include "trace/stats.h"
#include "trace/trace_bin.h"

namespace dcv {
namespace {

struct BenchConfig {
  int64_t updates = 0;  ///< Per site; 0 = auto budget (see header comment).
  std::vector<int> site_counts = {2, 4, 8, 16};
  std::vector<int> shard_counts = {1};
  uint64_t seed = 42;
  double alarm_fraction = 0.02;  ///< Fraction of updates breaching T_i.
  int workers = 0;               ///< 0 = auto (RuntimeOptions::num_workers).
  SiteEngineKind engine = SiteEngineKind::kMultiplexed;
  bool socket = false;           ///< Loopback TCP instead of mailboxes.
  std::string json_path;         ///< Empty = no JSON artifact.
  ChaosSpec chaos;               ///< One injected failure per config.
  int heartbeat_timeout_ms = 0;  ///< 0 = 500 when chaos is requested.
  std::string trace_path;        ///< Empty = synthetic sweep.
  int64_t train_epochs = 0;      ///< 0 = half the trace.
  int64_t threshold = -1;        ///< <0 = 1% overflow on the eval slice.
};

/// Largest site/shard/worker count any flag accepts. Same ceiling dcvtool
/// enforces: keeps every derived quantity (mailbox capacities of
/// 2 * sites + 16, budget divisions, per-run totals) inside int64 and the
/// per-element static_cast<int> below lossless.
constexpr int64_t kMaxSites = 50'000'000;

/// Parses a comma list of counts, validating each element against
/// [1, kMaxSites] so a value like 10e9 fails loudly here instead of
/// wrapping negative in the int narrowing and crashing the fabric setup.
Result<std::vector<int>> ParseIntList(const std::string& csv,
                                      const char* flag) {
  std::vector<int> out;
  for (const std::string& tok : StrSplit(csv, ',')) {
    DCV_ASSIGN_OR_RETURN(int64_t n, ParseInt64(tok));
    if (n < 1 || n > kMaxSites) {
      return InvalidArgumentError(
          std::string(flag) + " entries must be in [1, " +
          std::to_string(kMaxSites) + "], got " + std::to_string(n));
    }
    out.push_back(static_cast<int>(n));
  }
  if (out.empty()) {
    return InvalidArgumentError(std::string(flag) +
                                " needs at least one value");
  }
  return out;
}

/// Per-site update count for one configuration: the explicit --updates
/// value, or a slice of the fixed total budget when the flag was omitted.
int64_t UpdatesPerSite(const BenchConfig& config, int sites) {
  if (config.updates > 0) {
    return config.updates;
  }
  constexpr int64_t kTotalBudget = 200'000'000;
  constexpr int64_t kMinPerSite = 50;
  constexpr int64_t kMaxPerSite = 200'000;
  const int64_t per_site = kTotalBudget / std::max(sites, 1);
  return std::min(kMaxPerSite, std::max(kMinPerSite, per_site));
}

Result<BenchConfig> ParseArgs(int argc, char** argv) {
  FlagSet flags;
  flags.Value("updates").Value("sites").Value("shards").Value("seed")
      .Value("alarm-fraction").Value("workers").Value("engine")
      .Value("transport").Value("json").Value("chaos").Value("chaos-seed")
      .Value("heartbeat-timeout-ms").Value("trace").Value("train-epochs")
      .Value("threshold");
  DCV_ASSIGN_OR_RETURN(ParsedFlags parsed, flags.Parse(argc, argv, 1));
  BenchConfig config;
  DCV_ASSIGN_OR_RETURN(config.updates,
                       parsed.GetInt("updates", config.updates));
  if (parsed.Has("updates") && config.updates < 1) {
    return InvalidArgumentError("--updates must be >= 1, got " +
                                std::to_string(config.updates));
  }
  DCV_ASSIGN_OR_RETURN(
      int64_t seed, parsed.GetInt("seed", static_cast<int64_t>(config.seed)));
  config.seed = static_cast<uint64_t>(seed);
  DCV_ASSIGN_OR_RETURN(
      config.alarm_fraction,
      parsed.GetDouble("alarm-fraction", config.alarm_fraction));
  DCV_ASSIGN_OR_RETURN(int64_t workers,
                       parsed.GetInt("workers", config.workers));
  if (workers < 0 || workers > kMaxSites) {
    return InvalidArgumentError("--workers must be in [0, " +
                                std::to_string(kMaxSites) + "], got " +
                                std::to_string(workers));
  }
  config.workers = static_cast<int>(workers);
  const std::string engine = parsed.GetString("engine", "multiplexed");
  if (engine == "actor") {
    config.engine = SiteEngineKind::kActorPerSite;
  } else if (engine != "multiplexed") {
    return InvalidArgumentError("--engine must be multiplexed or actor");
  }
  if (parsed.Has("sites")) {
    DCV_ASSIGN_OR_RETURN(
        config.site_counts,
        ParseIntList(parsed.GetString("sites", ""), "--sites"));
  }
  if (parsed.Has("shards")) {
    DCV_ASSIGN_OR_RETURN(
        config.shard_counts,
        ParseIntList(parsed.GetString("shards", ""), "--shards"));
  }
  for (int sites : config.site_counts) {
    if (config.updates > 0 &&
        config.updates > std::numeric_limits<int64_t>::max() / sites) {
      return InvalidArgumentError(
          "--sites * --updates overflows a 64-bit total");
    }
  }
  config.json_path = parsed.GetString("json", "");
  const std::string transport = parsed.GetString("transport", "thread");
  if (transport == "socket") {
    config.socket = true;
  } else if (transport != "thread") {
    return InvalidArgumentError("--transport must be thread or socket");
  }
  if (parsed.Has("chaos")) {
    DCV_ASSIGN_OR_RETURN(config.chaos.kind,
                         ParseChaosKind(parsed.GetString("chaos", "none")));
  }
  if (config.chaos.kind == ChaosKind::kKillWorker ||
      config.chaos.kind == ChaosKind::kReshard) {
    // kill-worker and reshard only exist for the virtual-time/socket
    // conformance runs; the free-running throughput sweep measures
    // shard-loss recovery.
    return InvalidArgumentError(
        "bench_runtime only supports --chaos kill-shard (the free-running "
        "sweep measures shard-loss recovery)");
  }
  DCV_ASSIGN_OR_RETURN(int64_t chaos_seed, parsed.GetInt("chaos-seed", 3));
  config.chaos.seed = static_cast<uint64_t>(chaos_seed);
  DCV_ASSIGN_OR_RETURN(
      int64_t heartbeat,
      parsed.GetInt("heartbeat-timeout-ms", config.heartbeat_timeout_ms));
  if (heartbeat < 0) {
    return InvalidArgumentError("--heartbeat-timeout-ms must be >= 0");
  }
  config.heartbeat_timeout_ms = static_cast<int>(heartbeat);
  if (config.chaos.kind != ChaosKind::kNone &&
      config.heartbeat_timeout_ms == 0) {
    // A chaos sweep with no failure detector would hang forever; that is
    // never what was asked for.
    config.heartbeat_timeout_ms = 500;
  }
  config.trace_path = parsed.GetString("trace", "");
  DCV_ASSIGN_OR_RETURN(config.train_epochs,
                       parsed.GetInt("train-epochs", config.train_epochs));
  DCV_ASSIGN_OR_RETURN(config.threshold,
                       parsed.GetInt("threshold", config.threshold));
  if (config.trace_path.empty() &&
      (config.train_epochs != 0 || config.threshold >= 0)) {
    return InvalidArgumentError(
        "--train-epochs/--threshold only apply with --trace");
  }
  return config;
}

/// Trace replay: free-running RunMonitorRuntime over the eval slice, one
/// table row per shard count. Accepts both trace formats via LoadTrace —
/// this is the disk-speed replay consumer of the binary container.
Status RunTraceBench(const BenchConfig& config) {
  DCV_ASSIGN_OR_RETURN(Trace trace, LoadTrace(config.trace_path));
  const int64_t train = config.train_epochs > 0 ? config.train_epochs
                                                : trace.num_epochs() / 2;
  if (train < 1 || train >= trace.num_epochs()) {
    return InvalidArgumentError("--train-epochs out of range");
  }
  DCV_ASSIGN_OR_RETURN(Trace training, trace.Slice(0, train));
  DCV_ASSIGN_OR_RETURN(Trace eval, trace.Slice(train, trace.num_epochs()));
  int64_t threshold = config.threshold;
  if (threshold < 0) {
    DCV_ASSIGN_OR_RETURN(threshold,
                         ThresholdForOverflowFraction(eval, {}, 0.01));
  }
  FptasSolver solver(0.05);

  obs::MetricsRegistry summary;
  std::printf("# free-running trace replay (%s: %d sites, %" PRId64
              " train + %" PRId64 " eval epochs, threshold %" PRId64 ")\n",
              config.trace_path.c_str(), eval.num_sites(), train,
              eval.num_epochs(), threshold);
  std::printf("%8s %8s %14s %12s %14s %10s %10s\n", "sites", "shards",
              "updates", "seconds", "updates/sec", "alarms", "polls");
  for (int shards : config.shard_counts) {
    if (shards > eval.num_sites()) {
      std::printf("# skipping shards=%d (shards > sites)\n", shards);
      continue;
    }
    obs::MetricsRegistry run_metrics;
    RuntimeOptions options;
    options.virtual_time = false;
    options.engine = config.engine;
    options.num_workers =
        config.workers == 0 ? 0 : std::min(config.workers, eval.num_sites());
    options.num_shards = shards;
    options.seed = config.seed;
    options.global_threshold = threshold;
    options.solver = &solver;
    options.metrics = &run_metrics;
    DCV_ASSIGN_OR_RETURN(RuntimeResult result,
                         RunMonitorRuntime(training, eval, options));
    std::printf("%8d %8d %14" PRId64 " %12.3f %14.0f %10" PRId64
                " %10" PRId64 "\n",
                eval.num_sites(), shards, result.total_updates,
                result.elapsed_seconds, result.updates_per_second,
                result.total_alarms, result.polled_epochs);
    const std::string prefix =
        "bench/runtime/trace/shards=" + std::to_string(shards) + "/";
    summary.gauge(prefix + "updates_per_sec")->Set(result.updates_per_second);
    summary.gauge(prefix + "elapsed_seconds")->Set(result.elapsed_seconds);
    summary.gauge(prefix + "alarms")
        ->Set(static_cast<double>(result.total_alarms));
    summary.gauge(prefix + "polls")
        ->Set(static_cast<double>(result.polled_epochs));
  }
  if (!config.json_path.empty() &&
      !bench::WriteMetricsJson(summary, config.json_path)) {
    return InternalError("cannot write " + config.json_path);
  }
  return OkStatus();
}

int RunBench(const BenchConfig& config) {
  constexpr int64_t kSyntheticMax = 1'000'000;
  // T_i so that roughly alarm_fraction of U[0, max] draws breach it:
  // enough protocol traffic to be honest, not enough to serialize on the
  // coordinator.
  const int64_t site_threshold = static_cast<int64_t>(
      static_cast<double>(kSyntheticMax) * (1.0 - config.alarm_fraction));

  // Every configuration's headline numbers land in this registry under a
  // "bench/runtime/sites=N/shards=K/" prefix; --json dumps it at the end.
  obs::MetricsRegistry summary;

  if (config.updates > 0) {
    std::printf("# free-running runtime throughput (updates/site: %" PRId64
                ", alarm fraction: %.3f, engine: %s, transport: %s)\n",
                config.updates, config.alarm_fraction,
                config.engine == SiteEngineKind::kMultiplexed ? "multiplexed"
                                                              : "actor",
                config.socket ? "socket" : "thread");
  } else {
    std::printf("# free-running runtime throughput (updates/site: auto "
                "budget, alarm fraction: %.3f, engine: %s, transport: %s)\n",
                config.alarm_fraction,
                config.engine == SiteEngineKind::kMultiplexed ? "multiplexed"
                                                              : "actor",
                config.socket ? "socket" : "thread");
  }
  std::printf("%8s %8s %8s %14s %12s %14s %10s %10s %14s\n", "sites",
              "threads", "shards", "updates", "seconds", "updates/sec",
              "alarms", "polls", "poll-us(mean)");
  for (int sites : config.site_counts) {
    for (int shards : config.shard_counts) {
      if (shards > sites) {
        std::printf("# skipping shards=%d for sites=%d (shards > sites)\n",
                    shards, sites);
        continue;
      }
      const int64_t updates = UpdatesPerSite(config, sites);
      // Per-run registry so the coordinator latency histograms are not
      // merged across configurations.
      obs::MetricsRegistry run_metrics;
      RuntimeOptions options;
      options.virtual_time = false;
      options.engine = config.engine;
      options.num_workers =
          config.workers == 0 ? 0 : std::min(config.workers, sites);
      options.num_shards = shards;
      options.seed = config.seed;
      options.synthetic_max = kSyntheticMax;
      options.global_threshold =
          static_cast<int64_t>(sites) * kSyntheticMax;  // Polls never flag.
      options.thresholds.assign(static_cast<size_t>(sites), site_threshold);
      options.domain_max.assign(static_cast<size_t>(sites), kSyntheticMax);
      options.metrics = &run_metrics;
      options.chaos = config.chaos;
      options.heartbeat_timeout_ms = config.heartbeat_timeout_ms;
      if (config.chaos.kind == ChaosKind::kKillShard && shards < 2) {
        // A flat coordinator has no shard to lose; run this config healthy
        // so the sweep still covers it.
        std::printf("# shards=1 for sites=%d runs healthy (kill-shard needs "
                    "a sharded tree)\n",
                    sites);
        options.chaos = ChaosSpec{};
        options.heartbeat_timeout_ms = 0;
      }

      // Socket mode: the coordinator listens on an ephemeral loopback port
      // and each worker drives its sites through a real TCP connection from
      // an in-process thread.
      std::vector<std::thread> worker_threads;
      if (config.socket) {
        const int num_workers =
            options.num_workers == 0 ? sites : options.num_workers;
        options.transport = TransportKind::kSocket;
        options.listen_port = 0;
        options.on_listening = [&worker_threads, num_workers, sites, updates,
                                &config](int port) {
          for (int w = 0; w < num_workers; ++w) {
            worker_threads.emplace_back([w, port, num_workers, sites, updates,
                                         &config] {
              SiteWorkerOptions wo;
              wo.port = port;
              wo.worker = w;
              wo.num_workers = num_workers;
              wo.num_sites = sites;
              wo.engine = config.engine;
              wo.synthetic_updates = updates;
              wo.seed = config.seed;
              wo.synthetic_max = 1'000'000;
              auto report = RunSiteWorker(nullptr, wo);
              if (!report.ok()) {
                std::fprintf(stderr, "bench_runtime worker %d: %s\n", w,
                             std::string(report.status().message()).c_str());
              }
            });
          }
        };
      }
      auto result = RunSyntheticRuntime(sites, updates, options);
      for (std::thread& t : worker_threads) {
        t.join();
      }
      if (!result.ok()) {
        std::fprintf(stderr, "bench_runtime: %s\n",
                     std::string(result.status().message()).c_str());
        return 1;
      }
      const obs::HistogramSnapshot poll_us =
          run_metrics.histogram("runtime/coordinator/poll_round_us")
              ->Snapshot();
      // Detection lag: how many watermark epochs the free-running
      // coordinator trails the lockstep ground truth (which detects in the
      // trigger epoch itself) per poll round.
      const obs::HistogramSnapshot lag =
          run_metrics.histogram("runtime/detection_lag_epochs",
                                obs::Histogram::ExponentialBounds(1.0, 2.0, 16))
              ->Snapshot();
      // Mirror Launch's auto-resolution: the multiplexed engine defaults to
      // one thread per core, the actor engine to one thread per site.
      const int hw = std::max(
          1, static_cast<int>(std::thread::hardware_concurrency()));
      const int threads =
          options.num_workers != 0 ? options.num_workers
          : config.engine == SiteEngineKind::kMultiplexed ? std::min(sites, hw)
                                                          : sites;
      std::printf("%8d %8d %8d %14" PRId64 " %12.3f %14.0f %10" PRId64
                  " %10" PRId64 " %14.1f\n",
                  sites, threads, shards, result->total_updates,
                  result->elapsed_seconds, result->updates_per_second,
                  result->total_alarms, result->polled_epochs,
                  poll_us.mean());
      if (lag.count > 0) {
        std::printf("# detection lag (epochs): p50=%.1f p95=%.1f p99=%.1f "
                    "over %" PRId64 " rounds\n",
                    lag.Quantile(0.5), lag.Quantile(0.95), lag.Quantile(0.99),
                    lag.count);
      }
      if (result->shard_recoveries > 0) {
        std::printf("# recovered %" PRId64 " shard(s) in %.1f ms; no "
                    "updates lost\n",
                    result->shard_recoveries, result->recovery_ms);
      }

      const std::string prefix = "bench/runtime/sites=" +
                                 std::to_string(sites) +
                                 "/shards=" + std::to_string(shards) + "/";
      summary.gauge(prefix + "updates_per_sec")
          ->Set(result->updates_per_second);
      summary.gauge(prefix + "elapsed_seconds")->Set(result->elapsed_seconds);
      summary.gauge(prefix + "alarms")
          ->Set(static_cast<double>(result->total_alarms));
      summary.gauge(prefix + "polls")
          ->Set(static_cast<double>(result->polled_epochs));
      summary.gauge(prefix + "poll_round_us_mean")->Set(poll_us.mean());
      summary.gauge(prefix + "poll_round_us_max")->Set(poll_us.max);
      summary.gauge(prefix + "poll_round_count")
          ->Set(static_cast<double>(poll_us.count));
      summary.gauge(prefix + "shard_recoveries")
          ->Set(static_cast<double>(result->shard_recoveries));
      summary.gauge(prefix + "recovery_ms")->Set(result->recovery_ms);
      // Always emitted (0 when no poll round fired) so the JSON schema is
      // stable across sweep shapes.
      summary.gauge(prefix + "detection_lag_rounds")
          ->Set(static_cast<double>(lag.count));
      summary.gauge(prefix + "detection_lag_epochs_p50")
          ->Set(lag.count > 0 ? lag.Quantile(0.5) : 0.0);
      summary.gauge(prefix + "detection_lag_epochs_p95")
          ->Set(lag.count > 0 ? lag.Quantile(0.95) : 0.0);
      summary.gauge(prefix + "detection_lag_epochs_p99")
          ->Set(lag.count > 0 ? lag.Quantile(0.99) : 0.0);
    }
  }
  if (!config.json_path.empty() &&
      !bench::WriteMetricsJson(summary, config.json_path)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dcv

int main(int argc, char** argv) {
  auto config = dcv::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "bench_runtime: %s\n",
                 std::string(config.status().message()).c_str());
    return 2;
  }
  if (!config->trace_path.empty()) {
    dcv::Status status = dcv::RunTraceBench(*config);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_runtime: %s\n",
                   std::string(status.message()).c_str());
      return 1;
    }
    return 0;
  }
  return dcv::RunBench(*config);
}
