// The paper's future-work extension (§7): multiple local thresholds per
// site. Sites report band crossings (1 message) instead of raw alarms; the
// coordinator polls only when the per-band upper bounds can no longer
// certify the global constraint. This bench quantifies the trade-off the
// paper anticipates: "the additional traffic because of more threshold
// violations and the savings due to reduced polling".

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "sim/local_scheme.h"
#include "sim/multilevel_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

namespace dcv {
namespace {

int Main() {
  SnmpTraceOptions trace_options;
  trace_options.num_sites = 10;
  trace_options.num_weeks = 3;
  trace_options.seed = 31337;
  auto trace = GenerateSnmpTrace(trace_options);
  DCV_CHECK(trace.ok());
  const int64_t week = EpochsPerWeek(trace_options);
  Trace training = *trace->Slice(0, week);
  Trace eval = *trace->Slice(week, 3 * week);

  bench::PrintHeader(
      "S7 extension: multi-level local thresholds vs the single-threshold "
      "scheme\n(10 sites, 2 eval weeks; reports = band-crossing messages, "
      "polls = 2n each)");

  FptasSolver fptas(0.05);
  for (double frac : {0.001, 0.01, 0.05}) {
    auto threshold = ThresholdForOverflowFraction(eval, {}, frac);
    DCV_CHECK(threshold.ok());
    SimOptions sim;
    sim.global_threshold = *threshold;

    std::printf("\noverflow %.1f%% (T=%lld):\n", 100 * frac,
                static_cast<long long>(*threshold));
    bench::PrintRow({"scheme", "reports", "alarms", "polls", "total msgs"});

    LocalThresholdScheme::Options single_options;
    single_options.solver = &fptas;
    LocalThresholdScheme single(single_options);
    auto r1 = RunSimulation(&single, sim, training, eval);
    DCV_CHECK(r1.ok());
    DCV_CHECK(r1->missed_violations == 0);
    bench::PrintRow({"single-threshold", bench::Fmt(int64_t{0}),
                     bench::Fmt(r1->messages.of(MessageType::kAlarm)),
                     bench::Fmt(r1->polled_epochs),
                     bench::Fmt(r1->messages.total())});

    for (int levels : {2, 3, 4, 6, 10}) {
      MultiLevelScheme::Options options;
      options.solver = &fptas;
      options.num_levels = levels;
      MultiLevelScheme scheme(options);
      auto r = RunSimulation(&scheme, sim, training, eval);
      DCV_CHECK(r.ok()) << r.status();
      DCV_CHECK(r->missed_violations == 0)
          << "multi-level covering broken at " << levels << " levels";
      bench::PrintRow(
          {"multi-level/" + std::to_string(levels),
           bench::Fmt(r->messages.of(MessageType::kFilterReport)),
           bench::Fmt(int64_t{0}), bench::Fmt(r->polled_epochs),
           bench::Fmt(r->messages.total())});
    }
  }

  std::printf(
      "\nExpected shape: more levels -> more band-crossing reports but far "
      "fewer\nfull polls; total messages should dip at a moderate level "
      "count and rise\nagain when reports dominate — the trade-off §7 "
      "anticipates.\n");
  return 0;
}

}  // namespace
}  // namespace dcv

int main() { return dcv::Main(); }
