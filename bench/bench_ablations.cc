// Ablations of the design choices DESIGN.md calls out:
//  1. histogram resolution (paper fixes 100 equi-depth buckets),
//  2. equi-depth vs equi-width histograms,
//  3. the independence assumption (§3.2) under correlated sites,
//  4. the FPTAS slack-redistribution post-pass.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "sim/local_scheme.h"
#include "sim/runner.h"
#include "threshold/fptas.h"
#include "threshold/heuristics.h"
#include "trace/snmp_synth.h"
#include "trace/stats.h"

namespace dcv {
namespace {

struct Workload {
  Trace training{0};
  Trace eval{0};
  int64_t threshold = 0;
};

Workload MakeWorkload(double correlation, uint64_t seed,
                      double overflow = 0.01) {
  SnmpTraceOptions options;
  options.num_sites = 10;
  options.num_weeks = 3;
  options.seed = seed;
  options.correlation = correlation;
  auto trace = GenerateSnmpTrace(options);
  DCV_CHECK(trace.ok());
  const int64_t week = EpochsPerWeek(options);
  Workload w;
  w.training = *trace->Slice(0, week);
  w.eval = *trace->Slice(week, 3 * week);
  auto threshold = ThresholdForOverflowFraction(w.eval, {}, overflow);
  DCV_CHECK(threshold.ok());
  w.threshold = *threshold;
  return w;
}

int64_t Run(const Workload& w, LocalThresholdScheme::Options options) {
  LocalThresholdScheme scheme(options);
  SimOptions sim;
  sim.global_threshold = w.threshold;
  auto r = RunSimulation(&scheme, sim, w.training, w.eval);
  DCV_CHECK(r.ok()) << r.status();
  DCV_CHECK(r->missed_violations == 0);
  return r->messages.total();
}

int Main() {
  FptasSolver fptas(0.05);

  // --- 1 & 2: histogram resolution and flavor ---------------------------
  bench::PrintHeader(
      "Ablation: histogram resolution and flavor (messages, FPTAS "
      "thresholds,\n10 sites, 2 eval weeks, T at 1% overflow)");
  bench::PrintRow({"buckets", "equi-depth", "equi-width"});
  Workload w = MakeWorkload(0.0, 99);
  for (int buckets : {5, 10, 25, 50, 100, 200}) {
    LocalThresholdScheme::Options depth;
    depth.solver = &fptas;
    depth.histogram_buckets = buckets;
    LocalThresholdScheme::Options width = depth;
    width.histogram_kind = LocalThresholdScheme::HistogramKind::kEquiWidth;
    bench::PrintRow({bench::Fmt(static_cast<int64_t>(buckets)),
                     bench::Fmt(Run(w, depth)), bench::Fmt(Run(w, width))});
  }

  // --- 3: independence assumption under correlation ---------------------
  bench::PrintHeader(
      "Ablation: independence assumption under cross-site correlation\n"
      "(the paper estimates P(all hold) as a product of marginals; "
      "correlated bursts\nmake that estimate optimistic — message ratios "
      "show how gracefully it degrades)");
  bench::PrintRow({"correlation", "FPTAS", "Equal-Value", "Equal-Tail",
                   "EV/FPTAS"});
  EqualValueSolver equal_value;
  EqualTailSolver equal_tail;
  for (double rho : {0.0, 0.3, 0.6, 0.9}) {
    Workload wc = MakeWorkload(rho, 1234);
    LocalThresholdScheme::Options base;
    base.solver = &fptas;
    int64_t f = Run(wc, base);
    base.solver = &equal_value;
    int64_t ev = Run(wc, base);
    base.solver = &equal_tail;
    int64_t et = Run(wc, base);
    bench::PrintRow({bench::Fmt(rho, 1), bench::Fmt(f), bench::Fmt(ev),
                     bench::Fmt(et),
                     bench::Fmt(static_cast<double>(ev) /
                                static_cast<double>(f))});
  }

  // --- 4: piggybacking values on alarms ----------------------------------
  bench::PrintHeader(
      "Ablation: value-carrying alarms + reserved headroom "
      "(budget_discount)\n(the coordinator certifies safety from alarms "
      "plus installed thresholds and\npolls only when the bound is "
      "inconclusive; discount 1.0 without piggyback\nis the paper's "
      "protocol)");
  bench::PrintRow({"overflow%", "paper", "pb/1.0", "pb/0.95", "pb/0.9",
                   "pb/0.8"});
  for (double frac : {0.001, 0.01, 0.05}) {
    Workload wp = MakeWorkload(0.0, 321, frac);
    LocalThresholdScheme::Options plain;
    plain.solver = &fptas;
    std::vector<std::string> row{bench::Fmt(100 * frac, 1),
                                 bench::Fmt(Run(wp, plain))};
    for (double discount : {1.0, 0.95, 0.9, 0.8}) {
      LocalThresholdScheme::Options piggyback = plain;
      piggyback.piggyback_values = true;
      piggyback.budget_discount = discount;
      row.push_back(bench::Fmt(Run(wp, piggyback)));
    }
    bench::PrintRow(row);
  }

  // --- 5: global-check protocol: polling vs Olston-style tracking --------
  bench::PrintHeader(
      "Ablation: global check while alarmed — per-epoch polling (paper's "
      "S6) vs\nOlston-style tracking of only the above-threshold sites "
      "(S3.1's alternative).\nTracking never misses but may over-report "
      "within the filter width.");
  bench::PrintRow({"overflow%", "polling", "tracking", "track msgs/poll "
                   "msgs"});
  for (double frac : {0.001, 0.01, 0.05}) {
    Workload wt = MakeWorkload(0.0, 654, frac);
    LocalThresholdScheme::Options poll_opts;
    poll_opts.solver = &fptas;
    LocalThresholdScheme::Options track_opts = poll_opts;
    track_opts.global_check = LocalThresholdScheme::GlobalCheck::kTrack;
    int64_t poll_msgs = Run(wt, poll_opts);
    int64_t track_msgs = Run(wt, track_opts);
    bench::PrintRow({bench::Fmt(100 * frac, 1), bench::Fmt(poll_msgs),
                     bench::Fmt(track_msgs),
                     bench::Fmt(static_cast<double>(track_msgs) /
                                static_cast<double>(poll_msgs))});
  }

  // --- 6: slack redistribution post-pass --------------------------------
  bench::PrintHeader(
      "Ablation: FPTAS slack redistribution (raising thresholds into unused "
      "budget)\n(messages; redistribution never hurts the objective and "
      "guards against\nout-of-training-range values)");
  bench::PrintRow({"overflow%", "with redistribution", "without"});
  for (double frac : {0.001, 0.01, 0.05}) {
    Workload ws = MakeWorkload(0.0, 777, frac);
    FptasSolver::Options with_opts;
    with_opts.eps = 0.05;
    FptasSolver::Options without_opts = with_opts;
    without_opts.redistribute_slack = false;
    FptasSolver with_solver(with_opts);
    FptasSolver without_solver(without_opts);
    LocalThresholdScheme::Options o;
    o.solver = &with_solver;
    int64_t with_msgs = Run(ws, o);
    o.solver = &without_solver;
    int64_t without_msgs = Run(ws, o);
    bench::PrintRow({bench::Fmt(100 * frac, 1), bench::Fmt(with_msgs),
                     bench::Fmt(without_msgs)});
  }
  return 0;
}

}  // namespace
}  // namespace dcv

int main() { return dcv::Main(); }
