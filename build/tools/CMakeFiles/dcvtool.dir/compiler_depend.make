# Empty compiler generated dependencies file for dcvtool.
# This may be replaced when dependencies are built.
