file(REMOVE_RECURSE
  "CMakeFiles/dcvtool.dir/dcvtool.cc.o"
  "CMakeFiles/dcvtool.dir/dcvtool.cc.o.d"
  "dcvtool"
  "dcvtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcvtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
