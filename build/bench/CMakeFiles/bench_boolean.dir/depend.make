# Empty dependencies file for bench_boolean.
# This may be replaced when dependencies are built.
