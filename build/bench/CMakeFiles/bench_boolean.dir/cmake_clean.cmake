file(REMOVE_RECURSE
  "CMakeFiles/bench_boolean.dir/bench_boolean.cc.o"
  "CMakeFiles/bench_boolean.dir/bench_boolean.cc.o.d"
  "bench_boolean"
  "bench_boolean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
