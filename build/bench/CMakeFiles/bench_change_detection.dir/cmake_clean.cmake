file(REMOVE_RECURSE
  "CMakeFiles/bench_change_detection.dir/bench_change_detection.cc.o"
  "CMakeFiles/bench_change_detection.dir/bench_change_detection.cc.o.d"
  "bench_change_detection"
  "bench_change_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_change_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
