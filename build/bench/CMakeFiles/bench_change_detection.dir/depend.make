# Empty dependencies file for bench_change_detection.
# This may be replaced when dependencies are built.
