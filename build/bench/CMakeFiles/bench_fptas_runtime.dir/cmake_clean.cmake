file(REMOVE_RECURSE
  "CMakeFiles/bench_fptas_runtime.dir/bench_fptas_runtime.cc.o"
  "CMakeFiles/bench_fptas_runtime.dir/bench_fptas_runtime.cc.o.d"
  "bench_fptas_runtime"
  "bench_fptas_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fptas_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
