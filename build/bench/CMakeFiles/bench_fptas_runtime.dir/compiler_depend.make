# Empty compiler generated dependencies file for bench_fptas_runtime.
# This may be replaced when dependencies are built.
