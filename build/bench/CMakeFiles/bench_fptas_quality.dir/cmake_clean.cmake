file(REMOVE_RECURSE
  "CMakeFiles/bench_fptas_quality.dir/bench_fptas_quality.cc.o"
  "CMakeFiles/bench_fptas_quality.dir/bench_fptas_quality.cc.o.d"
  "bench_fptas_quality"
  "bench_fptas_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fptas_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
