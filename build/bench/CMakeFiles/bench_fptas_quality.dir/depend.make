# Empty dependencies file for bench_fptas_quality.
# This may be replaced when dependencies are built.
