# Empty compiler generated dependencies file for streaming_site.
# This may be replaced when dependencies are built.
