file(REMOVE_RECURSE
  "CMakeFiles/streaming_site.dir/streaming_site.cpp.o"
  "CMakeFiles/streaming_site.dir/streaming_site.cpp.o.d"
  "streaming_site"
  "streaming_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
