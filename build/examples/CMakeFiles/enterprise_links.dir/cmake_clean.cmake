file(REMOVE_RECURSE
  "CMakeFiles/enterprise_links.dir/enterprise_links.cpp.o"
  "CMakeFiles/enterprise_links.dir/enterprise_links.cpp.o.d"
  "enterprise_links"
  "enterprise_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
