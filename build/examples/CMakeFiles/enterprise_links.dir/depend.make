# Empty dependencies file for enterprise_links.
# This may be replaced when dependencies are built.
