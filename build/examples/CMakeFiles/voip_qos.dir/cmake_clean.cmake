file(REMOVE_RECURSE
  "CMakeFiles/voip_qos.dir/voip_qos.cpp.o"
  "CMakeFiles/voip_qos.dir/voip_qos.cpp.o.d"
  "voip_qos"
  "voip_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voip_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
