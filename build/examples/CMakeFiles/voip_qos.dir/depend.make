# Empty dependencies file for voip_qos.
# This may be replaced when dependencies are built.
