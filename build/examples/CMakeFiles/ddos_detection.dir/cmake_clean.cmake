file(REMOVE_RECURSE
  "CMakeFiles/ddos_detection.dir/ddos_detection.cpp.o"
  "CMakeFiles/ddos_detection.dir/ddos_detection.cpp.o.d"
  "ddos_detection"
  "ddos_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
