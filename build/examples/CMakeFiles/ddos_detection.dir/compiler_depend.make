# Empty compiler generated dependencies file for ddos_detection.
# This may be replaced when dependencies are built.
