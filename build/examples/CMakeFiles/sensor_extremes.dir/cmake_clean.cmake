file(REMOVE_RECURSE
  "CMakeFiles/sensor_extremes.dir/sensor_extremes.cpp.o"
  "CMakeFiles/sensor_extremes.dir/sensor_extremes.cpp.o.d"
  "sensor_extremes"
  "sensor_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
