# Empty compiler generated dependencies file for sensor_extremes.
# This may be replaced when dependencies are built.
