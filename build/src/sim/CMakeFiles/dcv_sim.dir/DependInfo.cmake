
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adaptive_filter_scheme.cc" "src/sim/CMakeFiles/dcv_sim.dir/adaptive_filter_scheme.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/adaptive_filter_scheme.cc.o.d"
  "/root/repo/src/sim/boolean_scheme.cc" "src/sim/CMakeFiles/dcv_sim.dir/boolean_scheme.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/boolean_scheme.cc.o.d"
  "/root/repo/src/sim/geometric_scheme.cc" "src/sim/CMakeFiles/dcv_sim.dir/geometric_scheme.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/geometric_scheme.cc.o.d"
  "/root/repo/src/sim/local_scheme.cc" "src/sim/CMakeFiles/dcv_sim.dir/local_scheme.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/local_scheme.cc.o.d"
  "/root/repo/src/sim/message.cc" "src/sim/CMakeFiles/dcv_sim.dir/message.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/message.cc.o.d"
  "/root/repo/src/sim/monitor_plan.cc" "src/sim/CMakeFiles/dcv_sim.dir/monitor_plan.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/monitor_plan.cc.o.d"
  "/root/repo/src/sim/multilevel_scheme.cc" "src/sim/CMakeFiles/dcv_sim.dir/multilevel_scheme.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/multilevel_scheme.cc.o.d"
  "/root/repo/src/sim/polling_scheme.cc" "src/sim/CMakeFiles/dcv_sim.dir/polling_scheme.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/polling_scheme.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/dcv_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/dcv_sim.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/dcv_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/threshold/CMakeFiles/dcv_threshold.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dcv_constraints.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
