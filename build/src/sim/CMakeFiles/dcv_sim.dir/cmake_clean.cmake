file(REMOVE_RECURSE
  "CMakeFiles/dcv_sim.dir/adaptive_filter_scheme.cc.o"
  "CMakeFiles/dcv_sim.dir/adaptive_filter_scheme.cc.o.d"
  "CMakeFiles/dcv_sim.dir/boolean_scheme.cc.o"
  "CMakeFiles/dcv_sim.dir/boolean_scheme.cc.o.d"
  "CMakeFiles/dcv_sim.dir/geometric_scheme.cc.o"
  "CMakeFiles/dcv_sim.dir/geometric_scheme.cc.o.d"
  "CMakeFiles/dcv_sim.dir/local_scheme.cc.o"
  "CMakeFiles/dcv_sim.dir/local_scheme.cc.o.d"
  "CMakeFiles/dcv_sim.dir/message.cc.o"
  "CMakeFiles/dcv_sim.dir/message.cc.o.d"
  "CMakeFiles/dcv_sim.dir/monitor_plan.cc.o"
  "CMakeFiles/dcv_sim.dir/monitor_plan.cc.o.d"
  "CMakeFiles/dcv_sim.dir/multilevel_scheme.cc.o"
  "CMakeFiles/dcv_sim.dir/multilevel_scheme.cc.o.d"
  "CMakeFiles/dcv_sim.dir/polling_scheme.cc.o"
  "CMakeFiles/dcv_sim.dir/polling_scheme.cc.o.d"
  "CMakeFiles/dcv_sim.dir/runner.cc.o"
  "CMakeFiles/dcv_sim.dir/runner.cc.o.d"
  "libdcv_sim.a"
  "libdcv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
