file(REMOVE_RECURSE
  "libdcv_sim.a"
)
