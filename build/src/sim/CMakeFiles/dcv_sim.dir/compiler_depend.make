# Empty compiler generated dependencies file for dcv_sim.
# This may be replaced when dependencies are built.
