file(REMOVE_RECURSE
  "libdcv_threshold.a"
)
