file(REMOVE_RECURSE
  "CMakeFiles/dcv_threshold.dir/boolean_solver.cc.o"
  "CMakeFiles/dcv_threshold.dir/boolean_solver.cc.o.d"
  "CMakeFiles/dcv_threshold.dir/cdf_view.cc.o"
  "CMakeFiles/dcv_threshold.dir/cdf_view.cc.o.d"
  "CMakeFiles/dcv_threshold.dir/exact_dp.cc.o"
  "CMakeFiles/dcv_threshold.dir/exact_dp.cc.o.d"
  "CMakeFiles/dcv_threshold.dir/fptas.cc.o"
  "CMakeFiles/dcv_threshold.dir/fptas.cc.o.d"
  "CMakeFiles/dcv_threshold.dir/heuristics.cc.o"
  "CMakeFiles/dcv_threshold.dir/heuristics.cc.o.d"
  "CMakeFiles/dcv_threshold.dir/solver.cc.o"
  "CMakeFiles/dcv_threshold.dir/solver.cc.o.d"
  "libdcv_threshold.a"
  "libdcv_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
