# Empty compiler generated dependencies file for dcv_threshold.
# This may be replaced when dependencies are built.
