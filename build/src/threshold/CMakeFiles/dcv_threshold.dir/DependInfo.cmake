
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threshold/boolean_solver.cc" "src/threshold/CMakeFiles/dcv_threshold.dir/boolean_solver.cc.o" "gcc" "src/threshold/CMakeFiles/dcv_threshold.dir/boolean_solver.cc.o.d"
  "/root/repo/src/threshold/cdf_view.cc" "src/threshold/CMakeFiles/dcv_threshold.dir/cdf_view.cc.o" "gcc" "src/threshold/CMakeFiles/dcv_threshold.dir/cdf_view.cc.o.d"
  "/root/repo/src/threshold/exact_dp.cc" "src/threshold/CMakeFiles/dcv_threshold.dir/exact_dp.cc.o" "gcc" "src/threshold/CMakeFiles/dcv_threshold.dir/exact_dp.cc.o.d"
  "/root/repo/src/threshold/fptas.cc" "src/threshold/CMakeFiles/dcv_threshold.dir/fptas.cc.o" "gcc" "src/threshold/CMakeFiles/dcv_threshold.dir/fptas.cc.o.d"
  "/root/repo/src/threshold/heuristics.cc" "src/threshold/CMakeFiles/dcv_threshold.dir/heuristics.cc.o" "gcc" "src/threshold/CMakeFiles/dcv_threshold.dir/heuristics.cc.o.d"
  "/root/repo/src/threshold/solver.cc" "src/threshold/CMakeFiles/dcv_threshold.dir/solver.cc.o" "gcc" "src/threshold/CMakeFiles/dcv_threshold.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/dcv_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dcv_constraints.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
