# Empty compiler generated dependencies file for dcv_common.
# This may be replaced when dependencies are built.
