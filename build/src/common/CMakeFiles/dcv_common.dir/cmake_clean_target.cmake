file(REMOVE_RECURSE
  "libdcv_common.a"
)
