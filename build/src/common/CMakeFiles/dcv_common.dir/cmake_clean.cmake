file(REMOVE_RECURSE
  "CMakeFiles/dcv_common.dir/csv.cc.o"
  "CMakeFiles/dcv_common.dir/csv.cc.o.d"
  "CMakeFiles/dcv_common.dir/logging.cc.o"
  "CMakeFiles/dcv_common.dir/logging.cc.o.d"
  "CMakeFiles/dcv_common.dir/math_util.cc.o"
  "CMakeFiles/dcv_common.dir/math_util.cc.o.d"
  "CMakeFiles/dcv_common.dir/rng.cc.o"
  "CMakeFiles/dcv_common.dir/rng.cc.o.d"
  "CMakeFiles/dcv_common.dir/status.cc.o"
  "CMakeFiles/dcv_common.dir/status.cc.o.d"
  "CMakeFiles/dcv_common.dir/strings.cc.o"
  "CMakeFiles/dcv_common.dir/strings.cc.o.d"
  "libdcv_common.a"
  "libdcv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
