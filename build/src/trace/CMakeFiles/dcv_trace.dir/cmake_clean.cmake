file(REMOVE_RECURSE
  "CMakeFiles/dcv_trace.dir/snmp_synth.cc.o"
  "CMakeFiles/dcv_trace.dir/snmp_synth.cc.o.d"
  "CMakeFiles/dcv_trace.dir/stats.cc.o"
  "CMakeFiles/dcv_trace.dir/stats.cc.o.d"
  "CMakeFiles/dcv_trace.dir/synthetic.cc.o"
  "CMakeFiles/dcv_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/dcv_trace.dir/trace.cc.o"
  "CMakeFiles/dcv_trace.dir/trace.cc.o.d"
  "libdcv_trace.a"
  "libdcv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
