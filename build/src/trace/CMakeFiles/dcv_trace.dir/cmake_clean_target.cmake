file(REMOVE_RECURSE
  "libdcv_trace.a"
)
