# Empty dependencies file for dcv_trace.
# This may be replaced when dependencies are built.
