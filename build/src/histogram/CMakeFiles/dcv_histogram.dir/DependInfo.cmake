
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/histogram/change_detector.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/change_detector.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/change_detector.cc.o.d"
  "/root/repo/src/histogram/distribution.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/distribution.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/distribution.cc.o.d"
  "/root/repo/src/histogram/empirical_cdf.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/empirical_cdf.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/empirical_cdf.cc.o.d"
  "/root/repo/src/histogram/equi_depth.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/equi_depth.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/equi_depth.cc.o.d"
  "/root/repo/src/histogram/equi_width.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/equi_width.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/equi_width.cc.o.d"
  "/root/repo/src/histogram/exp_histogram.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/exp_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/exp_histogram.cc.o.d"
  "/root/repo/src/histogram/gk_sketch.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/gk_sketch.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/gk_sketch.cc.o.d"
  "/root/repo/src/histogram/sliding_histogram.cc" "src/histogram/CMakeFiles/dcv_histogram.dir/sliding_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/dcv_histogram.dir/sliding_histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
