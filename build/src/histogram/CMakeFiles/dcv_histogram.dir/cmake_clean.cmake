file(REMOVE_RECURSE
  "CMakeFiles/dcv_histogram.dir/change_detector.cc.o"
  "CMakeFiles/dcv_histogram.dir/change_detector.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/distribution.cc.o"
  "CMakeFiles/dcv_histogram.dir/distribution.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/empirical_cdf.cc.o"
  "CMakeFiles/dcv_histogram.dir/empirical_cdf.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/equi_depth.cc.o"
  "CMakeFiles/dcv_histogram.dir/equi_depth.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/equi_width.cc.o"
  "CMakeFiles/dcv_histogram.dir/equi_width.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/exp_histogram.cc.o"
  "CMakeFiles/dcv_histogram.dir/exp_histogram.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/gk_sketch.cc.o"
  "CMakeFiles/dcv_histogram.dir/gk_sketch.cc.o.d"
  "CMakeFiles/dcv_histogram.dir/sliding_histogram.cc.o"
  "CMakeFiles/dcv_histogram.dir/sliding_histogram.cc.o.d"
  "libdcv_histogram.a"
  "libdcv_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
