# Empty compiler generated dependencies file for dcv_histogram.
# This may be replaced when dependencies are built.
