file(REMOVE_RECURSE
  "libdcv_histogram.a"
)
