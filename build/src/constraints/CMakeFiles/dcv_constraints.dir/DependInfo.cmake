
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/ast.cc" "src/constraints/CMakeFiles/dcv_constraints.dir/ast.cc.o" "gcc" "src/constraints/CMakeFiles/dcv_constraints.dir/ast.cc.o.d"
  "/root/repo/src/constraints/canonical.cc" "src/constraints/CMakeFiles/dcv_constraints.dir/canonical.cc.o" "gcc" "src/constraints/CMakeFiles/dcv_constraints.dir/canonical.cc.o.d"
  "/root/repo/src/constraints/lexer.cc" "src/constraints/CMakeFiles/dcv_constraints.dir/lexer.cc.o" "gcc" "src/constraints/CMakeFiles/dcv_constraints.dir/lexer.cc.o.d"
  "/root/repo/src/constraints/linear_expr.cc" "src/constraints/CMakeFiles/dcv_constraints.dir/linear_expr.cc.o" "gcc" "src/constraints/CMakeFiles/dcv_constraints.dir/linear_expr.cc.o.d"
  "/root/repo/src/constraints/normalize.cc" "src/constraints/CMakeFiles/dcv_constraints.dir/normalize.cc.o" "gcc" "src/constraints/CMakeFiles/dcv_constraints.dir/normalize.cc.o.d"
  "/root/repo/src/constraints/parser.cc" "src/constraints/CMakeFiles/dcv_constraints.dir/parser.cc.o" "gcc" "src/constraints/CMakeFiles/dcv_constraints.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
