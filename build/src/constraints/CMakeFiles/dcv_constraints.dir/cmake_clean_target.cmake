file(REMOVE_RECURSE
  "libdcv_constraints.a"
)
