file(REMOVE_RECURSE
  "CMakeFiles/dcv_constraints.dir/ast.cc.o"
  "CMakeFiles/dcv_constraints.dir/ast.cc.o.d"
  "CMakeFiles/dcv_constraints.dir/canonical.cc.o"
  "CMakeFiles/dcv_constraints.dir/canonical.cc.o.d"
  "CMakeFiles/dcv_constraints.dir/lexer.cc.o"
  "CMakeFiles/dcv_constraints.dir/lexer.cc.o.d"
  "CMakeFiles/dcv_constraints.dir/linear_expr.cc.o"
  "CMakeFiles/dcv_constraints.dir/linear_expr.cc.o.d"
  "CMakeFiles/dcv_constraints.dir/normalize.cc.o"
  "CMakeFiles/dcv_constraints.dir/normalize.cc.o.d"
  "CMakeFiles/dcv_constraints.dir/parser.cc.o"
  "CMakeFiles/dcv_constraints.dir/parser.cc.o.d"
  "libdcv_constraints.a"
  "libdcv_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
