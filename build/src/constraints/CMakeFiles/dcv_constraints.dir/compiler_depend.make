# Empty compiler generated dependencies file for dcv_constraints.
# This may be replaced when dependencies are built.
