
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exp_histogram_test.cc" "tests/CMakeFiles/exp_histogram_test.dir/exp_histogram_test.cc.o" "gcc" "tests/CMakeFiles/exp_histogram_test.dir/exp_histogram_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/threshold/CMakeFiles/dcv_threshold.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dcv_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/dcv_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
