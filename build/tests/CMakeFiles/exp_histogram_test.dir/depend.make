# Empty dependencies file for exp_histogram_test.
# This may be replaced when dependencies are built.
