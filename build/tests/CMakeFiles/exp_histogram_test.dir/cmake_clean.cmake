file(REMOVE_RECURSE
  "CMakeFiles/exp_histogram_test.dir/exp_histogram_test.cc.o"
  "CMakeFiles/exp_histogram_test.dir/exp_histogram_test.cc.o.d"
  "exp_histogram_test"
  "exp_histogram_test.pdb"
  "exp_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
