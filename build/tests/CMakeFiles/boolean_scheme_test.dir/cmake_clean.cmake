file(REMOVE_RECURSE
  "CMakeFiles/boolean_scheme_test.dir/boolean_scheme_test.cc.o"
  "CMakeFiles/boolean_scheme_test.dir/boolean_scheme_test.cc.o.d"
  "boolean_scheme_test"
  "boolean_scheme_test.pdb"
  "boolean_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
