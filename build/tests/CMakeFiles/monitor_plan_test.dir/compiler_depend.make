# Empty compiler generated dependencies file for monitor_plan_test.
# This may be replaced when dependencies are built.
