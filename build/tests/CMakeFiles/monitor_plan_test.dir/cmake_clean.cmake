file(REMOVE_RECURSE
  "CMakeFiles/monitor_plan_test.dir/monitor_plan_test.cc.o"
  "CMakeFiles/monitor_plan_test.dir/monitor_plan_test.cc.o.d"
  "monitor_plan_test"
  "monitor_plan_test.pdb"
  "monitor_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
