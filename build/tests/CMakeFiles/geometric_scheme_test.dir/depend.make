# Empty dependencies file for geometric_scheme_test.
# This may be replaced when dependencies are built.
