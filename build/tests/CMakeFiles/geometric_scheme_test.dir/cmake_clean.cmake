file(REMOVE_RECURSE
  "CMakeFiles/geometric_scheme_test.dir/geometric_scheme_test.cc.o"
  "CMakeFiles/geometric_scheme_test.dir/geometric_scheme_test.cc.o.d"
  "geometric_scheme_test"
  "geometric_scheme_test.pdb"
  "geometric_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometric_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
