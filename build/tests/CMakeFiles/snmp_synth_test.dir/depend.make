# Empty dependencies file for snmp_synth_test.
# This may be replaced when dependencies are built.
