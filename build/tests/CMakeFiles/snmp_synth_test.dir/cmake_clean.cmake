file(REMOVE_RECURSE
  "CMakeFiles/snmp_synth_test.dir/snmp_synth_test.cc.o"
  "CMakeFiles/snmp_synth_test.dir/snmp_synth_test.cc.o.d"
  "snmp_synth_test"
  "snmp_synth_test.pdb"
  "snmp_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snmp_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
