# Empty dependencies file for empirical_cdf_test.
# This may be replaced when dependencies are built.
