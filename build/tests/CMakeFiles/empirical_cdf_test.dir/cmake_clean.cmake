file(REMOVE_RECURSE
  "CMakeFiles/empirical_cdf_test.dir/empirical_cdf_test.cc.o"
  "CMakeFiles/empirical_cdf_test.dir/empirical_cdf_test.cc.o.d"
  "empirical_cdf_test"
  "empirical_cdf_test.pdb"
  "empirical_cdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_cdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
