# Empty compiler generated dependencies file for change_detector_test.
# This may be replaced when dependencies are built.
