file(REMOVE_RECURSE
  "CMakeFiles/change_detector_test.dir/change_detector_test.cc.o"
  "CMakeFiles/change_detector_test.dir/change_detector_test.cc.o.d"
  "change_detector_test"
  "change_detector_test.pdb"
  "change_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
