# Empty dependencies file for equi_width_test.
# This may be replaced when dependencies are built.
