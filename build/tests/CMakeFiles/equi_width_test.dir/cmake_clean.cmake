file(REMOVE_RECURSE
  "CMakeFiles/equi_width_test.dir/equi_width_test.cc.o"
  "CMakeFiles/equi_width_test.dir/equi_width_test.cc.o.d"
  "equi_width_test"
  "equi_width_test.pdb"
  "equi_width_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equi_width_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
