file(REMOVE_RECURSE
  "CMakeFiles/distribution_conformance_test.dir/distribution_conformance_test.cc.o"
  "CMakeFiles/distribution_conformance_test.dir/distribution_conformance_test.cc.o.d"
  "distribution_conformance_test"
  "distribution_conformance_test.pdb"
  "distribution_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
