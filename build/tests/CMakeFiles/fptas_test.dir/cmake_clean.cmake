file(REMOVE_RECURSE
  "CMakeFiles/fptas_test.dir/fptas_test.cc.o"
  "CMakeFiles/fptas_test.dir/fptas_test.cc.o.d"
  "fptas_test"
  "fptas_test.pdb"
  "fptas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
