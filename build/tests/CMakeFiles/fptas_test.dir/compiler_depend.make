# Empty compiler generated dependencies file for fptas_test.
# This may be replaced when dependencies are built.
