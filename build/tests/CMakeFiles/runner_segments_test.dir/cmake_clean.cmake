file(REMOVE_RECURSE
  "CMakeFiles/runner_segments_test.dir/runner_segments_test.cc.o"
  "CMakeFiles/runner_segments_test.dir/runner_segments_test.cc.o.d"
  "runner_segments_test"
  "runner_segments_test.pdb"
  "runner_segments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_segments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
