# Empty dependencies file for runner_segments_test.
# This may be replaced when dependencies are built.
