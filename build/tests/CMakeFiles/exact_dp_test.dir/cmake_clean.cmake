file(REMOVE_RECURSE
  "CMakeFiles/exact_dp_test.dir/exact_dp_test.cc.o"
  "CMakeFiles/exact_dp_test.dir/exact_dp_test.cc.o.d"
  "exact_dp_test"
  "exact_dp_test.pdb"
  "exact_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
