file(REMOVE_RECURSE
  "CMakeFiles/sim_runner_test.dir/sim_runner_test.cc.o"
  "CMakeFiles/sim_runner_test.dir/sim_runner_test.cc.o.d"
  "sim_runner_test"
  "sim_runner_test.pdb"
  "sim_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
