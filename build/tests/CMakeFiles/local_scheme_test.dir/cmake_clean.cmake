file(REMOVE_RECURSE
  "CMakeFiles/local_scheme_test.dir/local_scheme_test.cc.o"
  "CMakeFiles/local_scheme_test.dir/local_scheme_test.cc.o.d"
  "local_scheme_test"
  "local_scheme_test.pdb"
  "local_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
