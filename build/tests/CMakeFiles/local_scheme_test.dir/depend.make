# Empty dependencies file for local_scheme_test.
# This may be replaced when dependencies are built.
