# Empty compiler generated dependencies file for sim_schemes_test.
# This may be replaced when dependencies are built.
