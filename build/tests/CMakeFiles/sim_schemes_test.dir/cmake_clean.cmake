file(REMOVE_RECURSE
  "CMakeFiles/sim_schemes_test.dir/sim_schemes_test.cc.o"
  "CMakeFiles/sim_schemes_test.dir/sim_schemes_test.cc.o.d"
  "sim_schemes_test"
  "sim_schemes_test.pdb"
  "sim_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
