# Empty dependencies file for multilevel_scheme_test.
# This may be replaced when dependencies are built.
