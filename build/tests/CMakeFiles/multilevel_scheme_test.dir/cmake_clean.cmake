file(REMOVE_RECURSE
  "CMakeFiles/multilevel_scheme_test.dir/multilevel_scheme_test.cc.o"
  "CMakeFiles/multilevel_scheme_test.dir/multilevel_scheme_test.cc.o.d"
  "multilevel_scheme_test"
  "multilevel_scheme_test.pdb"
  "multilevel_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
