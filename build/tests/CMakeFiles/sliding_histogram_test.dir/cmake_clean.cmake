file(REMOVE_RECURSE
  "CMakeFiles/sliding_histogram_test.dir/sliding_histogram_test.cc.o"
  "CMakeFiles/sliding_histogram_test.dir/sliding_histogram_test.cc.o.d"
  "sliding_histogram_test"
  "sliding_histogram_test.pdb"
  "sliding_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
