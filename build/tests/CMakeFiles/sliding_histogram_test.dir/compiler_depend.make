# Empty compiler generated dependencies file for sliding_histogram_test.
# This may be replaced when dependencies are built.
