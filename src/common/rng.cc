#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace dcv {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  DCV_CHECK(bound > 0) << "bound must be positive";
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DCV_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  DCV_CHECK(rate > 0) << "Exponential rate must be positive";
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::Pareto(double scale, double shape) {
  DCV_CHECK(scale > 0 && shape > 0) << "Pareto parameters must be positive";
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return scale / std::pow(u, 1.0 / shape);
}

int64_t Rng::Zipf(int64_t n, double s) {
  DCV_CHECK(n >= 1) << "Zipf support size must be >= 1";
  DCV_CHECK(s >= 0) << "Zipf exponent must be non-negative";
  // Find or build the cached CDF table.
  const ZipfTable* table = nullptr;
  for (const auto& t : zipf_tables_) {
    if (t.n == n && t.s == s) {
      table = &t;
      break;
    }
  }
  if (table == nullptr) {
    ZipfTable t;
    t.n = n;
    t.s = s;
    t.cdf.resize(static_cast<size_t>(n));
    double acc = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      t.cdf[static_cast<size_t>(k - 1)] = acc;
    }
    for (auto& c : t.cdf) {
      c /= acc;
    }
    zipf_tables_.push_back(std::move(t));
    table = &zipf_tables_.back();
  }
  double u = UniformDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0;
  size_t hi = table->cdf.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (table->cdf[mid] >= u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<int64_t>(lo) + 1;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace dcv
