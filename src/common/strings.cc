#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dcv {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) {
    return InvalidArgumentError("empty integer literal");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return OutOfRangeError("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) {
    return InvalidArgumentError("empty numeric literal");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  // ERANGE covers both overflow and underflow; underflow to a (possibly
  // denormal) representable value is not an error — FormatDouble output for
  // denormals must parse back bit-exact. Only overflow to ±HUGE_VAL fails.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return OutOfRangeError("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError("invalid numeric literal: " + buf);
  }
  return v;
}

std::string FormatDouble(double v) {
  // Canonical non-finite spellings, independent of what the libc printf
  // would produce ("nan" vs "-nan(0x...)" varies by platform).
  if (std::isnan(v)) {
    return "nan";
  }
  if (std::isinf(v)) {
    return v > 0 ? "inf" : "-inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace dcv
