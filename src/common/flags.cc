#include "common/flags.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace dcv {
namespace {

/// Canonical boolean spellings, case-insensitive: 1/true/yes and
/// 0/false/no. Anything else ("maybe", "ture", an accidentally grabbed
/// file name) is an error — a malformed --acks=false must never silently
/// enable acks.
Result<bool> ParseBoolToken(const std::string& raw) {
  std::string v = raw;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (v == "1" || v == "true" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no") {
    return false;
  }
  return InvalidArgumentError("invalid boolean value '" + raw +
                              "' (expected 0/1/true/false/yes/no)");
}

}  // namespace

FlagSet& FlagSet::Value(const std::string& name) {
  value_flags_.insert(name);
  return *this;
}

FlagSet& FlagSet::Boolean(const std::string& name) {
  bool_flags_.insert(name);
  return *this;
}

Result<ParsedFlags> FlagSet::Parse(int argc, char* const* argv,
                                   int first) const {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc > first ? argc - first : 0));
  for (int i = first; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  return Parse(args);
}

Result<ParsedFlags> FlagSet::Parse(const std::vector<std::string>& args) const {
  ParsedFlags flags;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      return InvalidArgumentError("expected --flag, got '" + arg + "'");
    }
    std::string key = arg.substr(2);
    std::string value;
    bool have_value = false;
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      have_value = true;
    }
    const bool is_bool = bool_flags_.count(key) > 0;
    if (!is_bool && value_flags_.count(key) == 0) {
      return InvalidArgumentError("unknown flag --" + key);
    }
    if (flags.values_.count(key) > 0) {
      return InvalidArgumentError("duplicate flag --" + key);
    }
    if (!have_value) {
      if (is_bool) {
        value = "1";
      } else {
        // A following "--token" is the next flag, not a value: "--sites
        // --virtual-time" means the value was forgotten, and consuming the
        // flag would turn the mistake into a baffling downstream error.
        if (i + 1 >= args.size() || StartsWith(args[i + 1], "--")) {
          return InvalidArgumentError("flag --" + key + " needs a value");
        }
        value = args[++i];
      }
    }
    if (is_bool) {
      // Validate and normalize at parse time so "--quiet=maybe" fails here
      // with the flag named, not wherever GetBool happens to be called.
      auto parsed = ParseBoolToken(value);
      if (!parsed.ok()) {
        return InvalidArgumentError("flag --" + key + ": " +
                                    std::string(parsed.status().message()));
      }
      value = *parsed ? "1" : "0";
    }
    flags.values_[key] = value;
  }
  return flags;
}

bool ParsedFlags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

bool ParsedFlags::GetBool(const std::string& key) const {
  // Boolean flags were validated and normalized to "1"/"0" at parse time.
  auto it = values_.find(key);
  return it != values_.end() && it->second == "1";
}

Result<bool> ParsedFlags::GetBoolValue(const std::string& key,
                                       bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  auto parsed = ParseBoolToken(it->second);
  if (!parsed.ok()) {
    return InvalidArgumentError("flag --" + key + ": " +
                                std::string(parsed.status().message()));
  }
  return *parsed;
}

std::string ParsedFlags::GetString(const std::string& key,
                                   const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<std::string> ParsedFlags::GetRequired(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return InvalidArgumentError("missing required flag --" + key);
  }
  return it->second;
}

Result<int64_t> ParsedFlags::GetInt(const std::string& key,
                                    int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  return ParseInt64(it->second);
}

Result<double> ParsedFlags::GetDouble(const std::string& key,
                                      double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  return ParseDouble(it->second);
}

}  // namespace dcv
