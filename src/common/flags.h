#ifndef DCV_COMMON_FLAGS_H_
#define DCV_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace dcv {

class ParsedFlags;

/// Declarative "--key value" / "--key=value" command-line parser shared by
/// the dcvtool subcommands. A FlagSet names every flag a command accepts;
/// Parse rejects unknown and duplicate flags instead of silently ignoring
/// them (a mistyped "--treshold" aborts the run rather than simulating with
/// the default).
class FlagSet {
 public:
  /// Declares a flag that takes a value ("--sites 8" or "--sites=8").
  FlagSet& Value(const std::string& name);

  /// Declares a bare boolean flag ("--quiet"; "--quiet=0" also accepted).
  FlagSet& Boolean(const std::string& name);

  /// Parses argv[first..argc). Errors: an argument not starting with "--",
  /// an undeclared flag, a repeated flag, or a value flag at the end of the
  /// line with nothing following it.
  Result<ParsedFlags> Parse(int argc, char* const* argv, int first) const;

  /// Convenience overload for tests.
  Result<ParsedFlags> Parse(const std::vector<std::string>& args) const;

 private:
  std::set<std::string> value_flags_;
  std::set<std::string> bool_flags_;
};

/// The result of FlagSet::Parse: typed lookups with fallbacks. Lookup of a
/// flag that was never declared in the FlagSet is a programming error and
/// returns the fallback (GetRequired returns an error).
class ParsedFlags {
 public:
  /// Boolean-declared flags only: values were validated and normalized at
  /// parse time, so this is absent=false, "--flag"/"--flag=true"=true.
  bool GetBool(const std::string& key) const;

  /// Boolean lookup for a Value-declared flag ("--acks 1", "--acks=false").
  /// Accepts 0/1/true/false/yes/no case-insensitively; anything else is an
  /// error, not silently-true.
  Result<bool> GetBoolValue(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  Result<std::string> GetRequired(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// True when the flag appeared on the command line.
  bool Has(const std::string& key) const;

 private:
  friend class FlagSet;
  std::map<std::string, std::string> values_;
};

}  // namespace dcv

#endif  // DCV_COMMON_FLAGS_H_
