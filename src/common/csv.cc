#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace dcv {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    *out += field;
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') {
      *out += "\"\"";
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

// Parses one CSV record starting at *pos; advances *pos past the record's
// terminating newline (or to text.size()).
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
        ++i;
      }
      ++i;
      break;
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

void CsvTable::AddDoubleRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    cells.push_back(FormatDouble(v));
  }
  rows_.push_back(std::move(cells));
}

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return i;
    }
  }
  return NotFoundError("no CSV column named '" + name + "'");
}

Result<int64_t> CsvTable::Int64At(size_t row, size_t col) const {
  if (row >= rows_.size() || col >= rows_[row].size()) {
    return OutOfRangeError("CSV cell index out of range");
  }
  return ParseInt64(rows_[row][col]);
}

Result<double> CsvTable::DoubleAt(size_t row, size_t col) const {
  if (row >= rows_.size() || col >= rows_[row].size()) {
    return OutOfRangeError("CSV cell index out of range");
  }
  return ParseDouble(rows_[row][col]);
}

std::string CsvTable::Serialize() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      AppendField(row[i], &out);
    }
    out.push_back('\n');
  };
  if (!header_.empty()) {
    emit_row(header_);
  }
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

Result<CsvTable> CsvTable::Parse(const std::string& text, bool has_header) {
  CsvTable table;
  size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    DCV_ASSIGN_OR_RETURN(auto record, ParseRecord(text, &pos));
    // Skip blank trailing lines.
    if (record.size() == 1 && record[0].empty()) {
      continue;
    }
    if (first && has_header) {
      table.header_ = std::move(record);
    } else {
      table.rows_.push_back(std::move(record));
    }
    first = false;
  }
  return table;
}

Status CsvTable::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return InternalError("cannot open file for writing: " + path);
  }
  out << Serialize();
  if (!out) {
    return InternalError("error writing file: " + path);
  }
  return OkStatus();
}

Result<CsvTable> CsvTable::ReadFromFile(const std::string& path,
                                        bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), has_header);
}

}  // namespace dcv
