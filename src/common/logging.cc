#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace dcv {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
ScopedLogCapture* g_capture = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }

LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (g_capture != nullptr) {
    g_capture->entries_.push_back(
        ScopedLogCapture::Entry{level_, stream_.str()});
  } else {
    std::cerr << "[" << LevelTag(level_) << " " << Basename(file_) << ":"
              << line_ << "] " << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

ScopedLogCapture::ScopedLogCapture() { g_capture = this; }

ScopedLogCapture::~ScopedLogCapture() { g_capture = nullptr; }
}  // namespace dcv
