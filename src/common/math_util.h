#ifndef DCV_COMMON_MATH_UTIL_H_
#define DCV_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace dcv {

/// Negative infinity, used as the log of probability/frequency zero.
inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(x) that maps 0 (and negatives, which should not occur) to -inf rather
/// than NaN, so products of frequencies can be safely accumulated in
/// log-space.
inline double SafeLog(double x) { return x > 0.0 ? std::log(x) : kNegInf; }

/// exp(x) with exp(-inf) == 0 (the standard library already guarantees this;
/// the wrapper documents intent at call sites).
inline double SafeExp(double x) { return std::exp(x); }

/// Clamps v into [lo, hi].
template <typename T>
T Clamp(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

/// True when |a - b| <= tol * max(1, |a|, |b|).
inline bool ApproxEqual(double a, double b, double tol = 1e-9) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

/// Sum of doubles with Kahan compensation; the benchmark metrics add many
/// small message counts and deserve a stable sum.
double KahanSum(const std::vector<double>& values);

/// Integer ceil(a / b) for positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) {
  return (a >= 0) ? (a + b - 1) / b : -((-a) / b);
}

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation; returns 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// p-th quantile (p in [0,1]) by linear interpolation over the sorted copy.
double Quantile(std::vector<double> values, double p);

}  // namespace dcv

#endif  // DCV_COMMON_MATH_UTIL_H_
