#ifndef DCV_COMMON_STRINGS_H_
#define DCV_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dcv {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parses a base-10 signed integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a floating-point number; the whole string must be consumed.
/// Non-finite policy: the case-insensitive spellings "nan", "inf", and
/// "infinity" (optionally signed) are accepted and produce the matching
/// IEEE value, so FormatDouble output always parses back.
Result<double> ParseDouble(std::string_view text);

/// Formats a double so ParseDouble(FormatDouble(v)) is bit-exact (modulo
/// NaN payload): finite values use %.17g (shortest representation that
/// round-trips any IEEE double), non-finite values use the canonical
/// lowercase spellings "nan", "inf", and "-inf". The sign of zero is
/// preserved ("-0"). This is the encoding CSV cells and JSON-ish artifacts
/// should use for any value that must survive a round-trip.
std::string FormatDouble(double v);

}  // namespace dcv

#endif  // DCV_COMMON_STRINGS_H_
