#ifndef DCV_COMMON_BYTES_H_
#define DCV_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dcv {

// Little-endian fixed-width and LEB128 varint byte helpers, shared by the
// binary trace format (src/io) and anything else that serializes numbers.
// All append functions grow a std::string (the project's byte-buffer type);
// all readers take raw pointers so they work on any contiguous buffer.

inline void AppendLe16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void AppendLe32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendLe64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline uint16_t ReadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

inline uint32_t ReadLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

inline uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// ZigZag maps small-magnitude signed values (deltas hover around zero) to
/// small unsigned values so they varint-encode in few bytes:
/// 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);  // Arithmetic shift: 0 or ~0.
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// LEB128: 7 value bits per byte, high bit = continuation. At most 10
/// bytes for a uint64.
inline void AppendVarint64(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Decodes one varint from [p, end). Returns the position past the varint,
/// or nullptr if the buffer ends mid-varint or the encoding overflows 64
/// bits (more than 10 bytes, or set bits beyond bit 63).
inline const uint8_t* DecodeVarint64(const uint8_t* p, const uint8_t* end,
                                     uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (p < end && shift <= 63) {
    uint8_t byte = *p++;
    if (shift == 63 && (byte & 0x7e) != 0) {
      return nullptr;  // Bits past 63: not representable.
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return p;
    }
    shift += 7;
  }
  return nullptr;  // Ran off the buffer (or an 11th continuation byte).
}

}  // namespace dcv

#endif  // DCV_COMMON_BYTES_H_
