#include "common/crc32.h"

#include <array>

namespace dcv {
namespace {

constexpr uint32_t kPoly = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dcv
