#ifndef DCV_COMMON_CRC32_H_
#define DCV_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dcv {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding every
/// block of the binary trace format. Table-driven, ~1 GB/s single thread —
/// never the bottleneck next to codec work. Pass a previous return value as
/// `seed` to checksum discontiguous pieces incrementally.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace dcv

#endif  // DCV_COMMON_CRC32_H_
