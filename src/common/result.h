#ifndef DCV_COMMON_RESULT_H_
#define DCV_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dcv {

/// A value-or-error holder (StatusOr-style). Exactly one of {value, error
/// status} is present. Accessing `value()` on an error Result aborts in debug
/// builds and is undefined otherwise — always check `ok()` first or use the
/// DCV_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : status_(OkStatus()), value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status (implicit, so `return SomeError();`
  /// works). Constructing from an OK status is a programming error and is
  /// converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dcv

#define DCV_RESULT_CONCAT_INNER_(a, b) a##b
#define DCV_RESULT_CONCAT_(a, b) DCV_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its status from the
/// current function, otherwise assigns the value to `lhs`.
///
///   DCV_ASSIGN_OR_RETURN(auto parsed, ParseConstraint(text));
#define DCV_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  auto DCV_RESULT_CONCAT_(dcv_result_tmp_, __LINE__) = (rexpr);            \
  if (!DCV_RESULT_CONCAT_(dcv_result_tmp_, __LINE__).ok()) {               \
    return DCV_RESULT_CONCAT_(dcv_result_tmp_, __LINE__).status();         \
  }                                                                        \
  lhs = std::move(DCV_RESULT_CONCAT_(dcv_result_tmp_, __LINE__)).value()

#endif  // DCV_COMMON_RESULT_H_
