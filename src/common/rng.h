#ifndef DCV_COMMON_RNG_H_
#define DCV_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace dcv {

/// Deterministic, seedable pseudo-random generator (xoshiro256++), plus the
/// distribution samplers the trace generators need. All simulation and
/// benchmark randomness flows through this class so runs are reproducible
/// from a single seed.
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with SplitMix64 so nearby
  /// seeds yield unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double scale, double shape);

  /// Zipf-distributed integer in [1, n] with exponent s >= 0, by inverse
  /// transform over the precomputable harmonic weights. O(log n) per draw
  /// after an O(n) first-draw setup per (n, s) pair.
  int64_t Zipf(int64_t n, double s);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Returns a fresh generator whose stream is independent of this one
  /// (split via SplitMix64 of the next output).
  Rng Split();

 private:
  uint64_t state_[4];
  // Cached Zipf tables keyed by (n, s).
  struct ZipfTable {
    int64_t n;
    double s;
    std::vector<double> cdf;
  };
  std::vector<ZipfTable> zipf_tables_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace dcv

#endif  // DCV_COMMON_RNG_H_
