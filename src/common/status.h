#ifndef DCV_COMMON_STATUS_H_
#define DCV_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dcv {

/// Canonical error codes, modeled after the usual database-library set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kInfeasible = 8,  ///< No assignment satisfies the requested constraints.
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. `dcv` does not use exceptions; every
/// fallible operation returns a `Status` (or a `Result<T>`, see result.h).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code with a
  /// nonempty message is allowed but pointless; prefer `OkStatus()`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Factory helpers, one per error code.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InfeasibleError(std::string message);

}  // namespace dcv

/// Propagates a non-OK Status from the current function.
#define DCV_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dcv::Status dcv_status_tmp_ = (expr);      \
    if (!dcv_status_tmp_.ok()) {                 \
      return dcv_status_tmp_;                    \
    }                                            \
  } while (0)

#endif  // DCV_COMMON_STATUS_H_
