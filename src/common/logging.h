#ifndef DCV_COMMON_LOGGING_H_
#define DCV_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <vector>

namespace dcv {

/// Log severities, lowest to highest. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// The single emission predicate: a message of `severity` is emitted iff
/// severity >= the current level. In particular SetLogLevel(kDebug) makes
/// kDebug messages visible (the boundary is inclusive); the DCV_LOG macro
/// and everything else must route through this so the `<` vs `<=`
/// comparison cannot drift (pinned by tests/logging_test.cc).
inline bool LogLevelEnabled(LogLevel severity) {
  return severity >= GetLogLevel();
}

namespace internal {

/// Stream-collecting helper behind the DCV_LOG macro. Emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the level
/// threshold, so arguments are still evaluated lazily by the macro's ternary.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

/// Test hook: while alive, redirects every emitted log message (except the
/// abort side effect of kFatal) into an in-memory list instead of stderr.
/// Not reentrant; intended for single-threaded test bodies.
class ScopedLogCapture {
 public:
  struct Entry {
    LogLevel level;
    std::string message;  ///< The streamed text, without the [..] prefix.
  };

  ScopedLogCapture();
  ~ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  friend class internal::LogMessage;
  std::vector<Entry> entries_;
};
}  // namespace dcv

#define DCV_LOG_INTERNAL_LEVEL_DEBUG ::dcv::LogLevel::kDebug
#define DCV_LOG_INTERNAL_LEVEL_INFO ::dcv::LogLevel::kInfo
#define DCV_LOG_INTERNAL_LEVEL_WARNING ::dcv::LogLevel::kWarning
#define DCV_LOG_INTERNAL_LEVEL_ERROR ::dcv::LogLevel::kError
#define DCV_LOG_INTERNAL_LEVEL_FATAL ::dcv::LogLevel::kFatal

/// DCV_LOG(INFO) << "message"; — emitted iff INFO >= current level. The
/// streamed expression is not evaluated when the message is suppressed.
#define DCV_LOG(severity)                                                 \
  !::dcv::LogLevelEnabled(DCV_LOG_INTERNAL_LEVEL_##severity)              \
      ? (void)0                                                           \
      : ::dcv::internal::LogMessageVoidify() &                            \
            ::dcv::internal::LogMessage(DCV_LOG_INTERNAL_LEVEL_##severity, \
                                        __FILE__, __LINE__)               \
                .stream()

/// DCV_CHECK(cond) << "detail"; — aborts with the detail if cond is false.
#define DCV_CHECK(condition)                                              \
  (condition)                                                             \
      ? (void)0                                                           \
      : ::dcv::internal::LogMessageVoidify() &                            \
            ::dcv::internal::LogMessage(::dcv::LogLevel::kFatal,          \
                                        __FILE__, __LINE__)               \
                    .stream()                                             \
                << "Check failed: " #condition " "

#endif  // DCV_COMMON_LOGGING_H_
