#ifndef DCV_COMMON_LOGGING_H_
#define DCV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dcv {

/// Log severities, lowest to highest. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-collecting helper behind the DCV_LOG macro. Emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the level
/// threshold, so arguments are still evaluated lazily by the macro's ternary.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dcv

#define DCV_LOG_INTERNAL_LEVEL_kDebug ::dcv::LogLevel::kDebug
#define DCV_LOG_INTERNAL_LEVEL_kInfo ::dcv::LogLevel::kInfo
#define DCV_LOG_INTERNAL_LEVEL_kWarning ::dcv::LogLevel::kWarning
#define DCV_LOG_INTERNAL_LEVEL_kError ::dcv::LogLevel::kError
#define DCV_LOG_INTERNAL_LEVEL_kFatal ::dcv::LogLevel::kFatal

/// DCV_LOG(INFO) << "message"; — emitted iff INFO >= current level.
#define DCV_LOG(severity)                                                 \
  (::dcv::LogLevel::k##severity < ::dcv::GetLogLevel())                   \
      ? (void)0                                                           \
      : ::dcv::internal::LogMessageVoidify() &                            \
            ::dcv::internal::LogMessage(::dcv::LogLevel::k##severity,     \
                                        __FILE__, __LINE__)               \
                .stream()

/// DCV_CHECK(cond) << "detail"; — aborts with the detail if cond is false.
#define DCV_CHECK(condition)                                              \
  (condition)                                                             \
      ? (void)0                                                           \
      : ::dcv::internal::LogMessageVoidify() &                            \
            ::dcv::internal::LogMessage(::dcv::LogLevel::kFatal,          \
                                        __FILE__, __LINE__)               \
                    .stream()                                             \
                << "Check failed: " #condition " "

#endif  // DCV_COMMON_LOGGING_H_
