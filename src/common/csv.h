#ifndef DCV_COMMON_CSV_H_
#define DCV_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dcv {

/// An in-memory CSV table: an optional header row plus data rows. Used for
/// trace import/export and for dumping benchmark series. Values are kept as
/// strings; numeric access goes through the typed getters.
class CsvTable {
 public:
  CsvTable() = default;

  /// Builds a table with the given header (may be empty for headerless CSV).
  explicit CsvTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  const std::vector<std::string>& header() const { return header_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const {
    return header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                           : header_.size();
  }

  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Appends a row. Row width is validated at serialization time.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Appends a row of doubles encoded with FormatDouble (%.17g, canonical
  /// "nan"/"inf"/"-inf"), so DoubleAt on a parsed-back table is bit-exact:
  /// the lossless-CSV path for any artifact that must round-trip.
  void AddDoubleRow(const std::vector<double>& row);

  /// Column index for a header name.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Typed cell access.
  Result<int64_t> Int64At(size_t row, size_t col) const;
  Result<double> DoubleAt(size_t row, size_t col) const;

  /// Serializes to RFC-4180-ish CSV (quotes fields containing , " or \n).
  std::string Serialize() const;

  /// Parses CSV text. When `has_header` the first row becomes the header.
  static Result<CsvTable> Parse(const std::string& text, bool has_header);

  /// File round-trip helpers.
  Status WriteToFile(const std::string& path) const;
  static Result<CsvTable> ReadFromFile(const std::string& path,
                                       bool has_header);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcv

#endif  // DCV_COMMON_CSV_H_
