#include "common/math_util.h"

#include <algorithm>

namespace dcv {

double KahanSum(const std::vector<double>& values) {
  double sum = 0.0;
  double carry = 0.0;
  for (double v : values) {
    double y = v - carry;
    double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  return KahanSum(values) / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Quantile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  p = Clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace dcv
