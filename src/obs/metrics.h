#ifndef DCV_OBS_METRICS_H_
#define DCV_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dcv::obs {

/// Monotonically increasing named count. Thread-safe; relaxed atomics — the
/// registry snapshot is the synchronization point readers care about.
class Counter {
 public:
  void Increment(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-written named value (queue depth, current threshold, grid size).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of one histogram, safe to serialize/diff.
struct HistogramSnapshot {
  /// Inclusive upper bounds of the finite buckets; counts has one extra
  /// overflow bucket for values above bounds.back().
  std::vector<double> bounds;
  std::vector<int64_t> counts;  ///< Size bounds.size() + 1.
  int64_t count = 0;            ///< Total observations.
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Estimated p-quantile (p in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank. Bucket i spans (bounds[i-1], bounds[i]];
  /// the first bucket's lower edge is the observed min and the overflow
  /// bucket's upper edge is the observed max, so single-bucket and
  /// overflow-heavy distributions interpolate against real data instead of
  /// +/-inf. Returns 0 when the histogram is empty.
  double Quantile(double p) const;

  /// Adds `other`'s buckets into this snapshot (element-wise counts, summed
  /// count/sum, widened min/max). Bounds must match; on mismatch the other
  /// snapshot's totals are still folded into count/sum so nothing is lost,
  /// but per-bucket counts are left alone. Returns false on bounds mismatch.
  bool MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram for latency / value distributions. Bucket i
/// counts observations v with v <= bounds[i] (first matching bucket);
/// values above the last bound land in a final overflow bucket. Observe is
/// lock-free; Snapshot is weakly consistent under concurrent writes (every
/// completed Observe before the snapshot is included).
class Histogram {
 public:
  /// `bounds` must be strictly increasing and nonempty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// bounds {start, start*factor, start*factor^2, ...} with `count` entries
  /// — the standard shape for microsecond latency histograms.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);

  /// Default microsecond-latency bounds: 1us .. ~8s, doubling.
  static const std::vector<double>& DefaultLatencyBoundsUs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  ///< bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// min_/max_ idle at +/-inf so every Observe is a plain CAS-min/CAS-max;
  /// a "seed on first observation" store would race with a concurrent
  /// extremum update and could overwrite it. Snapshot maps the idle
  /// sentinels back to 0 when count == 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every metric in a registry. Map-keyed by name so
/// iteration (and the JSON export) is deterministically sorted.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter and histogram deltas relative to `base` (an earlier snapshot
  /// of the same registry); gauges keep their current value. Used for
  /// per-segment reporting. Histogram min/max stay cumulative.
  MetricsSnapshot DiffSince(const MetricsSnapshot& base) const;

  /// Folds another process's snapshot into this one: counters sum,
  /// histograms merge bucket-wise (HistogramSnapshot::MergeFrom), and
  /// gauges — which have no meaningful cross-process sum — are namespaced
  /// under `gauge_namespace` + "/" + name (empty namespace keeps the raw
  /// name, last-writer-wins). This is the coordinator-side merge for
  /// kTelemetry frames.
  void MergeFrom(const MetricsSnapshot& other,
                 const std::string& gauge_namespace = "");

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {"bounds":
  /// [...], "counts": [...], "count": n, "sum": s, "min": m, "max": M,
  /// "p50": ..., "p95": ..., "p99": ...}}}
  std::string ToJson() const;
};

/// Thread-safe name -> metric registry. Metrics are created on first use
/// and live as long as the registry; returned pointers are stable, so hot
/// paths look a metric up once and then touch only the atomic.
class MetricsRegistry {
 public:
  /// Get-or-create. A name names one metric kind forever; requesting an
  /// existing name as a different kind returns nullptr (programming error
  /// surfaced loudly in tests, tolerated silently in release).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);

  /// `bounds` applies only on first creation (empty = default latency
  /// bounds); later calls return the existing histogram regardless.
  Histogram* histogram(std::string_view name, std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric; registrations (and outstanding pointers) survive.
  void Reset();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII wall-time probe: records elapsed microseconds into a histogram on
/// destruction. A null histogram disables it entirely (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      h_->Observe(static_cast<double>(ElapsedUs()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  int64_t ElapsedUs() const {
    if (h_ == nullptr) {
      return 0;
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dcv::obs

#endif  // DCV_OBS_METRICS_H_
