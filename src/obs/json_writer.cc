#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace dcv::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  // Integral doubles print without an exponent or trailing ".000000".
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // snprintf honors the current LC_NUMERIC locale; JSON requires '.'.
  for (char& c : buf) {
    if (c == ',') {
      c = '.';
    }
  }
  return buf;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  out_ += JsonDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  return *this;
}

}  // namespace dcv::obs
