#ifndef DCV_OBS_JSON_WRITER_H_
#define DCV_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcv::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

/// Formats a double as JSON: locale-independent decimal point, shortest
/// round-trippable form, and "0" for non-finite values (JSON has no inf/nan).
std::string JsonDouble(double v);

/// Minimal streaming JSON writer. The caller drives structure explicitly:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("epochs"); w.Value(int64_t{42});
///   w.Key("sites");  w.BeginArray(); w.Value(int64_t{1}); w.EndArray();
///   w.EndObject();
///   std::string json = w.str();
///
/// Commas are inserted automatically; nesting is tracked with a small stack.
/// No validation beyond comma placement — mismatched Begin/End is on the
/// caller (tests pin the exported formats).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }

  /// Splices an already-serialized JSON value verbatim (comma handling
  /// included) — for composing exports that own their own ToJson.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> has_element_;
  /// True immediately after Key() — the next value is not comma-separated.
  bool pending_key_ = false;
};

}  // namespace dcv::obs

#endif  // DCV_OBS_JSON_WRITER_H_
