#ifndef DCV_OBS_OBS_H_
#define DCV_OBS_OBS_H_

// Umbrella header for the observability layer: the metrics registry
// (counters/gauges/histograms + ScopedTimer), the trace-event recorder with
// JSONL / Chrome trace_event export, and the null-safe DCV_OBS_* macros.
// Instrumented code holds possibly-null MetricsRegistry*/TraceRecorder*
// pointers; everything is inert (one branch) until a caller attaches real
// instances via SimOptions or Channel::SetObserver.

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

#endif  // DCV_OBS_OBS_H_
