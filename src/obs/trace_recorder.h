#ifndef DCV_OBS_TRACE_RECORDER_H_
#define DCV_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dcv::obs {

/// Typed per-epoch protocol events captured during a simulation run.
/// Site-scoped events carry the site index; coordinator-scoped events use
/// TraceRecorder::kCoordinator.
enum class TraceEventKind {
  kLocalAlarm = 0,       ///< Site's local constraint violated (value = X_i).
  kPollStart,            ///< Coordinator starts a poll round.
  kPollEnd,              ///< Poll round done (value = responses, dur set).
  kThresholdRecompute,   ///< Coordinator recomputed thresholds (dur set).
  kThresholdUpdate,      ///< New local threshold pushed (value = T_i).
  kFilterReport,         ///< Site filter/band/tracking report (value).
  kFilterUpdate,         ///< Coordinator filter/width installation.
  kBandChange,           ///< Multi-level band transition (value = band).
  kWidthRealloc,         ///< Adaptive-filter width reallocation round.
  kRetransmission,       ///< Reliable-send retry (value = attempt).
  kGiveUp,               ///< Reliable send exhausted every retry.
  kCrash,                ///< Site went down this epoch.
  kRecovery,             ///< Site came back up this epoch.
  kResync,               ///< Recovery state re-sync pushed to a site.
  kDegraded,             ///< Poll resolved with a substituted value.
  kSolverSolve,          ///< Threshold solver run (dur set).
  kViolation,            ///< Ground-truth violation (value = 1 if detected).
  // Chaos / failure-tolerance lifecycle (runtime only; PR 6 machinery).
  kShardDeath,           ///< Shard coordinator went silent (value = shard).
  kShardRespawn,         ///< Replacement shard thread started (value = shard).
  kLayoutRotation,       ///< Versioned shard layout pushed (value = version).
  kWorkerReconnect,      ///< Worker TCP link resumed (value = worker).
  kFrameReplay,          ///< Frames retransmitted on resume (value = count).
  kTelemetryFlush,       ///< Worker pushed a telemetry frame (value = bytes).
  kLastKind = kTelemetryFlush,
};

inline constexpr int kNumTraceEventKinds =
    static_cast<int>(TraceEventKind::kLastKind) + 1;

std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kLocalAlarm;
  int64_t epoch = 0;
  int32_t site = -1;        ///< -1 = coordinator.
  int64_t value = 0;        ///< Kind-specific payload.
  int64_t duration_us = 0;  ///< Wall time for span-like events, else 0.
  // Distributed-trace extensions (all default to the legacy single-process
  // epoch timebase, so simulator callers are unchanged).
  int64_t ts_us = 0;   ///< Wall-clock µs (coordinator clock); 0 = use epoch.
  int32_t process = 0; ///< Lane: 0 = coordinator process, k+1 = worker k.
  int32_t shard = -1;  ///< >= 0: coordinator-tree shard lane (site must be -1).
};

/// Bounded ring buffer of TraceEvents with JSONL and Chrome trace_event
/// export. Recording is thread-safe and allocation-free after construction;
/// when the buffer is full the oldest events are overwritten (dropped() says
/// how many). Schemes/channel/runner hold a possibly-null TraceRecorder*
/// and record via the DCV_OBS_EVENT macro, so the disabled path costs one
/// branch per site-epoch.
class TraceRecorder {
 public:
  static constexpr int32_t kCoordinator = -1;

  explicit TraceRecorder(size_t capacity = 1 << 16);

  void Record(TraceEventKind kind, int64_t epoch, int32_t site = kCoordinator,
              int64_t value = 0, int64_t duration_us = 0);

  /// Full-struct overload for the distributed-trace fields (wall-clock
  /// timestamp, process lane, shard lane).
  void Record(const TraceEvent& e);

  /// Opt-in wall-clock stamping: every subsequently recorded event whose
  /// ts_us is 0 gets the current wall time (system_clock µs) at Record
  /// time. Off by default so single-process simulator traces keep their
  /// epoch timebase (and byte-identical exports); the distributed runtime
  /// enables it so merged traces line up across processes.
  void EnableWallClock() { wall_clock_.store(true, std::memory_order_relaxed); }

  /// Oldest-first copy of the buffered events.
  std::vector<TraceEvent> Events() const;

  size_t size() const;
  int64_t dropped() const;
  void Clear();

  /// Declares how many site tracks the Chrome export should emit even when
  /// some sites never produced an event (one track per site is the
  /// contract). The runner calls this with the run's site count.
  void DeclareSites(int num_sites);

  /// One JSON object per line:
  ///   {"kind":"local_alarm","epoch":12,"site":3,"value":97}
  /// (duration_us included only when nonzero).
  std::string ToJsonl() const;

  /// Chrome trace_event JSON (chrome://tracing / Perfetto): one named
  /// thread track per site plus a coordinator track; events with a duration
  /// become complete ("X") slices, the rest instants ("i"). Timebase: one
  /// epoch = 1 ms, so ts = epoch * 1000 us. When any event carries a
  /// wall-clock ts_us (a merged distributed trace), the export switches to
  /// wall time relative to the earliest stamped event, emits one Chrome pid
  /// per process lane (coordinator = pid 1, worker k = pid 2+k), and gives
  /// coordinator-tree shards their own threads within the coordinator pid.
  std::string ToChromeJson() const;

  Status WriteJsonl(const std::string& path) const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::atomic<bool> wall_clock_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;    ///< Next write position once the ring has wrapped.
  bool wrapped_ = false;
  int64_t dropped_ = 0;
  int declared_sites_ = 0;
};

}  // namespace dcv::obs

// Null-safe event recording that compiles out entirely under
// -DDCV_OBS_DISABLE, keeping the perfect-channel fast path allocation- and
// branch-free for builds that want to prove observability costs nothing.
#ifdef DCV_OBS_DISABLE
#define DCV_OBS_EVENT(recorder, ...) (void)0
#define DCV_OBS_COUNT(counter, n) (void)0
#else
#define DCV_OBS_EVENT(recorder, ...)      \
  do {                                    \
    if ((recorder) != nullptr) {          \
      (recorder)->Record(__VA_ARGS__);    \
    }                                     \
  } while (0)
#define DCV_OBS_COUNT(counter, n)         \
  do {                                    \
    if ((counter) != nullptr) {           \
      (counter)->Increment(n);            \
    }                                     \
  } while (0)
#endif

#endif  // DCV_OBS_TRACE_RECORDER_H_
