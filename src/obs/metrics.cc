#include "obs/metrics.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace dcv::obs {
namespace {

/// Relaxed add for atomic<double> (fetch_add on floating atomics is C++20
/// but not universally lock-free; a CAS loop is portable and contention here
/// is negligible).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = DefaultLatencyBoundsUs();
  }
  counts_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  size_t idx = static_cast<size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  // Unconditional CAS-min/CAS-max against the +/-inf idle sentinels: the
  // old "first observation stores, later ones CAS" scheme let a first
  // Observe overwrite a concurrent second one's extremum.
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  } else {
    s.min = 0.0;  // Hide the idle +/-inf sentinels from exports.
    s.max = 0.0;
  }
  return s;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = ExponentialBounds(1.0, 2.0, 24);
  return kBounds;
}

double HistogramSnapshot::Quantile(double p) const {
  if (count <= 0 || counts.empty()) {
    return 0.0;
  }
  p = std::min(1.0, std::max(0.0, p));
  const double target = p * static_cast<double>(count);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket <= 0.0 || cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    // Bucket edges: the first nonempty bucket opens at the observed min and
    // the overflow bucket closes at the observed max, so the interpolation
    // never reaches past real observations.
    double lo = i == 0 ? min : bounds[i - 1];
    double hi = i < bounds.size() ? bounds[i] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) {
      hi = lo;
    }
    const double frac = in_bucket > 0.0 ? (target - cum) / in_bucket : 0.0;
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return max;
}

bool HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  sum += other.sum;
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return false;  // Totals folded above; per-bucket shapes disagree.
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  return true;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other,
                                const std::string& gauge_namespace) {
  for (const auto& [name, v] : other.counters) {
    counters[name] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    gauges[gauge_namespace.empty() ? name : gauge_namespace + "/" + name] = v;
  }
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
    } else {
      it->second.MergeFrom(h);
    }
  }
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& base) const {
  MetricsSnapshot d;
  d.gauges = gauges;
  for (const auto& [name, v] : counters) {
    auto it = base.counters.find(name);
    d.counters[name] = it == base.counters.end() ? v : v - it->second;
  }
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot dh = h;
    auto it = base.histograms.find(name);
    if (it != base.histograms.end() &&
        it->second.counts.size() == h.counts.size()) {
      for (size_t i = 0; i < dh.counts.size(); ++i) {
        dh.counts[i] -= it->second.counts[i];
      }
      dh.count -= it->second.count;
      dh.sum -= it->second.sum;
    }
    d.histograms[name] = std::move(dh);
  }
  return d;
}

namespace {

void AppendHistogram(JsonWriter* w, const HistogramSnapshot& h) {
  w->BeginObject();
  w->Key("bounds").BeginArray();
  for (double b : h.bounds) {
    w->Value(b);
  }
  w->EndArray();
  w->Key("counts").BeginArray();
  for (int64_t c : h.counts) {
    w->Value(c);
  }
  w->EndArray();
  w->Key("count").Value(h.count);
  w->Key("sum").Value(h.sum);
  w->Key("min").Value(h.min);
  w->Key("max").Value(h.max);
  w->Key("p50").Value(h.Quantile(0.50));
  w->Key("p95").Value(h.Quantile(0.95));
  w->Key("p99").Value(h.Quantile(0.99));
  w->EndObject();
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, v] : counters) {
    w.Key(name).Value(v);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : gauges) {
    w.Key(name).Value(v);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name);
    AppendHistogram(&w, h);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.counter = std::make_unique<Counter>();
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      s.counters[name] = e.counter->value();
    } else if (e.gauge != nullptr) {
      s.gauges[name] = e.gauge->value();
    } else if (e.histogram != nullptr) {
      s.histograms[name] = e.histogram->Snapshot();
    }
  }
  return s;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      e.counter->Reset();
    } else if (e.gauge != nullptr) {
      e.gauge->Reset();
    } else if (e.histogram != nullptr) {
      e.histogram->Reset();
    }
  }
}

}  // namespace dcv::obs
