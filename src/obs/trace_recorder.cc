#include "obs/trace_recorder.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace dcv::obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kLocalAlarm:
      return "local_alarm";
    case TraceEventKind::kPollStart:
      return "poll_start";
    case TraceEventKind::kPollEnd:
      return "poll_end";
    case TraceEventKind::kThresholdRecompute:
      return "threshold_recompute";
    case TraceEventKind::kThresholdUpdate:
      return "threshold_update";
    case TraceEventKind::kFilterReport:
      return "filter_report";
    case TraceEventKind::kFilterUpdate:
      return "filter_update";
    case TraceEventKind::kBandChange:
      return "band_change";
    case TraceEventKind::kWidthRealloc:
      return "width_realloc";
    case TraceEventKind::kRetransmission:
      return "retransmission";
    case TraceEventKind::kGiveUp:
      return "give_up";
    case TraceEventKind::kCrash:
      return "crash";
    case TraceEventKind::kRecovery:
      return "recovery";
    case TraceEventKind::kResync:
      return "resync";
    case TraceEventKind::kDegraded:
      return "degraded";
    case TraceEventKind::kSolverSolve:
      return "solver_solve";
    case TraceEventKind::kViolation:
      return "violation";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(TraceEventKind kind, int64_t epoch, int32_t site,
                           int64_t value, int64_t duration_us) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e{kind, epoch, site, value, duration_us};
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  wrapped_ = true;
  ring_[next_] = e;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) {
    return ring_;
  }
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

void TraceRecorder::DeclareSites(int num_sites) {
  std::lock_guard<std::mutex> lock(mu_);
  declared_sites_ = std::max(declared_sites_, num_sites);
}

std::string TraceRecorder::ToJsonl() const {
  std::string out;
  for (const TraceEvent& e : Events()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("kind").Value(TraceEventKindName(e.kind));
    w.Key("epoch").Value(e.epoch);
    w.Key("site").Value(static_cast<int64_t>(e.site));
    w.Key("value").Value(e.value);
    if (e.duration_us != 0) {
      w.Key("duration_us").Value(e.duration_us);
    }
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string TraceRecorder::ToChromeJson() const {
  // Track layout: pid 1 throughout; tid 0 is the coordinator, tid i+1 is
  // site i. thread_name metadata labels the tracks, thread_sort_index keeps
  // the coordinator on top.
  const std::vector<TraceEvent> events = Events();
  int num_sites;
  {
    std::lock_guard<std::mutex> lock(mu_);
    num_sites = declared_sites_;
  }
  for (const TraceEvent& e : events) {
    num_sites = std::max(num_sites, e.site + 1);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();

  auto metadata = [&](int64_t tid, const std::string& name, int64_t sort) {
    w.BeginObject();
    w.Key("name").Value("thread_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(int64_t{1});
    w.Key("tid").Value(tid);
    w.Key("args").BeginObject().Key("name").Value(name).EndObject();
    w.EndObject();
    w.BeginObject();
    w.Key("name").Value("thread_sort_index");
    w.Key("ph").Value("M");
    w.Key("pid").Value(int64_t{1});
    w.Key("tid").Value(tid);
    w.Key("args").BeginObject().Key("sort_index").Value(sort).EndObject();
    w.EndObject();
  };
  metadata(0, "coordinator", 0);
  for (int i = 0; i < num_sites; ++i) {
    metadata(i + 1, "site " + std::to_string(i), i + 1);
  }

  for (const TraceEvent& e : events) {
    const int64_t tid = e.site < 0 ? 0 : e.site + 1;
    const int64_t ts = e.epoch * 1000;  // One epoch = 1 ms = 1000 us.
    w.BeginObject();
    w.Key("name").Value(TraceEventKindName(e.kind));
    w.Key("cat").Value("dcv");
    if (e.duration_us > 0) {
      w.Key("ph").Value("X");
      w.Key("dur").Value(e.duration_us);
    } else {
      w.Key("ph").Value("i");
      w.Key("s").Value("t");
    }
    w.Key("ts").Value(ts);
    w.Key("pid").Value(int64_t{1});
    w.Key("tid").Value(tid);
    w.Key("args")
        .BeginObject()
        .Key("epoch")
        .Value(e.epoch)
        .Key("value")
        .Value(e.value)
        .EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

}  // namespace

Status TraceRecorder::WriteJsonl(const std::string& path) const {
  return WriteFile(path, ToJsonl());
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

}  // namespace dcv::obs
