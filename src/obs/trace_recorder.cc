#include "obs/trace_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/json_writer.h"

namespace dcv::obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kLocalAlarm:
      return "local_alarm";
    case TraceEventKind::kPollStart:
      return "poll_start";
    case TraceEventKind::kPollEnd:
      return "poll_end";
    case TraceEventKind::kThresholdRecompute:
      return "threshold_recompute";
    case TraceEventKind::kThresholdUpdate:
      return "threshold_update";
    case TraceEventKind::kFilterReport:
      return "filter_report";
    case TraceEventKind::kFilterUpdate:
      return "filter_update";
    case TraceEventKind::kBandChange:
      return "band_change";
    case TraceEventKind::kWidthRealloc:
      return "width_realloc";
    case TraceEventKind::kRetransmission:
      return "retransmission";
    case TraceEventKind::kGiveUp:
      return "give_up";
    case TraceEventKind::kCrash:
      return "crash";
    case TraceEventKind::kRecovery:
      return "recovery";
    case TraceEventKind::kResync:
      return "resync";
    case TraceEventKind::kDegraded:
      return "degraded";
    case TraceEventKind::kSolverSolve:
      return "solver_solve";
    case TraceEventKind::kViolation:
      return "violation";
    case TraceEventKind::kShardDeath:
      return "shard_death";
    case TraceEventKind::kShardRespawn:
      return "shard_respawn";
    case TraceEventKind::kLayoutRotation:
      return "layout_rotation";
    case TraceEventKind::kWorkerReconnect:
      return "worker_reconnect";
    case TraceEventKind::kFrameReplay:
      return "frame_replay";
    case TraceEventKind::kTelemetryFlush:
      return "telemetry_flush";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(TraceEventKind kind, int64_t epoch, int32_t site,
                           int64_t value, int64_t duration_us) {
  TraceEvent e;
  e.kind = kind;
  e.epoch = epoch;
  e.site = site;
  e.value = value;
  e.duration_us = duration_us;
  Record(e);
}

void TraceRecorder::Record(const TraceEvent& e) {
  TraceEvent stamped = e;
  if (stamped.ts_us == 0 && wall_clock_.load(std::memory_order_relaxed)) {
    stamped.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
    return;
  }
  wrapped_ = true;
  ring_[next_] = stamped;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) {
    return ring_;
  }
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

void TraceRecorder::DeclareSites(int num_sites) {
  std::lock_guard<std::mutex> lock(mu_);
  declared_sites_ = std::max(declared_sites_, num_sites);
}

std::string TraceRecorder::ToJsonl() const {
  std::string out;
  for (const TraceEvent& e : Events()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("kind").Value(TraceEventKindName(e.kind));
    w.Key("epoch").Value(e.epoch);
    w.Key("site").Value(static_cast<int64_t>(e.site));
    w.Key("value").Value(e.value);
    if (e.duration_us != 0) {
      w.Key("duration_us").Value(e.duration_us);
    }
    // Distributed-trace fields are emitted only when set, so legacy
    // single-process JSONL output is byte-identical.
    if (e.ts_us != 0) {
      w.Key("ts_us").Value(e.ts_us);
    }
    if (e.process != 0) {
      w.Key("process").Value(static_cast<int64_t>(e.process));
    }
    if (e.shard >= 0) {
      w.Key("shard").Value(static_cast<int64_t>(e.shard));
    }
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string TraceRecorder::ToChromeJson() const {
  // Track layout: tid 0 is the coordinator (or the worker lane itself in a
  // worker pid), tid i+1 is site i, and tid 1000+s is coordinator-tree
  // shard s. Legacy single-process traces keep pid 1 throughout; a merged
  // distributed trace (any event with a wall-clock ts_us) emits pid
  // 1+process so Perfetto shows coordinator / worker process groups.
  const std::vector<TraceEvent> events = Events();
  int num_sites;
  {
    std::lock_guard<std::mutex> lock(mu_);
    num_sites = declared_sites_;
  }
  bool wall_mode = false;
  int64_t wall_base = 0;
  int max_process = 0;
  int max_shard = -1;
  for (const TraceEvent& e : events) {
    num_sites = std::max(num_sites, e.site + 1);
    max_process = std::max(max_process, e.process);
    max_shard = std::max(max_shard, e.shard);
    if (e.ts_us != 0) {
      wall_base = wall_mode ? std::min(wall_base, e.ts_us) : e.ts_us;
      wall_mode = true;
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();

  auto metadata = [&](int64_t pid, int64_t tid, const std::string& name,
                      int64_t sort) {
    w.BeginObject();
    w.Key("name").Value("thread_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(pid);
    w.Key("tid").Value(tid);
    w.Key("args").BeginObject().Key("name").Value(name).EndObject();
    w.EndObject();
    w.BeginObject();
    w.Key("name").Value("thread_sort_index");
    w.Key("ph").Value("M");
    w.Key("pid").Value(pid);
    w.Key("tid").Value(tid);
    w.Key("args").BeginObject().Key("sort_index").Value(sort).EndObject();
    w.EndObject();
  };
  auto process_name = [&](int64_t pid, const std::string& name) {
    w.BeginObject();
    w.Key("name").Value("process_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(pid);
    w.Key("tid").Value(int64_t{0});
    w.Key("args").BeginObject().Key("name").Value(name).EndObject();
    w.EndObject();
  };

  if (wall_mode) {
    // Process lanes only exist in merged multi-process traces; the legacy
    // single-process export stays byte-identical without them.
    process_name(1, "coordinator");
  }
  metadata(1, 0, "coordinator", 0);
  for (int s = 0; s <= max_shard; ++s) {
    metadata(1, 1000 + s, "shard " + std::to_string(s), 500 + s);
  }
  if (wall_mode) {
    // Merged trace: site lanes live in whichever worker pid produced their
    // events; worker pids get their own lane plus process metadata.
    for (int p = 1; p <= max_process; ++p) {
      process_name(1 + p, "worker " + std::to_string(p - 1));
      metadata(1 + p, 0, "worker " + std::to_string(p - 1), 0);
    }
    std::vector<std::pair<int32_t, int32_t>> seen;  // (process, site)
    for (const TraceEvent& e : events) {
      if (e.site < 0) {
        continue;
      }
      std::pair<int32_t, int32_t> key{e.process, e.site};
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(key);
        metadata(1 + e.process, e.site + 1,
                 "site " + std::to_string(e.site), e.site + 1);
      }
    }
  } else {
    for (int i = 0; i < num_sites; ++i) {
      metadata(1, i + 1, "site " + std::to_string(i), i + 1);
    }
  }

  for (const TraceEvent& e : events) {
    const int64_t pid = wall_mode ? 1 + e.process : 1;
    const int64_t tid =
        e.site >= 0 ? e.site + 1 : (e.shard >= 0 ? 1000 + e.shard : 0);
    // One epoch = 1 ms = 1000 us in the legacy timebase; wall mode uses
    // microseconds since the earliest stamped event.
    const int64_t ts =
        e.ts_us != 0 ? e.ts_us - wall_base : e.epoch * 1000;
    w.BeginObject();
    w.Key("name").Value(TraceEventKindName(e.kind));
    w.Key("cat").Value("dcv");
    if (e.duration_us > 0) {
      w.Key("ph").Value("X");
      w.Key("dur").Value(e.duration_us);
    } else {
      w.Key("ph").Value("i");
      w.Key("s").Value("t");
    }
    w.Key("ts").Value(ts);
    w.Key("pid").Value(pid);
    w.Key("tid").Value(tid);
    w.Key("args")
        .BeginObject()
        .Key("epoch")
        .Value(e.epoch)
        .Key("value")
        .Value(e.value)
        .EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

}  // namespace

Status TraceRecorder::WriteJsonl(const std::string& path) const {
  return WriteFile(path, ToJsonl());
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

}  // namespace dcv::obs
