#ifndef DCV_RUNTIME_SITE_WORKER_H_
#define DCV_RUNTIME_SITE_WORKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/site_engine.h"
#include "runtime/socket_transport.h"
#include "trace/trace.h"

namespace dcv {

/// Configuration for one site-worker process (the remote half of a
/// socket-transport run; `dcvtool site-worker` is a thin wrapper).
struct SiteWorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int worker = 0;       ///< This process's worker index in [0, num_workers).
  int num_workers = 1;  ///< Must match the coordinator's fabric shape.
  int num_sites = 1;

  /// Synthetic workload (used when the eval trace is null): each owned site
  /// generates `synthetic_updates` values from its (seed, site) stream —
  /// the same derivation the in-process runtime uses, so a seed pins the
  /// streams across process boundaries too.
  int64_t synthetic_updates = 0;
  uint64_t seed = 42;
  int64_t synthetic_max = 1000000;

  /// Site-side execution engine; must not affect results (virtual-time
  /// conformance asserts bit-identity), only how the owned sites are
  /// driven: one SoA engine loop (default) vs one SiteActor per site.
  SiteEngineKind engine = SiteEngineKind::kMultiplexed;

  SocketTransport::Options socket;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;

  /// Cadence of cumulative telemetry pushes toward the coordinator; <= 0
  /// disables the periodic flusher (the final shutdown push still happens,
  /// so the coordinator's merge always sees this worker).
  int telemetry_interval_ms = 50;
};

/// What one worker process did, for its exit report.
struct SiteWorkerReport {
  std::vector<int> sites;  ///< Owned site ids (site % num_workers == worker).
  bool virtual_time = true;  ///< Mode adopted from the coordinator.
  int64_t total_updates = 0;
  SocketStats socket;
};

/// Connects to the coordinator, builds the owned SiteActors (site s is owned
/// iff s % num_workers == worker), installs the initial thresholds the
/// coordinator pushes before epoch zero, then runs the standard worker loop
/// in whichever mode the coordinator's handshake advertised. Returns after
/// the coordinator's kShutdown broadcast. `eval` supplies trace-driven
/// workloads (owned sites replay their columns); null means synthetic.
Result<SiteWorkerReport> RunSiteWorker(const Trace* eval,
                                       const SiteWorkerOptions& options);

}  // namespace dcv

#endif  // DCV_RUNTIME_SITE_WORKER_H_
