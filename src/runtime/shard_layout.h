#ifndef DCV_RUNTIME_SHARD_LAYOUT_H_
#define DCV_RUNTIME_SHARD_LAYOUT_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dcv {

/// Contiguous partition of N sites across k shard coordinators. The
/// default (empty `starts`) is the balanced split: the first (N mod k)
/// shards own ceil(N/k) sites, the rest floor(N/k). A non-empty `starts`
/// (k+1 ascending boundaries, starts[0]=0, starts[k]=N) describes an
/// explicit partition — the form a mid-run reshard pushes, versioned by
/// `version` so every party can tell stale layouts from current ones.
///
/// Contiguity is what keeps the sharded virtual-time runs bit-identical to
/// the lockstep simulator — iterating shards 0..k-1 and each shard's sites
/// in ascending order visits the global site ids in ascending order, which
/// is exactly the order the flat coordinator (and the single-threaded
/// schemes) replay their channel sends in. Every layout, balanced or
/// explicit, preserves that invariant.
struct ShardLayout {
  int num_sites = 0;
  int num_shards = 1;
  uint32_t version = 0;      ///< Monotone; bumped by each reshard push.
  std::vector<int> starts;   ///< Empty = balanced; else k+1 boundaries.

  /// First site owned by `shard`.
  int ShardStart(int shard) const {
    if (!starts.empty()) {
      return starts[static_cast<size_t>(shard)];
    }
    const int base = num_sites / num_shards;
    const int rem = num_sites % num_shards;
    return shard * base + (shard < rem ? shard : rem);
  }

  /// Number of sites owned by `shard`.
  int ShardSize(int shard) const {
    if (!starts.empty()) {
      return starts[static_cast<size_t>(shard) + 1] -
             starts[static_cast<size_t>(shard)];
    }
    const int base = num_sites / num_shards;
    const int rem = num_sites % num_shards;
    return base + (shard < rem ? 1 : 0);
  }

  /// The shard owning `site`; O(1) arithmetic for the balanced split,
  /// O(log k) boundary search for an explicit one.
  int ShardOf(int site) const {
    if (!starts.empty()) {
      auto it = std::upper_bound(starts.begin(), starts.end(), site);
      return static_cast<int>(it - starts.begin()) - 1;
    }
    const int base = num_sites / num_shards;
    const int rem = num_sites % num_shards;
    const int boundary = rem * (base + 1);
    if (site < boundary) {
      return site / (base + 1);
    }
    return rem + (site - boundary) / base;
  }

  /// Sites a full epoch can put in flight toward the most-loaded shard.
  int MaxShardSites() const {
    if (!starts.empty()) {
      int widest = 0;
      for (int s = 0; s < num_shards; ++s) {
        widest = std::max(widest, ShardSize(s));
      }
      return widest;
    }
    return (num_sites + num_shards - 1) / num_shards;
  }
};

/// Validates 1 <= num_shards <= num_sites (a shard with zero sites would be
/// a coordinator thread with nothing to coordinate).
inline Result<ShardLayout> MakeShardLayout(int num_sites, int num_shards) {
  if (num_sites < 1) {
    return InvalidArgumentError("shard layout needs at least one site");
  }
  if (num_shards < 1 || num_shards > num_sites) {
    return InvalidArgumentError("num_shards must be in [1, num_sites], got " +
                                std::to_string(num_shards) + " for " +
                                std::to_string(num_sites) + " sites");
  }
  ShardLayout layout;
  layout.num_sites = num_sites;
  layout.num_shards = num_shards;
  return layout;
}

/// Validates and builds an explicit layout from k+1 ascending boundaries
/// (starts[0] == 0, starts[k] == num_sites, every shard non-empty).
inline Result<ShardLayout> MakeExplicitLayout(int num_sites,
                                              std::vector<int> starts,
                                              uint32_t version) {
  const int k = static_cast<int>(starts.size()) - 1;
  if (num_sites < 1 || k < 1 || k > num_sites) {
    return InvalidArgumentError("explicit layout needs 1 <= shards <= sites");
  }
  if (starts.front() != 0 || starts.back() != num_sites) {
    return InvalidArgumentError(
        "explicit layout boundaries must span [0, num_sites]");
  }
  for (int s = 0; s < k; ++s) {
    if (starts[static_cast<size_t>(s)] >= starts[static_cast<size_t>(s) + 1]) {
      return InvalidArgumentError(
          "explicit layout boundaries must be strictly ascending "
          "(no empty shard)");
    }
  }
  ShardLayout layout;
  layout.num_sites = num_sites;
  layout.num_shards = k;
  layout.version = version;
  layout.starts = std::move(starts);
  return layout;
}

/// A deterministic non-trivial rebalance of `from`: shifts every interior
/// boundary one site to the right where legal (each shard stays non-empty).
/// Used by the chaos harness's `reshard` scenario to exercise the layout
/// push protocol with a layout that genuinely differs from the current one.
inline ShardLayout RotateLayout(const ShardLayout& from) {
  std::vector<int> starts(static_cast<size_t>(from.num_shards) + 1);
  for (int s = 0; s < from.num_shards; ++s) {
    starts[static_cast<size_t>(s)] = from.ShardStart(s);
  }
  starts[static_cast<size_t>(from.num_shards)] = from.num_sites;
  for (int s = 1; s < from.num_shards; ++s) {
    if (starts[static_cast<size_t>(s)] + 1 <
        starts[static_cast<size_t>(s) + 1]) {
      ++starts[static_cast<size_t>(s)];
    }
  }
  // The shift preserves every invariant MakeExplicitLayout checks (it is a
  // no-op when all shards have size 1), so this cannot fail.
  return *MakeExplicitLayout(from.num_sites, std::move(starts),
                             from.version + 1);
}

}  // namespace dcv

#endif  // DCV_RUNTIME_SHARD_LAYOUT_H_
