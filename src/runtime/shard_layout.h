#ifndef DCV_RUNTIME_SHARD_LAYOUT_H_
#define DCV_RUNTIME_SHARD_LAYOUT_H_

#include <string>

#include "common/result.h"

namespace dcv {

/// Contiguous balanced partition of N sites across k shard coordinators:
/// the first (N mod k) shards own ceil(N/k) sites, the rest floor(N/k).
/// Contiguity is what keeps the sharded virtual-time runs bit-identical to
/// the lockstep simulator — iterating shards 0..k-1 and each shard's sites
/// in ascending order visits the global site ids in ascending order, which
/// is exactly the order the flat coordinator (and the single-threaded
/// schemes) replay their channel sends in.
struct ShardLayout {
  int num_sites = 0;
  int num_shards = 1;

  /// First site owned by `shard`.
  int ShardStart(int shard) const {
    const int base = num_sites / num_shards;
    const int rem = num_sites % num_shards;
    return shard * base + (shard < rem ? shard : rem);
  }

  /// Number of sites owned by `shard`.
  int ShardSize(int shard) const {
    const int base = num_sites / num_shards;
    const int rem = num_sites % num_shards;
    return base + (shard < rem ? 1 : 0);
  }

  /// The shard owning `site`; O(1) arithmetic, no table.
  int ShardOf(int site) const {
    const int base = num_sites / num_shards;
    const int rem = num_sites % num_shards;
    const int boundary = rem * (base + 1);
    if (site < boundary) {
      return site / (base + 1);
    }
    return rem + (site - boundary) / base;
  }

  /// Sites a full epoch can put in flight toward the most-loaded shard,
  /// i.e. ceil(num_sites / num_shards).
  int MaxShardSites() const {
    return (num_sites + num_shards - 1) / num_shards;
  }
};

/// Validates 1 <= num_shards <= num_sites (a shard with zero sites would be
/// a coordinator thread with nothing to coordinate).
inline Result<ShardLayout> MakeShardLayout(int num_sites, int num_shards) {
  if (num_sites < 1) {
    return InvalidArgumentError("shard layout needs at least one site");
  }
  if (num_shards < 1 || num_shards > num_sites) {
    return InvalidArgumentError("num_shards must be in [1, num_sites], got " +
                                std::to_string(num_shards) + " for " +
                                std::to_string(num_sites) + " sites");
  }
  ShardLayout layout;
  layout.num_sites = num_sites;
  layout.num_shards = num_shards;
  return layout;
}

}  // namespace dcv

#endif  // DCV_RUNTIME_SHARD_LAYOUT_H_
