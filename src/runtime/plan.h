#ifndef DCV_RUNTIME_PLAN_H_
#define DCV_RUNTIME_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "runtime/shard_layout.h"
#include "threshold/solver.h"
#include "trace/trace.h"

namespace dcv {

/// The static deployment plan the runtime coordinator and sites are
/// provisioned with: per-site local thresholds T_i plus the per-site
/// pessimistic poll fallbacks M_i (declared domain maxima).
struct LocalPlan {
  std::vector<int64_t> thresholds;
  std::vector<int64_t> domain_max;
};

/// Computes the plan exactly the way LocalThresholdScheme::Initialize does
/// for its default options — per-site equi-depth histograms over the
/// training trace, domain maxima with `domain_headroom` over the observed
/// maxima, and one solver run against the full budget — so a runtime
/// provisioned from this plan enforces the same thresholds as the lockstep
/// scheme (the conformance tests assert the vectors are equal).
Result<LocalPlan> BuildLocalPlan(const Trace& training,
                                 const std::vector<int64_t>& weights,
                                 int64_t global_threshold,
                                 const ThresholdSolver& solver,
                                 int histogram_buckets = 100,
                                 double domain_headroom = 4.0);

/// The shard-local view of a global plan: thresholds and pessimistic poll
/// fallbacks for exactly the contiguous site range `shard` owns under
/// `layout`, indexed by shard-local site (global site - ShardStart). Shard
/// coordinators are provisioned from slices so threshold distribution and
/// per-shard poll aggregation never touch another shard's sites. Vectors
/// shorter than the shard's range (legal for the unconstrained protocols)
/// slice to their available prefix.
LocalPlan SliceForShard(const LocalPlan& plan, const ShardLayout& layout,
                        int shard);

}  // namespace dcv

#endif  // DCV_RUNTIME_PLAN_H_
