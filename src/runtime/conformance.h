#ifndef DCV_RUNTIME_CONFORMANCE_H_
#define DCV_RUNTIME_CONFORMANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/runtime.h"
#include "sim/runner.h"
#include "trace/trace.h"

namespace dcv {

/// One conformance scenario: the same trace, constraint, solver, and fault
/// spec run through both the lockstep simulator and the threaded runtime in
/// virtual-time mode.
struct ConformanceSpec {
  RuntimeProtocol protocol = RuntimeProtocol::kLocalThreshold;
  const ThresholdSolver* solver = nullptr;  ///< kLocalThreshold only.
  int64_t poll_period = 5;                  ///< kPolling only.
  std::vector<int64_t> weights;             ///< Empty = all ones.
  int64_t global_threshold = 0;
  FaultSpec faults;
  int num_workers = 0;  ///< 0 = auto (see RuntimeOptions::num_workers).

  /// Site-side engine for the runtime runs: the multiplexed SoA loop
  /// (default) or the actor-per-site baseline. Conformance must hold for
  /// both — the engine-conformance tests diff them against each other AND
  /// the lockstep reference.
  SiteEngineKind engine = SiteEngineKind::kMultiplexed;

  /// Coordinator shard count for the runtime runs (two-level coordinator
  /// tree; 1 = flat). Virtual-time results must be bit-identical for every
  /// legal value — sharded conformance IS the determinism proof.
  int num_shards = 1;

  /// kSocket adds a THIRD run over loopback TCP: the harness spawns one
  /// in-process site-worker driver per worker (the exact code `dcvtool
  /// site-worker` runs), connects them to an ephemeral-port coordinator,
  /// and diffs that run against the lockstep reference too.
  TransportKind transport = TransportKind::kThread;

  /// Chaos: kill a shard coordinator / sever a worker link / push a
  /// mid-run reshard at a seed-resolved point DURING the runtime runs (the
  /// lockstep reference always runs healthy). Conformance with chaos on is
  /// the recovery proof: the runtime must survive the failure AND still
  /// produce bit-identical virtual-time detections. kill-worker needs the
  /// socket transport (there is no link to sever in-process) and is
  /// applied to the socket run only.
  ChaosSpec chaos;
  /// Dead-shard detection window for the runtime runs; must be > 0 when
  /// chaos kills a shard (the root has to notice the silence).
  int heartbeat_timeout_ms = 0;
};

/// Side-by-side outcome plus the verdict. `identical` demands agreement
/// per epoch (alarms, polled, violation_reported), on every per-type
/// message count, and on the channel's wire-level reliability stats — not
/// just equal totals.
struct ConformanceReport {
  SimResult lockstep;
  RuntimeResult runtime;
  std::vector<EpochDetection> lockstep_epochs;
  RuntimeResult socket_runtime;  ///< Filled when ran_socket.
  bool ran_socket = false;
  bool identical = false;
  std::string mismatch;  ///< Empty when identical; else first divergence.
};

/// Runs both implementations and diffs them. A non-OK status means a run
/// failed outright; a report with identical == false means both ran but
/// disagreed (the mismatch string says where first).
Result<ConformanceReport> RunConformance(const Trace& training,
                                         const Trace& eval,
                                         const ConformanceSpec& spec);

}  // namespace dcv

#endif  // DCV_RUNTIME_CONFORMANCE_H_
