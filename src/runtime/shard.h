#ifndef DCV_RUNTIME_SHARD_H_
#define DCV_RUNTIME_SHARD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/coordinator.h"
#include "runtime/mailbox.h"
#include "runtime/plan.h"
#include "runtime/shard_layout.h"
#include "runtime/transport.h"
#include "sim/channel.h"

namespace dcv {

/// The shard half of the two-level coordinator tree. Each shard
/// coordinator thread owns a contiguous range of sites (shard_layout.h):
/// alarm intake, threshold distribution, and the per-shard leg of every
/// poll round for exactly those sites. The root aggregator (coordinator.cc)
/// drives the shards and combines their partials into the global
/// constraint decision, so per-round work at the root is O(num_shards)
/// messages instead of O(num_sites).
///
/// Determinism contract (virtual-time mode): shards never touch a Channel.
/// They relay ground truth between the transport and the root; every
/// channel call — the single source of message fates, RNG draws, and
/// MessageCounter charges — stays on the root thread, issued in the exact
/// site order the flat coordinator used. That is why sharded virtual runs
/// are bit-identical to the lockstep simulator (the conformance harness
/// asserts it for 1, 2, and 4 shards).
///
/// Free-running mode inverts the split: each shard owns a Channel over its
/// own site range (fault spec sliced via SliceFaultSpec) and aggregates
/// its poll leg locally — partial weighted SUM plus MIN/MAX — so the root
/// combines k partials without ever materializing per-site values. No
/// per-epoch determinism is claimed in this mode, same as the flat
/// coordinator.

/// Root -> shard command, virtual-time mode only. Travels over an internal
/// Mailbox (never the transport): epoch commands carry vectors that do not
/// fit an Envelope, and in virtual mode the shard's blocking wait
/// alternates strictly between this box and the transport, so two sources
/// never race.
struct ShardCmd {
  enum class Kind {
    kEpoch,     ///< Run one epoch barrier over the shard's sites.
    kPoll,      ///< Fan out one poll round and report the responses.
    kLayout,    ///< Adopt a new shard layout (and plan slice) mid-run.
    kShutdown,  ///< Forward kShutdown to the sites and exit.
  };
  Kind kind = Kind::kEpoch;
  int64_t epoch = 0;
  /// kEpoch: up/down flag per shard-local site (the root owns the channel
  /// and thus the crash schedule).
  std::vector<char> up;
  /// kEpoch: global site ids whose threshold re-sync got through the wire
  /// this epoch (root already charged the sends); the shard pushes the
  /// transport messages so the per-site update-before-epoch-start FIFO
  /// holds with a single producer per site.
  std::vector<int> resync_sites;
  /// kLayout: the new versioned layout plus this shard's plan slice under
  /// it. Sent only at an epoch boundary (no in-flight data-plane traffic),
  /// after the transport itself adopted the layout, and the command box is
  /// FIFO — so the shard switches ranges strictly between epochs.
  ShardLayout layout;
  LocalPlan plan;
};

/// Shard -> root message (internal mailbox in both modes).
struct RootMsg {
  enum class Kind {
    kEpochPartial,  ///< Virtual: epoch barrier done; entries = alarmed sites.
    kPollPartial,   ///< Poll leg done. Virtual: entries = every site's value.
                    ///< Free: aggregated sum/min/max, no per-site entries.
    kAlarmNotice,   ///< Free: a delivered alarm needs a poll round.
    kSiteDone,      ///< Free: one owned site reported kSiteDone. Relayed
                    ///< per site (not batched per shard) so the root's
                    ///< done-tracking survives a shard death: whatever the
                    ///< dead shard already relayed stays counted, and the
                    ///< replacement relays the rest.
    kHeartbeat,     ///< Free: reply to the root's kPing liveness probe.
    kShardExit,     ///< Free: shard exiting; final per-shard accounting.
    kError,         ///< Shard hit a protocol/transport error; see status.
  };
  Kind kind = Kind::kEpochPartial;
  int shard = 0;
  int64_t epoch = 0;
  /// (global site, value) pairs in ascending site order. kEpochPartial:
  /// alarmed sites and their observed values. kPollPartial (virtual): every
  /// owned site's response. kSiteDone: the one site's update count.
  std::vector<std::pair<int, int64_t>> entries;
  // kPollPartial, free-running mode: the shard-aggregated poll leg.
  int64_t partial_sum = 0;  ///< Weighted sum over the shard's sites.
  int64_t partial_min = 0;  ///< Min/max of the resolved per-site values —
  int64_t partial_max = 0;  ///< groundwork for MIN/MAX runtime constraints.
  int responses = 0;
  int timeouts = 0;
  // kShardExit: merged into the run totals by the root.
  int64_t alarms = 0;
  MessageCounter messages;
  ChannelStats reliability;
  Status status;  ///< kError (and kShardExit on abnormal transport close).
};

/// Everything one shard coordinator thread needs. Pointers are owned by
/// the root and outlive the thread.
struct ShardContext {
  int shard = 0;
  ShardLayout layout;
  Transport* transport = nullptr;
  Mailbox<ShardCmd>* cmds = nullptr;  ///< Virtual mode only.
  Mailbox<RootMsg>* to_root = nullptr;
  /// Shard-local plan slice (SliceForShard): thresholds for re-sync
  /// pushes, domain_max as the pessimistic poll fallback.
  LocalPlan plan;
  RuntimeProtocol protocol = RuntimeProtocol::kLocalThreshold;
  // Free-running mode only.
  std::vector<int64_t> weights;  ///< Shard-local slice.
  FaultSpec faults;              ///< Sliced via SliceFaultSpec.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;
  obs::Counter* alarms_rx = nullptr;  ///< Shared "runtime/coordinator/alarms".
  // Chaos injection (tests / --chaos runs): the shard kills itself at a
  // deterministic point, simulating a crashed coordinator thread.
  /// Virtual mode: die the instant the kEpoch command for this epoch
  /// arrives, before sending anything — the root re-executes the command.
  int64_t die_at_epoch = -1;
  /// Free mode: die after fully processing this many inbox batches. Dying
  /// at a batch boundary means every consumed message was handled and
  /// every unconsumed one is still queued for the replacement shard.
  int64_t die_after_batches = -1;
};

/// Body of one shard coordinator thread, virtual-time mode: serve ShardCmds
/// until kShutdown (or a closed box / transport error).
void RunShardVirtual(ShardContext ctx);

/// The three virtual-mode shard legs, exposed so the root can re-execute a
/// dead shard's pending command itself (direct attachment after a shard
/// crash). Both the shard thread and the root's recovery path run exactly
/// this code, which is what makes recovery transparent: the sites cannot
/// tell who is on the other end of the transport.
///
/// ShardEpochLeg: threshold re-syncs, then the epoch barrier over the
/// shard's sites; `alarmed` gets (global site, value) for every alarmed
/// site in ascending order. ShardPollLeg: one poll fan-out; `values` gets
/// every owned site's response in ascending order. ShardShutdownLeg:
/// forwards kShutdown to every owned site.
Status ShardEpochLeg(Transport* transport, const ShardLayout& layout,
                     int shard, const LocalPlan& plan, const ShardCmd& cmd,
                     std::vector<std::pair<int, int64_t>>* alarmed);
Status ShardPollLeg(Transport* transport, const ShardLayout& layout,
                    int shard, int64_t epoch,
                    std::vector<std::pair<int, int64_t>>* values);
void ShardShutdownLeg(Transport* transport, const ShardLayout& layout,
                      int shard);

/// Body of one shard coordinator thread, free-running mode: drain the
/// shard's transport inbox (alarms, poll responses, site-done, and the
/// root's envelope-borne commands) until the root's kShutdown.
void RunShardFree(ShardContext ctx);

/// Remaps a global fault spec onto one shard's contiguous site range:
/// per-site loss and crash windows are sliced and shifted to shard-local
/// site ids, partitions (coordinator-wide by definition) are kept, and the
/// channel seed is decorrelated per shard so the k private RNG streams are
/// unrelated while still a pure function of (seed, shard).
FaultSpec SliceFaultSpec(const FaultSpec& faults, const ShardLayout& layout,
                         int shard);

}  // namespace dcv

#endif  // DCV_RUNTIME_SHARD_H_
