#ifndef DCV_RUNTIME_SHARD_H_
#define DCV_RUNTIME_SHARD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/coordinator.h"
#include "runtime/mailbox.h"
#include "runtime/plan.h"
#include "runtime/shard_layout.h"
#include "runtime/transport.h"
#include "sim/channel.h"

namespace dcv {

/// The shard half of the two-level coordinator tree. Each shard
/// coordinator thread owns a contiguous range of sites (shard_layout.h):
/// alarm intake, threshold distribution, and the per-shard leg of every
/// poll round for exactly those sites. The root aggregator (coordinator.cc)
/// drives the shards and combines their partials into the global
/// constraint decision, so per-round work at the root is O(num_shards)
/// messages instead of O(num_sites).
///
/// Determinism contract (virtual-time mode): shards never touch a Channel.
/// They relay ground truth between the transport and the root; every
/// channel call — the single source of message fates, RNG draws, and
/// MessageCounter charges — stays on the root thread, issued in the exact
/// site order the flat coordinator used. That is why sharded virtual runs
/// are bit-identical to the lockstep simulator (the conformance harness
/// asserts it for 1, 2, and 4 shards).
///
/// Free-running mode inverts the split: each shard owns a Channel over its
/// own site range (fault spec sliced via SliceFaultSpec) and aggregates
/// its poll leg locally — partial weighted SUM plus MIN/MAX — so the root
/// combines k partials without ever materializing per-site values. No
/// per-epoch determinism is claimed in this mode, same as the flat
/// coordinator.

/// Root -> shard command, virtual-time mode only. Travels over an internal
/// Mailbox (never the transport): epoch commands carry vectors that do not
/// fit an Envelope, and in virtual mode the shard's blocking wait
/// alternates strictly between this box and the transport, so two sources
/// never race.
struct ShardCmd {
  enum class Kind {
    kEpoch,     ///< Run one epoch barrier over the shard's sites.
    kPoll,      ///< Fan out one poll round and report the responses.
    kShutdown,  ///< Forward kShutdown to the sites and exit.
  };
  Kind kind = Kind::kEpoch;
  int64_t epoch = 0;
  /// kEpoch: up/down flag per shard-local site (the root owns the channel
  /// and thus the crash schedule).
  std::vector<char> up;
  /// kEpoch: global site ids whose threshold re-sync got through the wire
  /// this epoch (root already charged the sends); the shard pushes the
  /// transport messages so the per-site update-before-epoch-start FIFO
  /// holds with a single producer per site.
  std::vector<int> resync_sites;
};

/// Shard -> root message (internal mailbox in both modes).
struct RootMsg {
  enum class Kind {
    kEpochPartial,  ///< Virtual: epoch barrier done; entries = alarmed sites.
    kPollPartial,   ///< Poll leg done. Virtual: entries = every site's value.
                    ///< Free: aggregated sum/min/max, no per-site entries.
    kAlarmNotice,   ///< Free: a delivered alarm needs a poll round.
    kShardDone,     ///< Free: all owned sites reported kSiteDone.
    kShardExit,     ///< Free: shard exiting; final per-shard accounting.
    kError,         ///< Shard hit a protocol/transport error; see status.
  };
  Kind kind = Kind::kEpochPartial;
  int shard = 0;
  int64_t epoch = 0;
  /// (global site, value) pairs in ascending site order. kEpochPartial:
  /// alarmed sites and their observed values. kPollPartial (virtual): every
  /// owned site's response. kShardDone: per-site update counts.
  std::vector<std::pair<int, int64_t>> entries;
  // kPollPartial, free-running mode: the shard-aggregated poll leg.
  int64_t partial_sum = 0;  ///< Weighted sum over the shard's sites.
  int64_t partial_min = 0;  ///< Min/max of the resolved per-site values —
  int64_t partial_max = 0;  ///< groundwork for MIN/MAX runtime constraints.
  int responses = 0;
  int timeouts = 0;
  // kShardExit: merged into the run totals by the root.
  int64_t alarms = 0;
  MessageCounter messages;
  ChannelStats reliability;
  Status status;  ///< kError (and kShardExit on abnormal transport close).
};

/// Everything one shard coordinator thread needs. Pointers are owned by
/// the root and outlive the thread.
struct ShardContext {
  int shard = 0;
  ShardLayout layout;
  Transport* transport = nullptr;
  Mailbox<ShardCmd>* cmds = nullptr;  ///< Virtual mode only.
  Mailbox<RootMsg>* to_root = nullptr;
  /// Shard-local plan slice (SliceForShard): thresholds for re-sync
  /// pushes, domain_max as the pessimistic poll fallback.
  LocalPlan plan;
  RuntimeProtocol protocol = RuntimeProtocol::kLocalThreshold;
  // Free-running mode only.
  std::vector<int64_t> weights;  ///< Shard-local slice.
  FaultSpec faults;              ///< Sliced via SliceFaultSpec.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;
  obs::Counter* alarms_rx = nullptr;  ///< Shared "runtime/coordinator/alarms".
};

/// Body of one shard coordinator thread, virtual-time mode: serve ShardCmds
/// until kShutdown (or a closed box / transport error).
void RunShardVirtual(ShardContext ctx);

/// Body of one shard coordinator thread, free-running mode: drain the
/// shard's transport inbox (alarms, poll responses, site-done, and the
/// root's envelope-borne commands) until the root's kShutdown.
void RunShardFree(ShardContext ctx);

/// Remaps a global fault spec onto one shard's contiguous site range:
/// per-site loss and crash windows are sliced and shifted to shard-local
/// site ids, partitions (coordinator-wide by definition) are kept, and the
/// channel seed is decorrelated per shard so the k private RNG streams are
/// unrelated while still a pure function of (seed, shard).
FaultSpec SliceFaultSpec(const FaultSpec& faults, const ShardLayout& layout,
                         int shard);

}  // namespace dcv

#endif  // DCV_RUNTIME_SHARD_H_
