#ifndef DCV_RUNTIME_RUNTIME_H_
#define DCV_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/coordinator.h"
#include "runtime/runtime_result.h"
#include "runtime/site_engine.h"
#include "runtime/socket_transport.h"
#include "sim/channel.h"
#include "threshold/solver.h"
#include "trace/trace.h"

namespace dcv {

/// Which message fabric carries the coordinator <-> site traffic.
enum class TransportKind {
  kThread,  ///< In-process bounded mailboxes (the default).
  kSocket,  ///< TCP: this process is the coordinator; site-worker processes
            ///< connect over loopback or the network (see site_worker.h).
};

/// Configuration for one threaded-runtime run (the concurrent counterpart
/// of SimOptions).
struct RuntimeOptions {
  RuntimeProtocol protocol = RuntimeProtocol::kLocalThreshold;

  /// Per-site weights A_i; empty = all ones.
  std::vector<int64_t> weights;
  int64_t global_threshold = 0;
  int64_t poll_period = 5;  ///< kPolling only.

  /// Site-to-worker multiplexing: k in [1, num_sites] packs the sites onto
  /// k threads (site s -> s % k). 0 = auto: one worker thread per site
  /// with the actor-per-site engine (the historical default), or
  /// min(num_sites, hardware_concurrency) with the multiplexed engine
  /// (a million sites must not mean a million threads).
  int num_workers = 0;

  /// Site-side execution engine. kMultiplexed (default) drives every
  /// worker's sites over flat structure-of-arrays state with batched
  /// transport drains; kActorPerSite is the original one-object-per-site
  /// runtime, kept as the conformance baseline. Virtual-time detections
  /// are bit-identical between the two (the conformance harness asserts
  /// it).
  SiteEngineKind engine = SiteEngineKind::kMultiplexed;

  /// Coordinator-side sharding: partition the sites across this many shard
  /// coordinator threads feeding a root aggregator (two-level tree). Must
  /// be in [1, num_sites]; 1 = the flat single-thread coordinator.
  /// Virtual-time results are bit-identical for every legal value (the
  /// conformance harness asserts shards in {1, 2, 4}).
  int num_shards = 1;

  /// Virtual-time mode runs the sites in epoch lockstep with the
  /// coordinator and is bit-identical to the lockstep simulator (the
  /// conformance harness asserts this). Free-running mode lets every site
  /// push updates as fast as its thread allows — throughput numbers, no
  /// per-epoch determinism.
  bool virtual_time = true;

  /// Local-threshold provisioning. When `thresholds` is nonempty it (with
  /// `domain_max`) is used verbatim; otherwise trace-driven runs build the
  /// plan with `solver` via BuildLocalPlan, and synthetic runs leave the
  /// sites unconstrained (no local alarms).
  std::vector<int64_t> thresholds;
  std::vector<int64_t> domain_max;
  const ThresholdSolver* solver = nullptr;
  int histogram_buckets = 100;
  double domain_headroom = 4.0;

  FaultSpec faults;

  /// Chaos injection (chaos.h): kill a shard coordinator, sever a worker
  /// link, or push a mid-run reshard at a seed-resolved point. Requires
  /// `heartbeat_timeout_ms > 0` for kill-shard so the root notices.
  ChaosSpec chaos;
  /// Sharded runs: root-side dead-shard detection window in milliseconds.
  /// 0 (default) disables detection — the root waits forever.
  int heartbeat_timeout_ms = 0;

  /// Synthetic workloads: per-site streams derive from (seed, site), so a
  /// seed pins every site's update sequence regardless of thread schedule.
  uint64_t seed = 42;
  int64_t synthetic_max = 1000000;

  /// Record every consumed update into RuntimeResult::captured_updates
  /// (seed-determinism tests; memory-proportional to the workload). Not
  /// supported over the socket transport (the updates live in the worker
  /// processes).
  bool capture_updates = false;

  /// kSocket: listen on `listen_port` (0 = ephemeral) and wait for
  /// `num_workers` site-worker processes. `on_listening` fires once the
  /// port is bound, before accepting — publish the port (or spawn local
  /// workers in tests) from it. Timeouts/backoff/capacities in `socket`;
  /// its virtual_time and metrics fields are overridden from this struct.
  TransportKind transport = TransportKind::kThread;
  int listen_port = 0;
  SocketTransport::Options socket;
  std::function<void(int port)> on_listening;

  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;
};

/// Trace-driven run: site i consumes eval column i (one value per epoch in
/// virtual-time mode, free pace otherwise); `training` provisions the local
/// thresholds when the options don't carry a precomputed plan. Virtual-time
/// results are scored against ground truth exactly like the lockstep
/// runner.
Result<RuntimeResult> RunMonitorRuntime(const Trace& training,
                                        const Trace& eval,
                                        const RuntimeOptions& options);

/// Synthetic run: `num_sites` sites each generate `updates_per_site` values
/// from their (seed, site) stream. The workhorse of bench_runtime and the
/// seed-determinism tests.
Result<RuntimeResult> RunSyntheticRuntime(int num_sites,
                                          int64_t updates_per_site,
                                          const RuntimeOptions& options);

}  // namespace dcv

#endif  // DCV_RUNTIME_RUNTIME_H_
