#include "runtime/runtime_result.h"

#include "obs/json_writer.h"

namespace dcv {

std::string RuntimeResult::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("protocol").Value(protocol);
  w.Key("mode").Value(mode);
  w.Key("epochs").Value(epochs);
  w.Key("messages").BeginObject();
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    w.Key(MessageTypeName(type)).Value(messages.of(type));
  }
  w.Key("total").Value(messages.total());
  w.EndObject();
  w.Key("detection").BeginObject();
  w.Key("alarm_epochs").Value(alarm_epochs);
  w.Key("total_alarms").Value(total_alarms);
  w.Key("polled_epochs").Value(polled_epochs);
  w.Key("true_violations").Value(true_violations);
  w.Key("detected_violations").Value(detected_violations);
  w.Key("missed_violations").Value(missed_violations);
  w.Key("false_alarm_epochs").Value(false_alarm_epochs);
  w.Key("violations_flagged").Value(violations_flagged);
  w.EndObject();
  w.Key("recovery").BeginObject();
  w.Key("shard_recoveries").Value(shard_recoveries);
  w.Key("reshards").Value(reshards);
  w.Key("recovery_ms").Value(recovery_ms);
  w.EndObject();
  w.Key("reliability").Raw(reliability.ToJson());
  w.Key("throughput").BeginObject();
  w.Key("total_updates").Value(total_updates);
  w.Key("elapsed_seconds").Value(elapsed_seconds);
  w.Key("updates_per_second").Value(updates_per_second);
  w.Key("site_updates").BeginArray();
  for (int64_t u : site_updates) {
    w.Value(u);
  }
  w.EndArray();
  w.EndObject();
  w.Key("socket").BeginObject();
  w.Key("frames_sent").Value(socket.frames_sent);
  w.Key("frames_received").Value(socket.frames_received);
  w.Key("bytes_sent").Value(socket.bytes_sent);
  w.Key("bytes_received").Value(socket.bytes_received);
  w.Key("connect_attempts").Value(socket.connect_attempts);
  w.Key("connect_retries").Value(socket.connect_retries);
  w.Key("accept_timeouts").Value(socket.accept_timeouts);
  w.Key("decode_errors").Value(socket.decode_errors);
  w.Key("disconnects").Value(socket.disconnects);
  w.Key("truncated_frames").Value(socket.truncated_frames);
  w.Key("reconnects").Value(socket.reconnects);
  w.Key("replayed_frames").Value(socket.replayed_frames);
  w.Key("duplicate_frames").Value(socket.duplicate_frames);
  w.EndObject();
  if (!metrics.empty()) {
    w.Key("metrics").Raw(metrics.ToJson());
  }
  w.EndObject();
  return w.str();
}

}  // namespace dcv
