#ifndef DCV_RUNTIME_RUNTIME_RESULT_H_
#define DCV_RUNTIME_RUNTIME_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/wire.h"
#include "sim/channel.h"
#include "sim/message.h"

namespace dcv {

/// What the runtime coordinator concluded for one virtual epoch — the unit
/// the conformance harness compares against the lockstep simulator's
/// per-epoch EpochResult.
struct EpochDetection {
  int64_t epoch = 0;
  int num_alarms = 0;  ///< Local alarms raised by up sites this epoch.
  bool polled = false;
  bool violation_reported = false;

  friend bool operator==(const EpochDetection& a, const EpochDetection& b) {
    return a.epoch == b.epoch && a.num_alarms == b.num_alarms &&
           a.polled == b.polled &&
           a.violation_reported == b.violation_reported;
  }
};

/// Aggregate outcome of one threaded-runtime run. Mirrors SimResult where
/// the semantics coincide (virtual-time mode) and adds the free-running
/// throughput numbers.
struct RuntimeResult {
  std::string protocol;  ///< "local-threshold" or "polling".
  std::string mode;      ///< "virtual" or "free-running".

  int64_t epochs = 0;  ///< Virtual epochs driven (0 in free-running mode).
  MessageCounter messages;
  ChannelStats reliability;

  // Virtual-time detection accounting (scored against ground truth by
  // MonitorRuntime, exactly like the lockstep runner).
  int64_t total_alarms = 0;
  int64_t alarm_epochs = 0;
  int64_t polled_epochs = 0;
  int64_t true_violations = 0;
  int64_t detected_violations = 0;
  int64_t missed_violations = 0;
  int64_t false_alarm_epochs = 0;
  std::vector<EpochDetection> detections;  ///< One per epoch (virtual mode).

  /// Free-running mode: violations the coordinator flagged from (possibly
  /// stale) poll snapshots. No per-epoch alignment with ground truth is
  /// claimed — free-running trades determinism for throughput.
  int64_t violations_flagged = 0;

  // Throughput accounting (both modes).
  std::vector<int64_t> site_updates;  ///< Per-site updates consumed.
  int64_t total_updates = 0;
  double elapsed_seconds = 0.0;
  double updates_per_second = 0.0;

  /// Per-site update sequences, filled only when
  /// RuntimeOptions::capture_updates was set (seed-determinism tests).
  std::vector<std::vector<int64_t>> captured_updates;

  // Failure recovery accounting (chaos runs; all zero on a healthy run).
  int64_t shard_recoveries = 0;  ///< Dead shards re-adopted or respawned.
  int64_t reshards = 0;          ///< Mid-run layout pushes applied.
  /// Wall-clock cost of the slowest single recovery: from the heartbeat
  /// timeout firing to the dead shard's work being re-executed (virtual
  /// direct attachment) or its replacement thread running (free mode).
  double recovery_ms = 0.0;

  /// Socket-transport runs only: the coordinator side's wire-level
  /// reliability counters (all zero for in-process transports).
  SocketStats socket;

  /// The run's merged metrics document, filled when a registry was
  /// attached: the coordinator's own registry snapshot folded with every
  /// worker's final kTelemetry push (counters summed, histograms merged
  /// bucket-wise, worker gauges namespaced "workerK/..."). Thread-transport
  /// runs fill it from the single shared registry, so the document shape is
  /// transport-independent.
  obs::MetricsSnapshot metrics;

  /// Unified telemetry export in the SimResult::ToJson style: messages,
  /// detection tallies, reliability, throughput, and (when a registry was
  /// attached) the merged "metrics" section in one object.
  std::string ToJson() const;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_RUNTIME_RESULT_H_
