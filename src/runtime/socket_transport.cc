#include "runtime/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace dcv {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSendTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) {
    return;
  }
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer; false on any error (including send timeout).
bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking read of exactly one frame, bounded by `timeout_ms` total.
/// Handshake-only: steady-state reads go through ReaderLoop.
Result<WireFrame> ReadFrame(int fd, int timeout_ms, FrameReader* reader) {
  WireFrame frame;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    DCV_ASSIGN_OR_RETURN(bool ready, reader->Next(&frame));
    if (ready) {
      return frame;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return ResourceExhaustedError("timed out waiting for handshake frame");
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    pollfd p{fd, POLLIN, 0};
    int rc = ::poll(&p, 1, std::max(1, wait_ms));
    if (rc < 0 && errno != EINTR) {
      return ErrnoError("poll during handshake");
    }
    if (rc <= 0) {
      continue;
    }
    uint8_t buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      return InternalError("peer closed the connection during handshake");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return ErrnoError("recv during handshake");
    }
    reader->Append(buf, static_cast<size_t>(n));
  }
}

/// One non-blocking connect attempt bounded by `timeout_ms`; returns the
/// connected fd (restored to blocking mode) or an error.
Result<int> ConnectOnce(const sockaddr_in& addr, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return ErrnoError("socket");
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return ErrnoError("connect");
  }
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    rc = ::poll(&p, 1, timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      return ResourceExhaustedError("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      errno = err != 0 ? err : errno;
      return ErrnoError("connect");
    }
  }
  // Back to blocking mode for the reader/writer threads.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  return fd;
}

size_t AutoWorkerCapacity(int num_sites, int num_workers) {
  size_t per_worker =
      (static_cast<size_t>(num_sites) + static_cast<size_t>(num_workers) - 1) /
      static_cast<size_t>(num_workers);
  return 4 * per_worker + 8;
}

}  // namespace

SocketTransport::SocketTransport(Role role, int num_sites, int num_workers,
                                 int worker, const Options& options)
    : role_(role),
      num_sites_(num_sites),
      num_workers_(num_workers),
      worker_(worker),
      options_(options) {
  layout_.num_sites = num_sites;
  layout_.num_shards = role == Role::kCoordinator
                           ? std::max(1, options_.num_shards)
                           : 1;  // Workers never see the shard split.
  // Worker-role send queues size for the WHOLE coordinator fan-in (a
  // worker's sites can span several shards); coordinator-role shard
  // inboxes size for their own shard's fan-in only.
  const size_t coordinator_capacity =
      options_.coordinator_capacity != 0
          ? options_.coordinator_capacity
          : 2 * static_cast<size_t>(num_sites) + 16;
  const size_t shard_capacity =
      options_.coordinator_capacity != 0
          ? options_.coordinator_capacity
          : 2 * static_cast<size_t>(layout_.MaxShardSites()) + 16;
  const size_t worker_capacity =
      options_.worker_capacity != 0
          ? options_.worker_capacity
          : AutoWorkerCapacity(num_sites, num_workers);
  if (role_ == Role::kCoordinator) {
    inboxes_.reserve(static_cast<size_t>(layout_.num_shards));
    for (int s = 0; s < layout_.num_shards; ++s) {
      inboxes_.push_back(std::make_unique<Mailbox<Envelope>>(shard_capacity));
    }
    conns_.resize(static_cast<size_t>(num_workers));
    for (Connection& c : conns_) {
      // The coordinator's queue toward one worker plays the worker-inbox
      // role, so it inherits that capacity (deadlock-freedom invariant).
      c.send_box = std::make_unique<Mailbox<Envelope>>(worker_capacity);
    }
  } else {
    inboxes_.push_back(std::make_unique<Mailbox<Envelope>>(worker_capacity));
    conns_.resize(1);
    // The worker's queue toward the coordinator mirrors the coordinator
    // inbox: sites block here under backpressure, exactly as they block on
    // the shared inbox in ThreadTransport.
    conns_[0].send_box =
        std::make_unique<Mailbox<Envelope>>(coordinator_capacity);
  }
  if (options_.metrics != nullptr) {
    c_frames_tx_ = options_.metrics->counter("runtime/socket/frames_tx");
    c_frames_rx_ = options_.metrics->counter("runtime/socket/frames_rx");
    c_bytes_tx_ = options_.metrics->counter("runtime/socket/bytes_tx");
    c_bytes_rx_ = options_.metrics->counter("runtime/socket/bytes_rx");
    c_connect_retries_ =
        options_.metrics->counter("runtime/socket/connect_retries");
    c_disconnects_ = options_.metrics->counter("runtime/socket/disconnects");
  }
}

SocketTransport::~SocketTransport() { Shutdown(); }

Result<std::unique_ptr<SocketTransport>> SocketTransport::Listen(
    int num_sites, int num_workers, int port, const Options& options) {
  if (num_sites < 1) {
    return InvalidArgumentError("socket transport needs at least one site");
  }
  if (num_workers < 1 || num_workers > num_sites) {
    return InvalidArgumentError("num_workers must be in [1, num_sites]");
  }
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("listen port must be in [0, 65535]");
  }
  // Same validation the layout itself enforces; fail before binding.
  DCV_RETURN_IF_ERROR(
      MakeShardLayout(num_sites, std::max(1, options.num_shards)).status());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = ErrnoError("bind to port " + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, num_workers) != 0) {
    Status s = ErrnoError("listen");
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = ErrnoError("getsockname");
    ::close(fd);
    return s;
  }
  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      Role::kCoordinator, num_sites, num_workers, /*worker=*/-1, options));
  transport->listen_fd_ = fd;
  transport->port_ = static_cast<int>(ntohs(bound.sin_port));
  transport->virtual_time_ = options.virtual_time;
  return transport;
}

Status SocketTransport::AcceptWorkers() {
  if (role_ != Role::kCoordinator || listen_fd_ < 0) {
    return FailedPreconditionError("AcceptWorkers needs a listening transport");
  }
  std::vector<int> fds(static_cast<size_t>(num_workers_), -1);
  std::vector<std::string> residuals(static_cast<size_t>(num_workers_));
  auto reject_all = [&fds](Status s) {
    for (int fd : fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
    return s;
  };
  for (int pending = num_workers_; pending > 0; --pending) {
    pollfd p{listen_fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, options_.accept_timeout_ms);
    if (rc < 0 && errno != EINTR) {
      return reject_all(ErrnoError("poll on listen socket"));
    }
    if (rc <= 0) {
      accept_timeouts_.fetch_add(1, std::memory_order_relaxed);
      return reject_all(ResourceExhaustedError(
          "timed out waiting for worker connections (" +
          std::to_string(num_workers_ - pending) + " of " +
          std::to_string(num_workers_) + " connected)"));
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return reject_all(ErrnoError("accept"));
    }
    SetNoDelay(fd);
    SetSendTimeout(fd, options_.io_timeout_ms);

    FrameReader reader;
    auto frame = ReadFrame(fd, options_.io_timeout_ms, &reader);
    std::string reply;
    HelloAckFrame ack;
    ack.num_sites = num_sites_;
    ack.num_workers = num_workers_;
    ack.virtual_time = virtual_time_ ? 1 : 0;
    Status verdict = OkStatus();
    int worker = -1;
    if (!frame.ok()) {
      verdict = InternalError("worker handshake failed: " +
                              std::string(frame.status().message()));
    } else if (frame->type != FrameType::kHello) {
      verdict = InternalError("expected hello frame, got another type");
    } else {
      const HelloFrame& hello = frame->hello;
      worker = hello.worker;
      if (hello.num_sites != num_sites_ || hello.num_workers != num_workers_) {
        verdict = InvalidArgumentError(
            "worker fabric shape mismatch: worker says " +
            std::to_string(hello.num_sites) + " sites / " +
            std::to_string(hello.num_workers) + " workers, coordinator has " +
            std::to_string(num_sites_) + " / " + std::to_string(num_workers_));
      } else if (worker < 0 || worker >= num_workers_) {
        verdict = InvalidArgumentError("worker index " +
                                       std::to_string(worker) +
                                       " out of range");
      } else if (fds[static_cast<size_t>(worker)] >= 0) {
        verdict = InvalidArgumentError("worker " + std::to_string(worker) +
                                       " connected twice");
      }
    }
    ack.ok = verdict.ok() ? 1 : 0;
    AppendHelloAckFrame(ack, &reply);
    WriteAll(fd, reply.data(), reply.size());
    if (!verdict.ok()) {
      ::close(fd);
      return reject_all(verdict);
    }
    fds[static_cast<size_t>(worker)] = fd;
    residuals[static_cast<size_t>(worker)] = reader.TakeBuffered();
  }
  for (size_t w = 0; w < fds.size(); ++w) {
    StartConnection(w, fds[w], std::move(residuals[w]));
  }
  return OkStatus();
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, int port, int worker, int num_sites,
    int num_workers, const Options& options) {
  if (num_sites < 1 || num_workers < 1 || num_workers > num_sites) {
    return InvalidArgumentError("bad fabric shape");
  }
  if (worker < 0 || worker >= num_workers) {
    return InvalidArgumentError("worker index out of range");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("cannot parse host address '" + host +
                                "' (dotted IPv4 expected)");
  }

  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      Role::kWorker, num_sites, num_workers, worker, options));
  int fd = -1;
  int backoff = std::max(1, options.connect_backoff_ms);
  Status last = OkStatus();
  for (int attempt = 0; attempt < std::max(1, options.connect_attempts);
       ++attempt) {
    if (attempt > 0) {
      transport->connect_retries_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(transport->c_connect_retries_, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, 2000);
    }
    transport->connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    auto attempt_fd = ConnectOnce(addr, options.connect_timeout_ms);
    if (attempt_fd.ok()) {
      fd = *attempt_fd;
      break;
    }
    last = attempt_fd.status();
  }
  if (fd < 0) {
    return InternalError("could not connect to " + host + ":" +
                         std::to_string(port) + " after " +
                         std::to_string(std::max(1, options.connect_attempts)) +
                         " attempts: " + std::string(last.message()));
  }
  SetNoDelay(fd);
  SetSendTimeout(fd, options.io_timeout_ms);

  HelloFrame hello;
  hello.worker = worker;
  hello.num_workers = num_workers;
  hello.num_sites = num_sites;
  std::string out;
  AppendHelloFrame(hello, &out);
  if (!WriteAll(fd, out.data(), out.size())) {
    ::close(fd);
    return ErrnoError("sending hello");
  }
  FrameReader reader;
  auto ack = ReadFrame(fd, options.io_timeout_ms, &reader);
  if (!ack.ok()) {
    ::close(fd);
    return ack.status();
  }
  if (ack->type != FrameType::kHelloAck) {
    ::close(fd);
    return InternalError("expected hello-ack frame");
  }
  if (ack->hello_ack.ok == 0) {
    ::close(fd);
    return InvalidArgumentError(
        "coordinator rejected the handshake (shape mismatch or duplicate "
        "worker)");
  }
  transport->virtual_time_ = ack->hello_ack.virtual_time != 0;
  // TCP can coalesce the ack with the coordinator's first data frames
  // (e.g. the initial threshold sync); hand the tail to the reader thread.
  transport->StartConnection(0, fd, reader.TakeBuffered());
  return transport;
}

void SocketTransport::StartConnection(size_t index, int fd,
                                      std::string residual) {
  Connection& c = conns_[index];
  c.fd = fd;
  c.residual = std::move(residual);
  c.reader = std::thread([this, index] { ReaderLoop(index); });
  c.writer = std::thread([this, index] { WriterLoop(index); });
}

void SocketTransport::ReaderLoop(size_t index) {
  Connection& c = conns_[index];
  FrameReader reader;
  uint8_t buf[65536];
  bool clean = false;

  // Decodes everything buffered in `reader`; false = drop the connection.
  auto drain_frames = [&]() {
    for (;;) {
      WireFrame frame;
      auto r = reader.Next(&frame);
      if (!r.ok()) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (!*r) {
        return true;
      }
      if (frame.type != FrameType::kEnvelope) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;  // Stray handshake frame mid-run; drop it.
      }
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_frames_rx_, 1);
      size_t inbox = 0;
      if (role_ == Role::kCoordinator) {
        // Coordinator-bound traffic fans across the shard inboxes by
        // sender. A frame with an out-of-range sender has no shard; treat
        // it like any other malformed frame.
        if (frame.envelope.from < 0 || frame.envelope.from >= num_sites_) {
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        inbox = static_cast<size_t>(ShardOf(frame.envelope.from));
      }
      if (!inboxes_[inbox]->Push(frame.envelope)) {
        return false;  // Inbox closed: we are shutting down.
      }
    }
  };

  // Bytes the handshake read past its own frame come first: they are
  // earlier in the stream than anything recv() will return.
  bool stream_ok = true;
  if (!c.residual.empty()) {
    reader.Append(reinterpret_cast<const uint8_t*>(c.residual.data()),
                  c.residual.size());
    c.residual.clear();
    stream_ok = drain_frames();
  }
  while (stream_ok) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      clean = true;  // Peer finished sending: graceful end of stream.
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // Reset/abort — or our own Shutdown closed the socket.
    }
    bytes_received_.fetch_add(n, std::memory_order_relaxed);
    DCV_OBS_COUNT(c_bytes_rx_, n);
    reader.Append(buf, static_cast<size_t>(n));
    stream_ok = drain_frames();
  }
  if (!clean && !shutting_down_.load(std::memory_order_relaxed)) {
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    DCV_OBS_COUNT(c_disconnects_, 1);
  }
  // End of stream — graceful or not — means no more messages can arrive on
  // this connection; close the inboxes so blocked receivers drain and
  // exit, matching ThreadTransport's closed-and-drained contract.
  CloseInboxes();
  c.send_box->Close();
}

void SocketTransport::CloseInboxes() {
  for (auto& box : inboxes_) {
    box->Close();
  }
}

void SocketTransport::WriterLoop(size_t index) {
  Connection& c = conns_[index];
  std::string buf;
  Envelope e;
  while (c.send_box->Pop(&e)) {
    buf.clear();
    AppendEnvelopeFrame(e, &buf);
    int64_t frames = 1;
    // Coalesce whatever is already queued into one write (epoch barriers
    // broadcast N small frames back to back).
    while (buf.size() < 32768 && c.send_box->TryPop(&e)) {
      AppendEnvelopeFrame(e, &buf);
      ++frames;
    }
    if (!WriteAll(c.fd, buf.data(), buf.size())) {
      if (!shutting_down_.load(std::memory_order_relaxed)) {
        disconnects_.fetch_add(1, std::memory_order_relaxed);
        DCV_OBS_COUNT(c_disconnects_, 1);
        CloseInboxes();
      }
      c.send_box->Close();
      while (c.send_box->Pop(&e)) {
        // Drain so producers blocked in Push wake and see closed.
      }
      return;
    }
    frames_sent_.fetch_add(frames, std::memory_order_relaxed);
    bytes_sent_.fetch_add(static_cast<int64_t>(buf.size()),
                          std::memory_order_relaxed);
    DCV_OBS_COUNT(c_frames_tx_, frames);
    DCV_OBS_COUNT(c_bytes_tx_, static_cast<int64_t>(buf.size()));
  }
  // Send queue closed and drained: our side is done sending. Half-close so
  // the peer's reader sees a clean end of stream once it drains.
  ::shutdown(c.fd, SHUT_WR);
}

bool SocketTransport::Send(const Envelope& e) {
  if (role_ == Role::kCoordinator) {
    if (e.to < 0 || e.to >= num_sites_) {
      return false;
    }
    return conns_[static_cast<size_t>(WorkerOf(e.to))].send_box->Push(e);
  }
  if (e.to != kCoordinatorId) {
    return false;
  }
  return conns_[0].send_box->Push(e);
}

bool SocketTransport::SendToShard(int shard, const Envelope& e) {
  if (role_ != Role::kCoordinator || shard < 0 ||
      shard >= layout_.num_shards) {
    return false;
  }
  // Root-to-shard commands are coordinator-process-local: straight into
  // the shard inbox, no frame, no socket.
  return inboxes_[static_cast<size_t>(shard)]->Push(e);
}

bool SocketTransport::RecvShard(int shard, Envelope* out) {
  return role_ == Role::kCoordinator && shard >= 0 &&
         shard < layout_.num_shards &&
         inboxes_[static_cast<size_t>(shard)]->Pop(out);
}

bool SocketTransport::TryRecvShard(int shard, Envelope* out) {
  return role_ == Role::kCoordinator && shard >= 0 &&
         shard < layout_.num_shards &&
         inboxes_[static_cast<size_t>(shard)]->TryPop(out);
}

size_t SocketTransport::RecvShardAll(int shard, std::vector<Envelope>* out) {
  if (role_ != Role::kCoordinator || shard < 0 ||
      shard >= layout_.num_shards) {
    return 0;
  }
  return inboxes_[static_cast<size_t>(shard)]->PopAll(out);
}

bool SocketTransport::RecvWorker(int worker, Envelope* out) {
  return role_ == Role::kWorker && worker == worker_ && inboxes_[0]->Pop(out);
}

bool SocketTransport::TryRecvWorker(int worker, Envelope* out) {
  return role_ == Role::kWorker && worker == worker_ &&
         inboxes_[0]->TryPop(out);
}

void SocketTransport::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shutdown_done_) {
    return;
  }
  shutdown_done_ = true;
  shutting_down_.store(true, std::memory_order_relaxed);
  // Phase 1: flush. Closing a mailbox still lets Pop drain it, so the
  // writers push every queued frame (including a final kShutdown
  // broadcast) before half-closing their sockets.
  for (Connection& c : conns_) {
    if (c.send_box != nullptr) {
      c.send_box->Close();
    }
  }
  for (Connection& c : conns_) {
    if (c.writer.joinable()) {
      c.writer.join();
    }
  }
  // Phase 2: stop receiving. Shut the sockets to wake blocked readers and
  // close the inbox so blocked receivers drain out.
  for (Connection& c : conns_) {
    if (c.fd >= 0) {
      ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  CloseInboxes();
  for (Connection& c : conns_) {
    if (c.reader.joinable()) {
      c.reader.join();
    }
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

SocketStats SocketTransport::stats() const {
  SocketStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  s.connect_retries = connect_retries_.load(std::memory_order_relaxed);
  s.accept_timeouts = accept_timeouts_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dcv
