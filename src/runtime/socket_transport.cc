#include "runtime/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace dcv {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSendTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) {
    return;
  }
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer; false on any error (including send timeout).
bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking read of exactly one frame, bounded by `timeout_ms` total.
/// Handshake-only: steady-state reads go through ReaderLoop.
Result<WireFrame> ReadFrame(int fd, int timeout_ms, FrameReader* reader) {
  WireFrame frame;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    DCV_ASSIGN_OR_RETURN(bool ready, reader->Next(&frame));
    if (ready) {
      return frame;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return ResourceExhaustedError("timed out waiting for handshake frame");
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    pollfd p{fd, POLLIN, 0};
    int rc = ::poll(&p, 1, std::max(1, wait_ms));
    if (rc < 0 && errno != EINTR) {
      return ErrnoError("poll during handshake");
    }
    if (rc <= 0) {
      continue;
    }
    uint8_t buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      return InternalError("peer closed the connection during handshake");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return ErrnoError("recv during handshake");
    }
    reader->Append(buf, static_cast<size_t>(n));
  }
}

/// One non-blocking connect attempt bounded by `timeout_ms`; returns the
/// connected fd (restored to blocking mode) or an error.
Result<int> ConnectOnce(const sockaddr_in& addr, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return ErrnoError("socket");
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return ErrnoError("connect");
  }
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    rc = ::poll(&p, 1, timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      return ResourceExhaustedError("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      errno = err != 0 ? err : errno;
      return ErrnoError("connect");
    }
  }
  // Back to blocking mode for the reader/writer threads.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  return fd;
}

/// Wall-clock microseconds (system_clock): the clock-offset handshake and
/// merged-trace timestamps compare across processes, so steady_clock (an
/// arbitrary per-process epoch) would be meaningless here.
int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

size_t AutoWorkerCapacity(int num_sites, int num_workers) {
  size_t per_worker =
      (static_cast<size_t>(num_sites) + static_cast<size_t>(num_workers) - 1) /
      static_cast<size_t>(num_workers);
  return 4 * per_worker + 8;
}

}  // namespace

SocketTransport::SocketTransport(Role role, int num_sites, int num_workers,
                                 int worker, const Options& options)
    : role_(role),
      num_sites_(num_sites),
      num_workers_(num_workers),
      worker_(worker),
      options_(options) {
  ShardLayout lay;
  lay.num_sites = num_sites;
  lay.num_shards = role == Role::kCoordinator
                       ? std::max(1, options_.num_shards)
                       : 1;  // Workers never see the shard split.
  layouts_.push_back(std::make_unique<ShardLayout>(lay));
  layout_ptr_.store(layouts_.back().get(), std::memory_order_release);
  // Worker-role send queues size for the WHOLE coordinator fan-in (a
  // worker's sites can span several shards); coordinator-role shard
  // inboxes size for their own shard's fan-in only.
  const size_t coordinator_capacity =
      options_.coordinator_capacity != 0
          ? options_.coordinator_capacity
          : 2 * static_cast<size_t>(num_sites) + 16;
  const size_t shard_capacity =
      options_.coordinator_capacity != 0
          ? options_.coordinator_capacity
          : 2 * static_cast<size_t>(lay.MaxShardSites()) + 16;
  const size_t worker_capacity =
      options_.worker_capacity != 0
          ? options_.worker_capacity
          : AutoWorkerCapacity(num_sites, num_workers);
  if (role_ == Role::kCoordinator) {
    inboxes_.reserve(static_cast<size_t>(lay.num_shards));
    for (int s = 0; s < lay.num_shards; ++s) {
      inboxes_.push_back(std::make_unique<Mailbox<Envelope>>(shard_capacity));
    }
    layout_acked_.assign(static_cast<size_t>(num_workers), 0);
    for (int w = 0; w < num_workers; ++w) {
      conns_.push_back(std::make_unique<Connection>());
      // The coordinator's queue toward one worker plays the worker-inbox
      // role, so it inherits that capacity (deadlock-freedom invariant).
      conns_.back()->send_box =
          std::make_unique<Mailbox<Envelope>>(worker_capacity);
    }
  } else {
    inboxes_.push_back(std::make_unique<Mailbox<Envelope>>(worker_capacity));
    conns_.push_back(std::make_unique<Connection>());
    // The worker's queue toward the coordinator mirrors the coordinator
    // inbox: sites block here under backpressure, exactly as they block on
    // the shared inbox in ThreadTransport.
    conns_.back()->send_box =
        std::make_unique<Mailbox<Envelope>>(coordinator_capacity);
  }
  if (role_ == Role::kCoordinator) {
    worker_telemetry_.resize(static_cast<size_t>(num_workers));
    worker_telemetry_valid_.assign(static_cast<size_t>(num_workers), 0);
    worker_telemetry_final_.assign(static_cast<size_t>(num_workers), 0);
  }
  if (options_.metrics != nullptr) {
    // Every SocketStats field has a registry twin so --metrics-json covers
    // the wire layer without the "socket:" side channel.
    c_frames_tx_ = options_.metrics->counter("runtime/socket/frames_tx");
    c_frames_rx_ = options_.metrics->counter("runtime/socket/frames_rx");
    c_bytes_tx_ = options_.metrics->counter("runtime/socket/bytes_tx");
    c_bytes_rx_ = options_.metrics->counter("runtime/socket/bytes_rx");
    c_connect_attempts_ =
        options_.metrics->counter("runtime/socket/connect_attempts");
    c_connect_retries_ =
        options_.metrics->counter("runtime/socket/connect_retries");
    c_accept_timeouts_ =
        options_.metrics->counter("runtime/socket/accept_timeouts");
    c_decode_errors_ =
        options_.metrics->counter("runtime/socket/decode_errors");
    c_disconnects_ = options_.metrics->counter("runtime/socket/disconnects");
    c_truncated_frames_ =
        options_.metrics->counter("runtime/socket/truncated_frames");
    c_reconnects_ = options_.metrics->counter("runtime/socket/reconnects");
    c_replayed_frames_ =
        options_.metrics->counter("runtime/socket/replayed_frames");
    c_duplicate_frames_ =
        options_.metrics->counter("runtime/socket/duplicate_frames");
  }
}

SocketTransport::~SocketTransport() { Shutdown(); }

Result<std::unique_ptr<SocketTransport>> SocketTransport::Listen(
    int num_sites, int num_workers, int port, const Options& options) {
  if (num_sites < 1) {
    return InvalidArgumentError("socket transport needs at least one site");
  }
  if (num_workers < 1 || num_workers > num_sites) {
    return InvalidArgumentError("num_workers must be in [1, num_sites]");
  }
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("listen port must be in [0, 65535]");
  }
  // Same validation the layout itself enforces; fail before binding.
  DCV_RETURN_IF_ERROR(
      MakeShardLayout(num_sites, std::max(1, options.num_shards)).status());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = ErrnoError("bind to port " + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, num_workers) != 0) {
    Status s = ErrnoError("listen");
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = ErrnoError("getsockname");
    ::close(fd);
    return s;
  }
  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      Role::kCoordinator, num_sites, num_workers, /*worker=*/-1, options));
  transport->listen_fd_ = fd;
  transport->port_ = static_cast<int>(ntohs(bound.sin_port));
  transport->virtual_time_ = options.virtual_time;
  return transport;
}

Status SocketTransport::AcceptWorkers() {
  if (role_ != Role::kCoordinator || listen_fd_ < 0) {
    return FailedPreconditionError("AcceptWorkers needs a listening transport");
  }
  std::vector<int> fds(static_cast<size_t>(num_workers_), -1);
  std::vector<std::string> residuals(static_cast<size_t>(num_workers_));
  auto reject_all = [&fds](Status s) {
    for (int fd : fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
    return s;
  };
  for (int pending = num_workers_; pending > 0; --pending) {
    pollfd p{listen_fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, options_.accept_timeout_ms);
    if (rc < 0 && errno != EINTR) {
      return reject_all(ErrnoError("poll on listen socket"));
    }
    if (rc <= 0) {
      accept_timeouts_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_accept_timeouts_, 1);
      return reject_all(ResourceExhaustedError(
          "timed out waiting for worker connections (" +
          std::to_string(num_workers_ - pending) + " of " +
          std::to_string(num_workers_) + " connected)"));
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return reject_all(ErrnoError("accept"));
    }
    SetNoDelay(fd);
    SetSendTimeout(fd, options_.io_timeout_ms);

    FrameReader reader;
    auto frame = ReadFrame(fd, options_.io_timeout_ms, &reader);
    const int64_t t2 = WallUs();  // Hello receive time (clock-offset t2).
    std::string reply;
    HelloAckFrame ack;
    ack.num_sites = num_sites_;
    ack.num_workers = num_workers_;
    ack.virtual_time = virtual_time_ ? 1 : 0;
    Status verdict = OkStatus();
    int worker = -1;
    if (!frame.ok()) {
      verdict = InternalError("worker handshake failed: " +
                              std::string(frame.status().message()));
    } else if (frame->type != FrameType::kHello) {
      verdict = InternalError("expected hello frame, got another type");
    } else {
      const HelloFrame& hello = frame->hello;
      worker = hello.worker;
      if (hello.num_sites != num_sites_ || hello.num_workers != num_workers_) {
        verdict = InvalidArgumentError(
            "worker fabric shape mismatch: worker says " +
            std::to_string(hello.num_sites) + " sites / " +
            std::to_string(hello.num_workers) + " workers, coordinator has " +
            std::to_string(num_sites_) + " / " + std::to_string(num_workers_));
      } else if (worker < 0 || worker >= num_workers_) {
        verdict = InvalidArgumentError("worker index " +
                                       std::to_string(worker) +
                                       " out of range");
      } else if (fds[static_cast<size_t>(worker)] >= 0) {
        verdict = InvalidArgumentError("worker " + std::to_string(worker) +
                                       " connected twice");
      }
    }
    ack.ok = verdict.ok() ? 1 : 0;
    if (frame.ok() && frame->type == FrameType::kHello) {
      ack.t1_us = frame->hello.t1_us;
    }
    ack.t2_us = t2;
    ack.t3_us = WallUs();
    AppendHelloAckFrame(ack, &reply);
    WriteAll(fd, reply.data(), reply.size());
    if (!verdict.ok()) {
      ::close(fd);
      return reject_all(verdict);
    }
    fds[static_cast<size_t>(worker)] = fd;
    residuals[static_cast<size_t>(worker)] = reader.TakeBuffered();
  }
  for (size_t w = 0; w < fds.size(); ++w) {
    StartConnection(w, fds[w], std::move(residuals[w]));
  }
  if (options_.allow_reconnect) {
    acceptor_ = std::thread([this] { AcceptorLoop(); });
  }
  return OkStatus();
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, int port, int worker, int num_sites,
    int num_workers, const Options& options) {
  if (num_sites < 1 || num_workers < 1 || num_workers > num_sites) {
    return InvalidArgumentError("bad fabric shape");
  }
  if (worker < 0 || worker >= num_workers) {
    return InvalidArgumentError("worker index out of range");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("cannot parse host address '" + host +
                                "' (dotted IPv4 expected)");
  }

  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      Role::kWorker, num_sites, num_workers, worker, options));
  transport->peer_host_ = host;
  transport->peer_port_ = port;
  int fd = -1;
  int backoff = std::max(1, options.connect_backoff_ms);
  Status last = OkStatus();
  for (int attempt = 0; attempt < std::max(1, options.connect_attempts);
       ++attempt) {
    if (attempt > 0) {
      transport->connect_retries_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(transport->c_connect_retries_, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, 2000);
    }
    transport->connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    DCV_OBS_COUNT(transport->c_connect_attempts_, 1);
    auto attempt_fd = ConnectOnce(addr, options.connect_timeout_ms);
    if (attempt_fd.ok()) {
      fd = *attempt_fd;
      break;
    }
    last = attempt_fd.status();
  }
  if (fd < 0) {
    return InternalError("could not connect to " + host + ":" +
                         std::to_string(port) + " after " +
                         std::to_string(std::max(1, options.connect_attempts)) +
                         " attempts: " + std::string(last.message()));
  }
  SetNoDelay(fd);
  SetSendTimeout(fd, options.io_timeout_ms);

  HelloFrame hello;
  hello.worker = worker;
  hello.num_workers = num_workers;
  hello.num_sites = num_sites;
  hello.t1_us = WallUs();
  std::string out;
  AppendHelloFrame(hello, &out);
  if (!WriteAll(fd, out.data(), out.size())) {
    ::close(fd);
    return ErrnoError("sending hello");
  }
  FrameReader reader;
  auto ack = ReadFrame(fd, options.io_timeout_ms, &reader);
  const int64_t t4 = WallUs();  // Ack receive time (clock-offset t4).
  if (!ack.ok()) {
    ::close(fd);
    return ack.status();
  }
  if (ack->type != FrameType::kHelloAck) {
    ::close(fd);
    return InternalError("expected hello-ack frame");
  }
  if (ack->hello_ack.ok == 0) {
    ::close(fd);
    return InvalidArgumentError(
        "coordinator rejected the handshake (shape mismatch or duplicate "
        "worker)");
  }
  transport->virtual_time_ = ack->hello_ack.virtual_time != 0;
  if (ack->hello_ack.t2_us != 0) {
    // NTP-style offset: assuming symmetric one-way delays, the coordinator
    // clock reads (t2 - t1 + t3 - t4) / 2 ahead of the worker clock.
    const HelloAckFrame& a = ack->hello_ack;
    transport->clock_offset_us_.store(
        ((a.t2_us - hello.t1_us) + (a.t3_us - t4)) / 2,
        std::memory_order_relaxed);
  }
  // TCP can coalesce the ack with the coordinator's first data frames
  // (e.g. the initial threshold sync); hand the tail to the reader thread.
  transport->StartConnection(0, fd, reader.TakeBuffered());
  return transport;
}

void SocketTransport::StartConnection(size_t index, int fd,
                                      std::string residual) {
  Connection& c = *conns_[index];
  {
    std::lock_guard<std::mutex> lock(c.mu);
    c.fd = fd;
    c.residual = std::move(residual);
  }
  c.reader = std::thread([this, index] { ReaderLoop(index); });
  c.writer = std::thread([this, index] { WriterLoop(index); });
}

void SocketTransport::ReaderLoop(size_t index) {
  Connection& c = *conns_[index];
  uint8_t buf[65536];
  std::string residual;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    residual = std::move(c.residual);
    c.residual.clear();
  }

  // Decodes everything buffered in `reader`; false = drop the connection.
  auto drain_frames = [&](FrameReader& reader) {
    for (;;) {
      WireFrame frame;
      auto r = reader.Next(&frame);
      if (!r.ok()) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        DCV_OBS_COUNT(c_decode_errors_, 1);
        return false;
      }
      if (!*r) {
        return true;
      }
      if (frame.type == FrameType::kLayoutUpdate) {
        if (role_ != Role::kWorker) {
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          DCV_OBS_COUNT(c_decode_errors_, 1);
          continue;
        }
        // Adopt the pushed layout version and ack it (the coordinator's
        // fence waits for every worker's ack before switching routing).
        adopted_layout_version_.store(frame.layout.version,
                                      std::memory_order_release);
        LayoutAckFrame la;
        la.version = frame.layout.version;
        std::string ack_bytes;
        AppendLayoutAckFrame(la, &ack_bytes);
        std::lock_guard<std::mutex> wl(c.write_mu);
        if (c.fd >= 0) {
          WriteAll(c.fd, ack_bytes.data(), ack_bytes.size());
        }
        continue;
      }
      if (frame.type == FrameType::kLayoutAck) {
        if (role_ != Role::kCoordinator) {
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          DCV_OBS_COUNT(c_decode_errors_, 1);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(layout_mu_);
          layout_acked_[index] = frame.layout_ack.version;
        }
        layout_cv_.notify_all();
        continue;
      }
      if (frame.type == FrameType::kTelemetry) {
        if (role_ != Role::kCoordinator || frame.telemetry.worker < 0 ||
            frame.telemetry.worker >= num_workers_) {
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          DCV_OBS_COUNT(c_decode_errors_, 1);
          continue;
        }
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        DCV_OBS_COUNT(c_frames_rx_, 1);
        // Snapshots are cumulative, so latest-wins per worker: overwrite
        // the slot and remember whether the worker's shutdown flush landed.
        const size_t slot = static_cast<size_t>(frame.telemetry.worker);
        {
          std::lock_guard<std::mutex> lock(telemetry_mu_);
          worker_telemetry_[slot] = std::move(frame.telemetry);
          worker_telemetry_valid_[slot] = 1;
          if (worker_telemetry_[slot].final_flush != 0) {
            worker_telemetry_final_[slot] = 1;
          }
        }
        telemetry_cv_.notify_all();
        continue;
      }
      if (frame.type != FrameType::kEnvelope &&
          frame.type != FrameType::kEnvelopeBatch) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        DCV_OBS_COUNT(c_decode_errors_, 1);
        continue;  // Stray handshake frame mid-run; drop it.
      }
      // Sequence dedup: a resume replays the suffix the peer thinks we
      // missed; anything at or below our high-water mark already arrived
      // on the previous incarnation. A batch frame carries one seq for all
      // its envelopes, so the burst is accepted or dropped whole.
      if (frame.seq != 0) {
        if (frame.seq <= c.last_seq_received.load(std::memory_order_relaxed)) {
          duplicate_frames_.fetch_add(1, std::memory_order_relaxed);
          DCV_OBS_COUNT(c_duplicate_frames_, 1);
          continue;
        }
        c.last_seq_received.store(frame.seq, std::memory_order_relaxed);
      }
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_frames_rx_, 1);
      if (frame.type == FrameType::kEnvelopeBatch) {
        // Route the batch with one PushAll per destination inbox (one
        // mutex round trip per burst, same as the thread transport).
        if (role_ != Role::kCoordinator) {
          if (!inboxes_[0]->PushAll(std::move(frame.batch))) {
            return false;  // Inbox closed: we are shutting down.
          }
          continue;
        }
        std::vector<std::vector<Envelope>> per_shard(inboxes_.size());
        for (Envelope& env : frame.batch) {
          if (env.from < 0 || env.from >= num_sites_) {
            decode_errors_.fetch_add(1, std::memory_order_relaxed);
            DCV_OBS_COUNT(c_decode_errors_, 1);
            continue;
          }
          per_shard[static_cast<size_t>(ShardOf(env.from))].push_back(env);
        }
        for (size_t s = 0; s < per_shard.size(); ++s) {
          if (!per_shard[s].empty() &&
              !inboxes_[s]->PushAll(std::move(per_shard[s]))) {
            return false;
          }
        }
        continue;
      }
      size_t inbox = 0;
      if (role_ == Role::kCoordinator) {
        // Coordinator-bound traffic fans across the shard inboxes by
        // sender. A frame with an out-of-range sender has no shard; treat
        // it like any other malformed frame.
        if (frame.envelope.from < 0 || frame.envelope.from >= num_sites_) {
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          DCV_OBS_COUNT(c_decode_errors_, 1);
          continue;
        }
        inbox = static_cast<size_t>(ShardOf(frame.envelope.from));
      }
      if (!inboxes_[inbox]->Push(frame.envelope)) {
        return false;  // Inbox closed: we are shutting down.
      }
    }
  };

  // One outer iteration per connection incarnation: read until the stream
  // ends, then (with reconnection enabled) park for a resume and go again.
  for (;;) {
    int fd = -1;
    uint32_t gen = 0;
    {
      std::lock_guard<std::mutex> lock(c.mu);
      fd = c.fd;
      gen = c.generation;
    }
    FrameReader reader;
    bool clean = false;
    bool stream_ok = true;
    // Bytes the handshake read past its own frame come first: they are
    // earlier in the stream than anything recv() will return.
    if (!residual.empty()) {
      reader.Append(reinterpret_cast<const uint8_t*>(residual.data()),
                    residual.size());
      residual.clear();
      stream_ok = drain_frames(reader);
    }
    while (stream_ok) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) {
        clean = true;  // Peer finished sending: graceful end of stream.
        break;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;  // Reset/abort — or our own Shutdown closed the socket.
      }
      bytes_received_.fetch_add(n, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_bytes_rx_, n);
      reader.Append(buf, static_cast<size_t>(n));
      stream_ok = drain_frames(reader);
    }
    if (stream_ok && !reader.Finish().ok()) {
      // The connection dropped inside a length-prefixed frame: a distinct
      // failure mode from both a clean end and a decode error. The partial
      // bytes are discarded; a resume replays the full frame.
      truncated_frames_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_truncated_frames_, 1);
      clean = false;
    }
    const bool down = shutting_down_.load(std::memory_order_relaxed);
    if (!clean && !down) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_disconnects_, 1);
    }
    if (down || !options_.allow_reconnect) {
      break;
    }
    if (!AwaitResume(index, gen, &residual)) {
      break;  // Window expired or shutdown: fail like a real crash.
    }
  }
  // End of stream with no resume coming means no more messages can arrive
  // on this connection; close the inboxes so blocked receivers drain and
  // exit, matching ThreadTransport's closed-and-drained contract.
  CloseInboxes();
  c.send_box->Close();
}

void SocketTransport::CloseInboxes() {
  for (auto& box : inboxes_) {
    box->Close();
  }
}

void SocketTransport::RetireFd(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(retired_mu_);
  retired_fds_.push_back(fd);
}

void SocketTransport::WriterLoop(size_t index) {
  Connection& c = *conns_[index];
  std::string buf;
  std::string frame;
  std::vector<Envelope> batch;
  Envelope e;
  for (;;) {
    if (!c.send_box->Pop(&e)) {
      break;  // Closed and drained: our side is done sending.
    }
    batch.clear();
    batch.push_back(e);
    // Coalesce whatever is already queued into one write (epoch barriers
    // broadcast N small messages back to back).
    while (batch.size() < kMaxBatchEnvelopes && c.send_box->TryPop(&e)) {
      batch.push_back(e);
    }
    bool wrote = false;
    uint32_t gen = 0;
    int64_t wire_frames = 0;
    {
      std::lock_guard<std::mutex> wl(c.write_mu);
      {
        std::lock_guard<std::mutex> lock(c.mu);
        gen = c.generation;  // Incarnation this write lands on.
      }
      buf.clear();
      // A multi-envelope burst becomes ONE kEnvelopeBatch frame under one
      // sequence number; the whole frame is one sent-ring entry, so resume
      // replay and the peer's high-water-mark dedup treat the burst
      // atomically (never half-applied). A lone envelope keeps the v3
      // kEnvelope framing.
      frame.clear();
      if (batch.size() == 1) {
        AppendEnvelopeFrame(batch[0], &frame, c.next_send_seq);
      } else {
        AppendEnvelopeBatchFrame(batch.data(), batch.size(), &frame,
                                 c.next_send_seq);
      }
      c.sent_ring.emplace_back(c.next_send_seq, frame);
      while (c.sent_ring.size() > options_.replay_capacity) {
        c.sent_ring.pop_front();
      }
      ++c.next_send_seq;
      buf += frame;
      wire_frames = 1;
      wrote = c.fd >= 0 && WriteAll(c.fd, buf.data(), buf.size());
      if (wrote) {
        frames_sent_.fetch_add(wire_frames, std::memory_order_relaxed);
        bytes_sent_.fetch_add(static_cast<int64_t>(buf.size()),
                              std::memory_order_relaxed);
        DCV_OBS_COUNT(c_frames_tx_, wire_frames);
        DCV_OBS_COUNT(c_bytes_tx_, static_cast<int64_t>(buf.size()));
      }
    }
    if (wrote) {
      continue;
    }
    // Write failed. The frames are already in the sent ring, so a resume
    // replays them — park for the new incarnation instead of giving up.
    if (!shutting_down_.load(std::memory_order_relaxed)) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_disconnects_, 1);
    }
    bool resumed = false;
    if (options_.allow_reconnect &&
        !shutting_down_.load(std::memory_order_relaxed)) {
      std::unique_lock<std::mutex> lock(c.mu);
      c.cv.wait_for(lock,
                    std::chrono::milliseconds(options_.reconnect_window_ms +
                                              options_.reconnect_grace_ms),
                    [&] {
                      return shutting_down_.load(std::memory_order_relaxed) ||
                             c.generation != gen;
                    });
      resumed = !shutting_down_.load(std::memory_order_relaxed) &&
                c.generation != gen;
    }
    if (resumed) {
      continue;  // The installer replayed the failed frames already.
    }
    if (!shutting_down_.load(std::memory_order_relaxed)) {
      CloseInboxes();
    }
    c.send_box->Close();
    while (c.send_box->Pop(&e)) {
      // Drain so producers blocked in Push wake and see closed.
    }
    return;
  }
  // Send queue closed and drained. Half-close so the peer's reader sees a
  // clean end of stream once it drains.
  std::lock_guard<std::mutex> wl(c.write_mu);
  if (c.fd >= 0) {
    ::shutdown(c.fd, SHUT_WR);
  }
}

bool SocketTransport::InstallResumedFd(Connection* c, int fd,
                                       uint32_t generation,
                                       uint64_t peer_last_seq,
                                       std::string residual) {
  std::lock_guard<std::mutex> wl(c->write_mu);
  // The ring holds the sent-frame suffix [next_send_seq - ring, next - 1].
  // If the peer missed more than that, the link cannot be healed
  // losslessly; fail the resume so the run aborts instead of silently
  // dropping protocol messages.
  const uint64_t want_from = peer_last_seq + 1;
  if (want_from < c->next_send_seq &&
      (c->sent_ring.empty() || c->sent_ring.front().first > want_from)) {
    return false;
  }
  std::string replay;
  int64_t replayed = 0;
  for (const auto& [seq, bytes] : c->sent_ring) {
    if (seq >= want_from) {
      replay += bytes;
      ++replayed;
    }
  }
  if (!replay.empty() && !WriteAll(fd, replay.data(), replay.size())) {
    return false;
  }
  replayed_frames_.fetch_add(replayed, std::memory_order_relaxed);
  DCV_OBS_COUNT(c_replayed_frames_, replayed);
  bytes_sent_.fetch_add(static_cast<int64_t>(replay.size()),
                        std::memory_order_relaxed);
  if (replayed > 0 && options_.recorder != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kFrameReplay;
    ev.value = replayed;
    ev.ts_us = WallUs();
    options_.recorder->Record(ev);
  }
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->fd >= 0 && c->fd != fd) {
      RetireFd(c->fd);  // Fence the stale incarnation.
    }
    c->fd = fd;
    c->generation = generation;
    c->residual = std::move(residual);
  }
  c->cv.notify_all();
  return true;
}

bool SocketTransport::TryWorkerResume(Connection* c, std::string* residual) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(peer_port_));
  if (::inet_pton(AF_INET, peer_host_.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  connect_attempts_.fetch_add(1, std::memory_order_relaxed);
  DCV_OBS_COUNT(c_connect_attempts_, 1);
  auto fd = ConnectOnce(addr, options_.connect_timeout_ms);
  if (!fd.ok()) {
    return false;
  }
  SetNoDelay(*fd);
  SetSendTimeout(*fd, options_.io_timeout_ms);
  HelloFrame hello;
  hello.worker = worker_;
  hello.num_workers = num_workers_;
  hello.num_sites = num_sites_;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    hello.generation = c->generation + 1;
  }
  hello.last_seq_received = c->last_seq_received.load(std::memory_order_relaxed);
  hello.t1_us = WallUs();
  std::string out;
  AppendHelloFrame(hello, &out);
  if (!WriteAll(*fd, out.data(), out.size())) {
    ::close(*fd);
    return false;
  }
  FrameReader hs;
  auto ack = ReadFrame(*fd, options_.io_timeout_ms, &hs);
  const int64_t t4 = WallUs();
  if (!ack.ok() || ack->type != FrameType::kHelloAck ||
      ack->hello_ack.ok == 0) {
    ::close(*fd);
    return false;
  }
  if (ack->hello_ack.t2_us != 0) {
    // Refresh the clock-offset estimate on every resume handshake.
    const HelloAckFrame& a = ack->hello_ack;
    clock_offset_us_.store(((a.t2_us - hello.t1_us) + (a.t3_us - t4)) / 2,
                           std::memory_order_relaxed);
  }
  if (!InstallResumedFd(c, *fd, hello.generation,
                        ack->hello_ack.last_seq_received, hs.TakeBuffered())) {
    ::close(*fd);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(c->mu);
    *residual = std::move(c->residual);
    c->residual.clear();
  }
  return true;
}

bool SocketTransport::AwaitResume(size_t index, uint32_t seen_gen,
                                  std::string* residual) {
  Connection& c = *conns_[index];
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.reconnect_window_ms);
  if (role_ == Role::kWorker) {
    // Grace period: on a graceful shutdown the site actors are already
    // holding their kShutdown envelopes, so shutting_down_ flips almost
    // immediately — don't redial a coordinator that is simply done.
    {
      std::unique_lock<std::mutex> lock(c.mu);
      c.cv.wait_for(lock,
                    std::chrono::milliseconds(options_.reconnect_grace_ms),
                    [&] {
                      return shutting_down_.load(std::memory_order_relaxed);
                    });
    }
    int backoff = std::max(1, options_.connect_backoff_ms);
    while (!shutting_down_.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      if (TryWorkerResume(&c, residual)) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        DCV_OBS_COUNT(c_reconnects_, 1);
        if (options_.recorder != nullptr) {
          obs::TraceEvent ev;
          ev.kind = obs::TraceEventKind::kWorkerReconnect;
          ev.value = worker_;
          ev.ts_us = WallUs();
          options_.recorder->Record(ev);
        }
        return true;
      }
      connect_retries_.fetch_add(1, std::memory_order_relaxed);
      DCV_OBS_COUNT(c_connect_retries_, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, 2000);
    }
    return false;
  }
  // Coordinator role: the acceptor thread installs the resumed fd; park
  // until the generation moves past the incarnation we just lost.
  std::unique_lock<std::mutex> lock(c.mu);
  c.cv.wait_until(lock, deadline, [&] {
    return shutting_down_.load(std::memory_order_relaxed) ||
           c.generation != seen_gen;
  });
  if (shutting_down_.load(std::memory_order_relaxed) ||
      c.generation == seen_gen) {
    return false;
  }
  *residual = std::move(c.residual);
  c.residual.clear();
  return true;
}

void SocketTransport::AcceptorLoop() {
  while (!shutting_down_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, 100);
    if (rc <= 0) {
      continue;  // Timeout tick (checks shutting_down_) or EINTR.
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    SetNoDelay(fd);
    SetSendTimeout(fd, options_.io_timeout_ms);
    FrameReader hs;
    const int handshake_ms =
        std::min(options_.io_timeout_ms, options_.reconnect_window_ms);
    auto frame = ReadFrame(fd, handshake_ms, &hs);
    const int64_t t2 = WallUs();
    HelloAckFrame ack;
    ack.num_sites = num_sites_;
    ack.num_workers = num_workers_;
    ack.virtual_time = virtual_time_ ? 1 : 0;
    Connection* c = nullptr;
    bool ok = frame.ok() && frame->type == FrameType::kHello;
    if (ok) {
      const HelloFrame& hello = frame->hello;
      ok = hello.num_sites == num_sites_ &&
           hello.num_workers == num_workers_ && hello.worker >= 0 &&
           hello.worker < num_workers_;
      if (ok) {
        c = conns_[static_cast<size_t>(hello.worker)].get();
        std::lock_guard<std::mutex> lock(c->mu);
        // Generation fence: only a strictly newer incarnation may replace
        // the connection; a stale or duplicate dial is rejected.
        ok = hello.generation > c->generation;
        ack.generation = hello.generation;
      }
    }
    if (ok) {
      ack.last_seq_received =
          c->last_seq_received.load(std::memory_order_relaxed);
    }
    ack.ok = ok ? 1 : 0;
    if (frame.ok() && frame->type == FrameType::kHello) {
      ack.t1_us = frame->hello.t1_us;
    }
    ack.t2_us = t2;
    ack.t3_us = WallUs();
    std::string reply;
    AppendHelloAckFrame(ack, &reply);
    if (!WriteAll(fd, reply.data(), reply.size()) || !ok) {
      ::close(fd);
      continue;
    }
    if (!InstallResumedFd(c, fd, frame->hello.generation,
                          frame->hello.last_seq_received,
                          hs.TakeBuffered())) {
      ::close(fd);
      continue;
    }
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    DCV_OBS_COUNT(c_reconnects_, 1);
    if (options_.recorder != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::TraceEventKind::kWorkerReconnect;
      ev.value = frame->hello.worker;
      ev.ts_us = WallUs();
      options_.recorder->Record(ev);
    }
  }
}

bool SocketTransport::Send(const Envelope& e) {
  if (role_ == Role::kCoordinator) {
    if (e.to < 0 || e.to >= num_sites_) {
      return false;
    }
    return conns_[static_cast<size_t>(WorkerOf(e.to))]->send_box->Push(e);
  }
  if (e.to != kCoordinatorId) {
    return false;
  }
  return conns_[0]->send_box->Push(e);
}

bool SocketTransport::SendBatch(const std::vector<Envelope>& batch) {
  if (role_ != Role::kCoordinator) {
    // Worker role: every envelope rides the one coordinator connection.
    std::vector<Envelope> items;
    items.reserve(batch.size());
    for (const Envelope& e : batch) {
      if (e.to != kCoordinatorId) {
        return false;
      }
      items.push_back(e);
    }
    return conns_[0]->send_box->PushAll(std::move(items));
  }
  // Coordinator role: group per worker connection; each writer drains its
  // send box into one coalesced kEnvelopeBatch wire frame per burst.
  std::vector<std::vector<Envelope>> per_conn(conns_.size());
  for (const Envelope& e : batch) {
    if (e.to < 0 || e.to >= num_sites_) {
      return false;
    }
    per_conn[static_cast<size_t>(WorkerOf(e.to))].push_back(e);
  }
  for (size_t w = 0; w < per_conn.size(); ++w) {
    if (!per_conn[w].empty() &&
        !conns_[w]->send_box->PushAll(std::move(per_conn[w]))) {
      return false;
    }
  }
  return true;
}

size_t SocketTransport::TrySendBatch(const std::vector<Envelope>& batch,
                                     size_t begin, bool* closed) {
  // Prefix semantics (see Transport::TrySendBatch). The send boxes are
  // drained by dedicated writer threads regardless of what the peer is
  // doing, so kFull here only means a transient burst beyond the box
  // capacity — the caller drains its own inbox and retries. kClosed and
  // unroutable envelopes are permanent and flag `*closed`.
  size_t sent = 0;
  while (begin + sent < batch.size()) {
    const Envelope& e = batch[begin + sent];
    Mailbox<Envelope>* box = nullptr;
    if (role_ == Role::kCoordinator) {
      if (e.to < 0 || e.to >= num_sites_) {
        if (closed != nullptr) {
          *closed = true;
        }
        break;
      }
      box = conns_[static_cast<size_t>(WorkerOf(e.to))]->send_box.get();
    } else {
      if (e.to != kCoordinatorId) {
        if (closed != nullptr) {
          *closed = true;
        }
        break;
      }
      box = conns_[0]->send_box.get();
    }
    const MailboxPush push = box->TryPush(e);
    if (push != MailboxPush::kOk) {
      if (push == MailboxPush::kClosed && closed != nullptr) {
        *closed = true;
      }
      break;
    }
    ++sent;
  }
  return sent;
}

bool SocketTransport::SendToShard(int shard, const Envelope& e) {
  if (role_ != Role::kCoordinator || shard < 0 ||
      shard >= static_cast<int>(inboxes_.size())) {
    return false;
  }
  // Root-to-shard commands are coordinator-process-local: straight into
  // the shard inbox, no frame, no socket.
  return inboxes_[static_cast<size_t>(shard)]->Push(e);
}

bool SocketTransport::TrySendToShard(int shard, const Envelope& e) {
  if (role_ != Role::kCoordinator || shard < 0 ||
      shard >= static_cast<int>(inboxes_.size())) {
    return false;
  }
  return inboxes_[static_cast<size_t>(shard)]->TryPush(e) == MailboxPush::kOk;
}

bool SocketTransport::RecvShard(int shard, Envelope* out) {
  return role_ == Role::kCoordinator && shard >= 0 &&
         shard < static_cast<int>(inboxes_.size()) &&
         inboxes_[static_cast<size_t>(shard)]->Pop(out);
}

bool SocketTransport::TryRecvShard(int shard, Envelope* out) {
  return role_ == Role::kCoordinator && shard >= 0 &&
         shard < static_cast<int>(inboxes_.size()) &&
         inboxes_[static_cast<size_t>(shard)]->TryPop(out);
}

size_t SocketTransport::RecvShardAll(int shard, std::vector<Envelope>* out) {
  if (role_ != Role::kCoordinator || shard < 0 ||
      shard >= static_cast<int>(inboxes_.size())) {
    return 0;
  }
  return inboxes_[static_cast<size_t>(shard)]->PopAll(out);
}

size_t SocketTransport::RecvShardAllFor(int shard, std::vector<Envelope>* out,
                                        int64_t timeout_ms, bool* timed_out) {
  if (role_ != Role::kCoordinator || shard < 0 ||
      shard >= static_cast<int>(inboxes_.size())) {
    if (timed_out != nullptr) {
      *timed_out = false;
    }
    return 0;
  }
  return inboxes_[static_cast<size_t>(shard)]->PopAllFor(out, timeout_ms,
                                                         timed_out);
}

bool SocketTransport::RecvWorker(int worker, Envelope* out) {
  return role_ == Role::kWorker && worker == worker_ && inboxes_[0]->Pop(out);
}

bool SocketTransport::TryRecvWorker(int worker, Envelope* out) {
  return role_ == Role::kWorker && worker == worker_ &&
         inboxes_[0]->TryPop(out);
}

size_t SocketTransport::RecvWorkerAll(int worker, std::vector<Envelope>* out) {
  if (role_ != Role::kWorker || worker != worker_) {
    return 0;
  }
  return inboxes_[0]->PopAll(out);
}

size_t SocketTransport::TryRecvWorkerAll(int worker,
                                         std::vector<Envelope>* out) {
  if (role_ != Role::kWorker || worker != worker_) {
    return 0;
  }
  return inboxes_[0]->TryPopAll(out);
}

Status SocketTransport::UpdateLayout(const ShardLayout& next) {
  if (role_ != Role::kCoordinator) {
    return FailedPreconditionError(
        "layout updates originate at the coordinator");
  }
  const ShardLayout* live = current();
  if (next.num_sites != live->num_sites ||
      next.num_shards != live->num_shards) {
    return InvalidArgumentError(
        "layout update must keep the fabric shape (sites, shards)");
  }
  if (next.version <= live->version) {
    return InvalidArgumentError("layout update version must be newer than " +
                                std::to_string(live->version));
  }
  LayoutFrame lf;
  lf.version = next.version;
  lf.num_sites = next.num_sites;
  lf.num_shards = next.num_shards;
  lf.starts.resize(static_cast<size_t>(next.num_shards) + 1);
  for (int s = 0; s < next.num_shards; ++s) {
    lf.starts[static_cast<size_t>(s)] = next.ShardStart(s);
  }
  lf.starts[static_cast<size_t>(next.num_shards)] = next.num_sites;
  std::string bytes;
  AppendLayoutFrame(lf, &bytes);
  for (auto& c : conns_) {
    std::lock_guard<std::mutex> wl(c->write_mu);
    if (c->fd < 0 || !WriteAll(c->fd, bytes.data(), bytes.size())) {
      return InternalError("layout push failed on a worker connection");
    }
  }
  // The fence: routing switches only after every worker acked, so no party
  // still routes by the old layout once this returns.
  std::unique_lock<std::mutex> lock(layout_mu_);
  bool acked = layout_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.io_timeout_ms), [&] {
        if (shutting_down_.load(std::memory_order_relaxed)) {
          return true;
        }
        for (uint32_t v : layout_acked_) {
          if (v < next.version) {
            return false;
          }
        }
        return true;
      });
  if (!acked || shutting_down_.load(std::memory_order_relaxed)) {
    return ResourceExhaustedError(
        "timed out waiting for layout acks from workers");
  }
  layouts_.push_back(std::make_unique<ShardLayout>(next));
  layout_ptr_.store(layouts_.back().get(), std::memory_order_release);
  return OkStatus();
}

Status SocketTransport::InjectPeerFailure(int worker) {
  if (role_ != Role::kCoordinator) {
    return FailedPreconditionError("failure injection needs the coordinator");
  }
  if (worker < 0 || worker >= num_workers_) {
    return InvalidArgumentError("worker index out of range");
  }
  Connection& c = *conns_[static_cast<size_t>(worker)];
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.fd >= 0) {
    // Hard sever both directions: the worker sees end-of-stream, our own
    // reader/writer see failures — exactly the observable footprint of a
    // crashed peer or a cut link.
    ::shutdown(c.fd, SHUT_RDWR);
  }
  return OkStatus();
}

Status SocketTransport::SendTelemetry(const TelemetryFrame& t) {
  if (role_ != Role::kWorker) {
    return FailedPreconditionError("telemetry flows worker -> coordinator");
  }
  std::string bytes;
  DCV_RETURN_IF_ERROR(AppendTelemetryFrame(t, &bytes));
  // Telemetry bypasses the envelope queue and replay ring (the same
  // direct-write path UpdateLayout uses): frames are unsequenced cumulative
  // snapshots, so a resume never needs to replay them and dedup can never
  // double-count them.
  Connection& c = *conns_[0];
  std::lock_guard<std::mutex> wl(c.write_mu);
  if (c.fd < 0 || !WriteAll(c.fd, bytes.data(), bytes.size())) {
    return InternalError("telemetry push failed (connection down)");
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(static_cast<int64_t>(bytes.size()),
                        std::memory_order_relaxed);
  DCV_OBS_COUNT(c_frames_tx_, 1);
  DCV_OBS_COUNT(c_bytes_tx_, static_cast<int64_t>(bytes.size()));
  return OkStatus();
}

std::vector<TelemetryFrame> SocketTransport::TakeWorkerTelemetry() {
  std::vector<TelemetryFrame> out;
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  for (size_t w = 0; w < worker_telemetry_.size(); ++w) {
    if (worker_telemetry_valid_[w] != 0) {
      out.push_back(std::move(worker_telemetry_[w]));
      worker_telemetry_[w] = TelemetryFrame{};
      worker_telemetry_valid_[w] = 0;
    }
  }
  return out;
}

bool SocketTransport::WaitForFinalTelemetry(int timeout_ms) {
  if (role_ != Role::kCoordinator) {
    return false;
  }
  std::unique_lock<std::mutex> lock(telemetry_mu_);
  return telemetry_cv_.wait_for(
      lock, std::chrono::milliseconds(std::max(0, timeout_ms)), [&] {
        if (shutting_down_.load(std::memory_order_relaxed)) {
          return true;
        }
        for (uint8_t f : worker_telemetry_final_) {
          if (f == 0) {
            return false;
          }
        }
        return true;
      });
}

void SocketTransport::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shutdown_done_) {
    return;
  }
  shutdown_done_ = true;
  shutting_down_.store(true, std::memory_order_relaxed);
  // Wake anything parked waiting for a resume; no resume is coming.
  for (auto& c : conns_) {
    c->cv.notify_all();
  }
  layout_cv_.notify_all();
  telemetry_cv_.notify_all();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // Phase 1: flush. Closing a mailbox still lets Pop drain it, so the
  // writers push every queued frame (including a final kShutdown
  // broadcast) before half-closing their sockets.
  for (auto& c : conns_) {
    if (c->send_box != nullptr) {
      c->send_box->Close();
    }
  }
  for (auto& c : conns_) {
    if (c->writer.joinable()) {
      c->writer.join();
    }
  }
  // Phase 2: stop receiving. Shut the sockets to wake blocked readers and
  // close the inbox so blocked receivers drain out.
  for (auto& c : conns_) {
    if (c->fd >= 0) {
      ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  CloseInboxes();
  for (auto& c : conns_) {
    if (c->reader.joinable()) {
      c->reader.join();
    }
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> retired_lock(retired_mu_);
    for (int fd : retired_fds_) {
      ::close(fd);
    }
    retired_fds_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

SocketStats SocketTransport::stats() const {
  SocketStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  s.connect_retries = connect_retries_.load(std::memory_order_relaxed);
  s.accept_timeouts = accept_timeouts_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.truncated_frames = truncated_frames_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.replayed_frames = replayed_frames_.load(std::memory_order_relaxed);
  s.duplicate_frames = duplicate_frames_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dcv
