#include "runtime/shard.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dcv {

namespace {

/// Pushes a kError to the root; a shard never returns a Status because it
/// runs on its own thread — the root turns the first kError it sees into
/// the run's failure.
void ReportError(const ShardContext& ctx, std::string message) {
  RootMsg err;
  err.kind = RootMsg::Kind::kError;
  err.shard = ctx.shard;
  err.status = InternalError(std::move(message));
  ctx.to_root->Push(std::move(err));
}

}  // namespace

FaultSpec SliceFaultSpec(const FaultSpec& faults, const ShardLayout& layout,
                         int shard) {
  const int start = layout.ShardStart(shard);
  const int size = layout.ShardSize(shard);
  FaultSpec out = faults;
  if (!faults.per_site_loss.empty()) {
    out.per_site_loss.clear();
    for (int i = 0; i < size; ++i) {
      const size_t global = static_cast<size_t>(start + i);
      out.per_site_loss.push_back(global < faults.per_site_loss.size()
                                      ? faults.per_site_loss[global]
                                      : faults.loss);
    }
  }
  out.crashes.clear();
  for (const CrashWindow& crash : faults.crashes) {
    if (crash.site >= start && crash.site < start + size) {
      CrashWindow local = crash;
      local.site = crash.site - start;
      out.crashes.push_back(local);
    }
  }
  // Splitmix64 increment times (shard + 1): distinct, seed-deterministic
  // streams per shard; shard 0 of a k=1 layout still differs from the flat
  // coordinator's stream, which is fine — free-running mode claims no
  // cross-configuration determinism.
  out.seed = faults.seed ^ (0x9e3779b97f4a7c15ULL *
                            static_cast<uint64_t>(shard + 1));
  return out;
}

void RunShardVirtual(ShardContext ctx) {
  const int start = ctx.layout.ShardStart(ctx.shard);
  const int size = ctx.layout.ShardSize(ctx.shard);
  std::vector<char> alarmed(static_cast<size_t>(size), 0);
  std::vector<int64_t> values(static_cast<size_t>(size), 0);
  std::vector<Envelope> batch;

  ShardCmd cmd;
  while (ctx.cmds->Pop(&cmd)) {
    switch (cmd.kind) {
      case ShardCmd::Kind::kShutdown: {
        ActorMessage shutdown;
        shutdown.kind = ActorMsgKind::kShutdown;
        for (int i = 0; i < size; ++i) {
          ctx.transport->Send(Envelope{kCoordinatorId, start + i, shutdown});
        }
        return;
      }
      case ShardCmd::Kind::kEpoch: {
        // Threshold re-syncs go out before this epoch's kEpochStart; the
        // mailbox is per-producer FIFO and this thread is the only producer
        // for its sites, so the site installs the threshold before it
        // evaluates — same ordering the flat coordinator guarantees.
        for (int site : cmd.resync_sites) {
          ActorMessage update;
          update.kind = ActorMsgKind::kThresholdUpdate;
          update.epoch = cmd.epoch;
          update.value =
              ctx.plan.thresholds[static_cast<size_t>(site - start)];
          if (!ctx.transport->Send(Envelope{kCoordinatorId, site, update})) {
            ReportError(ctx, "transport closed during threshold re-sync");
            return;
          }
        }
        for (int i = 0; i < size; ++i) {
          ActorMessage begin;
          begin.kind = ActorMsgKind::kEpochStart;
          begin.epoch = cmd.epoch;
          begin.flag = cmd.up[static_cast<size_t>(i)] != 0;
          if (!ctx.transport->Send(
                  Envelope{kCoordinatorId, start + i, begin})) {
            ReportError(ctx, "transport closed during epoch start");
            return;
          }
        }
        std::fill(alarmed.begin(), alarmed.end(), 0);
        int pending = size;
        while (pending > 0) {
          batch.clear();
          if (ctx.transport->RecvShardAll(ctx.shard, &batch) == 0) {
            ReportError(ctx, "transport closed while collecting reports");
            return;
          }
          for (const Envelope& e : batch) {
            if (e.msg.kind != ActorMsgKind::kEpochReport ||
                e.msg.epoch != cmd.epoch) {
              ReportError(ctx, "out-of-order message at epoch barrier");
              return;
            }
            alarmed[static_cast<size_t>(e.from - start)] = e.msg.flag ? 1 : 0;
            values[static_cast<size_t>(e.from - start)] = e.msg.value;
            --pending;
          }
        }
        RootMsg partial;
        partial.kind = RootMsg::Kind::kEpochPartial;
        partial.shard = ctx.shard;
        partial.epoch = cmd.epoch;
        for (int i = 0; i < size; ++i) {
          if (alarmed[static_cast<size_t>(i)]) {
            partial.entries.emplace_back(start + i,
                                         values[static_cast<size_t>(i)]);
          }
        }
        if (!ctx.to_root->Push(std::move(partial))) {
          return;
        }
        break;
      }
      case ShardCmd::Kind::kPoll: {
        ActorMessage request;
        request.kind = ActorMsgKind::kPollRequest;
        request.epoch = cmd.epoch;
        for (int i = 0; i < size; ++i) {
          if (!ctx.transport->Send(
                  Envelope{kCoordinatorId, start + i, request})) {
            ReportError(ctx, "transport closed during poll round");
            return;
          }
        }
        std::fill(values.begin(), values.end(), 0);
        int pending = size;
        while (pending > 0) {
          batch.clear();
          if (ctx.transport->RecvShardAll(ctx.shard, &batch) == 0) {
            ReportError(ctx,
                        "transport closed while collecting poll responses");
            return;
          }
          for (const Envelope& e : batch) {
            if (e.msg.kind != ActorMsgKind::kPollResponse) {
              ReportError(ctx,
                          std::string("unexpected ") +
                              std::string(ActorMsgKindName(e.msg.kind)) +
                              " during poll round");
              return;
            }
            values[static_cast<size_t>(e.from - start)] = e.msg.value;
            --pending;
          }
        }
        RootMsg partial;
        partial.kind = RootMsg::Kind::kPollPartial;
        partial.shard = ctx.shard;
        partial.epoch = cmd.epoch;
        partial.entries.reserve(static_cast<size_t>(size));
        for (int i = 0; i < size; ++i) {
          partial.entries.emplace_back(start + i,
                                       values[static_cast<size_t>(i)]);
        }
        if (!ctx.to_root->Push(std::move(partial))) {
          return;
        }
        break;
      }
    }
  }
}

void RunShardFree(ShardContext ctx) {
  const int start = ctx.layout.ShardStart(ctx.shard);
  const int size = ctx.layout.ShardSize(ctx.shard);

  // Free-running shards own their slice of the data plane: a private
  // channel over shard-local site ids charges a private counter, and the
  // root merges the k (counter, stats, alarms) triples at kShardExit.
  MessageCounter counter;
  Channel channel(ctx.faults);
  {
    // A free-running shard always terminates via kShardExit — even on init
    // failure — so the root can count k exits before joining.
    Status init = channel.Init(size, &counter);
    if (!init.ok()) {
      RootMsg exit;
      exit.kind = RootMsg::Kind::kShardExit;
      exit.shard = ctx.shard;
      exit.status = init;
      ctx.to_root->Push(std::move(exit));
      return;
    }
  }
  channel.SetObserver(ctx.metrics, ctx.recorder);

  int64_t watermark = -1;
  bool poll_outstanding = false;
  int poll_pending = 0;
  bool notice_sent = false;  ///< Collapse alarms into one notice per round.
  std::vector<int64_t> poll_values(static_cast<size_t>(size), 0);
  std::vector<std::pair<int, int64_t>> done_entries;
  int sites_done = 0;
  int64_t alarms = 0;
  std::vector<Envelope> batch;
  bool running = true;
  Status exit_status = OkStatus();

  auto advance_watermark = [&](int64_t epoch) {
    if (epoch > watermark) {
      channel.BeginEpoch(epoch);
      watermark = epoch;
    }
  };
  auto start_local_poll = [&]() -> bool {
    ActorMessage request;
    request.kind = ActorMsgKind::kPollRequest;
    request.epoch = std::max<int64_t>(watermark, 0);
    for (int i = 0; i < size; ++i) {
      if (!ctx.transport->Send(
              Envelope{kCoordinatorId, start + i, request})) {
        return false;
      }
    }
    std::fill(poll_values.begin(), poll_values.end(), 0);
    poll_pending = size;
    poll_outstanding = true;
    return true;
  };

  while (running) {
    batch.clear();
    if (ctx.transport->RecvShardAll(ctx.shard, &batch) == 0) {
      exit_status = InternalError("transport closed while sites were live");
      break;
    }
    for (const Envelope& e : batch) {
      if (!running) {
        break;
      }
      if (e.from == kCoordinatorId) {
        // Root command, injected shard-locally via SendToShard (never the
        // wire): kPollRequest opens a poll leg, kShutdown ends the run.
        if (e.msg.kind == ActorMsgKind::kShutdown) {
          running = false;
        } else if (e.msg.kind == ActorMsgKind::kPollRequest &&
                   !poll_outstanding) {
          notice_sent = false;
          if (!start_local_poll()) {
            exit_status = InternalError("transport closed during poll round");
            running = false;
          }
        }
        continue;
      }
      switch (e.msg.kind) {
        case ActorMsgKind::kAlarm: {
          advance_watermark(e.msg.epoch);
          DCV_OBS_COUNT(ctx.alarms_rx, 1);
          ++alarms;
          SendStatus s =
              channel.SendFromSite(e.from - start, MessageType::kAlarm,
                                   /*reliable=*/true, e.msg.value);
          std::vector<Channel::Arrival> stale =
              channel.TakeArrivals(MessageType::kAlarm);
          if ((s == SendStatus::kDelivered || !stale.empty()) &&
              !notice_sent) {
            // One notice per round: the root collapses notices from k
            // shards into at most one outstanding global round plus one
            // catch-up, so alarm fan-in costs O(k) root messages per round
            // no matter how many sites fire.
            RootMsg notice;
            notice.kind = RootMsg::Kind::kAlarmNotice;
            notice.shard = ctx.shard;
            notice.epoch = watermark;
            if (!ctx.to_root->Push(std::move(notice))) {
              running = false;
              break;
            }
            notice_sent = true;
          }
          break;
        }
        case ActorMsgKind::kPollResponse: {
          if (!poll_outstanding) {
            break;  // Response to a round we already resolved; ignore.
          }
          poll_values[static_cast<size_t>(e.from - start)] = e.msg.value;
          if (--poll_pending == 0) {
            PollOutcome poll = channel.PollSites(
                poll_values, ctx.weights,
                ctx.protocol == RuntimeProtocol::kLocalThreshold
                    ? ctx.plan.domain_max
                    : std::vector<int64_t>{});
            poll_outstanding = false;
            RootMsg partial;
            partial.kind = RootMsg::Kind::kPollPartial;
            partial.shard = ctx.shard;
            partial.epoch = watermark;
            partial.partial_sum = poll.weighted_sum;
            partial.partial_min = poll.values.empty() ? 0 : poll.values[0];
            partial.partial_max = partial.partial_min;
            for (int64_t v : poll.values) {
              partial.partial_min = std::min(partial.partial_min, v);
              partial.partial_max = std::max(partial.partial_max, v);
            }
            partial.responses = poll.responses;
            partial.timeouts = poll.timeouts;
            if (!ctx.to_root->Push(std::move(partial))) {
              running = false;
            }
          }
          break;
        }
        case ActorMsgKind::kSiteDone: {
          done_entries.emplace_back(e.from, e.msg.value);
          if (++sites_done == size) {
            std::sort(done_entries.begin(), done_entries.end());
            RootMsg done;
            done.kind = RootMsg::Kind::kShardDone;
            done.shard = ctx.shard;
            done.entries = done_entries;
            if (!ctx.to_root->Push(std::move(done))) {
              running = false;
            }
          }
          break;
        }
        default:
          exit_status = InternalError(
              std::string("unexpected ") +
              std::string(ActorMsgKindName(e.msg.kind)) +
              " in free-running mode");
          running = false;
          break;
      }
    }
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  for (int i = 0; i < size; ++i) {
    ctx.transport->Send(Envelope{kCoordinatorId, start + i, shutdown});
  }
  RootMsg exit;
  exit.kind = RootMsg::Kind::kShardExit;
  exit.shard = ctx.shard;
  exit.alarms = alarms;
  exit.messages = counter;
  exit.reliability = channel.stats();
  exit.status = exit_status;
  ctx.to_root->Push(std::move(exit));
}

}  // namespace dcv
