#include "runtime/shard.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dcv {

namespace {

/// Pushes a kError to the root; a shard never returns a Status because it
/// runs on its own thread — the root turns the first kError it sees into
/// the run's failure.
void ReportError(const ShardContext& ctx, Status status) {
  RootMsg err;
  err.kind = RootMsg::Kind::kError;
  err.shard = ctx.shard;
  err.status = std::move(status);
  ctx.to_root->Push(std::move(err));
}

}  // namespace

FaultSpec SliceFaultSpec(const FaultSpec& faults, const ShardLayout& layout,
                         int shard) {
  const int start = layout.ShardStart(shard);
  const int size = layout.ShardSize(shard);
  FaultSpec out = faults;
  if (!faults.per_site_loss.empty()) {
    out.per_site_loss.clear();
    for (int i = 0; i < size; ++i) {
      const size_t global = static_cast<size_t>(start + i);
      out.per_site_loss.push_back(global < faults.per_site_loss.size()
                                      ? faults.per_site_loss[global]
                                      : faults.loss);
    }
  }
  out.crashes.clear();
  for (const CrashWindow& crash : faults.crashes) {
    if (crash.site >= start && crash.site < start + size) {
      CrashWindow local = crash;
      local.site = crash.site - start;
      out.crashes.push_back(local);
    }
  }
  // Splitmix64 increment times (shard + 1): distinct, seed-deterministic
  // streams per shard; shard 0 of a k=1 layout still differs from the flat
  // coordinator's stream, which is fine — free-running mode claims no
  // cross-configuration determinism.
  out.seed = faults.seed ^ (0x9e3779b97f4a7c15ULL *
                            static_cast<uint64_t>(shard + 1));
  return out;
}

Status ShardEpochLeg(Transport* transport, const ShardLayout& layout,
                     int shard, const LocalPlan& plan, const ShardCmd& cmd,
                     std::vector<std::pair<int, int64_t>>* alarmed) {
  const int start = layout.ShardStart(shard);
  const int size = layout.ShardSize(shard);
  // Threshold re-syncs go out before this epoch's kEpochStart; the mailbox
  // is per-producer FIFO and one thread at a time produces for these sites
  // (the shard, or the root after re-adoption), so the site installs the
  // threshold before it evaluates — same ordering the flat coordinator
  // guarantees.
  // One batched fan-out per epoch leg: re-syncs first, then every start.
  // SendBatch preserves batch order per destination inbox, so a site's
  // re-sync still lands before its kEpochStart.
  std::vector<Envelope> fanout;
  fanout.reserve(cmd.resync_sites.size() + static_cast<size_t>(size));
  for (int site : cmd.resync_sites) {
    ActorMessage update;
    update.kind = ActorMsgKind::kThresholdUpdate;
    update.epoch = cmd.epoch;
    update.value = plan.thresholds[static_cast<size_t>(site - start)];
    fanout.push_back(Envelope{kCoordinatorId, site, update});
  }
  for (int i = 0; i < size; ++i) {
    ActorMessage begin;
    begin.kind = ActorMsgKind::kEpochStart;
    begin.epoch = cmd.epoch;
    begin.flag = cmd.up[static_cast<size_t>(i)] != 0;
    fanout.push_back(Envelope{kCoordinatorId, start + i, begin});
  }
  if (!transport->SendBatch(fanout)) {
    return InternalError("transport closed during epoch start");
  }
  std::vector<char> site_alarmed(static_cast<size_t>(size), 0);
  std::vector<int64_t> values(static_cast<size_t>(size), 0);
  std::vector<Envelope> batch;
  int pending = size;
  while (pending > 0) {
    batch.clear();
    if (transport->RecvShardAll(shard, &batch) == 0) {
      return InternalError("transport closed while collecting reports");
    }
    for (const Envelope& e : batch) {
      if (e.msg.kind != ActorMsgKind::kEpochReport ||
          e.msg.epoch != cmd.epoch) {
        return InternalError("out-of-order message at epoch barrier");
      }
      site_alarmed[static_cast<size_t>(e.from - start)] = e.msg.flag ? 1 : 0;
      values[static_cast<size_t>(e.from - start)] = e.msg.value;
      --pending;
    }
  }
  alarmed->clear();
  for (int i = 0; i < size; ++i) {
    if (site_alarmed[static_cast<size_t>(i)]) {
      alarmed->emplace_back(start + i, values[static_cast<size_t>(i)]);
    }
  }
  return OkStatus();
}

Status ShardPollLeg(Transport* transport, const ShardLayout& layout,
                    int shard, int64_t epoch,
                    std::vector<std::pair<int, int64_t>>* values) {
  const int start = layout.ShardStart(shard);
  const int size = layout.ShardSize(shard);
  ActorMessage request;
  request.kind = ActorMsgKind::kPollRequest;
  request.epoch = epoch;
  std::vector<Envelope> fanout;
  fanout.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    fanout.push_back(Envelope{kCoordinatorId, start + i, request});
  }
  if (!transport->SendBatch(fanout)) {
    return InternalError("transport closed during poll round");
  }
  std::vector<int64_t> responses(static_cast<size_t>(size), 0);
  std::vector<Envelope> batch;
  int pending = size;
  while (pending > 0) {
    batch.clear();
    if (transport->RecvShardAll(shard, &batch) == 0) {
      return InternalError("transport closed while collecting poll responses");
    }
    for (const Envelope& e : batch) {
      if (e.msg.kind != ActorMsgKind::kPollResponse) {
        return InternalError(std::string("unexpected ") +
                             std::string(ActorMsgKindName(e.msg.kind)) +
                             " during poll round");
      }
      responses[static_cast<size_t>(e.from - start)] = e.msg.value;
      --pending;
    }
  }
  values->clear();
  values->reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    values->emplace_back(start + i, responses[static_cast<size_t>(i)]);
  }
  return OkStatus();
}

void ShardShutdownLeg(Transport* transport, const ShardLayout& layout,
                      int shard) {
  const int start = layout.ShardStart(shard);
  const int size = layout.ShardSize(shard);
  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  std::vector<Envelope> fanout;
  fanout.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    fanout.push_back(Envelope{kCoordinatorId, start + i, shutdown});
  }
  transport->SendBatch(fanout);
}

void RunShardVirtual(ShardContext ctx) {
  // Mutable: a kLayout command re-ranges the shard mid-run.
  ShardLayout layout = ctx.layout;
  LocalPlan plan = std::move(ctx.plan);
  std::vector<std::pair<int, int64_t>> entries;

  ShardCmd cmd;
  while (ctx.cmds->Pop(&cmd)) {
    switch (cmd.kind) {
      case ShardCmd::Kind::kShutdown: {
        ShardShutdownLeg(ctx.transport, layout, ctx.shard);
        return;
      }
      case ShardCmd::Kind::kLayout: {
        layout = cmd.layout;
        plan = std::move(cmd.plan);
        break;
      }
      case ShardCmd::Kind::kEpoch: {
        if (cmd.epoch == ctx.die_at_epoch) {
          // Chaos: crash before sending anything for this epoch. The
          // consumed command is the only thing lost, and the root holds a
          // copy — it re-executes the command itself after the heartbeat
          // timeout, so the sites (still waiting for kEpochStart) see one
          // producer and one barrier, exactly as if the shard had lived.
          return;
        }
        if (Status st = ShardEpochLeg(ctx.transport, layout, ctx.shard, plan,
                                      cmd, &entries);
            !st.ok()) {
          ReportError(ctx, std::move(st));
          return;
        }
        RootMsg partial;
        partial.kind = RootMsg::Kind::kEpochPartial;
        partial.shard = ctx.shard;
        partial.epoch = cmd.epoch;
        partial.entries = std::move(entries);
        if (!ctx.to_root->Push(std::move(partial))) {
          return;
        }
        break;
      }
      case ShardCmd::Kind::kPoll: {
        if (Status st = ShardPollLeg(ctx.transport, layout, ctx.shard,
                                     cmd.epoch, &entries);
            !st.ok()) {
          ReportError(ctx, std::move(st));
          return;
        }
        RootMsg partial;
        partial.kind = RootMsg::Kind::kPollPartial;
        partial.shard = ctx.shard;
        partial.epoch = cmd.epoch;
        partial.entries = std::move(entries);
        if (!ctx.to_root->Push(std::move(partial))) {
          return;
        }
        break;
      }
    }
  }
}

void RunShardFree(ShardContext ctx) {
  const int start = ctx.layout.ShardStart(ctx.shard);
  const int size = ctx.layout.ShardSize(ctx.shard);

  // Free-running shards own their slice of the data plane: a private
  // channel over shard-local site ids charges a private counter, and the
  // root merges the k (counter, stats, alarms) triples at kShardExit.
  MessageCounter counter;
  Channel channel(ctx.faults);
  {
    // A free-running shard always terminates via kShardExit — even on init
    // failure — so the root can count k exits before joining.
    Status init = channel.Init(size, &counter);
    if (!init.ok()) {
      RootMsg exit;
      exit.kind = RootMsg::Kind::kShardExit;
      exit.shard = ctx.shard;
      exit.status = init;
      ctx.to_root->Push(std::move(exit));
      return;
    }
  }
  channel.SetObserver(ctx.metrics, ctx.recorder);

  int64_t watermark = -1;
  bool poll_outstanding = false;
  int poll_pending = 0;
  bool notice_sent = false;  ///< Collapse alarms into one notice per round.
  std::vector<int64_t> poll_values(static_cast<size_t>(size), 0);
  int64_t alarms = 0;
  int64_t batches_survived = 0;
  std::vector<Envelope> batch;
  bool running = true;
  Status exit_status = OkStatus();

  auto advance_watermark = [&](int64_t epoch) {
    if (epoch > watermark) {
      channel.BeginEpoch(epoch);
      watermark = epoch;
    }
  };
  std::vector<Envelope> poll_fanout;
  poll_fanout.reserve(static_cast<size_t>(size));
  auto start_local_poll = [&]() -> bool {
    ActorMessage request;
    request.kind = ActorMsgKind::kPollRequest;
    request.epoch = std::max<int64_t>(watermark, 0);
    poll_fanout.clear();
    for (int i = 0; i < size; ++i) {
      poll_fanout.push_back(Envelope{kCoordinatorId, start + i, request});
    }
    if (!ctx.transport->SendBatch(poll_fanout)) {
      return false;
    }
    std::fill(poll_values.begin(), poll_values.end(), 0);
    poll_pending = size;
    poll_outstanding = true;
    return true;
  };

  while (running) {
    if (ctx.die_after_batches >= 0 &&
        batches_survived >= ctx.die_after_batches) {
      // Chaos: crash at a batch boundary — every consumed message was
      // fully handled (notices pushed, done reports relayed) and every
      // unconsumed one is still queued in the shard inbox, which the
      // root's respawned replacement drains. Nothing is lost; only this
      // shard's channel/counter accounting dies with it.
      return;
    }
    batch.clear();
    if (ctx.transport->RecvShardAll(ctx.shard, &batch) == 0) {
      exit_status = InternalError("transport closed while sites were live");
      break;
    }
    ++batches_survived;
    for (const Envelope& e : batch) {
      if (!running) {
        break;
      }
      if (e.from == kCoordinatorId) {
        // Root command, injected shard-locally via SendToShard (never the
        // wire): kPollRequest opens a poll leg, kPing asks for a liveness
        // heartbeat, kShutdown ends the run.
        if (e.msg.kind == ActorMsgKind::kShutdown) {
          running = false;
        } else if (e.msg.kind == ActorMsgKind::kPing) {
          RootMsg beat;
          beat.kind = RootMsg::Kind::kHeartbeat;
          beat.shard = ctx.shard;
          beat.epoch = e.msg.epoch;  // Echo the probe id.
          if (!ctx.to_root->Push(std::move(beat))) {
            running = false;
          }
        } else if (e.msg.kind == ActorMsgKind::kPollRequest &&
                   !poll_outstanding) {
          notice_sent = false;
          if (!start_local_poll()) {
            exit_status = InternalError("transport closed during poll round");
            running = false;
          }
        }
        continue;
      }
      switch (e.msg.kind) {
        case ActorMsgKind::kAlarm: {
          advance_watermark(e.msg.epoch);
          DCV_OBS_COUNT(ctx.alarms_rx, 1);
          ++alarms;
          SendStatus s =
              channel.SendFromSite(e.from - start, MessageType::kAlarm,
                                   /*reliable=*/true, e.msg.value);
          std::vector<Channel::Arrival> stale =
              channel.TakeArrivals(MessageType::kAlarm);
          if ((s == SendStatus::kDelivered || !stale.empty()) &&
              !notice_sent) {
            // One notice per round: the root collapses notices from k
            // shards into at most one outstanding global round plus one
            // catch-up, so alarm fan-in costs O(k) root messages per round
            // no matter how many sites fire.
            RootMsg notice;
            notice.kind = RootMsg::Kind::kAlarmNotice;
            notice.shard = ctx.shard;
            notice.epoch = watermark;
            if (!ctx.to_root->Push(std::move(notice))) {
              running = false;
              break;
            }
            notice_sent = true;
          }
          break;
        }
        case ActorMsgKind::kPollResponse: {
          if (!poll_outstanding) {
            break;  // Response to a round we already resolved; ignore.
          }
          poll_values[static_cast<size_t>(e.from - start)] = e.msg.value;
          if (--poll_pending == 0) {
            PollOutcome poll = channel.PollSites(
                poll_values, ctx.weights,
                ctx.protocol == RuntimeProtocol::kLocalThreshold
                    ? ctx.plan.domain_max
                    : std::vector<int64_t>{});
            poll_outstanding = false;
            RootMsg partial;
            partial.kind = RootMsg::Kind::kPollPartial;
            partial.shard = ctx.shard;
            partial.epoch = watermark;
            partial.partial_sum = poll.weighted_sum;
            partial.partial_min = poll.values.empty() ? 0 : poll.values[0];
            partial.partial_max = partial.partial_min;
            for (int64_t v : poll.values) {
              partial.partial_min = std::min(partial.partial_min, v);
              partial.partial_max = std::max(partial.partial_max, v);
            }
            partial.responses = poll.responses;
            partial.timeouts = poll.timeouts;
            if (!ctx.to_root->Push(std::move(partial))) {
              running = false;
            }
          }
          break;
        }
        case ActorMsgKind::kSiteDone: {
          // Per-site relay (not batched per shard): the root counts sites,
          // not shards, so its done-tracking survives a shard death and
          // respawn mid-drain.
          RootMsg done;
          done.kind = RootMsg::Kind::kSiteDone;
          done.shard = ctx.shard;
          done.entries.emplace_back(e.from, e.msg.value);
          if (!ctx.to_root->Push(std::move(done))) {
            running = false;
          }
          break;
        }
        default:
          exit_status = InternalError(
              std::string("unexpected ") +
              std::string(ActorMsgKindName(e.msg.kind)) +
              " in free-running mode");
          running = false;
          break;
      }
    }
  }

  ShardShutdownLeg(ctx.transport, ctx.layout, ctx.shard);
  RootMsg exit;
  exit.kind = RootMsg::Kind::kShardExit;
  exit.shard = ctx.shard;
  exit.alarms = alarms;
  exit.messages = counter;
  exit.reliability = channel.stats();
  exit.status = exit_status;
  ctx.to_root->Push(std::move(exit));
}

}  // namespace dcv
