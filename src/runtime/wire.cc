#include "runtime/wire.h"

#include <cstring>
#include <sstream>
#include <utility>

namespace dcv {
namespace {

// All integers travel little-endian regardless of host order, written and
// read a byte at a time (no aliasing, no alignment assumptions).

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

/// Length-prefixed UTF-8/opaque bytes (metric names).
void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Cursor over a received payload; all Get* fail softly by flagging
/// `ok = false` so the caller can return one error for any short body.
struct Cursor {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8() {
    if (pos + 1 > len) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > len) {
      ok = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos++]) << (8 * i);
    }
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  uint64_t U64() {
    if (pos + 8 > len) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos++]) << (8 * i);
    }
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!ok || pos + n > len) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

/// Reserves the 4-byte length prefix, returns its offset for patching.
size_t BeginFrame(std::string* out) {
  size_t at = out->size();
  PutU32(0, out);
  return at;
}

void EndFrame(size_t prefix_at, std::string* out) {
  uint32_t payload = static_cast<uint32_t>(out->size() - prefix_at - 4);
  for (int i = 0; i < 4; ++i) {
    (*out)[prefix_at + static_cast<size_t>(i)] =
        static_cast<char>((payload >> (8 * i)) & 0xff);
  }
}

}  // namespace

void AppendEnvelopeFrame(const Envelope& e, std::string* out, uint64_t seq) {
  size_t at = BeginFrame(out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(FrameType::kEnvelope), out);
  PutI32(e.from, out);
  PutI32(e.to, out);
  PutU8(static_cast<uint8_t>(e.msg.kind), out);
  PutU8(e.msg.flag ? 1 : 0, out);
  PutI64(e.msg.epoch, out);
  PutI64(e.msg.value, out);
  PutU64(seq, out);
  EndFrame(at, out);
}

void AppendEnvelopeBatchFrame(const Envelope* envs, size_t count,
                              std::string* out, uint64_t seq) {
  size_t at = BeginFrame(out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(FrameType::kEnvelopeBatch), out);
  PutU32(static_cast<uint32_t>(count), out);
  for (size_t i = 0; i < count; ++i) {
    PutI32(envs[i].from, out);
    PutI32(envs[i].to, out);
    PutU8(static_cast<uint8_t>(envs[i].msg.kind), out);
    PutU8(envs[i].msg.flag ? 1 : 0, out);
    PutI64(envs[i].msg.epoch, out);
    PutI64(envs[i].msg.value, out);
  }
  PutU64(seq, out);
  EndFrame(at, out);
}

void AppendHelloFrame(const HelloFrame& h, std::string* out) {
  size_t at = BeginFrame(out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(FrameType::kHello), out);
  PutU32(h.magic, out);
  PutI32(h.worker, out);
  PutI32(h.num_workers, out);
  PutI32(h.num_sites, out);
  PutU32(h.generation, out);
  PutU64(h.last_seq_received, out);
  PutI64(h.t1_us, out);
  EndFrame(at, out);
}

void AppendHelloAckFrame(const HelloAckFrame& a, std::string* out) {
  size_t at = BeginFrame(out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(FrameType::kHelloAck), out);
  PutU32(a.magic, out);
  PutU8(a.ok, out);
  PutU8(a.virtual_time, out);
  PutI32(a.num_sites, out);
  PutI32(a.num_workers, out);
  PutU32(a.generation, out);
  PutU64(a.last_seq_received, out);
  PutI64(a.t1_us, out);
  PutI64(a.t2_us, out);
  PutI64(a.t3_us, out);
  EndFrame(at, out);
}

void AppendLayoutFrame(const LayoutFrame& l, std::string* out) {
  size_t at = BeginFrame(out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(FrameType::kLayoutUpdate), out);
  PutU32(l.version, out);
  PutI32(l.num_sites, out);
  PutI32(l.num_shards, out);
  for (int32_t s : l.starts) {
    PutI32(s, out);
  }
  EndFrame(at, out);
}

void AppendLayoutAckFrame(const LayoutAckFrame& a, std::string* out) {
  size_t at = BeginFrame(out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(FrameType::kLayoutAck), out);
  PutU32(a.version, out);
  EndFrame(at, out);
}

Status AppendTelemetryFrame(const TelemetryFrame& t, std::string* out) {
  std::string frame;
  size_t at = BeginFrame(&frame);
  PutU8(kWireVersion, &frame);
  PutU8(static_cast<uint8_t>(FrameType::kTelemetry), &frame);
  PutI32(t.worker, &frame);
  PutU8(t.final_flush, &frame);
  PutI64(t.wall_time_us, &frame);
  PutI64(t.clock_offset_us, &frame);
  PutU32(static_cast<uint32_t>(t.metrics.counters.size()), &frame);
  for (const auto& [name, v] : t.metrics.counters) {
    PutStr(name, &frame);
    PutI64(v, &frame);
  }
  PutU32(static_cast<uint32_t>(t.metrics.gauges.size()), &frame);
  for (const auto& [name, v] : t.metrics.gauges) {
    PutStr(name, &frame);
    PutF64(v, &frame);
  }
  PutU32(static_cast<uint32_t>(t.metrics.histograms.size()), &frame);
  for (const auto& [name, h] : t.metrics.histograms) {
    if (h.counts.size() != h.bounds.size() + 1) {
      return InvalidArgumentError("telemetry histogram '" + name +
                                  "' has inconsistent bucket shape");
    }
    PutStr(name, &frame);
    PutU32(static_cast<uint32_t>(h.bounds.size()), &frame);
    for (double b : h.bounds) {
      PutF64(b, &frame);
    }
    for (int64_t c : h.counts) {
      PutI64(c, &frame);
    }
    PutI64(h.count, &frame);
    PutF64(h.sum, &frame);
    PutF64(h.min, &frame);
    PutF64(h.max, &frame);
  }
  PutU32(static_cast<uint32_t>(t.events.size()), &frame);
  for (const TelemetryTraceEvent& e : t.events) {
    PutU8(e.kind, &frame);
    PutI64(e.epoch, &frame);
    PutI32(e.site, &frame);
    PutI64(e.value, &frame);
    PutI64(e.duration_us, &frame);
    PutI64(e.ts_us, &frame);
  }
  EndFrame(at, &frame);
  if (frame.size() - 4 > kMaxTelemetryPayload) {
    return InvalidArgumentError(
        "telemetry frame payload " + std::to_string(frame.size() - 4) +
        " exceeds kMaxTelemetryPayload; trim the trace-event batch");
  }
  out->append(frame);
  return OkStatus();
}

Result<WireFrame> DecodeFramePayload(const uint8_t* data, size_t len) {
  Cursor c{data, len};
  uint8_t version = c.U8();
  uint8_t type = c.U8();
  if (!c.ok) {
    return InvalidArgumentError("frame payload shorter than its header");
  }
  if (version != kWireVersion) {
    return InvalidArgumentError("wire version mismatch: got " +
                                std::to_string(version) + ", want " +
                                std::to_string(kWireVersion));
  }
  WireFrame frame;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kEnvelope: {
      frame.type = FrameType::kEnvelope;
      frame.envelope.from = c.I32();
      frame.envelope.to = c.I32();
      uint8_t kind = c.U8();
      frame.envelope.msg.flag = c.U8() != 0;
      frame.envelope.msg.epoch = c.I64();
      frame.envelope.msg.value = c.I64();
      frame.seq = c.U64();
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed envelope frame body");
      }
      if (kind > static_cast<uint8_t>(ActorMsgKind::kThresholdUpdate)) {
        return InvalidArgumentError("invalid actor message kind " +
                                    std::to_string(kind));
      }
      frame.envelope.msg.kind = static_cast<ActorMsgKind>(kind);
      return frame;
    }
    case FrameType::kEnvelopeBatch: {
      frame.type = FrameType::kEnvelopeBatch;
      uint32_t count = c.U32();
      // Each envelope body is 26 bytes; validating the count against the
      // bytes actually present bounds the allocation before resize.
      if (!c.ok || count < 1 || count > kMaxBatchEnvelopes ||
          static_cast<size_t>(count) > (len - c.pos) / 26) {
        return InvalidArgumentError("malformed envelope batch header");
      }
      frame.batch.resize(count);
      for (Envelope& e : frame.batch) {
        e.from = c.I32();
        e.to = c.I32();
        uint8_t kind = c.U8();
        e.msg.flag = c.U8() != 0;
        e.msg.epoch = c.I64();
        e.msg.value = c.I64();
        if (c.ok &&
            kind > static_cast<uint8_t>(ActorMsgKind::kThresholdUpdate)) {
          return InvalidArgumentError("invalid actor message kind " +
                                      std::to_string(kind) +
                                      " in envelope batch");
        }
        e.msg.kind = static_cast<ActorMsgKind>(kind);
      }
      frame.seq = c.U64();
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed envelope batch body");
      }
      return frame;
    }
    case FrameType::kHello: {
      frame.type = FrameType::kHello;
      frame.hello.magic = c.U32();
      frame.hello.worker = c.I32();
      frame.hello.num_workers = c.I32();
      frame.hello.num_sites = c.I32();
      frame.hello.generation = c.U32();
      frame.hello.last_seq_received = c.U64();
      frame.hello.t1_us = c.I64();
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed hello frame body");
      }
      if (frame.hello.magic != kWireMagic) {
        return InvalidArgumentError("hello magic mismatch (not a dcv peer?)");
      }
      return frame;
    }
    case FrameType::kHelloAck: {
      frame.type = FrameType::kHelloAck;
      frame.hello_ack.magic = c.U32();
      frame.hello_ack.ok = c.U8();
      frame.hello_ack.virtual_time = c.U8();
      frame.hello_ack.num_sites = c.I32();
      frame.hello_ack.num_workers = c.I32();
      frame.hello_ack.generation = c.U32();
      frame.hello_ack.last_seq_received = c.U64();
      frame.hello_ack.t1_us = c.I64();
      frame.hello_ack.t2_us = c.I64();
      frame.hello_ack.t3_us = c.I64();
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed hello-ack frame body");
      }
      if (frame.hello_ack.magic != kWireMagic) {
        return InvalidArgumentError("hello-ack magic mismatch");
      }
      return frame;
    }
    case FrameType::kLayoutUpdate: {
      frame.type = FrameType::kLayoutUpdate;
      frame.layout.version = c.U32();
      frame.layout.num_sites = c.I32();
      frame.layout.num_shards = c.I32();
      if (!c.ok || frame.layout.num_shards < 1 ||
          frame.layout.num_shards > kMaxWireShards) {
        return InvalidArgumentError("malformed layout frame header");
      }
      frame.layout.starts.resize(
          static_cast<size_t>(frame.layout.num_shards) + 1);
      for (int32_t& s : frame.layout.starts) {
        s = c.I32();
      }
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed layout frame body");
      }
      // Boundaries must be a non-descending cover of [0, num_sites]:
      // installing anything else would break the worker's routing.
      if (frame.layout.starts.front() != 0 ||
          frame.layout.starts.back() != frame.layout.num_sites) {
        return InvalidArgumentError("layout frame boundaries do not cover "
                                    "[0, num_sites]");
      }
      for (size_t i = 1; i < frame.layout.starts.size(); ++i) {
        if (frame.layout.starts[i] < frame.layout.starts[i - 1]) {
          return InvalidArgumentError("layout frame boundaries descend");
        }
      }
      return frame;
    }
    case FrameType::kLayoutAck: {
      frame.type = FrameType::kLayoutAck;
      frame.layout_ack.version = c.U32();
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed layout-ack frame body");
      }
      return frame;
    }
    case FrameType::kTelemetry: {
      frame.type = FrameType::kTelemetry;
      TelemetryFrame& t = frame.telemetry;
      t.worker = c.I32();
      t.final_flush = c.U8();
      t.wall_time_us = c.I64();
      t.clock_offset_us = c.I64();
      // Every element count is validated against the bytes actually left in
      // the payload (8 = smallest possible element) so a corrupt count
      // can't force an unbounded allocation.
      auto plausible = [&](uint32_t n) {
        return c.ok && static_cast<size_t>(n) <= (len - c.pos) / 8;
      };
      uint32_t n_counters = c.U32();
      if (!plausible(n_counters)) {
        return InvalidArgumentError("malformed telemetry counter table");
      }
      for (uint32_t i = 0; i < n_counters && c.ok; ++i) {
        std::string name = c.Str();
        t.metrics.counters[std::move(name)] = c.I64();
      }
      uint32_t n_gauges = c.U32();
      if (!plausible(n_gauges)) {
        return InvalidArgumentError("malformed telemetry gauge table");
      }
      for (uint32_t i = 0; i < n_gauges && c.ok; ++i) {
        std::string name = c.Str();
        t.metrics.gauges[std::move(name)] = c.F64();
      }
      uint32_t n_histograms = c.U32();
      if (!plausible(n_histograms)) {
        return InvalidArgumentError("malformed telemetry histogram table");
      }
      for (uint32_t i = 0; i < n_histograms && c.ok; ++i) {
        std::string name = c.Str();
        obs::HistogramSnapshot h;
        uint32_t n_bounds = c.U32();
        if (!plausible(n_bounds)) {
          return InvalidArgumentError("malformed telemetry histogram bounds");
        }
        h.bounds.resize(n_bounds);
        for (double& b : h.bounds) {
          b = c.F64();
        }
        h.counts.resize(static_cast<size_t>(n_bounds) + 1);
        for (int64_t& cnt : h.counts) {
          cnt = c.I64();
        }
        h.count = c.I64();
        h.sum = c.F64();
        h.min = c.F64();
        h.max = c.F64();
        t.metrics.histograms[std::move(name)] = std::move(h);
      }
      uint32_t n_events = c.U32();
      if (!plausible(n_events)) {
        return InvalidArgumentError("malformed telemetry event batch");
      }
      t.events.resize(n_events);
      for (TelemetryTraceEvent& e : t.events) {
        e.kind = c.U8();
        e.epoch = c.I64();
        e.site = c.I32();
        e.value = c.I64();
        e.duration_us = c.I64();
        e.ts_us = c.I64();
        if (c.ok && e.kind > static_cast<uint8_t>(
                                 obs::TraceEventKind::kLastKind)) {
          return InvalidArgumentError("invalid telemetry trace-event kind " +
                                      std::to_string(e.kind));
        }
      }
      if (!c.ok || c.pos != len) {
        return InvalidArgumentError("malformed telemetry frame body");
      }
      return frame;
    }
  }
  return InvalidArgumentError("unknown frame type " + std::to_string(type));
}

void FrameReader::Append(const uint8_t* data, size_t n) {
  buffer_.append(reinterpret_cast<const char*>(data), n);
}

Result<bool> FrameReader::Next(WireFrame* out) {
  if (buffer_.size() - pos_ < 4) {
    return false;
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(buffer_.data()) + pos_;
  uint32_t payload = 0;
  for (int i = 0; i < 4; ++i) {
    payload |= static_cast<uint32_t>(base[i]) << (8 * i);
  }
  if (payload > kMaxTelemetryPayload) {
    // No frame type is ever this big: fail fast on the length alone, no
    // need to wait for more bytes of a corrupt stream.
    return InvalidArgumentError("oversized frame payload (" +
                                std::to_string(payload) +
                                " bytes): corrupt stream");
  }
  if (payload > kMaxFramePayload) {
    // Only telemetry and envelope-batch frames may exceed the data-frame
    // cap; peek the type byte (offset 5: length(4) + version(1)) before
    // trusting the length, each against its own cap.
    if (buffer_.size() - pos_ < 6) {
      return false;  // Need the version+type bytes to judge the length.
    }
    const bool telemetry = base[5] == static_cast<uint8_t>(FrameType::kTelemetry);
    const bool batch =
        base[5] == static_cast<uint8_t>(FrameType::kEnvelopeBatch);
    if (!(telemetry || (batch && payload <= kMaxBatchPayload))) {
      return InvalidArgumentError("oversized frame payload (" +
                                  std::to_string(payload) +
                                  " bytes): corrupt stream");
    }
  }
  if (buffer_.size() - pos_ < 4 + static_cast<size_t>(payload)) {
    return false;
  }
  DCV_ASSIGN_OR_RETURN(WireFrame frame, DecodeFramePayload(base + 4, payload));
  *out = frame;
  pos_ += 4 + static_cast<size_t>(payload);
  // Compact once the consumed prefix dominates, keeping amortized O(1).
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

Status FrameReader::Finish() const {
  size_t tail = buffered();
  if (tail == 0) {
    return OkStatus();
  }
  return InternalError("truncated frame: stream ended with " +
                       std::to_string(tail) +
                       " byte(s) of an incomplete frame");
}

std::string FrameReader::TakeBuffered() {
  std::string rest = buffer_.substr(pos_);
  buffer_.clear();
  pos_ = 0;
  return rest;
}

std::string SocketStats::ToString() const {
  std::ostringstream os;
  os << "frames_tx=" << frames_sent << " frames_rx=" << frames_received
     << " bytes_tx=" << bytes_sent << " bytes_rx=" << bytes_received
     << " connect_attempts=" << connect_attempts
     << " connect_retries=" << connect_retries
     << " accept_timeouts=" << accept_timeouts
     << " decode_errors=" << decode_errors << " disconnects=" << disconnects
     << " truncated_frames=" << truncated_frames
     << " reconnects=" << reconnects
     << " replayed_frames=" << replayed_frames
     << " duplicate_frames=" << duplicate_frames;
  return os.str();
}

}  // namespace dcv
