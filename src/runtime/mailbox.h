#ifndef DCV_RUNTIME_MAILBOX_H_
#define DCV_RUNTIME_MAILBOX_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dcv {

/// Outcome of a non-blocking push attempt.
enum class MailboxPush {
  kOk,      ///< Enqueued.
  kFull,    ///< At capacity; try again or fall back to blocking Push.
  kClosed,  ///< Mailbox closed; the message will never be accepted.
};

/// Bounded multi-producer queue — the runtime's only cross-thread channel.
/// Producers block in Push when the box is full (backpressure: a slow
/// consumer throttles its senders instead of growing an unbounded queue).
/// Close() wakes every blocked producer and consumer; after it, pushes are
/// rejected but Pop keeps draining whatever was already enqueued, so a
/// graceful shutdown never loses accepted messages.
///
/// Ordering guarantee: messages from one producer are delivered in that
/// producer's push order (single lock, single FIFO). Messages from
/// different producers interleave arbitrarily.
///
/// The intended topology is MPSC — many actors feeding one owner's inbox —
/// but nothing breaks with several consumers (each message is delivered
/// exactly once).
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Blocks while full; returns false iff the mailbox was closed before the
  /// message could be enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    queue_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocking batched push — the send-side mirror of PopAll. Enqueues the
  /// whole vector, paying one mutex round trip per burst of free capacity
  /// instead of one per message: each wakeup moves as many items as fit,
  /// then waits for the consumer to make room. Per-producer FIFO order is
  /// preserved (items land front-to-back). Returns false iff the mailbox
  /// was closed before every item was enqueued; a prefix may already have
  /// been accepted and stays poppable (drain-on-shutdown), same as a
  /// sequence of single Pushes interrupted by Close.
  bool PushAll(std::vector<T>&& items) {
    size_t next = 0;
    while (next < items.size()) {
      size_t moved = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(
            lock, [this] { return closed_ || queue_.size() < capacity_; });
        if (closed_) {
          return false;
        }
        while (next < items.size() && queue_.size() < capacity_) {
          queue_.push_back(std::move(items[next]));
          ++next;
          ++moved;
        }
      }
      if (moved == 1) {
        not_empty_.notify_one();
      } else {
        not_empty_.notify_all();
      }
    }
    return true;
  }

  /// Non-blocking batched push: enqueues the longest prefix of
  /// items[begin..] that fits right now and returns its length (0 when the
  /// box is full or closed; `*closed` distinguishes the two so callers can
  /// stop retrying a dead box). Moved-from slots are left behind in
  /// `items`; the caller advances its own cursor by the return value.
  size_t TryPushAll(std::vector<T>* items, size_t begin, bool* closed) {
    size_t moved = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed != nullptr) {
        *closed = closed_;
      }
      if (closed_) {
        return 0;
      }
      while (begin + moved < items->size() && queue_.size() < capacity_) {
        queue_.push_back(std::move((*items)[begin + moved]));
        ++moved;
      }
    }
    if (moved == 1) {
      not_empty_.notify_one();
    } else if (moved > 1) {
      not_empty_.notify_all();
    }
    return moved;
  }

  MailboxPush TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return MailboxPush::kClosed;
      }
      if (queue_.size() >= capacity_) {
        return MailboxPush::kFull;
      }
      queue_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return MailboxPush::kOk;
  }

  /// Blocks while empty; returns false iff the mailbox is closed and fully
  /// drained (the consumer's signal to exit its loop).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return false;  // Closed and drained.
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Blocking batch drain: waits until at least one message is available
  /// (or the box is closed and drained), then moves the *entire* queue into
  /// `out` under one lock acquisition — the shard/root hot paths pay one
  /// mutex round trip and one producer wake-up per burst instead of one per
  /// message. Appends to `out`; returns the number of messages moved (0 =
  /// closed and drained, the consumer's exit signal). FIFO order and the
  /// per-producer ordering guarantee are preserved: the batch is exactly
  /// the queue's front-to-back contents.
  size_t PopAll(std::vector<T>* out) {
    size_t moved = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      moved = DrainLocked(out);
    }
    if (moved > 0) {
      // Every producer blocked on capacity can now make progress.
      not_full_.notify_all();
    }
    return moved;
  }

  /// PopAll with a deadline: waits at most `timeout_ms` for the first
  /// message. Returns the number of messages moved; 0 with `*timed_out =
  /// true` means the deadline expired with the box still open and empty —
  /// the caller's cue to probe for a dead producer (crash detection) —
  /// while 0 with `*timed_out = false` means closed and drained, the usual
  /// end-of-stream signal.
  size_t PopAllFor(std::vector<T>* out, int64_t timeout_ms, bool* timed_out) {
    size_t moved = 0;
    bool expired = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      expired = !not_empty_.wait_for(
          lock, std::chrono::milliseconds(timeout_ms),
          [this] { return closed_ || !queue_.empty(); });
      moved = DrainLocked(out);
    }
    if (timed_out != nullptr) {
      *timed_out = expired && moved == 0;
    }
    if (moved > 0) {
      not_full_.notify_all();
    }
    return moved;
  }

  /// Non-blocking batch drain; 0 when nothing is immediately available
  /// (which, unlike PopAll, says nothing about the box being closed).
  size_t TryPopAll(std::vector<T>* out) {
    size_t moved = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      moved = DrainLocked(out);
    }
    if (moved > 0) {
      not_full_.notify_all();
    }
    return moved;
  }

  /// Non-blocking Pop; false when nothing is immediately available.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        return false;
      }
      *out = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Rejects future pushes and wakes every blocked thread. Idempotent.
  /// Already-enqueued messages stay poppable (drain-on-shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Moves the whole queue into `out`; caller holds mu_.
  size_t DrainLocked(std::vector<T>* out) {
    const size_t moved = queue_.size();
    while (!queue_.empty()) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return moved;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_MAILBOX_H_
