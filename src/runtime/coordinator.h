#ifndef DCV_RUNTIME_COORDINATOR_H_
#define DCV_RUNTIME_COORDINATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/chaos.h"
#include "runtime/runtime_result.h"
#include "runtime/transport.h"
#include "sim/channel.h"

namespace dcv {

/// Which coordinator state machine to run.
enum class RuntimeProtocol {
  /// The paper's scheme: static local thresholds; any delivered (or
  /// delayed-then-arrived) alarm triggers a full poll round; recovered
  /// sites get their thresholds re-pushed.
  kLocalThreshold,
  /// Brute-force baseline: poll every `poll_period` epochs.
  kPolling,
};

/// The coordinator actor. Runs on its own thread (the caller's); sites talk
/// to it only through the Transport.
///
/// Concurrency contract that makes virtual-time runs bit-identical to the
/// lockstep simulator: the fault-injecting `Channel` — the single source of
/// message fates, RNG draws, and MessageCounter charges — is owned by the
/// coordinator and touched by no other thread. The transport delivers
/// ground truth (sites' observed values); the coordinator then replays the
/// protocol's sends through the Channel in ascending site order, which is
/// exactly the order the single-threaded schemes use. Thread interleaving
/// can reorder transport deliveries, but never the Channel's RNG stream.
class CoordinatorActor {
 public:
  struct Config {
    int num_sites = 0;
    std::vector<int64_t> weights;  ///< Size num_sites.
    int64_t global_threshold = 0;
    /// Two-level coordinator tree: partition the sites across this many
    /// shard coordinator threads feeding a root aggregator. 1 (the
    /// default) keeps the flat single-thread coordinator. Must satisfy
    /// 1 <= num_shards <= num_sites, and the transport must be built with
    /// the same shard count.
    int num_shards = 1;
    RuntimeProtocol protocol = RuntimeProtocol::kLocalThreshold;
    int64_t poll_period = 5;  ///< kPolling only.

    /// kLocalThreshold: the coordinator's threshold table (pushed to
    /// recovered sites) and the per-site pessimistic poll fallbacks.
    std::vector<int64_t> thresholds;
    std::vector<int64_t> domain_max;

    FaultSpec faults;

    /// Chaos injection (chaos.h): kill a shard / sever a worker link /
    /// push a reshard at a seed-resolved point. kNone = healthy run.
    ChaosSpec chaos;
    /// Sharded runs: how long the root waits for shard traffic before it
    /// suspects a dead shard coordinator and starts recovery (virtual
    /// mode: re-execute the pending command itself; free mode: kPing probe
    /// and respawn the silent shards). 0 = detection off — the root waits
    /// forever, the pre-recovery behavior.
    int heartbeat_timeout_ms = 0;

    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceRecorder* recorder = nullptr;
  };

  explicit CoordinatorActor(Config config);

  /// Validates the config and initializes the channel. Call before Run*.
  Status Init();

  /// Virtual-time mode: drives `num_epochs` epochs in lockstep with the
  /// site actors (epoch barrier via kEpochStart / kEpochReport), then shuts
  /// the sites down. Fills `out`'s detections, messages, and reliability.
  Status RunVirtual(Transport* transport, int64_t num_epochs,
                    RuntimeResult* out);

  /// Free-running mode: serves alarms and poll rounds in arrival order
  /// until every site reports kSiteDone, then shuts the sites down. Epoch
  /// semantics degrade to a watermark (the highest site-local update index
  /// seen), so fault windows still engage, but no per-epoch determinism is
  /// claimed.
  Status RunFree(Transport* transport, RuntimeResult* out);

  const MessageCounter& messages() const { return counter_; }
  const Channel& channel() const { return channel_; }

 private:
  /// One epoch-batched poll round over the transport: all kPollRequests go
  /// out, then all kPollResponses are collected (sites respond with ground
  /// truth; Channel::PollSites afterwards decides what actually got
  /// through and charges the wire).
  Status PollRound(Transport* transport, int64_t epoch,
                   std::vector<int64_t>* values);

  /// Two-level paths (num_shards >= 2): the root thread drives k shard
  /// coordinator threads (shard.h) and aggregates their partials. In
  /// virtual mode the root still owns the only Channel and issues every
  /// channel call in flat-coordinator order, so results stay bit-identical
  /// to the lockstep simulator; in free-running mode each shard owns a
  /// channel over its slice and the root merges stats at shutdown.
  Status RunVirtualSharded(Transport* transport, int64_t num_epochs,
                           RuntimeResult* out);
  Status RunFreeSharded(Transport* transport, RuntimeResult* out);

  Config config_;
  MessageCounter counter_;
  Channel channel_;
  obs::Counter* alarms_rx_ = nullptr;  ///< "runtime/coordinator/alarms".
  obs::Counter* polls_ = nullptr;      ///< "runtime/coordinator/polls".
  /// Per-epoch (virtual) / per-poll-round (free) root latency, recorded
  /// for every shard count so bench_runtime can compare 1 vs k.
  obs::Histogram* epoch_us_ = nullptr;       ///< "runtime/coordinator/epoch_us".
  obs::Histogram* poll_round_us_ = nullptr;  ///< ".../poll_round_us".
  /// Free-running detection lag: epochs (watermark units) between the
  /// alarm that triggered a poll round and the round resolving. The
  /// lockstep ground truth detects in the trigger epoch itself, so this is
  /// the runtime's detection latency relative to the simulator.
  obs::Histogram* detection_lag_ = nullptr;  ///< "runtime/detection_lag_epochs".
};

}  // namespace dcv

#endif  // DCV_RUNTIME_COORDINATOR_H_
