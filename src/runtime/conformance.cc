#include "runtime/conformance.h"

#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "runtime/site_worker.h"
#include "sim/local_scheme.h"
#include "sim/polling_scheme.h"

namespace dcv {
namespace {

std::string DescribeEpochDiff(const EpochDetection& sim,
                              const EpochDetection& rt,
                              const std::string& label) {
  std::ostringstream os;
  os << "epoch " << sim.epoch << ": lockstep{alarms=" << sim.num_alarms
     << " polled=" << sim.polled << " violation=" << sim.violation_reported
     << "} " << label << "{alarms=" << rt.num_alarms << " polled=" << rt.polled
     << " violation=" << rt.violation_reported << "}";
  return os.str();
}

/// Diffs one runtime run against the lockstep reference: per-epoch
/// detections, per-type wire counts, reliability accounting; first
/// divergence wins. Empty string = identical.
std::string DiffAgainstLockstep(const SimResult& lockstep,
                                const std::vector<EpochDetection>& epochs,
                                const RuntimeResult& rt,
                                const std::string& label) {
  if (epochs.size() != rt.detections.size()) {
    return label + " epoch count mismatch";
  }
  for (size_t t = 0; t < epochs.size(); ++t) {
    if (!(epochs[t] == rt.detections[t])) {
      return DescribeEpochDiff(epochs[t], rt.detections[t], label);
    }
  }
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    if (lockstep.messages.of(type) != rt.messages.of(type)) {
      std::ostringstream os;
      os << "message count mismatch for " << MessageTypeName(type)
         << ": lockstep=" << lockstep.messages.of(type) << " " << label << "="
         << rt.messages.of(type);
      return os.str();
    }
  }
  if (lockstep.reliability.ToJson() != rt.reliability.ToJson()) {
    return "reliability stats mismatch: lockstep=" +
           lockstep.reliability.ToJson() + " " + label + "=" +
           rt.reliability.ToJson();
  }
  return "";
}

}  // namespace

Result<ConformanceReport> RunConformance(const Trace& training,
                                         const Trace& eval,
                                         const ConformanceSpec& spec) {
  ConformanceReport report;

  // Lockstep reference run, with the per-epoch detection trail captured.
  SimOptions sim_options;
  sim_options.weights = spec.weights;
  sim_options.global_threshold = spec.global_threshold;
  sim_options.faults = spec.faults;
  sim_options.on_epoch = [&report](int64_t t, const EpochResult& r) {
    EpochDetection det;
    det.epoch = t;
    det.num_alarms = r.num_alarms;
    det.polled = r.polled;
    det.violation_reported = r.violation_reported;
    report.lockstep_epochs.push_back(det);
  };

  std::unique_ptr<DetectionScheme> scheme;
  if (spec.protocol == RuntimeProtocol::kLocalThreshold) {
    if (spec.solver == nullptr) {
      return InvalidArgumentError("local-threshold conformance needs a solver");
    }
    LocalThresholdScheme::Options o;
    o.solver = spec.solver;
    scheme = std::make_unique<LocalThresholdScheme>(o);
  } else {
    scheme = std::make_unique<PollingScheme>(spec.poll_period);
  }
  DCV_ASSIGN_OR_RETURN(
      report.lockstep,
      RunSimulation(scheme.get(), sim_options, training, eval));

  // Threaded run of the same scenario, virtual-time mode.
  RuntimeOptions rt_options;
  rt_options.protocol = spec.protocol;
  rt_options.weights = spec.weights;
  rt_options.global_threshold = spec.global_threshold;
  rt_options.poll_period = spec.poll_period;
  rt_options.num_workers = spec.num_workers;
  rt_options.engine = spec.engine;
  rt_options.num_shards = spec.num_shards;
  rt_options.virtual_time = true;
  rt_options.solver = spec.solver;
  rt_options.faults = spec.faults;
  rt_options.heartbeat_timeout_ms = spec.heartbeat_timeout_ms;
  // kill-worker severs a TCP link, which only exists in the socket run;
  // the in-process run stays healthy for that chaos kind.
  if (spec.chaos.kind != ChaosKind::kKillWorker) {
    rt_options.chaos = spec.chaos;
  }
  DCV_ASSIGN_OR_RETURN(report.runtime,
                       RunMonitorRuntime(training, eval, rt_options));
  report.mismatch = DiffAgainstLockstep(report.lockstep, report.lockstep_epochs,
                                        report.runtime, "runtime");
  if (!report.mismatch.empty()) {
    return report;
  }

  if (spec.transport == TransportKind::kSocket) {
    // Third run: the same scenario over loopback TCP, with one in-process
    // site-worker driver per worker connecting to an ephemeral port.
    const int n = eval.num_sites();
    const int workers = spec.num_workers == 0 ? n : spec.num_workers;
    std::vector<std::thread> worker_threads;
    std::vector<Status> worker_status(static_cast<size_t>(workers),
                                      OkStatus());
    RuntimeOptions socket_options = rt_options;
    socket_options.transport = TransportKind::kSocket;
    socket_options.listen_port = 0;
    socket_options.chaos = spec.chaos;  // All kinds apply to the socket run.
    const bool reconnect = spec.chaos.kind == ChaosKind::kKillWorker;
    socket_options.on_listening = [&](int port) {
      for (int w = 0; w < workers; ++w) {
        worker_threads.emplace_back([&, w, port] {
          SiteWorkerOptions wo;
          wo.port = port;
          wo.worker = w;
          wo.num_workers = workers;
          wo.num_sites = n;
          wo.engine = spec.engine;
          wo.socket.allow_reconnect = reconnect;
          auto r = RunSiteWorker(&eval, wo);
          if (!r.ok()) {
            worker_status[static_cast<size_t>(w)] = r.status();
          }
        });
      }
    };
    Result<RuntimeResult> socket_run =
        RunMonitorRuntime(training, eval, socket_options);
    for (std::thread& th : worker_threads) {
      th.join();
    }
    if (!socket_run.ok()) {
      return socket_run.status();
    }
    for (const Status& s : worker_status) {
      DCV_RETURN_IF_ERROR(s);
    }
    report.socket_runtime = std::move(*socket_run);
    report.ran_socket = true;
    report.mismatch =
        DiffAgainstLockstep(report.lockstep, report.lockstep_epochs,
                            report.socket_runtime, "socket-runtime");
    if (!report.mismatch.empty()) {
      return report;
    }
  }

  report.identical = true;
  return report;
}

}  // namespace dcv
