#include "runtime/conformance.h"

#include <memory>
#include <sstream>
#include <utility>

#include "sim/local_scheme.h"
#include "sim/polling_scheme.h"

namespace dcv {
namespace {

std::string DescribeEpochDiff(const EpochDetection& sim,
                              const EpochDetection& rt) {
  std::ostringstream os;
  os << "epoch " << sim.epoch << ": lockstep{alarms=" << sim.num_alarms
     << " polled=" << sim.polled << " violation=" << sim.violation_reported
     << "} runtime{alarms=" << rt.num_alarms << " polled=" << rt.polled
     << " violation=" << rt.violation_reported << "}";
  return os.str();
}

}  // namespace

Result<ConformanceReport> RunConformance(const Trace& training,
                                         const Trace& eval,
                                         const ConformanceSpec& spec) {
  ConformanceReport report;

  // Lockstep reference run, with the per-epoch detection trail captured.
  SimOptions sim_options;
  sim_options.weights = spec.weights;
  sim_options.global_threshold = spec.global_threshold;
  sim_options.faults = spec.faults;
  sim_options.on_epoch = [&report](int64_t t, const EpochResult& r) {
    EpochDetection det;
    det.epoch = t;
    det.num_alarms = r.num_alarms;
    det.polled = r.polled;
    det.violation_reported = r.violation_reported;
    report.lockstep_epochs.push_back(det);
  };

  std::unique_ptr<DetectionScheme> scheme;
  if (spec.protocol == RuntimeProtocol::kLocalThreshold) {
    if (spec.solver == nullptr) {
      return InvalidArgumentError("local-threshold conformance needs a solver");
    }
    LocalThresholdScheme::Options o;
    o.solver = spec.solver;
    scheme = std::make_unique<LocalThresholdScheme>(o);
  } else {
    scheme = std::make_unique<PollingScheme>(spec.poll_period);
  }
  DCV_ASSIGN_OR_RETURN(
      report.lockstep,
      RunSimulation(scheme.get(), sim_options, training, eval));

  // Threaded run of the same scenario, virtual-time mode.
  RuntimeOptions rt_options;
  rt_options.protocol = spec.protocol;
  rt_options.weights = spec.weights;
  rt_options.global_threshold = spec.global_threshold;
  rt_options.poll_period = spec.poll_period;
  rt_options.num_workers = spec.num_workers;
  rt_options.virtual_time = true;
  rt_options.solver = spec.solver;
  rt_options.faults = spec.faults;
  DCV_ASSIGN_OR_RETURN(report.runtime,
                       RunMonitorRuntime(training, eval, rt_options));

  // Diff: per-epoch detections, then per-type wire counts, then the
  // channel's reliability accounting. First divergence wins.
  if (report.lockstep_epochs.size() != report.runtime.detections.size()) {
    report.mismatch = "epoch count mismatch";
    return report;
  }
  for (size_t t = 0; t < report.lockstep_epochs.size(); ++t) {
    if (!(report.lockstep_epochs[t] == report.runtime.detections[t])) {
      report.mismatch =
          DescribeEpochDiff(report.lockstep_epochs[t],
                            report.runtime.detections[t]);
      return report;
    }
  }
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    if (report.lockstep.messages.of(type) != report.runtime.messages.of(type)) {
      std::ostringstream os;
      os << "message count mismatch for " << MessageTypeName(type)
         << ": lockstep=" << report.lockstep.messages.of(type)
         << " runtime=" << report.runtime.messages.of(type);
      report.mismatch = os.str();
      return report;
    }
  }
  if (report.lockstep.reliability.ToJson() !=
      report.runtime.reliability.ToJson()) {
    report.mismatch = "reliability stats mismatch: lockstep=" +
                      report.lockstep.reliability.ToJson() +
                      " runtime=" + report.runtime.reliability.ToJson();
    return report;
  }
  report.identical = true;
  return report;
}

}  // namespace dcv
