#ifndef DCV_RUNTIME_SITE_ACTOR_H_
#define DCV_RUNTIME_SITE_ACTOR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "obs/obs.h"
#include "runtime/actor_message.h"
#include "runtime/transport.h"

namespace dcv {

/// Per-site RNG stream derived from (seed, site): the same seed always
/// yields the same per-site update sequence, independent of how site
/// workers interleave on threads. Derivation mixes the site id into the
/// seed with a SplitMix64-style odd multiplier before Rng's own SplitMix
/// expansion, so streams of neighboring sites are unrelated.
Rng MakeSiteRng(uint64_t seed, int site);

/// One monitored site: consumes its update stream (a trace column or a
/// synthetic per-site RNG stream), checks the local constraint
/// L_i : X_i <= T_i, and produces protocol messages. SiteActor is a passive
/// state machine; a worker thread owns it and drives it from transport
/// messages (virtual-time mode) or as fast as the hardware allows
/// (free-running mode). No SiteActor state is ever touched by two threads.
class SiteActor {
 public:
  struct Config {
    int site = 0;

    /// Local threshold T_i; max() = no local constraint (never alarms),
    /// which is what the polling protocol and pure-throughput runs use.
    int64_t threshold = std::numeric_limits<int64_t>::max();

    /// Trace-driven workload: this site's column of the eval trace. When
    /// empty, the site generates `synthetic_updates` values from its
    /// (seed, site)-derived RNG instead.
    std::vector<int64_t> series;
    int64_t synthetic_updates = 0;
    uint64_t seed = 42;
    int64_t synthetic_max = 1000000;  ///< Synthetic values ~ U[0, max].

    /// Record every consumed update (the seed-determinism regression test
    /// compares these across runs).
    bool capture_updates = false;

    /// Optional observability; the recorder is thread-safe, so site threads
    /// record their own local-alarm events (per-actor tracks).
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceRecorder* recorder = nullptr;
  };

  explicit SiteActor(Config config);

  int site() const { return config_.site; }
  int64_t threshold() const { return config_.threshold; }
  int64_t updates_processed() const { return updates_processed_; }
  int64_t current_value() const { return current_value_; }
  const std::vector<int64_t>& captured_updates() const { return captured_; }

  /// Total updates this site will consume (series length or synthetic
  /// count).
  int64_t workload_size() const;

  // --- Virtual-time mode -------------------------------------------------
  /// Observes epoch `epoch`'s value and returns the kEpochReport control
  /// message. A down site (up == false) observes the value (it exists in
  /// the world regardless) but evaluates nothing and never alarms — the
  /// lockstep simulator's crash semantics.
  ActorMessage OnEpochStart(int64_t epoch, bool up);

  // --- Free-running mode -------------------------------------------------
  /// Consumes the next update; false when the workload is exhausted.
  /// `*alarmed` says whether the local constraint fired.
  bool NextUpdate(int64_t* value, bool* alarmed);

  // --- Both modes --------------------------------------------------------
  /// kPollResponse carrying the most recently observed value.
  ActorMessage OnPollRequest(int64_t epoch);
  void OnThresholdUpdate(int64_t threshold) { config_.threshold = threshold; }

 private:
  int64_t ValueAt(int64_t index);

  Config config_;
  Rng rng_;
  int64_t cursor_ = 0;  ///< Free-running position in the update stream.
  int64_t current_value_ = 0;
  int64_t updates_processed_ = 0;
  std::vector<int64_t> captured_;
  obs::Counter* updates_counter_ = nullptr;  ///< "runtime/site/updates".
  obs::Counter* alarms_counter_ = nullptr;   ///< "runtime/site/alarms".
};

/// Worker loop, virtual-time mode: blockingly serves transport messages for
/// the owned sites until each has received kShutdown. `sites` are borrowed.
void RunSiteWorkerVirtual(Transport* transport, int worker,
                          const std::vector<SiteActor*>& sites);

/// Worker loop, free-running mode: rotates through the owned sites pushing
/// updates (alarms go out through the transport, blocking on coordinator
/// backpressure), interleaved with non-blocking service of poll requests
/// and threshold updates; once every owned workload is exhausted it keeps
/// serving polls until each site has received kShutdown.
void RunSiteWorkerFree(Transport* transport, int worker,
                       const std::vector<SiteActor*>& sites);

}  // namespace dcv

#endif  // DCV_RUNTIME_SITE_ACTOR_H_
