#ifndef DCV_RUNTIME_TRANSPORT_H_
#define DCV_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "runtime/actor_message.h"
#include "runtime/mailbox.h"
#include "runtime/shard_layout.h"

namespace dcv {

/// Message fabric between the coordinator tree and the site workers. The
/// interface is deliberately socket-shaped — opaque routed envelopes, a
/// blocking receive per endpoint, an explicit shutdown — so a future
/// `SocketTransport` (TCP, one connection per worker) can slot in without
/// touching the actors. The first implementation is in-process
/// (`ThreadTransport` below): one bounded Mailbox per worker thread plus
/// one per shard coordinator.
///
/// Sites are multiplexed onto workers: `WorkerOf(site)` names the worker
/// inbox a site-addressed envelope lands in. With num_workers == num_sites
/// every site has its own thread; with fewer, workers round-robin their
/// sites (how `dcvtool run --threads` maps N sites onto K threads).
///
/// Coordinator-bound traffic is fanned across `num_shards` shard inboxes:
/// a site-to-coordinator envelope lands in shard `ShardOf(e.from)`'s inbox
/// (contiguous balanced ranges; see shard_layout.h). With num_shards == 1
/// — the default — there is a single coordinator inbox and
/// RecvCoordinator behaves exactly as before the coordinator tree existed.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_sites() const = 0;
  virtual int num_workers() const = 0;
  virtual int WorkerOf(int site) const = 0;

  virtual int num_shards() const = 0;
  virtual int ShardOf(int site) const = 0;

  /// Routes by e.to; blocks when the destination inbox is full
  /// (backpressure). Returns false iff the destination is closed.
  /// Coordinator-bound envelopes (e.to == kCoordinatorId) land in shard
  /// ShardOf(e.from)'s inbox.
  virtual bool Send(const Envelope& e) = 0;

  /// Batched Send: routes every envelope exactly as Send would (per-
  /// destination FIFO order preserved — envelopes to the same inbox land in
  /// batch order), but implementations amortize locking/framing across the
  /// batch: the thread transport groups by destination mailbox and pays one
  /// mutex round trip per box per burst (Mailbox::PushAll), the socket
  /// transport coalesces each burst into one kEnvelopeBatch wire frame.
  /// Blocks on full inboxes like Send; returns false iff a destination was
  /// closed or an envelope was unroutable (a prefix may have been
  /// delivered, exactly as a loop of Sends interrupted mid-way).
  virtual bool SendBatch(const std::vector<Envelope>& batch) {
    for (const Envelope& e : batch) {
      if (!Send(e)) {
        return false;
      }
    }
    return true;
  }

  /// Non-blocking SendBatch: consumes the longest routable prefix of
  /// batch[begin..] that fits right now and returns its length. The
  /// multiplexed site engine uses this for data-plane pushes so a worker
  /// never blocks on a full coordinator inbox while the coordinator blocks
  /// fanning out to that worker — the classic A/B full-mailbox deadlock;
  /// the engine keeps the unsent suffix and retries after draining its own
  /// inbox. When the stop reason is permanent — destination closed or
  /// envelope unroutable — `*closed` (if non-null) is set so the caller
  /// stops retrying a dead fabric; a plain full inbox leaves it false.
  /// Base transports without a non-blocking path may block (they fall back
  /// to Send); the thread and socket transports override this.
  virtual size_t TrySendBatch(const std::vector<Envelope>& batch, size_t begin,
                              bool* closed = nullptr) {
    size_t sent = 0;
    while (begin + sent < batch.size()) {
      if (!Send(batch[begin + sent])) {
        if (closed != nullptr) {
          *closed = true;
        }
        break;
      }
      ++sent;
    }
    return sent;
  }

  /// Injects a root-aggregator command (poll kick, shutdown) directly into
  /// a shard coordinator's inbox, bypassing site routing. Local to the
  /// coordinator process — never crosses the wire, so the socket transport
  /// needs no new frame types for it. Returns false iff the inbox is
  /// closed.
  virtual bool SendToShard(int shard, const Envelope& e) = 0;

  /// Non-blocking SendToShard: queues the command iff the inbox has room
  /// right now; false = full or closed, nothing was queued. The root's
  /// failure-detection path uses this with its own retry backlog — a dead
  /// shard's inbox stays full of blocked site updates, and a blocking
  /// push into it would wedge the root (and with it the whole recovery
  /// machinery) forever.
  virtual bool TrySendToShard(int shard, const Envelope& e) = 0;

  /// Blocking receive on one shard coordinator inbox; false = closed and
  /// drained.
  virtual bool RecvShard(int shard, Envelope* out) = 0;
  virtual bool TryRecvShard(int shard, Envelope* out) = 0;

  /// Batch drain of one shard inbox (Mailbox::PopAll): blocks for the
  /// first message, then moves every queued message under one lock.
  /// Appends to `out`; 0 = closed and drained.
  virtual size_t RecvShardAll(int shard, std::vector<Envelope>* out) = 0;

  /// RecvShardAll with a deadline: waits at most `timeout_ms` for the first
  /// message. 0 with `*timed_out = true` means the deadline expired (the
  /// root's cue to probe for dead shard coordinators); 0 with `*timed_out =
  /// false` means closed and drained.
  virtual size_t RecvShardAllFor(int shard, std::vector<Envelope>* out,
                                 int64_t timeout_ms, bool* timed_out) = 0;

  /// Blocking receive on a worker inbox; false = closed and drained.
  virtual bool RecvWorker(int worker, Envelope* out) = 0;
  virtual bool TryRecvWorker(int worker, Envelope* out) = 0;

  /// Batch drain of a worker inbox — the worker-side mirror of
  /// RecvShardAll: blocks for the first message, then moves every queued
  /// message. Appends to `out`; 0 = closed and drained. The default
  /// composes RecvWorker + TryRecvWorker; mailbox-backed transports
  /// override with Mailbox::PopAll (one lock per burst).
  virtual size_t RecvWorkerAll(int worker, std::vector<Envelope>* out) {
    Envelope e;
    if (!RecvWorker(worker, &e)) {
      return 0;
    }
    out->push_back(e);
    size_t moved = 1;
    while (TryRecvWorker(worker, &e)) {
      out->push_back(e);
      ++moved;
    }
    return moved;
  }

  /// Non-blocking batch drain of a worker inbox; 0 = nothing immediately
  /// available (says nothing about the box being closed).
  virtual size_t TryRecvWorkerAll(int worker, std::vector<Envelope>* out) {
    Envelope e;
    size_t moved = 0;
    while (TryRecvWorker(worker, &e)) {
      out->push_back(e);
      ++moved;
    }
    return moved;
  }

  /// Closes every inbox (receivers drain, then their Recv returns false).
  virtual void Shutdown() = 0;

  /// The current site->shard assignment (reflects any layout pushed by
  /// UpdateLayout).
  virtual ShardLayout layout() const = 0;

  /// Pushes a new versioned shard layout mid-run. The shape (num_sites,
  /// num_shards) must match the current layout — a reshard rebalances the
  /// boundaries, it does not grow the tree — and the version must be
  /// strictly newer. The call returns once every routing party has adopted
  /// the layout (for the socket transport: after each worker acked the
  /// kLayoutUpdate frame), so the caller can treat it as a barrier fence:
  /// envelopes sent afterward route by the new layout everywhere.
  virtual Status UpdateLayout(const ShardLayout& next) {
    (void)next;
    return UnimplementedError("transport does not support layout updates");
  }

  /// Test/chaos hook: forcibly severs the link to one worker, simulating a
  /// worker crash or network partition (for the socket transport, a hard
  /// shutdown of the TCP connection). Transports without a severable link
  /// report Unimplemented.
  virtual Status InjectPeerFailure(int worker) {
    (void)worker;
    return UnimplementedError("transport has no severable worker links");
  }

  /// Unsharded receive, kept for the num_shards == 1 paths (the flat
  /// coordinator and every pre-sharding caller): shard 0 IS the
  /// coordinator inbox when there is only one shard.
  bool RecvCoordinator(Envelope* out) { return RecvShard(0, out); }
  bool TryRecvCoordinator(Envelope* out) { return TryRecvShard(0, out); }
};

/// In-process transport over bounded mailboxes, one per worker plus one per
/// shard coordinator. Capacity invariants the runtime relies on to stay
/// deadlock-free with blocking sends:
///
///  * the coordinator tree never blocks on a worker inbox: at most one
///    epoch start, one poll request, one threshold update, and one
///    shutdown can be in flight per owned site, and worker capacity covers
///    that;
///  * sites may block pushing into a shard inbox (that is the backpressure
///    path), but every shard coordinator is always in its receive loop, so
///    the box drains. The root's SendToShard commands ride the same
///    guarantee.
class ThreadTransport : public Transport {
 public:
  /// `coordinator_capacity` 0 = auto (2 * max-sites-per-shard + 16; with
  /// one shard that is the historical 2 * num_sites + 16).
  /// `worker_capacity` 0 = auto (4 * ceil(sites/workers) + 8).
  static Result<std::unique_ptr<ThreadTransport>> Create(
      int num_sites, int num_workers, size_t coordinator_capacity = 0,
      size_t worker_capacity = 0, int num_shards = 1);

  int num_sites() const override { return num_sites_; }
  int num_workers() const override { return num_workers_; }
  int WorkerOf(int site) const override { return site % num_workers_; }
  int num_shards() const override { return current()->num_shards; }
  int ShardOf(int site) const override { return current()->ShardOf(site); }

  bool Send(const Envelope& e) override;
  bool SendBatch(const std::vector<Envelope>& batch) override;
  size_t TrySendBatch(const std::vector<Envelope>& batch, size_t begin,
                      bool* closed = nullptr) override;
  bool SendToShard(int shard, const Envelope& e) override;
  bool TrySendToShard(int shard, const Envelope& e) override;
  bool RecvShard(int shard, Envelope* out) override;
  bool TryRecvShard(int shard, Envelope* out) override;
  size_t RecvShardAll(int shard, std::vector<Envelope>* out) override;
  size_t RecvShardAllFor(int shard, std::vector<Envelope>* out,
                         int64_t timeout_ms, bool* timed_out) override;
  bool RecvWorker(int worker, Envelope* out) override;
  bool TryRecvWorker(int worker, Envelope* out) override;
  size_t RecvWorkerAll(int worker, std::vector<Envelope>* out) override;
  size_t TryRecvWorkerAll(int worker, std::vector<Envelope>* out) override;
  void Shutdown() override;
  ShardLayout layout() const override { return *current(); }
  Status UpdateLayout(const ShardLayout& next) override;

  /// Capacity of each shard coordinator inbox (identical across shards;
  /// the formula uses the most-loaded shard's site count).
  size_t coordinator_capacity() const { return shard_boxes_[0]->capacity(); }

  /// Capacity of each worker inbox (identical across workers; with uneven
  /// site division the formula uses ceil(sites/workers), so the most-loaded
  /// worker still fits its 4-messages-per-owned-site worst case).
  size_t worker_capacity() const {
    return worker_boxes_.empty() ? 0 : worker_boxes_[0]->capacity();
  }

 private:
  ThreadTransport(ShardLayout layout, int num_workers,
                  size_t coordinator_capacity, size_t worker_capacity);

  /// The live layout. Routing reads are lock-free (acquire on an atomic
  /// pointer); UpdateLayout retires superseded layouts into layouts_ so a
  /// racing reader never dereferences freed memory.
  const ShardLayout* current() const {
    return layout_ptr_.load(std::memory_order_acquire);
  }

  int num_sites_;
  int num_workers_;
  std::mutex layout_mu_;  ///< Serializes UpdateLayout calls.
  std::vector<std::unique_ptr<ShardLayout>> layouts_;
  std::atomic<const ShardLayout*> layout_ptr_{nullptr};
  std::vector<std::unique_ptr<Mailbox<Envelope>>> shard_boxes_;
  std::vector<std::unique_ptr<Mailbox<Envelope>>> worker_boxes_;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_TRANSPORT_H_
