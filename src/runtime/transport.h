#ifndef DCV_RUNTIME_TRANSPORT_H_
#define DCV_RUNTIME_TRANSPORT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "runtime/actor_message.h"
#include "runtime/mailbox.h"

namespace dcv {

/// Message fabric between the coordinator and the site workers. The
/// interface is deliberately socket-shaped — opaque routed envelopes, a
/// blocking receive per endpoint, an explicit shutdown — so a future
/// `SocketTransport` (TCP, one connection per worker) can slot in without
/// touching the actors. The first implementation is in-process
/// (`ThreadTransport` below): one bounded Mailbox per worker thread plus
/// one for the coordinator.
///
/// Sites are multiplexed onto workers: `WorkerOf(site)` names the worker
/// inbox a site-addressed envelope lands in. With num_workers == num_sites
/// every site has its own thread; with fewer, workers round-robin their
/// sites (how `dcvtool run --threads` maps N sites onto K threads).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_sites() const = 0;
  virtual int num_workers() const = 0;
  virtual int WorkerOf(int site) const = 0;

  /// Routes by e.to; blocks when the destination inbox is full
  /// (backpressure). Returns false iff the destination is closed.
  virtual bool Send(const Envelope& e) = 0;

  /// Blocking receive on the coordinator inbox; false = closed and drained.
  virtual bool RecvCoordinator(Envelope* out) = 0;
  virtual bool TryRecvCoordinator(Envelope* out) = 0;

  /// Blocking receive on a worker inbox; false = closed and drained.
  virtual bool RecvWorker(int worker, Envelope* out) = 0;
  virtual bool TryRecvWorker(int worker, Envelope* out) = 0;

  /// Closes every inbox (receivers drain, then their Recv returns false).
  virtual void Shutdown() = 0;
};

/// In-process transport over bounded mailboxes, one per worker plus one for
/// the coordinator. Capacity invariants the runtime relies on to stay
/// deadlock-free with blocking sends:
///
///  * the coordinator never blocks on a worker inbox: at most one epoch
///    start, one poll request, one threshold update, and one shutdown can
///    be in flight per owned site, and worker capacity covers that;
///  * sites may block pushing into the coordinator inbox (that is the
///    backpressure path), but the coordinator is always in its receive
///    loop, so the box drains.
class ThreadTransport : public Transport {
 public:
  /// `coordinator_capacity` 0 = auto (2 * num_sites + 16).
  /// `worker_capacity` 0 = auto (4 * sites-per-worker + 8).
  static Result<std::unique_ptr<ThreadTransport>> Create(
      int num_sites, int num_workers, size_t coordinator_capacity = 0,
      size_t worker_capacity = 0);

  int num_sites() const override { return num_sites_; }
  int num_workers() const override { return num_workers_; }
  int WorkerOf(int site) const override { return site % num_workers_; }

  bool Send(const Envelope& e) override;
  bool RecvCoordinator(Envelope* out) override;
  bool TryRecvCoordinator(Envelope* out) override;
  bool RecvWorker(int worker, Envelope* out) override;
  bool TryRecvWorker(int worker, Envelope* out) override;
  void Shutdown() override;

  size_t coordinator_capacity() const { return coordinator_box_->capacity(); }

  /// Capacity of each worker inbox (identical across workers; with uneven
  /// site division the formula uses ceil(sites/workers), so the most-loaded
  /// worker still fits its 4-messages-per-owned-site worst case).
  size_t worker_capacity() const {
    return worker_boxes_.empty() ? 0 : worker_boxes_[0]->capacity();
  }

 private:
  ThreadTransport(int num_sites, int num_workers, size_t coordinator_capacity,
                  size_t worker_capacity);

  int num_sites_;
  int num_workers_;
  std::unique_ptr<Mailbox<Envelope>> coordinator_box_;
  std::vector<std::unique_ptr<Mailbox<Envelope>>> worker_boxes_;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_TRANSPORT_H_
