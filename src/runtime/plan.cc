#include "runtime/plan.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "histogram/equi_depth.h"

namespace dcv {

Result<LocalPlan> BuildLocalPlan(const Trace& training,
                                 const std::vector<int64_t>& weights,
                                 int64_t global_threshold,
                                 const ThresholdSolver& solver,
                                 int histogram_buckets,
                                 double domain_headroom) {
  const int n = training.num_sites();
  if (n < 1 || training.num_epochs() == 0) {
    return InvalidArgumentError("BuildLocalPlan needs a nonempty training trace");
  }
  if (static_cast<int>(weights.size()) != n) {
    return InvalidArgumentError("weights size mismatch");
  }

  LocalPlan plan;
  plan.domain_max.reserve(static_cast<size_t>(n));
  std::vector<std::unique_ptr<EquiDepthHistogram>> models;
  models.reserve(static_cast<size_t>(n));
  ThresholdProblem problem;
  problem.budget = global_threshold;
  for (int i = 0; i < n; ++i) {
    std::vector<int64_t> series = training.SiteSeries(i);
    int64_t observed_max = *std::max_element(series.begin(), series.end());
    int64_t m = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               domain_headroom *
               static_cast<double>(std::max<int64_t>(observed_max, 1)))));
    plan.domain_max.push_back(m);
    DCV_ASSIGN_OR_RETURN(
        EquiDepthHistogram h,
        EquiDepthHistogram::Build(series, m, histogram_buckets));
    models.push_back(std::make_unique<EquiDepthHistogram>(std::move(h)));
  }
  for (int i = 0; i < n; ++i) {
    problem.vars.push_back(
        ProblemVar{i, weights[static_cast<size_t>(i)],
                   CdfView(models[static_cast<size_t>(i)].get(),
                           /*mirrored=*/false)});
  }
  DCV_ASSIGN_OR_RETURN(ThresholdSolution solution, solver.Solve(problem));
  plan.thresholds = std::move(solution.thresholds);
  return plan;
}

LocalPlan SliceForShard(const LocalPlan& plan, const ShardLayout& layout,
                        int shard) {
  const size_t start = static_cast<size_t>(layout.ShardStart(shard));
  const size_t size = static_cast<size_t>(layout.ShardSize(shard));
  auto slice = [&](const std::vector<int64_t>& v) {
    std::vector<int64_t> out;
    if (start < v.size()) {
      const size_t end = std::min(v.size(), start + size);
      out.assign(v.begin() + static_cast<ptrdiff_t>(start),
                 v.begin() + static_cast<ptrdiff_t>(end));
    }
    return out;
  };
  LocalPlan out;
  out.thresholds = slice(plan.thresholds);
  out.domain_max = slice(plan.domain_max);
  return out;
}

}  // namespace dcv
