#ifndef DCV_RUNTIME_SOCKET_TRANSPORT_H_
#define DCV_RUNTIME_SOCKET_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/mailbox.h"
#include "runtime/transport.h"
#include "runtime/wire.h"

namespace dcv {

/// TCP implementation of the Transport interface: the coordinator process
/// listens and accepts exactly one connection per worker process; site
/// workers connect, identify themselves with a versioned handshake
/// (wire.h), and then exchange length-prefixed Envelope frames.
///
/// Backpressure mirrors ThreadTransport: every connection owns a bounded
/// send-queue Mailbox with the same capacity formula as the in-process
/// inboxes, so Send blocks when the peer falls behind (the TCP socket adds
/// kernel-buffer slack but never unbounded memory). A writer thread drains
/// each send queue onto the socket; a reader thread decodes frames into
/// the owner's inbox.
///
/// Lifecycle and failure semantics:
///  * Connect retries with bounded attempts and exponential backoff;
///    Listen/AcceptWorkers bound the wait per expected connection. Both
///    surface in SocketStats (and "runtime/socket/*" obs counters).
///  * A peer closing its stream (EOF) closes this side's inbox: blocked
///    receivers drain and then observe transport-closed, exactly like
///    ThreadTransport::Shutdown. Mid-run resets count as `disconnects`.
///  * Shutdown flushes the send queues (writers drain the bounded boxes
///    before the sockets close), so a graceful kShutdown broadcast is
///    never lost.
class SocketTransport : public Transport {
 public:
  struct Options {
    int accept_timeout_ms = 30000;  ///< Per expected worker connection.
    int connect_timeout_ms = 5000;  ///< Per connect() attempt.
    int connect_attempts = 10;      ///< Bounded reconnect budget.
    int connect_backoff_ms = 100;   ///< Doubles per retry, capped at 2 s.
    int io_timeout_ms = 30000;      ///< Handshake reads + steady-state sends.
    size_t coordinator_capacity = 0;  ///< 0 = auto (2 * num_sites + 16).
    size_t worker_capacity = 0;       ///< 0 = auto (4 * ceil(sites/workers) + 8).
    bool virtual_time = true;  ///< Coordinator role: mode pushed to workers.

    /// Coordinator role: shard-coordinator fan-in. Reader threads route
    /// each inbound envelope to shard ShardOf(e.from)'s inbox (contiguous
    /// balanced ranges, shard_layout.h). Coordinator-local: the wire
    /// format and the worker handshake are unchanged, workers neither know
    /// nor care how the coordinator process is sharded internally.
    int num_shards = 1;
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Coordinator role: binds and listens on `port` (0 = ephemeral; see
  /// port()). Returns before any worker has connected so the caller can
  /// publish the port; call AcceptWorkers() to complete the fabric.
  static Result<std::unique_ptr<SocketTransport>> Listen(
      int num_sites, int num_workers, int port, const Options& options);

  /// Coordinator role: accepts and handshakes all `num_workers`
  /// connections, then starts the per-connection reader/writer threads.
  /// Fails on accept timeout, handshake mismatch, or duplicate workers.
  Status AcceptWorkers();

  /// Worker role: connects to the coordinator (bounded retries) and
  /// handshakes as `worker`. The run mode the coordinator advertises is
  /// available as virtual_time() afterwards.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, int port, int worker, int num_sites,
      int num_workers, const Options& options);

  ~SocketTransport() override;

  /// Bound listen port (coordinator role; resolves port 0 to the actual).
  int port() const { return port_; }

  /// Worker role: the run mode from the coordinator's handshake ack.
  bool virtual_time() const { return virtual_time_; }

  SocketStats stats() const;

  int num_sites() const override { return num_sites_; }
  int num_workers() const override { return num_workers_; }
  int WorkerOf(int site) const override { return site % num_workers_; }
  int num_shards() const override { return layout_.num_shards; }
  int ShardOf(int site) const override { return layout_.ShardOf(site); }
  bool Send(const Envelope& e) override;
  bool SendToShard(int shard, const Envelope& e) override;
  bool RecvShard(int shard, Envelope* out) override;
  bool TryRecvShard(int shard, Envelope* out) override;
  size_t RecvShardAll(int shard, std::vector<Envelope>* out) override;
  bool RecvWorker(int worker, Envelope* out) override;
  bool TryRecvWorker(int worker, Envelope* out) override;
  void Shutdown() override;

 private:
  enum class Role { kCoordinator, kWorker };

  /// One TCP connection: the socket, its bounded send queue, and the two
  /// threads that pump it. Coordinator role has one per worker; worker
  /// role has exactly one (index 0).
  struct Connection {
    int fd = -1;
    /// Bytes the handshake read past its own frame (TCP coalescing can put
    /// the first data frames in the same segment as the hello/ack); the
    /// reader thread consumes these before touching the socket.
    std::string residual;
    std::unique_ptr<Mailbox<Envelope>> send_box;
    std::thread reader;
    std::thread writer;
  };

  SocketTransport(Role role, int num_sites, int num_workers, int worker,
                  const Options& options);

  void StartConnection(size_t index, int fd, std::string residual);
  void ReaderLoop(size_t index);
  void WriterLoop(size_t index);

  /// End-of-stream on any connection (or a fatal write error) closes every
  /// shard inbox: no shard can make progress once a worker is gone, and
  /// blocked receivers must drain out exactly as in ThreadTransport.
  void CloseInboxes();

  const Role role_;
  const int num_sites_;
  const int num_workers_;
  const int worker_;  ///< Worker role: this process's worker index.
  ShardLayout layout_;  ///< Coordinator role; 1 shard in worker role.
  Options options_;

  int listen_fd_ = -1;
  int port_ = 0;
  bool virtual_time_ = true;

  /// Coordinator role: one inbox per shard coordinator, fed by the reader
  /// threads routing on ShardOf(e.from). Worker role: exactly one — this
  /// worker's inbox.
  std::vector<std::unique_ptr<Mailbox<Envelope>>> inboxes_;
  std::vector<Connection> conns_;

  std::atomic<bool> shutting_down_{false};
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;

  // Wire-level counters (stats() snapshot + optional obs mirror).
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
  std::atomic<int64_t> connect_attempts_{0};
  std::atomic<int64_t> connect_retries_{0};
  std::atomic<int64_t> accept_timeouts_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> disconnects_{0};
  obs::Counter* c_frames_tx_ = nullptr;
  obs::Counter* c_frames_rx_ = nullptr;
  obs::Counter* c_bytes_tx_ = nullptr;
  obs::Counter* c_bytes_rx_ = nullptr;
  obs::Counter* c_connect_retries_ = nullptr;
  obs::Counter* c_disconnects_ = nullptr;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_SOCKET_TRANSPORT_H_
