#ifndef DCV_RUNTIME_SOCKET_TRANSPORT_H_
#define DCV_RUNTIME_SOCKET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "runtime/mailbox.h"
#include "runtime/transport.h"
#include "runtime/wire.h"

namespace dcv {

/// TCP implementation of the Transport interface: the coordinator process
/// listens and accepts exactly one connection per worker process; site
/// workers connect, identify themselves with a versioned handshake
/// (wire.h), and then exchange length-prefixed Envelope frames.
///
/// Backpressure mirrors ThreadTransport: every connection owns a bounded
/// send-queue Mailbox with the same capacity formula as the in-process
/// inboxes, so Send blocks when the peer falls behind (the TCP socket adds
/// kernel-buffer slack but never unbounded memory). A writer thread drains
/// each send queue onto the socket; a reader thread decodes frames into
/// the owner's inbox.
///
/// Lifecycle and failure semantics:
///  * Connect retries with bounded attempts and exponential backoff;
///    Listen/AcceptWorkers bound the wait per expected connection. Both
///    surface in SocketStats (and "runtime/socket/*" obs counters).
///  * Without reconnection (the default), a peer closing its stream (EOF)
///    closes this side's inbox: blocked receivers drain and then observe
///    transport-closed, exactly like ThreadTransport::Shutdown. Mid-run
///    resets count as `disconnects`.
///  * Shutdown flushes the send queues (writers drain the bounded boxes
///    before the sockets half-close), so a graceful kShutdown broadcast is
///    never lost.
///
/// Mid-run reconnection (Options::allow_reconnect): a lost connection
/// parks this side instead of closing the inboxes. Every envelope frame
/// carries a per-direction sequence number and each writer retains a
/// bounded ring of sent frames; a returning worker handshakes with a
/// bumped Hello generation (stale connections are fenced off) and each
/// side replays exactly the suffix the peer missed, deduplicating replays
/// by sequence number. The coordinator keeps an acceptor thread running so
/// the resume handshake can land at any time; the worker side actively
/// redials. Senders simply block on the bounded send queues during the
/// outage, so no envelope is ever lost — the run resumes bit-identically.
class SocketTransport : public Transport {
 public:
  struct Options {
    int accept_timeout_ms = 30000;  ///< Per expected worker connection.
    int connect_timeout_ms = 5000;  ///< Per connect() attempt.
    int connect_attempts = 10;      ///< Bounded reconnect budget.
    int connect_backoff_ms = 100;   ///< Doubles per retry, capped at 2 s.
    int io_timeout_ms = 30000;      ///< Handshake reads + steady-state sends.
    size_t coordinator_capacity = 0;  ///< 0 = auto (2 * num_sites + 16).
    size_t worker_capacity = 0;       ///< 0 = auto (4 * ceil(sites/workers) + 8).
    bool virtual_time = true;  ///< Coordinator role: mode pushed to workers.

    /// Coordinator role: shard-coordinator fan-in. Reader threads route
    /// each inbound envelope to shard ShardOf(e.from)'s inbox (contiguous
    /// balanced ranges, shard_layout.h). Coordinator-local: the wire
    /// format and the worker handshake are unchanged, workers neither know
    /// nor care how the coordinator process is sharded internally.
    int num_shards = 1;

    /// Survive a dropped worker connection: park instead of closing the
    /// inboxes, accept/redial a resume handshake, replay the missed frame
    /// suffix. Both sides must enable it (the worker redials, the
    /// coordinator keeps accepting).
    bool allow_reconnect = false;
    int reconnect_window_ms = 5000;  ///< Park budget before giving up.
    int reconnect_grace_ms = 100;    ///< Worker delay before redialing, so a
                                     ///< graceful shutdown is not mistaken
                                     ///< for a crash.
    size_t replay_capacity = 4096;   ///< Sent-frame ring per connection.

    obs::MetricsRegistry* metrics = nullptr;
    /// Optional distributed-trace sink: reconnect/replay lifecycle events
    /// are recorded here with wall-clock timestamps.
    obs::TraceRecorder* recorder = nullptr;
  };

  /// Coordinator role: binds and listens on `port` (0 = ephemeral; see
  /// port()). Returns before any worker has connected so the caller can
  /// publish the port; call AcceptWorkers() to complete the fabric.
  static Result<std::unique_ptr<SocketTransport>> Listen(
      int num_sites, int num_workers, int port, const Options& options);

  /// Coordinator role: accepts and handshakes all `num_workers`
  /// connections, then starts the per-connection reader/writer threads
  /// (plus, with allow_reconnect, the resume acceptor thread).
  /// Fails on accept timeout, handshake mismatch, or duplicate workers.
  Status AcceptWorkers();

  /// Worker role: connects to the coordinator (bounded retries) and
  /// handshakes as `worker`. The run mode the coordinator advertises is
  /// available as virtual_time() afterwards.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, int port, int worker, int num_sites,
      int num_workers, const Options& options);

  ~SocketTransport() override;

  /// Bound listen port (coordinator role; resolves port 0 to the actual).
  int port() const { return port_; }

  /// Worker role: the run mode from the coordinator's handshake ack.
  bool virtual_time() const { return virtual_time_; }

  /// Worker role: the newest shard-layout version adopted from a
  /// kLayoutUpdate push (0 until one arrives).
  uint32_t layout_version() const {
    return adopted_layout_version_.load(std::memory_order_acquire);
  }

  SocketStats stats() const;

  /// Worker role: estimated coordinator-minus-worker wall-clock offset in
  /// microseconds, from the NTP-style Hello/HelloAck timestamps (refreshed
  /// on every resume handshake). 0 until a handshake completes.
  int64_t clock_offset_us() const {
    return clock_offset_us_.load(std::memory_order_relaxed);
  }

  /// Worker role: serializes and sends a telemetry snapshot directly on the
  /// connection (outside the envelope send queue — telemetry is unsequenced
  /// and must never enter the replay ring). Safe to call concurrently with
  /// envelope traffic; fails if the connection is down (the next push or the
  /// final flush supersedes a lost snapshot anyway).
  Status SendTelemetry(const TelemetryFrame& t);

  /// Coordinator role: latest telemetry frame received from each worker
  /// (cumulative snapshots, so only the newest matters). Entries are
  /// returned worker-ascending; workers that never pushed are absent.
  std::vector<TelemetryFrame> TakeWorkerTelemetry();

  /// Coordinator role: blocks until every worker's final_flush telemetry
  /// frame has arrived or `timeout_ms` elapses. Call after the protocol
  /// run completes and before Shutdown(), so the reader threads are still
  /// consuming the stream tail. Returns false on timeout.
  bool WaitForFinalTelemetry(int timeout_ms);

  int num_sites() const override { return num_sites_; }
  int num_workers() const override { return num_workers_; }
  int WorkerOf(int site) const override { return site % num_workers_; }
  int num_shards() const override { return current()->num_shards; }
  int ShardOf(int site) const override { return current()->ShardOf(site); }
  bool Send(const Envelope& e) override;
  bool SendBatch(const std::vector<Envelope>& batch) override;
  size_t TrySendBatch(const std::vector<Envelope>& batch, size_t begin,
                      bool* closed = nullptr) override;
  bool SendToShard(int shard, const Envelope& e) override;
  bool TrySendToShard(int shard, const Envelope& e) override;
  bool RecvShard(int shard, Envelope* out) override;
  bool TryRecvShard(int shard, Envelope* out) override;
  size_t RecvShardAll(int shard, std::vector<Envelope>* out) override;
  size_t RecvShardAllFor(int shard, std::vector<Envelope>* out,
                         int64_t timeout_ms, bool* timed_out) override;
  bool RecvWorker(int worker, Envelope* out) override;
  bool TryRecvWorker(int worker, Envelope* out) override;
  size_t RecvWorkerAll(int worker, std::vector<Envelope>* out) override;
  size_t TryRecvWorkerAll(int worker, std::vector<Envelope>* out) override;
  void Shutdown() override;
  ShardLayout layout() const override { return *current(); }

  /// Coordinator role: broadcasts the layout as a kLayoutUpdate frame,
  /// waits for every worker's kLayoutAck (the fence), then swaps the
  /// routing layout. Shape must match; version must be strictly newer.
  Status UpdateLayout(const ShardLayout& next) override;

  /// Coordinator role, chaos hook: hard-severs worker `w`'s TCP connection
  /// (both directions), simulating a crash or partition. With
  /// allow_reconnect on both sides the fabric heals via the resume
  /// protocol; without it the run aborts exactly as a real crash would.
  Status InjectPeerFailure(int worker) override;

 private:
  enum class Role { kCoordinator, kWorker };

  /// One TCP connection: the socket, its bounded send queue, and the two
  /// threads that pump it. Coordinator role has one per worker; worker
  /// role has exactly one (index 0). Reconnection state lives here too:
  /// `generation` names the fd incarnation (bumped by each successful
  /// resume; parked threads wake on the bump), the writer-side ring holds
  /// the replayable sent-frame suffix, and `last_seq_received` is the
  /// receive direction's dedup high-water mark.
  struct Connection {
    std::mutex mu;  ///< Guards fd (for readers), generation, residuals.
    std::condition_variable cv;  ///< Signals generation bumps + shutdown.
    int fd = -1;
    uint32_t generation = 0;
    /// Bytes the handshake read past its own frame (TCP coalescing can put
    /// the first data frames in the same segment as the hello/ack); the
    /// reader thread consumes these before touching the socket.
    std::string residual;
    std::unique_ptr<Mailbox<Envelope>> send_box;
    std::thread reader;
    std::thread writer;

    /// Send direction (guarded by write_mu, which also serializes every
    /// socket write so a resume replay never interleaves mid-frame).
    std::mutex write_mu;
    uint64_t next_send_seq = 1;
    std::deque<std::pair<uint64_t, std::string>> sent_ring;

    /// Receive direction: highest envelope seq seen (reader-owned, read by
    /// the resume handshake to tell the peer where to resume).
    std::atomic<uint64_t> last_seq_received{0};
  };

  SocketTransport(Role role, int num_sites, int num_workers, int worker,
                  const Options& options);

  const ShardLayout* current() const {
    return layout_ptr_.load(std::memory_order_acquire);
  }

  void StartConnection(size_t index, int fd, std::string residual);
  void ReaderLoop(size_t index);
  void WriterLoop(size_t index);
  void AcceptorLoop();

  /// Replays the sent-ring suffix the peer missed onto `fd`, then installs
  /// it as the connection's live socket (bumping the generation and waking
  /// parked reader/writer). False if the gap exceeds the ring or the
  /// replay write fails; the caller closes `fd`.
  bool InstallResumedFd(Connection* c, int fd, uint32_t generation,
                        uint64_t peer_last_seq, std::string residual);

  /// Parks until the connection has a newer incarnation than `seen_gen`.
  /// Worker role actively redials the coordinator while parked. True once
  /// resumed (with `*residual` holding the resume handshake's tail); false
  /// on shutdown or window expiry.
  bool AwaitResume(size_t index, uint32_t seen_gen, std::string* residual);

  /// Worker role: one redial + resume-handshake attempt. On success the
  /// new fd is installed and `*residual` receives the handshake tail.
  bool TryWorkerResume(Connection* c, std::string* residual);

  /// End-of-stream on any connection (or a fatal write error) closes every
  /// shard inbox: no shard can make progress once a worker is gone, and
  /// blocked receivers must drain out exactly as in ThreadTransport.
  void CloseInboxes();

  /// Severs `fd` and queues it for close at Shutdown (closing immediately
  /// could race a thread still blocked in a syscall on it).
  void RetireFd(int fd);

  const Role role_;
  const int num_sites_;
  const int num_workers_;
  const int worker_;  ///< Worker role: this process's worker index.
  Options options_;

  /// Routing layout (coordinator role; 1 shard in worker role). Reads are
  /// lock-free; UpdateLayout retires superseded layouts into layouts_.
  std::mutex layout_mu_;
  std::vector<std::unique_ptr<ShardLayout>> layouts_;
  std::atomic<const ShardLayout*> layout_ptr_{nullptr};
  std::condition_variable layout_cv_;          ///< Waits for worker acks.
  std::vector<uint32_t> layout_acked_;         ///< Per worker, by layout_mu_.
  std::atomic<uint32_t> adopted_layout_version_{0};  ///< Worker role.

  int listen_fd_ = -1;
  int port_ = 0;
  bool virtual_time_ = true;
  std::string peer_host_;  ///< Worker role: coordinator address for redial.
  int peer_port_ = 0;

  /// Coordinator role: one inbox per shard coordinator, fed by the reader
  /// threads routing on ShardOf(e.from). Worker role: exactly one — this
  /// worker's inbox.
  std::vector<std::unique_ptr<Mailbox<Envelope>>> inboxes_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::thread acceptor_;  ///< Resume acceptor (coordinator, reconnect on).

  std::mutex retired_mu_;
  std::vector<int> retired_fds_;

  std::atomic<bool> shutting_down_{false};
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;

  /// Coordinator role: latest-wins telemetry store, one slot per worker.
  std::mutex telemetry_mu_;
  std::condition_variable telemetry_cv_;
  std::vector<TelemetryFrame> worker_telemetry_;
  std::vector<uint8_t> worker_telemetry_valid_;
  std::vector<uint8_t> worker_telemetry_final_;

  /// Worker role: handshake-estimated clock offset (coordinator - worker).
  std::atomic<int64_t> clock_offset_us_{0};

  // Wire-level counters (stats() snapshot + optional obs mirror).
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
  std::atomic<int64_t> connect_attempts_{0};
  std::atomic<int64_t> connect_retries_{0};
  std::atomic<int64_t> accept_timeouts_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> disconnects_{0};
  std::atomic<int64_t> truncated_frames_{0};
  std::atomic<int64_t> reconnects_{0};
  std::atomic<int64_t> replayed_frames_{0};
  std::atomic<int64_t> duplicate_frames_{0};
  obs::Counter* c_frames_tx_ = nullptr;
  obs::Counter* c_frames_rx_ = nullptr;
  obs::Counter* c_bytes_tx_ = nullptr;
  obs::Counter* c_bytes_rx_ = nullptr;
  obs::Counter* c_connect_attempts_ = nullptr;
  obs::Counter* c_connect_retries_ = nullptr;
  obs::Counter* c_accept_timeouts_ = nullptr;
  obs::Counter* c_decode_errors_ = nullptr;
  obs::Counter* c_disconnects_ = nullptr;
  obs::Counter* c_truncated_frames_ = nullptr;
  obs::Counter* c_reconnects_ = nullptr;
  obs::Counter* c_replayed_frames_ = nullptr;
  obs::Counter* c_duplicate_frames_ = nullptr;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_SOCKET_TRANSPORT_H_
