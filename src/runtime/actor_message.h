#ifndef DCV_RUNTIME_ACTOR_MESSAGE_H_
#define DCV_RUNTIME_ACTOR_MESSAGE_H_

#include <cstdint>
#include <string_view>

namespace dcv {

/// Address of the coordinator actor; sites are addressed 0..num_sites-1.
inline constexpr int32_t kCoordinatorId = -1;

/// What travels between actors. The runtime deliberately splits two planes:
///
///  * the DATA plane — protocol messages of the detection scheme (alarms,
///    poll rounds, threshold pushes). Their *fate* (loss, delay,
///    duplication, crash black-holing) and their MessageCounter charge are
///    decided by the coordinator-owned fault-injecting `Channel`, exactly
///    as in the lockstep simulator;
///  * the CONTROL plane — virtual-clock synchronization (kEpochStart /
///    kEpochReport) and lifecycle (kShutdown / kSiteDone). Control messages
///    are free: they model the passage of simulated time, not network
///    traffic, and are never charged or faulted.
///
/// The transport itself is reliable; it carries ground truth between
/// threads. This is what makes virtual-time runs bit-identical to the
/// simulator: the Channel consumes the same inputs in the same order no
/// matter how the threads interleave.
enum class ActorMsgKind : uint8_t {
  // Control plane.
  kEpochStart,   ///< Coordinator -> site: begin epoch; flag = site is up.
  kEpochReport,  ///< Site -> coordinator: epoch done; flag = local alarm
                 ///< (value = observed X_i when alarmed, else 0).
  kShutdown,     ///< Coordinator -> site: drain and exit.
  kSiteDone,     ///< Site -> coordinator: workload exhausted
                 ///< (value = updates processed).
  // Data plane (free-running mode; virtual mode batches these into the
  // epoch report / poll round).
  kAlarm,            ///< Site -> coordinator: local constraint violated.
  kPollRequest,      ///< Coordinator -> site: report your current value.
  kPollResponse,     ///< Site -> coordinator: current value.
  kThresholdUpdate,  ///< Coordinator -> site: new local threshold (value).
  // Control plane, process-local only (never crosses the wire; the socket
  // decoder rejects it like any unknown kind).
  kPing,  ///< Root -> shard: liveness probe; a live shard answers with a
          ///< heartbeat on its root mailbox. Silence marks it dead.
};

std::string_view ActorMsgKindName(ActorMsgKind kind);

struct ActorMessage {
  ActorMsgKind kind = ActorMsgKind::kEpochStart;
  int64_t epoch = 0;  ///< Virtual epoch (site-local update index when free).
  int64_t value = 0;  ///< Kind-specific payload.
  bool flag = false;  ///< kEpochStart: site up; kEpochReport: alarmed.
};

/// A routed message: `to`/`from` are actor ids (kCoordinatorId or a site).
struct Envelope {
  int32_t from = kCoordinatorId;
  int32_t to = kCoordinatorId;
  ActorMessage msg;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_ACTOR_MESSAGE_H_
