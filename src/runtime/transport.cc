#include "runtime/transport.h"

namespace dcv {

std::string_view ActorMsgKindName(ActorMsgKind kind) {
  switch (kind) {
    case ActorMsgKind::kEpochStart:
      return "epoch_start";
    case ActorMsgKind::kEpochReport:
      return "epoch_report";
    case ActorMsgKind::kShutdown:
      return "shutdown";
    case ActorMsgKind::kSiteDone:
      return "site_done";
    case ActorMsgKind::kAlarm:
      return "alarm";
    case ActorMsgKind::kPollRequest:
      return "poll_request";
    case ActorMsgKind::kPollResponse:
      return "poll_response";
    case ActorMsgKind::kThresholdUpdate:
      return "threshold_update";
    case ActorMsgKind::kPing:
      return "ping";
  }
  return "unknown";
}

Result<std::unique_ptr<ThreadTransport>> ThreadTransport::Create(
    int num_sites, int num_workers, size_t coordinator_capacity,
    size_t worker_capacity, int num_shards) {
  if (num_sites < 1) {
    return InvalidArgumentError("transport needs at least one site");
  }
  if (num_workers < 1 || num_workers > num_sites) {
    return InvalidArgumentError(
        "num_workers must be in [1, num_sites]");
  }
  DCV_ASSIGN_OR_RETURN(ShardLayout layout,
                       MakeShardLayout(num_sites, num_shards));
  if (coordinator_capacity == 0) {
    // Per-shard fan-in: an epoch can put at most 2 messages per owned site
    // in flight toward a shard (report + poll response), and the root's
    // commands ride in the headroom. One shard degenerates to the
    // historical 2 * num_sites + 16 whole-coordinator formula.
    coordinator_capacity =
        2 * static_cast<size_t>(layout.MaxShardSites()) + 16;
  }
  if (worker_capacity == 0) {
    // Ceil(sites / workers) sites share a worker inbox.
    size_t per_worker =
        (static_cast<size_t>(num_sites) + static_cast<size_t>(num_workers) -
         1) /
        static_cast<size_t>(num_workers);
    worker_capacity = 4 * per_worker + 8;
  }
  return std::unique_ptr<ThreadTransport>(new ThreadTransport(
      layout, num_workers, coordinator_capacity, worker_capacity));
}

ThreadTransport::ThreadTransport(ShardLayout layout, int num_workers,
                                 size_t coordinator_capacity,
                                 size_t worker_capacity)
    : num_sites_(layout.num_sites), num_workers_(num_workers) {
  layouts_.push_back(std::make_unique<ShardLayout>(std::move(layout)));
  layout_ptr_.store(layouts_.back().get(), std::memory_order_release);
  const int num_shards = layouts_.back()->num_shards;
  shard_boxes_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_boxes_.push_back(
        std::make_unique<Mailbox<Envelope>>(coordinator_capacity));
  }
  worker_boxes_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    worker_boxes_.push_back(std::make_unique<Mailbox<Envelope>>(worker_capacity));
  }
}

bool ThreadTransport::Send(const Envelope& e) {
  if (e.to == kCoordinatorId) {
    if (e.from < 0 || e.from >= num_sites_) {
      return false;
    }
    return shard_boxes_[static_cast<size_t>(ShardOf(e.from))]->Push(e);
  }
  if (e.to < 0 || e.to >= num_sites_) {
    return false;
  }
  return worker_boxes_[static_cast<size_t>(WorkerOf(e.to))]->Push(e);
}

bool ThreadTransport::SendBatch(const std::vector<Envelope>& batch) {
  // Group by destination mailbox so each box pays one PushAll per burst
  // instead of one Push per envelope. A coordinator fan-out over N sites
  // alternates workers every envelope (site % num_workers), so grouping —
  // not run-length detection — is what recovers the batching win. Order
  // within each group is batch order, preserving the per-producer FIFO
  // guarantee every barrier in the runtime leans on.
  std::vector<std::vector<Envelope>> to_shard(shard_boxes_.size());
  std::vector<std::vector<Envelope>> to_worker(worker_boxes_.size());
  for (const Envelope& e : batch) {
    if (e.to == kCoordinatorId) {
      if (e.from < 0 || e.from >= num_sites_) {
        return false;
      }
      to_shard[static_cast<size_t>(ShardOf(e.from))].push_back(e);
    } else {
      if (e.to < 0 || e.to >= num_sites_) {
        return false;
      }
      to_worker[static_cast<size_t>(WorkerOf(e.to))].push_back(e);
    }
  }
  for (size_t s = 0; s < to_shard.size(); ++s) {
    if (!to_shard[s].empty() &&
        !shard_boxes_[s]->PushAll(std::move(to_shard[s]))) {
      return false;
    }
  }
  for (size_t w = 0; w < to_worker.size(); ++w) {
    if (!to_worker[w].empty() &&
        !worker_boxes_[w]->PushAll(std::move(to_worker[w]))) {
      return false;
    }
  }
  return true;
}

size_t ThreadTransport::TrySendBatch(const std::vector<Envelope>& batch,
                                     size_t begin, bool* closed) {
  // Prefix semantics: stop at the first full/closed/unroutable destination
  // so the caller's retry cursor stays a plain offset. `*closed` flags the
  // permanent stop reasons (closed box, unroutable envelope) — a full box
  // leaves it false so the caller retries after draining its own inbox.
  size_t sent = 0;
  while (begin + sent < batch.size()) {
    const Envelope& e = batch[begin + sent];
    Mailbox<Envelope>* box = nullptr;
    if (e.to == kCoordinatorId) {
      if (e.from < 0 || e.from >= num_sites_) {
        if (closed != nullptr) {
          *closed = true;
        }
        break;
      }
      box = shard_boxes_[static_cast<size_t>(ShardOf(e.from))].get();
    } else {
      if (e.to < 0 || e.to >= num_sites_) {
        if (closed != nullptr) {
          *closed = true;
        }
        break;
      }
      box = worker_boxes_[static_cast<size_t>(WorkerOf(e.to))].get();
    }
    const MailboxPush push = box->TryPush(e);
    if (push != MailboxPush::kOk) {
      if (push == MailboxPush::kClosed && closed != nullptr) {
        *closed = true;
      }
      break;
    }
    ++sent;
  }
  return sent;
}

bool ThreadTransport::SendToShard(int shard, const Envelope& e) {
  if (shard < 0 || shard >= static_cast<int>(shard_boxes_.size())) {
    return false;
  }
  return shard_boxes_[static_cast<size_t>(shard)]->Push(e);
}

bool ThreadTransport::TrySendToShard(int shard, const Envelope& e) {
  if (shard < 0 || shard >= static_cast<int>(shard_boxes_.size())) {
    return false;
  }
  return shard_boxes_[static_cast<size_t>(shard)]->TryPush(e) ==
         MailboxPush::kOk;
}

bool ThreadTransport::RecvShard(int shard, Envelope* out) {
  return shard_boxes_[static_cast<size_t>(shard)]->Pop(out);
}

bool ThreadTransport::TryRecvShard(int shard, Envelope* out) {
  return shard_boxes_[static_cast<size_t>(shard)]->TryPop(out);
}

size_t ThreadTransport::RecvShardAll(int shard, std::vector<Envelope>* out) {
  return shard_boxes_[static_cast<size_t>(shard)]->PopAll(out);
}

size_t ThreadTransport::RecvShardAllFor(int shard, std::vector<Envelope>* out,
                                        int64_t timeout_ms, bool* timed_out) {
  return shard_boxes_[static_cast<size_t>(shard)]->PopAllFor(out, timeout_ms,
                                                             timed_out);
}

Status ThreadTransport::UpdateLayout(const ShardLayout& next) {
  std::lock_guard<std::mutex> lock(layout_mu_);
  const ShardLayout* live = current();
  if (next.num_sites != live->num_sites ||
      next.num_shards != live->num_shards) {
    return InvalidArgumentError(
        "layout update must keep the fabric shape (sites, shards)");
  }
  if (next.version <= live->version) {
    return InvalidArgumentError("layout update version must be newer than " +
                                std::to_string(live->version));
  }
  layouts_.push_back(std::make_unique<ShardLayout>(next));
  layout_ptr_.store(layouts_.back().get(), std::memory_order_release);
  return OkStatus();
}

bool ThreadTransport::RecvWorker(int worker, Envelope* out) {
  return worker_boxes_[static_cast<size_t>(worker)]->Pop(out);
}

bool ThreadTransport::TryRecvWorker(int worker, Envelope* out) {
  return worker_boxes_[static_cast<size_t>(worker)]->TryPop(out);
}

size_t ThreadTransport::RecvWorkerAll(int worker, std::vector<Envelope>* out) {
  return worker_boxes_[static_cast<size_t>(worker)]->PopAll(out);
}

size_t ThreadTransport::TryRecvWorkerAll(int worker,
                                         std::vector<Envelope>* out) {
  return worker_boxes_[static_cast<size_t>(worker)]->TryPopAll(out);
}

void ThreadTransport::Shutdown() {
  for (auto& box : shard_boxes_) {
    box->Close();
  }
  for (auto& box : worker_boxes_) {
    box->Close();
  }
}

}  // namespace dcv
