#ifndef DCV_RUNTIME_WIRE_H_
#define DCV_RUNTIME_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "runtime/actor_message.h"

namespace dcv {

// Binary framing for the socket transport. Every frame on the wire is
//
//   u32  payload length (little-endian, excludes the prefix itself)
//   u8   wire version (kWireVersion)
//   u8   frame type (FrameType)
//   ...  type-specific body, fixed layout, little-endian
//
// The version byte leads every payload so an incompatible peer is detected
// on the first frame instead of producing garbled envelopes. Length is
// bounded by kMaxFramePayload; anything larger is treated as a corrupt or
// hostile stream and fails decoding rather than allocating unboundedly.

inline constexpr uint8_t kWireVersion = 1;

/// Handshake magic ("DCVS"): rejects a non-dcv peer on byte one of the
/// hello body instead of mid-run.
inline constexpr uint32_t kWireMagic = 0x53564344;

/// Largest payload any current frame needs is < 64 bytes; the cap exists
/// purely to bound damage from a corrupt length prefix.
inline constexpr uint32_t kMaxFramePayload = 4096;

enum class FrameType : uint8_t {
  kEnvelope = 0,  ///< A routed ActorMessage (the steady-state frame).
  kHello = 1,     ///< Worker -> coordinator, first frame after connect.
  kHelloAck = 2,  ///< Coordinator -> worker, handshake verdict + run mode.
};

/// Worker self-identification, sent once per connection.
struct HelloFrame {
  uint32_t magic = kWireMagic;
  int32_t worker = 0;       ///< This connection's worker index.
  int32_t num_workers = 0;  ///< Worker's view of the fabric shape.
  int32_t num_sites = 0;
};

/// Coordinator's handshake reply. `ok == 0` means the hello was rejected
/// (shape mismatch, duplicate worker) and the connection is about to close.
struct HelloAckFrame {
  uint32_t magic = kWireMagic;
  uint8_t ok = 0;
  uint8_t virtual_time = 0;  ///< Run mode the worker must adopt.
  int32_t num_sites = 0;
  int32_t num_workers = 0;
};

/// One decoded frame; `type` selects which member is meaningful.
struct WireFrame {
  FrameType type = FrameType::kEnvelope;
  Envelope envelope;
  HelloFrame hello;
  HelloAckFrame hello_ack;
};

/// Append the length-prefixed encoding of a frame to `out`.
void AppendEnvelopeFrame(const Envelope& e, std::string* out);
void AppendHelloFrame(const HelloFrame& h, std::string* out);
void AppendHelloAckFrame(const HelloAckFrame& a, std::string* out);

/// Decodes one payload (the bytes after the length prefix). Fails on short
/// bodies, unknown frame types, version or magic mismatches, and invalid
/// enum values.
Result<WireFrame> DecodeFramePayload(const uint8_t* data, size_t len);

/// Incremental frame assembler for a TCP byte stream: feed whatever read()
/// returned, pop complete frames. Handles frames split across arbitrarily
/// many reads and multiple frames per read.
class FrameReader {
 public:
  /// Appends raw bytes from the stream.
  void Append(const uint8_t* data, size_t n);

  /// Pops the next complete frame into `*out`. Returns true when a frame
  /// was produced, false when more bytes are needed; a non-OK status means
  /// the stream is corrupt (oversized length, bad version/type) and the
  /// connection must be dropped.
  Result<bool> Next(WireFrame* out);

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buffer_.size() - pos_; }

  /// Removes and returns the unconsumed bytes, leaving the reader empty.
  /// Used to hand leftover bytes from a handshake-time reader to the
  /// steady-state reader: TCP may coalesce the hello-ack and the first
  /// data frames into one segment, and dropping the tail would lose them.
  std::string TakeBuffered();

 private:
  std::string buffer_;
  size_t pos_ = 0;  ///< Consumed prefix of buffer_; compacted lazily.
};

/// Wire-level reliability counters for one SocketTransport, the
/// ChannelStats analogue for the TCP fabric. Mirrored into obs metrics
/// under "runtime/socket/*" when a registry is attached.
struct SocketStats {
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t connect_attempts = 0;  ///< Total connect() calls (1 = first try).
  int64_t connect_retries = 0;   ///< Attempts after the first.
  int64_t accept_timeouts = 0;
  int64_t decode_errors = 0;
  int64_t disconnects = 0;  ///< Peers lost outside a graceful shutdown.

  std::string ToString() const;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_WIRE_H_
