#ifndef DCV_RUNTIME_WIRE_H_
#define DCV_RUNTIME_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "runtime/actor_message.h"

namespace dcv {

// Binary framing for the socket transport. Every frame on the wire is
//
//   u32  payload length (little-endian, excludes the prefix itself)
//   u8   wire version (kWireVersion)
//   u8   frame type (FrameType)
//   ...  type-specific body, fixed layout, little-endian
//
// The version byte leads every payload so an incompatible peer is detected
// on the first frame instead of producing garbled envelopes. Length is
// bounded by kMaxFramePayload; anything larger is treated as a corrupt or
// hostile stream and fails decoding rather than allocating unboundedly.
//
// Version 2 adds crash-recovery machinery: envelope frames carry a
// per-connection-direction sequence number (for replay dedup after a
// reconnect), hellos carry a generation counter (fences stale connections)
// plus the receiver's high-water mark (tells the peer where to resume),
// and kLayoutUpdate/kLayoutAck carry versioned shard-layout pushes.
//
// Version 3 adds the distributed telemetry plane: the Hello/HelloAck
// handshake carries NTP-style wall-clock timestamps (t1 worker send, t2
// coordinator receive, t3 coordinator send) so the worker can estimate its
// clock offset from the coordinator, and kTelemetry frames carry a full
// serialized metrics-registry snapshot plus a batch of wall-stamped trace
// events from a worker process. Telemetry frames are unsequenced (seq 0,
// cumulative latest-wins snapshots), so reconnect replay/dedup never
// double-counts them, and they alone may exceed kMaxFramePayload (up to
// kMaxTelemetryPayload).
//
// Version 4 adds kEnvelopeBatch: one length-prefixed frame carrying K
// routed envelopes (a worker's coalesced per-epoch update burst) instead
// of K separate kEnvelope frames — count(u32), then K fixed-layout
// envelope bodies, then ONE sequence number for the whole frame. Batches
// share the kEnvelope replay machinery wholesale: the frame is one
// sent-ring entry under one seq, so reconnect replay retransmits it
// atomically and the receiver's high-water-mark dedup accepts or drops
// all K envelopes together — a batch can never be half-applied after a
// resume. Batch frames may exceed kMaxFramePayload (up to
// kMaxBatchPayload, type-peeked like telemetry).

inline constexpr uint8_t kWireVersion = 4;

/// Handshake magic ("DCVS"): rejects a non-dcv peer on byte one of the
/// hello body instead of mid-run.
inline constexpr uint32_t kWireMagic = 0x53564344;

/// Largest fixed frame is < 64 bytes; a layout frame is 4 bytes per shard
/// boundary. The cap exists purely to bound damage from a corrupt length
/// prefix.
inline constexpr uint32_t kMaxFramePayload = 4096;

/// kTelemetry frames carry whole registry snapshots (name strings, bucket
/// arrays, trace-event batches) and get their own, larger cap. The frame
/// type is peeked before accepting an over-kMaxFramePayload length so a
/// corrupt prefix still can't force a large allocation for data frames.
inline constexpr uint32_t kMaxTelemetryPayload = 1u << 20;

/// Upper bound on shard boundaries a kLayoutUpdate may carry (fits well
/// under kMaxFramePayload and far exceeds any real coordinator tree).
inline constexpr int32_t kMaxWireShards = 512;

/// Most envelopes one kEnvelopeBatch frame may carry. Writers chunk larger
/// bursts; the decoder rejects bigger counts so a corrupt count field can't
/// force an oversized allocation.
inline constexpr uint32_t kMaxBatchEnvelopes = 4096;

/// Payload cap for kEnvelopeBatch frames: count + kMaxBatchEnvelopes
/// envelope bodies + seq fits comfortably. Like kMaxTelemetryPayload, the
/// frame type is peeked before accepting an over-kMaxFramePayload length.
inline constexpr uint32_t kMaxBatchPayload = 1u << 18;

enum class FrameType : uint8_t {
  kEnvelope = 0,      ///< A routed ActorMessage (the steady-state frame).
  kHello = 1,         ///< Worker -> coordinator, first frame after connect.
  kHelloAck = 2,      ///< Coordinator -> worker, handshake verdict + mode.
  kLayoutUpdate = 3,  ///< Coordinator -> worker, versioned shard layout.
  kLayoutAck = 4,     ///< Worker -> coordinator, layout version adopted.
  kTelemetry = 5,     ///< Worker -> coordinator, metrics + trace snapshot.
  kEnvelopeBatch = 6, ///< K routed envelopes under one length prefix + seq.
};

/// Worker self-identification, sent once per connection. `generation`
/// starts at 0 on the first connect and increments on every reconnect;
/// the coordinator fences any hello whose generation is not strictly newer
/// than the connection it already holds. `last_seq_received` is the highest
/// envelope sequence number the worker has seen from the coordinator, so
/// the coordinator can replay exactly the suffix the worker missed.
struct HelloFrame {
  uint32_t magic = kWireMagic;
  int32_t worker = 0;       ///< This connection's worker index.
  int32_t num_workers = 0;  ///< Worker's view of the fabric shape.
  int32_t num_sites = 0;
  uint32_t generation = 0;
  uint64_t last_seq_received = 0;
  int64_t t1_us = 0;  ///< Worker wall clock (µs) when the hello was sent.
};

/// Coordinator's handshake reply. `ok == 0` means the hello was rejected
/// (shape mismatch, duplicate worker, stale generation) and the connection
/// is about to close. `last_seq_received` mirrors the worker-side field:
/// the highest envelope sequence the coordinator has seen from this worker.
struct HelloAckFrame {
  uint32_t magic = kWireMagic;
  uint8_t ok = 0;
  uint8_t virtual_time = 0;  ///< Run mode the worker must adopt.
  int32_t num_sites = 0;
  int32_t num_workers = 0;
  uint32_t generation = 0;
  uint64_t last_seq_received = 0;
  int64_t t1_us = 0;  ///< Echo of the hello's t1 (lets the worker match).
  int64_t t2_us = 0;  ///< Coordinator wall clock when the hello arrived.
  int64_t t3_us = 0;  ///< Coordinator wall clock when this ack was sent.
};

/// A versioned site->shard assignment push (contiguous ranges: shard s owns
/// sites [starts[s], starts[s+1])). Workers ack the version; the
/// coordinator switches routing only after every ack (the fence that makes
/// a mid-run reshard race-free).
struct LayoutFrame {
  uint32_t version = 0;
  int32_t num_sites = 0;
  int32_t num_shards = 0;
  std::vector<int32_t> starts;  ///< num_shards + 1 ascending boundaries.
};

struct LayoutAckFrame {
  uint32_t version = 0;
};

/// One worker trace event inside a telemetry frame. Timestamps are in the
/// worker's own clock; the coordinator applies the frame's clock offset
/// when merging into the run-wide recorder.
struct TelemetryTraceEvent {
  uint8_t kind = 0;  ///< obs::TraceEventKind, validated on decode.
  int64_t epoch = 0;
  int32_t site = -1;
  int64_t value = 0;
  int64_t duration_us = 0;
  int64_t ts_us = 0;  ///< Worker wall clock (µs); 0 = unstamped.
};

/// A worker's cumulative telemetry snapshot: the full metrics registry
/// (counters/gauges/histograms) plus a bounded batch of trace events.
/// Cumulative + latest-wins per worker, so resending after a reconnect is
/// idempotent on the coordinator.
struct TelemetryFrame {
  int32_t worker = 0;
  uint8_t final_flush = 0;      ///< 1 on the shutdown push.
  int64_t wall_time_us = 0;     ///< Worker wall clock at serialization.
  int64_t clock_offset_us = 0;  ///< Coordinator clock - worker clock (est.).
  obs::MetricsSnapshot metrics;
  std::vector<TelemetryTraceEvent> events;
};

/// One decoded frame; `type` selects which member is meaningful.
struct WireFrame {
  FrameType type = FrameType::kEnvelope;
  Envelope envelope;
  uint64_t seq = 0;  ///< Envelope sequence number; 0 = unsequenced.
  /// kEnvelopeBatch: the K envelopes, in send order, all under `seq`.
  std::vector<Envelope> batch;
  HelloFrame hello;
  HelloAckFrame hello_ack;
  LayoutFrame layout;
  LayoutAckFrame layout_ack;
  TelemetryFrame telemetry;
};

/// Append the length-prefixed encoding of a frame to `out`. `seq` is the
/// per-connection-direction sequence number (0 for unsequenced frames,
/// e.g. unit tests or pre-handshake traffic).
void AppendEnvelopeFrame(const Envelope& e, std::string* out,
                         uint64_t seq = 0);

/// Serializes `count` envelopes from `envs` as one kEnvelopeBatch frame
/// under a single sequence number. Requires 1 <= count <=
/// kMaxBatchEnvelopes (callers chunk larger bursts).
void AppendEnvelopeBatchFrame(const Envelope* envs, size_t count,
                              std::string* out, uint64_t seq = 0);
void AppendHelloFrame(const HelloFrame& h, std::string* out);
void AppendHelloAckFrame(const HelloAckFrame& a, std::string* out);
void AppendLayoutFrame(const LayoutFrame& l, std::string* out);
void AppendLayoutAckFrame(const LayoutAckFrame& a, std::string* out);

/// Serializes a telemetry frame. Fails (kInvalidArgument) if the encoded
/// payload would exceed kMaxTelemetryPayload — callers should trim the
/// trace-event batch and retry rather than silently truncating metrics.
Status AppendTelemetryFrame(const TelemetryFrame& t, std::string* out);

/// Decodes one payload (the bytes after the length prefix). Fails on short
/// bodies, unknown frame types, version or magic mismatches, and invalid
/// enum values.
Result<WireFrame> DecodeFramePayload(const uint8_t* data, size_t len);

/// Incremental frame assembler for a TCP byte stream: feed whatever read()
/// returned, pop complete frames. Handles frames split across arbitrarily
/// many reads and multiple frames per read.
class FrameReader {
 public:
  /// Appends raw bytes from the stream.
  void Append(const uint8_t* data, size_t n);

  /// Pops the next complete frame into `*out`. Returns true when a frame
  /// was produced, false when more bytes are needed; a non-OK status means
  /// the stream is corrupt (oversized length, bad version/type) and the
  /// connection must be dropped.
  Result<bool> Next(WireFrame* out);

  /// Call when the stream has ended (EOF). OK if the stream ended on a
  /// frame boundary; a distinct `truncated frame` error if the connection
  /// dropped mid-frame, so callers can count it instead of silently
  /// discarding the partial bytes.
  Status Finish() const;

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buffer_.size() - pos_; }

  /// Removes and returns the unconsumed bytes, leaving the reader empty.
  /// Used to hand leftover bytes from a handshake-time reader to the
  /// steady-state reader: TCP may coalesce the hello-ack and the first
  /// data frames into one segment, and dropping the tail would lose them.
  std::string TakeBuffered();

 private:
  std::string buffer_;
  size_t pos_ = 0;  ///< Consumed prefix of buffer_; compacted lazily.
};

/// Wire-level reliability counters for one SocketTransport, the
/// ChannelStats analogue for the TCP fabric. Mirrored into obs metrics
/// under "runtime/socket/*" when a registry is attached.
struct SocketStats {
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t connect_attempts = 0;  ///< Total connect() calls (1 = first try).
  int64_t connect_retries = 0;   ///< Attempts after the first.
  int64_t accept_timeouts = 0;
  int64_t decode_errors = 0;
  int64_t disconnects = 0;        ///< Peers lost outside a graceful shutdown.
  int64_t truncated_frames = 0;   ///< Streams that ended mid-frame.
  int64_t reconnects = 0;         ///< Successful mid-run resume handshakes.
  int64_t replayed_frames = 0;    ///< Frames retransmitted on resume.
  int64_t duplicate_frames = 0;   ///< Replayed frames dropped by seq dedup.

  std::string ToString() const;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_WIRE_H_
