#ifndef DCV_RUNTIME_WIRE_H_
#define DCV_RUNTIME_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/actor_message.h"

namespace dcv {

// Binary framing for the socket transport. Every frame on the wire is
//
//   u32  payload length (little-endian, excludes the prefix itself)
//   u8   wire version (kWireVersion)
//   u8   frame type (FrameType)
//   ...  type-specific body, fixed layout, little-endian
//
// The version byte leads every payload so an incompatible peer is detected
// on the first frame instead of producing garbled envelopes. Length is
// bounded by kMaxFramePayload; anything larger is treated as a corrupt or
// hostile stream and fails decoding rather than allocating unboundedly.
//
// Version 2 adds crash-recovery machinery: envelope frames carry a
// per-connection-direction sequence number (for replay dedup after a
// reconnect), hellos carry a generation counter (fences stale connections)
// plus the receiver's high-water mark (tells the peer where to resume),
// and kLayoutUpdate/kLayoutAck carry versioned shard-layout pushes.

inline constexpr uint8_t kWireVersion = 2;

/// Handshake magic ("DCVS"): rejects a non-dcv peer on byte one of the
/// hello body instead of mid-run.
inline constexpr uint32_t kWireMagic = 0x53564344;

/// Largest fixed frame is < 64 bytes; a layout frame is 4 bytes per shard
/// boundary. The cap exists purely to bound damage from a corrupt length
/// prefix.
inline constexpr uint32_t kMaxFramePayload = 4096;

/// Upper bound on shard boundaries a kLayoutUpdate may carry (fits well
/// under kMaxFramePayload and far exceeds any real coordinator tree).
inline constexpr int32_t kMaxWireShards = 512;

enum class FrameType : uint8_t {
  kEnvelope = 0,      ///< A routed ActorMessage (the steady-state frame).
  kHello = 1,         ///< Worker -> coordinator, first frame after connect.
  kHelloAck = 2,      ///< Coordinator -> worker, handshake verdict + mode.
  kLayoutUpdate = 3,  ///< Coordinator -> worker, versioned shard layout.
  kLayoutAck = 4,     ///< Worker -> coordinator, layout version adopted.
};

/// Worker self-identification, sent once per connection. `generation`
/// starts at 0 on the first connect and increments on every reconnect;
/// the coordinator fences any hello whose generation is not strictly newer
/// than the connection it already holds. `last_seq_received` is the highest
/// envelope sequence number the worker has seen from the coordinator, so
/// the coordinator can replay exactly the suffix the worker missed.
struct HelloFrame {
  uint32_t magic = kWireMagic;
  int32_t worker = 0;       ///< This connection's worker index.
  int32_t num_workers = 0;  ///< Worker's view of the fabric shape.
  int32_t num_sites = 0;
  uint32_t generation = 0;
  uint64_t last_seq_received = 0;
};

/// Coordinator's handshake reply. `ok == 0` means the hello was rejected
/// (shape mismatch, duplicate worker, stale generation) and the connection
/// is about to close. `last_seq_received` mirrors the worker-side field:
/// the highest envelope sequence the coordinator has seen from this worker.
struct HelloAckFrame {
  uint32_t magic = kWireMagic;
  uint8_t ok = 0;
  uint8_t virtual_time = 0;  ///< Run mode the worker must adopt.
  int32_t num_sites = 0;
  int32_t num_workers = 0;
  uint32_t generation = 0;
  uint64_t last_seq_received = 0;
};

/// A versioned site->shard assignment push (contiguous ranges: shard s owns
/// sites [starts[s], starts[s+1])). Workers ack the version; the
/// coordinator switches routing only after every ack (the fence that makes
/// a mid-run reshard race-free).
struct LayoutFrame {
  uint32_t version = 0;
  int32_t num_sites = 0;
  int32_t num_shards = 0;
  std::vector<int32_t> starts;  ///< num_shards + 1 ascending boundaries.
};

struct LayoutAckFrame {
  uint32_t version = 0;
};

/// One decoded frame; `type` selects which member is meaningful.
struct WireFrame {
  FrameType type = FrameType::kEnvelope;
  Envelope envelope;
  uint64_t seq = 0;  ///< Envelope sequence number; 0 = unsequenced.
  HelloFrame hello;
  HelloAckFrame hello_ack;
  LayoutFrame layout;
  LayoutAckFrame layout_ack;
};

/// Append the length-prefixed encoding of a frame to `out`. `seq` is the
/// per-connection-direction sequence number (0 for unsequenced frames,
/// e.g. unit tests or pre-handshake traffic).
void AppendEnvelopeFrame(const Envelope& e, std::string* out,
                         uint64_t seq = 0);
void AppendHelloFrame(const HelloFrame& h, std::string* out);
void AppendHelloAckFrame(const HelloAckFrame& a, std::string* out);
void AppendLayoutFrame(const LayoutFrame& l, std::string* out);
void AppendLayoutAckFrame(const LayoutAckFrame& a, std::string* out);

/// Decodes one payload (the bytes after the length prefix). Fails on short
/// bodies, unknown frame types, version or magic mismatches, and invalid
/// enum values.
Result<WireFrame> DecodeFramePayload(const uint8_t* data, size_t len);

/// Incremental frame assembler for a TCP byte stream: feed whatever read()
/// returned, pop complete frames. Handles frames split across arbitrarily
/// many reads and multiple frames per read.
class FrameReader {
 public:
  /// Appends raw bytes from the stream.
  void Append(const uint8_t* data, size_t n);

  /// Pops the next complete frame into `*out`. Returns true when a frame
  /// was produced, false when more bytes are needed; a non-OK status means
  /// the stream is corrupt (oversized length, bad version/type) and the
  /// connection must be dropped.
  Result<bool> Next(WireFrame* out);

  /// Call when the stream has ended (EOF). OK if the stream ended on a
  /// frame boundary; a distinct `truncated frame` error if the connection
  /// dropped mid-frame, so callers can count it instead of silently
  /// discarding the partial bytes.
  Status Finish() const;

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buffer_.size() - pos_; }

  /// Removes and returns the unconsumed bytes, leaving the reader empty.
  /// Used to hand leftover bytes from a handshake-time reader to the
  /// steady-state reader: TCP may coalesce the hello-ack and the first
  /// data frames into one segment, and dropping the tail would lose them.
  std::string TakeBuffered();

 private:
  std::string buffer_;
  size_t pos_ = 0;  ///< Consumed prefix of buffer_; compacted lazily.
};

/// Wire-level reliability counters for one SocketTransport, the
/// ChannelStats analogue for the TCP fabric. Mirrored into obs metrics
/// under "runtime/socket/*" when a registry is attached.
struct SocketStats {
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t connect_attempts = 0;  ///< Total connect() calls (1 = first try).
  int64_t connect_retries = 0;   ///< Attempts after the first.
  int64_t accept_timeouts = 0;
  int64_t decode_errors = 0;
  int64_t disconnects = 0;        ///< Peers lost outside a graceful shutdown.
  int64_t truncated_frames = 0;   ///< Streams that ended mid-frame.
  int64_t reconnects = 0;         ///< Successful mid-run resume handshakes.
  int64_t replayed_frames = 0;    ///< Frames retransmitted on resume.
  int64_t duplicate_frames = 0;   ///< Replayed frames dropped by seq dedup.

  std::string ToString() const;
};

}  // namespace dcv

#endif  // DCV_RUNTIME_WIRE_H_
