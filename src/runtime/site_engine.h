#ifndef DCV_RUNTIME_SITE_ENGINE_H_
#define DCV_RUNTIME_SITE_ENGINE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "obs/obs.h"
#include "runtime/actor_message.h"
#include "runtime/transport.h"

namespace dcv {

/// Which site-side execution engine a runtime launch drives its sites with.
enum class SiteEngineKind {
  /// One SiteEngine per worker thread multiplexes every owned site over
  /// flat structure-of-arrays state (the million-site data plane). The
  /// default: bit-identical to the actor path by construction, with the
  /// per-site object and scheduling overhead gone.
  kMultiplexed,
  /// One heap-allocated SiteActor per site, one site per message dispatch
  /// (the original runtime). Retained as the conformance baseline and for
  /// the seed-determinism harness at small N.
  kActorPerSite,
};

/// The multiplexed site data plane: one engine instance owns every site a
/// worker is responsible for and keeps their state in parallel flat arrays
/// indexed by dense slot. The slot mapping mirrors the transport's
/// round-robin ownership (`WorkerOf(site) == site % num_workers`):
///
///   slot = site / num_workers        site = slot * num_workers + worker
///
/// so a worker's sites {w, w+W, w+2W, ...} land in slots {0, 1, 2, ...}
/// with no holes — `thresholds_[slot]`, `values_[slot]`, `cursors_[slot]`,
/// `updates_[slot]` are contiguous and the per-message dispatch is an
/// integer divide instead of a pointer chase through a per-site object.
///
/// Determinism contract (why this is bit-identical to actor-per-site):
///  * every per-site RNG stream is derived from (seed, site) alone
///    (MakeSiteRng), and each slot owns its Rng — the order sites are
///    processed within a batch never touches another site's stream;
///  * the state transition per message is copied verbatim from SiteActor
///    (OnEpochStart / NextUpdate / OnPollRequest semantics, including the
///    observability side effects), so the same message sequence produces
///    the same reports;
///  * the coordinator replays alarms in ascending site order after
///    collecting every report, and the fault-injecting Channel lives on
///    the root thread only — transport arrival order (and therefore
///    batching) cannot perturb fates, charges, or detections.
///
/// Thread ownership is the same as the actor path: exactly one worker
/// thread drives an engine; no engine state is ever touched by two threads.
class SiteEngine {
 public:
  struct Config {
    int worker = 0;       ///< This engine's worker index.
    int num_workers = 1;  ///< Fabric worker count (fixes the slot mapping).
    int num_sites = 0;    ///< Global site count.

    /// Local thresholds in slot order (size = owned slot count);
    /// max() = no local constraint.
    std::vector<int64_t> thresholds;

    /// Trace-driven workload: owned sites' eval-trace columns in slot
    /// order. Empty (or all-empty) = synthetic workload below.
    std::vector<std::vector<int64_t>> series;
    int64_t synthetic_updates = 0;
    uint64_t seed = 42;
    int64_t synthetic_max = 1000000;  ///< Synthetic values ~ U[0, max].

    /// Record every consumed update per slot (seed-determinism tests).
    bool capture_updates = false;

    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceRecorder* recorder = nullptr;
  };

  explicit SiteEngine(Config config);

  int worker() const { return config_.worker; }
  size_t num_slots() const { return thresholds_.size(); }
  int SiteOf(size_t slot) const {
    return static_cast<int>(slot) * config_.num_workers + config_.worker;
  }

  /// updates-processed counters in slot order (valid after a run).
  const std::vector<int64_t>& updates_processed() const { return updates_; }

  /// Out-of-band threshold install (the socket worker's initial sync,
  /// which happens before the run loop starts). False = site not owned.
  bool ApplyThresholdUpdate(int32_t site, int64_t value) {
    const int slot = SlotOf(site);
    if (slot < 0) {
      return false;
    }
    thresholds_[static_cast<size_t>(slot)] = value;
    return true;
  }
  /// Captured update streams in slot order (capture_updates only).
  const std::vector<std::vector<int64_t>>& captured_updates() const {
    return captured_;
  }

  /// Virtual-time loop: batch-drains the worker inbox, applies every
  /// message to its slot, and pushes the replies back as one batch per
  /// drained burst. Exits when every owned site received kShutdown or the
  /// fabric closed.
  void RunVirtual(Transport* transport);

  /// Free-running loop: rotates through the live slots consuming updates;
  /// alarms, site-done markers, and poll responses accumulate in a pending
  /// outbox flushed with non-blocking TrySendBatch. The engine never
  /// blocks on a full coordinator inbox — it keeps draining its own inbox
  /// between flush attempts, so a coordinator blocked fanning polls at
  /// this worker always makes progress (no A/B mailbox deadlock). A full
  /// outbox pauses update production instead (bounded memory,
  /// backpressure preserved).
  void RunFree(Transport* transport);

 private:
  /// Dense slot of a site-addressed envelope; -1 when the site is out of
  /// range or not owned by this worker (dropped, same as the actor loop).
  int SlotOf(int32_t site) const;

  int64_t workload_size(size_t slot) const;
  int64_t ValueAt(size_t slot, int64_t index);

  /// Verbatim SiteActor::OnEpochStart over slot state.
  ActorMessage OnEpochStart(size_t slot, int64_t epoch, bool up);
  /// Verbatim SiteActor::NextUpdate over slot state.
  bool NextUpdate(size_t slot, int64_t* value, bool* alarmed);
  /// Verbatim SiteActor::OnPollRequest over slot state.
  ActorMessage OnPollRequest(size_t slot, int64_t epoch) const;

  Config config_;
  // Structure-of-arrays site state, all indexed by slot.
  std::vector<int64_t> thresholds_;
  std::vector<int64_t> values_;    ///< Most recently observed value.
  std::vector<int64_t> cursors_;   ///< Free-running stream position.
  std::vector<int64_t> updates_;   ///< Updates processed.
  std::vector<Rng> rngs_;          ///< (seed, site)-derived streams.
  std::vector<std::vector<int64_t>> captured_;
  obs::Counter* updates_counter_ = nullptr;  ///< "runtime/site/updates".
  obs::Counter* alarms_counter_ = nullptr;   ///< "runtime/site/alarms".
};

}  // namespace dcv

#endif  // DCV_RUNTIME_SITE_ENGINE_H_
